#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "trace/recorder.h"
#include "util/env.h"
#include "util/timer.h"

namespace armus::bench {

Options Options::from_env() {
  Options options;
  options.samples =
      static_cast<int>(util::env_int("ARMUS_BENCH_SAMPLES", options.samples));
  options.scale =
      static_cast<int>(util::env_int("ARMUS_BENCH_SCALE", options.scale));
  options.iterations =
      static_cast<int>(util::env_int("ARMUS_BENCH_ITERS", options.iterations));
  int max_threads =
      static_cast<int>(util::env_int("ARMUS_BENCH_MAX_THREADS", 16));
  options.thread_counts.clear();
  for (int t = 2; t <= max_threads; t *= 2) options.thread_counts.push_back(t);
  if (options.thread_counts.empty()) options.thread_counts.push_back(2);
  return options;
}

Tuning tuning_for(const std::string& kernel, const Options& options) {
  // Shapes chosen so an unchecked 4-task sample lands near 0.2-0.5 s on a
  // few-GHz core while preserving each kernel's barrier rate profile.
  Tuning t;
  if (kernel == "BT") {
    t = {2, 400, 1};
  } else if (kernel == "CG") {
    t = {2, 2000, 1};
  } else if (kernel == "FT") {
    t = {3, 100, 1};
  } else if (kernel == "MG") {
    t = {2, 75, 1};
  } else if (kernel == "RT") {
    t = {4, 40, 1};
  } else if (kernel == "SP") {
    t = {2, 400, 1};
  } else if (kernel == "SE") {
    t = {3, 0, 2};
  } else if (kernel == "FI") {
    t = {3, 0, 8};
  } else if (kernel == "FR") {
    t = {1, 0, 6};
  } else if (kernel == "BFS") {
    t = {2, 0, 3};
  } else if (kernel == "PS") {
    t = {2, 0, 4};
  }
  t.scale *= options.scale;
  if (options.iterations > 0) t.iterations = options.iterations;
  return t;
}

wl::RunConfig tuned_config(const std::string& kernel, const Options& options,
                           int threads) {
  Tuning tuning = tuning_for(kernel, options);
  wl::RunConfig config;
  config.threads = threads;
  config.scale = tuning.scale;
  config.iterations = tuning.iterations;
  return config;
}

util::Summary time_kernel(const wl::Kernel& kernel, const wl::RunConfig& base,
                          VerifyMode mode, GraphModel model, int samples,
                          Verifier::Stats* stats_out, int repeats) {
  std::unique_ptr<Verifier> verifier;
  if (mode != VerifyMode::kOff) {
    VerifierConfig config;
    config.mode = mode;
    config.model = model;
    // Detection every 100 ms, as the paper's local runs (§6.1).
    config.period = std::chrono::milliseconds(100);
    config.on_deadlock = [&](const DeadlockReport& report) {
      std::fprintf(stderr, "UNEXPECTED DEADLOCK in %s: %s\n",
                   kernel.name.c_str(), report.to_string().c_str());
      std::abort();
    };
    config.observer = trace::recorder_from_env();
    verifier = std::make_unique<Verifier>(std::move(config));
  }

  wl::RunConfig config = base;
  config.verifier = verifier.get();

  auto body = [&] {
    for (int r = 0; r < repeats; ++r) {
      wl::RunResult result = kernel.run(config);
      if (!result.valid) {
        std::fprintf(stderr, "VALIDATION FAILED in %s: %s\n",
                     kernel.name.c_str(), result.detail.c_str());
        std::abort();
      }
    }
  };
  body();  // warm-up, also primes caches and page tables
  if (verifier) verifier->reset_stats();

  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(samples));
  for (int s = 0; s < samples; ++s) {
    util::Stopwatch sw;
    body();
    times.push_back(sw.seconds());
  }
  if (stats_out != nullptr) {
    *stats_out = verifier ? verifier->stats() : Verifier::Stats{};
  }
  return util::summarize(times);
}

std::string json_out_path(int argc, char** argv, const std::string& fallback) {
  std::string positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json-out") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--json-out requires a path\n");
        std::abort();
      }
      return argv[i + 1];
    }
    if (std::strncmp(argv[i], "--json-out=", 11) == 0) {
      return argv[i] + 11;
    }
    if (positional.empty() && argv[i][0] != '-') positional = argv[i];
  }
  return positional.empty() ? fallback : positional;
}

void emit(const std::string& title, const util::Table& table) {
  std::printf("\n=== %s ===\n%s\n--- CSV ---\n%s", title.c_str(),
              table.to_text().c_str(), table.to_csv().c_str());
  std::fflush(stdout);
}

}  // namespace armus::bench
