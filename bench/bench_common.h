#pragma once

#include <string>
#include <vector>

#include "util/stats.h"
#include "util/table.h"
#include "workloads/workload.h"

/// Shared scaffolding for the paper-table benchmark binaries.
///
/// Environment knobs (all optional):
///   ARMUS_BENCH_SAMPLES      samples per configuration after the discarded
///                            warm-up (default 3; the paper uses 30)
///   ARMUS_BENCH_SCALE        problem-size multiplier (default 1)
///   ARMUS_BENCH_MAX_THREADS  largest SPMD task count (default 16; set 64
///                            to reproduce the paper's full sweep)
///   ARMUS_BENCH_ITERS        kernel iteration override (default: per-bench)
namespace armus::bench {

struct Options {
  int samples = 3;
  int scale = 1;
  int iterations = 0;
  std::vector<int> thread_counts{2, 4, 8, 16};

  static Options from_env();
};

/// Per-kernel benchmark shaping: problem sizes and iteration counts are
/// raised from the test defaults so one sample runs long enough (~0.2-0.5 s)
/// for barrier-rate-driven verification overhead to be measurable, and
/// short kernels are repeated within a sample.
struct Tuning {
  int scale = 1;
  int iterations = 0;  ///< 0 keeps the kernel default
  int repeats = 1;     ///< kernel executions per timed sample
};

/// The tuning for `kernel`, scaled by the env options (ARMUS_BENCH_SCALE
/// multiplies scale; ARMUS_BENCH_ITERS overrides iterations).
Tuning tuning_for(const std::string& kernel, const Options& options);

/// Builds the RunConfig for one timed configuration.
wl::RunConfig tuned_config(const std::string& kernel, const Options& options,
                           int threads);

/// Times `kernel` under the given mode/model: `samples`+1 runs (first
/// discarded), one Verifier shared across samples (the tool's scanner runs
/// for the whole set, like a real deployment). Validation failures abort
/// loudly. When `stats_out` is non-null it receives the verifier stats
/// accumulated over the timed samples (zeroed for unchecked runs).
/// ARMUS_TRACE=<path> makes every checked run a trace producer
/// (docs/TRACE_FORMAT.md), same as the env-configured library boundary.
util::Summary time_kernel(const wl::Kernel& kernel, const wl::RunConfig& base,
                          VerifyMode mode, GraphModel model, int samples,
                          Verifier::Stats* stats_out = nullptr, int repeats = 1);

/// Prints the rendered table plus its CSV block, framed like the paper's.
void emit(const std::string& title, const util::Table& table);

/// The shared `--json-out <path>` (or `--json-out=<path>`) flag of the
/// JSON-emitting bench binaries, so CI controls artifact locations instead
/// of relying on the current working directory. Falls back to the first
/// positional argument (the historical spelling), then to `fallback`.
/// A `--json-out` with no value aborts loudly.
std::string json_out_path(int argc, char** argv, const std::string& fallback);

}  // namespace armus::bench
