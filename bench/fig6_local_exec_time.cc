// Figure 6 (a-f) — comparative execution time for the non-distributed
// benchmarks: absolute wall-clock per task count for unchecked, detection
// and avoidance runs (the paper plots one chart per kernel; we print one
// table block per kernel with the same series).
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace armus;
  bench::Options options = bench::Options::from_env();

  for (const wl::Kernel& kernel : wl::npb_kernels()) {
    util::Table table({"Tasks", "Unchecked(s)", "Detection(s)", "Avoidance(s)",
                       "CI95(unchecked)"});
    for (int threads : options.thread_counts) {
      wl::RunConfig config = bench::tuned_config(kernel.name, options, threads);
      util::Summary base = bench::time_kernel(
          kernel, config, VerifyMode::kOff, GraphModel::kAuto, options.samples);
      util::Summary detect =
          bench::time_kernel(kernel, config, VerifyMode::kDetection,
                             GraphModel::kAuto, options.samples);
      util::Summary avoid =
          bench::time_kernel(kernel, config, VerifyMode::kAvoidance,
                             GraphModel::kAuto, options.samples);
      table.add_row({std::to_string(threads), util::fmt_double(base.mean, 4),
                     util::fmt_double(detect.mean, 4),
                     util::fmt_double(avoid.mean, 4),
                     util::fmt_double(base.ci95, 4)});
    }
    bench::emit("Figure 6: execution time, benchmark " + kernel.name, table);
  }
  return 0;
}
