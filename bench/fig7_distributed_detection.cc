// Figure 7 — comparative execution time for distributed deadlock detection:
// the HPCC/X10 kernels (FT KMEANS JACOBI SSCA2 STREAM) on the simulated
// multi-site cluster, unchecked vs checked (distributed detection at the
// paper's 200 ms period).
//
// Paper reference: "no statistical evidence of an execution overhead".
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "util/env.h"
#include "util/timer.h"
#include "workloads/dist_kernels.h"

namespace {

armus::util::Summary time_dist(const armus::wl::DistKernel& kernel,
                               armus::wl::DistRunConfig config, int samples) {
  auto body = [&] {
    armus::wl::RunResult result = kernel.run(config);
    if (!result.valid) {
      std::fprintf(stderr, "VALIDATION FAILED in %s: %s\n", kernel.name.c_str(),
                   result.detail.c_str());
      std::abort();
    }
  };
  body();  // warm-up
  std::vector<double> times;
  for (int s = 0; s < samples; ++s) {
    armus::util::Stopwatch sw;
    body();
    times.push_back(sw.seconds());
  }
  return armus::util::summarize(times);
}

}  // namespace

int main() {
  using namespace armus;
  bench::Options options = bench::Options::from_env();
  const int sites =
      static_cast<int>(util::env_int("ARMUS_BENCH_SITES", 4));
  const int tasks_per_site =
      static_cast<int>(util::env_int("ARMUS_BENCH_TASKS_PER_SITE", 4));

  util::Table table({"Bench", "Unchecked(s)", "Checked(s)", "Overhead",
                     "Welch t", "Significant@5%"});

  // Problem shaping per kernel so one sample runs ~0.15-0.4 s (stable means
  // at the default 3 samples); ARMUS_BENCH_SCALE/ITERS still multiply.
  auto tuned = [&](const std::string& name) {
    struct {
      int scale;
      int iterations;
    } t{1, 0};
    if (name == "FT") t = {2, 30};
    if (name == "KMEANS") t = {16, 40};
    if (name == "JACOBI") t = {2, 250};
    if (name == "SSCA2") t = {24, 0};
    if (name == "STREAM") t = {1, 250};
    t.scale *= options.scale;
    if (options.iterations > 0) t.iterations = options.iterations;
    return t;
  };

  for (const wl::DistKernel& kernel : wl::dist_kernels()) {
    auto shape = tuned(kernel.name);
    wl::DistRunConfig config;
    config.sites = sites;
    config.tasks_per_site = tasks_per_site;
    config.scale = shape.scale;
    config.iterations = shape.iterations;

    config.cluster = nullptr;
    util::Summary base = time_dist(kernel, config, options.samples);

    dist::Cluster::Config cc;
    cc.site_count = static_cast<std::size_t>(sites);
    cc.publish_period = std::chrono::milliseconds(200);  // §6.2 period
    cc.check_period = std::chrono::milliseconds(200);
    cc.on_deadlock = [&](dist::SiteId site, const DeadlockReport& report) {
      std::fprintf(stderr, "UNEXPECTED DEADLOCK at site %u: %s\n", site,
                   report.to_string().c_str());
      std::abort();
    };
    dist::Cluster cluster(cc);
    cluster.start();
    config.cluster = &cluster;
    util::Summary checked = time_dist(kernel, config, options.samples);
    cluster.stop();

    // The paper's claim is "no statistical evidence of an execution
    // overhead": test it explicitly.
    util::WelchResult welch = util::welch_t_test(checked, base);
    table.add_row({kernel.name, util::fmt_double(base.mean, 4),
                   util::fmt_double(checked.mean, 4),
                   util::format_overhead(util::relative_overhead(checked, base)),
                   util::fmt_double(welch.t, 2),
                   welch.significant_at_5pct ? "yes" : "no"});
    std::fprintf(stderr, "[fig7] %s base=%.3fs checked=%.3fs\n",
                 kernel.name.c_str(), base.mean, checked.mean);
  }

  bench::emit("Figure 7: distributed deadlock detection, " +
                  std::to_string(sites) + " sites x " +
                  std::to_string(tasks_per_site) + " tasks",
              table);
  return 0;
}
