// Figure 8 — comparative execution time for different graph-model choices
// under *avoidance*: the §6.3 course programs (SE FI FR BFS PS), which
// create tasks and barriers dynamically and exercise the verification
// worst cases (many tasks vs many barriers).
//
// Paper reference: adaptive never loses to the better fixed model; fixing
// the wrong model is catastrophic under avoidance (PS: 600% with WFG vs
// 82% adaptive; FR: 300% with SG vs 117% adaptive).
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace armus;
  bench::Options options = bench::Options::from_env();

  util::Table table({"Bench", "Unchecked(s)", "Auto(s)", "SG(s)", "WFG(s)"});
  for (const wl::Kernel& kernel : wl::course_kernels()) {
    wl::RunConfig config = bench::tuned_config(kernel.name, options, /*threads=*/4);
    const int repeats = bench::tuning_for(kernel.name, options).repeats;

    util::Summary base = bench::time_kernel(
        kernel, config, VerifyMode::kOff, GraphModel::kAuto, options.samples, nullptr, repeats);
    util::Summary automatic =
        bench::time_kernel(kernel, config, VerifyMode::kAvoidance,
                           GraphModel::kAuto, options.samples, nullptr, repeats);
    util::Summary sg = bench::time_kernel(
        kernel, config, VerifyMode::kAvoidance, GraphModel::kSg, options.samples, nullptr, repeats);
    util::Summary wfg =
        bench::time_kernel(kernel, config, VerifyMode::kAvoidance,
                           GraphModel::kWfg, options.samples, nullptr, repeats);

    table.add_row({kernel.name, util::fmt_double(base.mean, 4),
                   util::fmt_double(automatic.mean, 4),
                   util::fmt_double(sg.mean, 4), util::fmt_double(wfg.mean, 4)});
    std::fprintf(stderr, "[fig8] %s base=%.3f auto=%.3f sg=%.3f wfg=%.3f\n",
                 kernel.name.c_str(), base.mean, automatic.mean, sg.mean,
                 wfg.mean);
  }

  bench::emit("Figure 8: execution time by graph model, avoidance mode", table);
  return 0;
}
