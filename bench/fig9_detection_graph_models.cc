// Figure 9 — comparative execution time for different graph-model choices
// under *detection* (100 ms scans): the §6.3 course programs.
//
// Paper reference: detection is far gentler than avoidance (a dedicated
// scanner does the work), topping out around 25-29%; adaptive saves up to
// 9% versus a fixed model (BFS/PS with WFG).
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace armus;
  bench::Options options = bench::Options::from_env();

  util::Table table({"Bench", "Unchecked(s)", "Auto(s)", "SG(s)", "WFG(s)"});
  for (const wl::Kernel& kernel : wl::course_kernels()) {
    wl::RunConfig config = bench::tuned_config(kernel.name, options, /*threads=*/4);
    const int repeats = bench::tuning_for(kernel.name, options).repeats;

    util::Summary base = bench::time_kernel(
        kernel, config, VerifyMode::kOff, GraphModel::kAuto, options.samples, nullptr, repeats);
    util::Summary automatic =
        bench::time_kernel(kernel, config, VerifyMode::kDetection,
                           GraphModel::kAuto, options.samples, nullptr, repeats);
    util::Summary sg = bench::time_kernel(
        kernel, config, VerifyMode::kDetection, GraphModel::kSg, options.samples, nullptr, repeats);
    util::Summary wfg =
        bench::time_kernel(kernel, config, VerifyMode::kDetection,
                           GraphModel::kWfg, options.samples, nullptr, repeats);

    table.add_row({kernel.name, util::fmt_double(base.mean, 4),
                   util::fmt_double(automatic.mean, 4),
                   util::fmt_double(sg.mean, 4), util::fmt_double(wfg.mean, 4)});
    std::fprintf(stderr, "[fig9] %s base=%.3f auto=%.3f sg=%.3f wfg=%.3f\n",
                 kernel.name.c_str(), base.mean, automatic.mean, sg.mean,
                 wfg.mean);
  }

  bench::emit("Figure 9: execution time by graph model, detection mode", table);
  return 0;
}
