// Ablation: costs of the distributed substrate — codec encode/decode,
// store writes/snapshots (with and without injected network latency), and
// a full publish+check round trip per site count.
#include <benchmark/benchmark.h>

#include "dist/codec.h"
#include "dist/site.h"
#include "util/rng.h"

namespace {

using namespace armus;

std::vector<BlockedStatus> synthetic_statuses(int count) {
  util::Xoshiro256 rng(5);
  std::vector<BlockedStatus> statuses;
  for (int i = 1; i <= count; ++i) {
    BlockedStatus s;
    s.task = static_cast<TaskId>(i);
    s.waits.push_back(Resource{1 + rng.below(8), 1 + rng.below(4)});
    for (int r = 0; r < 3; ++r) {
      s.registered.push_back({1 + rng.below(8), rng.below(4)});
    }
    statuses.push_back(std::move(s));
  }
  return statuses;
}

void BM_CodecEncode(benchmark::State& state) {
  auto statuses = synthetic_statuses(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::string bytes = dist::encode_statuses(statuses);
    benchmark::DoNotOptimize(bytes);
  }
}
BENCHMARK(BM_CodecEncode)->Arg(8)->Arg(64)->Arg(512);

void BM_CodecDecode(benchmark::State& state) {
  std::string bytes =
      dist::encode_statuses(synthetic_statuses(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    auto statuses = dist::decode_statuses(bytes);
    benchmark::DoNotOptimize(statuses);
  }
}
BENCHMARK(BM_CodecDecode)->Arg(8)->Arg(64)->Arg(512);

void BM_StorePutSlice(benchmark::State& state) {
  dist::Store store;
  std::string payload = dist::encode_statuses(synthetic_statuses(64));
  for (auto _ : state) {
    store.put_slice(1, payload);
  }
}
BENCHMARK(BM_StorePutSlice);

void BM_StoreSnapshot(benchmark::State& state) {
  dist::Store store;
  std::string payload = dist::encode_statuses(synthetic_statuses(32));
  for (dist::SiteId s = 0; s < static_cast<dist::SiteId>(state.range(0)); ++s) {
    store.put_slice(s, payload);
  }
  for (auto _ : state) {
    auto snapshot = store.snapshot();
    benchmark::DoNotOptimize(snapshot);
  }
}
BENCHMARK(BM_StoreSnapshot)->Arg(4)->Arg(16)->Arg(64);

/// One full verification round at a site: publish the local slice, read
/// the global snapshot, decode every slice, analyse. Per site count.
void BM_SitePublishCheckRound(benchmark::State& state) {
  auto store = std::make_shared<dist::Store>();
  int sites = static_cast<int>(state.range(0));
  std::vector<std::unique_ptr<dist::Site>> cluster;
  for (int s = 0; s < sites; ++s) {
    dist::Site::Config config;
    config.id = static_cast<dist::SiteId>(s);
    cluster.push_back(std::make_unique<dist::Site>(config, store));
    // Each site hosts a handful of blocked tasks (disjoint ids per site).
    for (int t = 0; t < 8; ++t) {
      BlockedStatus status;
      status.task = static_cast<TaskId>(s * 100 + t + 1);
      status.waits.push_back(Resource{static_cast<PhaserUid>(s + 1), 1});
      status.registered.push_back({static_cast<PhaserUid>(s + 1), 1});
      cluster.back()->verifier().state().set_blocked(status);
    }
    cluster.back()->publish_now();
  }
  dist::Site& probe = *cluster[0];
  for (auto _ : state) {
    probe.publish_now();
    probe.check_now();
  }
  state.counters["sites"] = static_cast<double>(sites);
}
BENCHMARK(BM_SitePublishCheckRound)->Arg(2)->Arg(8)->Arg(32);

/// Store latency injection: how the simulated network hop scales a round.
void BM_StoreWithLatency(benchmark::State& state) {
  dist::Store::Config config;
  config.latency = std::chrono::microseconds(state.range(0));
  dist::Store store(config);
  std::string payload = dist::encode_statuses(synthetic_statuses(32));
  for (auto _ : state) {
    store.put_slice(1, payload);
    auto snapshot = store.snapshot();
    benchmark::DoNotOptimize(snapshot);
  }
}
BENCHMARK(BM_StoreWithLatency)->Arg(0)->Arg(50)->Arg(200);

}  // namespace

BENCHMARK_MAIN();
