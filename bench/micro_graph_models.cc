// Ablation: graph construction + cycle detection cost per model (WFG, SG,
// GRG, adaptive) across task:resource ratios — the §5.1 design choice made
// measurable. SPMD-shaped states (many tasks, one barrier) favour the SG;
// fork/join-shaped states (one waited event per task, dense registration)
// favour the WFG; the adaptive mode must track the cheaper model in both.
#include <benchmark/benchmark.h>

#include "core/checker.h"
#include "core/graph_builder.h"
#include "graph/cycle.h"
#include "util/rng.h"

namespace {

using namespace armus;

/// SPMD shape: `tasks` workers blocked on one event of a shared barrier,
/// one straggler blocked elsewhere (so edges exist).
std::vector<BlockedStatus> spmd_state(int tasks) {
  std::vector<BlockedStatus> snapshot;
  for (TaskId t = 1; t <= static_cast<TaskId>(tasks); ++t) {
    BlockedStatus s;
    s.task = t;
    s.waits.push_back(Resource{1, 1});
    s.registered.push_back({1, 1});
    s.registered.push_back({2, 0});
    snapshot.push_back(std::move(s));
  }
  BlockedStatus straggler;
  straggler.task = static_cast<TaskId>(tasks) + 1;
  straggler.waits.push_back(Resource{2, 1});
  straggler.registered.push_back({1, 0});
  straggler.registered.push_back({2, 1});
  snapshot.push_back(std::move(straggler));
  return snapshot;
}

/// Fork/join shape: every task waits on its own private event and is
/// registered behind `fanout` other chains.
std::vector<BlockedStatus> forkjoin_state(int tasks, int fanout) {
  util::Xoshiro256 rng(11);
  std::vector<BlockedStatus> snapshot;
  for (TaskId t = 1; t <= static_cast<TaskId>(tasks); ++t) {
    BlockedStatus s;
    s.task = t;
    s.waits.push_back(Resource{t, 1});
    for (int f = 0; f < fanout; ++f) {
      s.registered.push_back(
          {1 + rng.below(static_cast<std::uint64_t>(tasks)), 0});
    }
    snapshot.push_back(std::move(s));
  }
  return snapshot;
}

void build_and_check(benchmark::State& state,
                     const std::vector<BlockedStatus>& snapshot,
                     GraphModel model) {
  std::size_t edges = 0;
  for (auto _ : state) {
    CheckResult result = check_deadlocks(snapshot, model);
    edges = result.edges;
    benchmark::DoNotOptimize(result.reports);
  }
  state.counters["edges"] = static_cast<double>(edges);
  state.counters["blocked_tasks"] = static_cast<double>(snapshot.size());
}

void BM_SpmdWfg(benchmark::State& state) {
  auto snapshot = spmd_state(static_cast<int>(state.range(0)));
  build_and_check(state, snapshot, GraphModel::kWfg);
}
void BM_SpmdSg(benchmark::State& state) {
  auto snapshot = spmd_state(static_cast<int>(state.range(0)));
  build_and_check(state, snapshot, GraphModel::kSg);
}
void BM_SpmdAdaptive(benchmark::State& state) {
  auto snapshot = spmd_state(static_cast<int>(state.range(0)));
  build_and_check(state, snapshot, GraphModel::kAuto);
}
BENCHMARK(BM_SpmdWfg)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_SpmdSg)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_SpmdAdaptive)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_ForkJoinWfg(benchmark::State& state) {
  auto snapshot =
      forkjoin_state(static_cast<int>(state.range(0)), /*fanout=*/8);
  build_and_check(state, snapshot, GraphModel::kWfg);
}
void BM_ForkJoinSg(benchmark::State& state) {
  auto snapshot =
      forkjoin_state(static_cast<int>(state.range(0)), /*fanout=*/8);
  build_and_check(state, snapshot, GraphModel::kSg);
}
void BM_ForkJoinAdaptive(benchmark::State& state) {
  auto snapshot =
      forkjoin_state(static_cast<int>(state.range(0)), /*fanout=*/8);
  build_and_check(state, snapshot, GraphModel::kAuto);
}
BENCHMARK(BM_ForkJoinWfg)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_ForkJoinSg)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_ForkJoinAdaptive)->Arg(16)->Arg(64)->Arg(256);

/// The GRG (never used for checking, but the formal bridge) for reference.
void BM_SpmdGrg(benchmark::State& state) {
  auto snapshot = spmd_state(static_cast<int>(state.range(0)));
  build_and_check(state, snapshot, GraphModel::kGrg);
}
BENCHMARK(BM_SpmdGrg)->Arg(64)->Arg(256);

/// Raw cycle detection on a pre-built ring, isolating Tarjan from builders.
void BM_CycleDetectionRing(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  graph::DiGraph g(n);
  for (std::size_t v = 0; v < n; ++v) {
    g.add_edge(static_cast<graph::Node>(v),
               static_cast<graph::Node>((v + 1) % n));
  }
  for (auto _ : state) {
    auto cycle = graph::find_cycle(g);
    benchmark::DoNotOptimize(cycle);
  }
}
BENCHMARK(BM_CycleDetectionRing)->Arg(64)->Arg(1024)->Arg(16384);

}  // namespace

BENCHMARK_MAIN();
