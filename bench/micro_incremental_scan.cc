// Ablation for the incremental scan engine (epoch-versioned stores +
// IncrementalChecker + change-skipping publishes + LIST_SLICES_SINCE-style
// narrowed reads), emitting machine-readable JSON so successive PRs have a
// perf trajectory.
//
// Four workloads:
//   * steady_state_local — 1k blocked tasks, nothing changes between scans:
//     every scan_now() is epoch-skipped (zero snapshot copies, zero graph
//     builds), vs. the from-scratch snapshot+build baseline.
//   * one_site_churn     — 8 sites over one in-process slice store, one
//     site churns one task per round: the checking site fetches exactly
//     the changed slice, the quiet sites skip their publishes, and the
//     churning site publishes codec deltas.
//   * one_site_churn_kv  — the same churn shape over a real armus-kv TCP
//     server (loopback): the identical counter invariants must hold when
//     every publish and narrowed read crosses a socket (LIST_SLICES_SINCE
//     and PUT_SLICE_DELTA on the wire), and the wall-clock column shows
//     what the network hop costs.
//   * full_churn         — every site changes every round: the worst case,
//     nothing skippable, everything still correct.
//
// Counters (not wall-clock) carry the guarantees; tools/check_bench_json.py
// asserts them in CI. Wall-clock numbers are reported for the trajectory.
//
// Usage: micro_incremental_scan [--json-out output.json]
//        (default output: BENCH_incremental_scan.json; a positional path
//        is still accepted for compatibility)

#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/verifier.h"
#include "dist/site.h"
#include "net/kv_server.h"
#include "net/remote_store.h"

namespace {

using namespace armus;
using Clock = std::chrono::steady_clock;

double ns_between(Clock::time_point a, Clock::time_point b) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

BlockedStatus chain_status(TaskId task, PhaserUid phaser, PhaserUid next,
                           Phase wait_phase) {
  // Task waits on its own phaser's next phase (having arrived) and lags one
  // phase behind on the next phaser: an acyclic SG chain, ~1 edge per task,
  // no deadlock — the steady shape of a healthy barrier program.
  BlockedStatus s;
  s.task = task;
  s.waits.push_back(Resource{phaser, wait_phase});
  s.registered.push_back({phaser, wait_phase});
  if (next != 0) s.registered.push_back({next, 0});
  return s;
}

std::string json_escape_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

/// Tiny JSON assembler: objects only ever hold numbers, strings, and one
/// nested "counters" object — no external dependency needed.
class JsonObject {
 public:
  void add(const std::string& key, std::uint64_t value) {
    fields_.push_back("\"" + key + "\": " + std::to_string(value));
  }
  void add(const std::string& key, double value) {
    fields_.push_back("\"" + key + "\": " + json_escape_num(value));
  }
  void add(const std::string& key, const std::string& value) {
    fields_.push_back("\"" + key + "\": \"" + value + "\"");
  }
  void add_raw(const std::string& key, const std::string& raw) {
    fields_.push_back("\"" + key + "\": " + raw);
  }
  [[nodiscard]] std::string str(int indent) const {
    std::string pad(indent, ' ');
    std::string inner_pad(indent + 2, ' ');
    std::string out = "{\n";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      out += inner_pad + fields_[i];
      if (i + 1 < fields_.size()) out += ",";
      out += "\n";
    }
    return out + pad + "}";
  }

 private:
  std::vector<std::string> fields_;
};

JsonObject steady_state_local() {
  constexpr std::size_t kTasks = 1000;
  constexpr std::size_t kScans = 500;
  constexpr std::size_t kBaselineScans = 50;

  VerifierConfig config;
  config.mode = VerifyMode::kDetection;
  config.scanner_enabled = false;  // driven synchronously below
  Verifier verifier(config);
  for (std::size_t i = 1; i <= kTasks; ++i) {
    PhaserUid p = static_cast<PhaserUid>(i);
    PhaserUid next = i < kTasks ? static_cast<PhaserUid>(i + 1) : 0;
    verifier.state().set_blocked(chain_status(static_cast<TaskId>(i), p, next, 1));
  }

  // From-scratch baseline: what every scan used to cost.
  auto t0 = Clock::now();
  for (std::size_t i = 0; i < kBaselineScans; ++i) {
    auto snapshot = verifier.current_snapshot();
    CheckResult result = check_deadlocks(snapshot, config.model);
    if (result.deadlocked()) std::abort();  // the chain must be acyclic
  }
  auto t1 = Clock::now();
  double scratch_ns = ns_between(t0, t1) / kBaselineScans;

  verifier.scan_now();  // prime: first scan builds the graph once
  verifier.reset_stats();

  auto t2 = Clock::now();
  for (std::size_t i = 0; i < kScans; ++i) verifier.scan_now();
  auto t3 = Clock::now();
  double incremental_ns = ns_between(t2, t3) / kScans;

  Verifier::Stats stats = verifier.stats();
  JsonObject counters;
  counters.add("scans", static_cast<std::uint64_t>(kScans));
  counters.add("scans_skipped", stats.scans_skipped);
  counters.add("graphs_built", stats.graphs_built);
  counters.add("checks", stats.checks);

  JsonObject out;
  out.add("name", std::string("steady_state_local"));
  out.add("tasks", static_cast<std::uint64_t>(kTasks));
  out.add("scans", static_cast<std::uint64_t>(kScans));
  out.add("from_scratch_ns_per_scan", scratch_ns);
  out.add("incremental_ns_per_scan", incremental_ns);
  out.add("speedup", incremental_ns > 0 ? scratch_ns / incremental_ns : 0.0);
  out.add_raw("counters", counters.str(4));
  return out;
}

struct ChurnSetup {
  std::shared_ptr<dist::Store> store;  ///< in-process backing (null over TCP)
  std::vector<std::unique_ptr<dist::Site>> sites;
};

/// `backing` supplies each site's SliceStore — one connection per site for
/// the TCP variant, mirroring real deployments. Unset: one shared
/// in-process dist::Store.
ChurnSetup make_cluster(
    std::size_t site_count, std::size_t tasks_per_site,
    const std::function<std::shared_ptr<dist::SliceStore>()>& backing = {}) {
  ChurnSetup setup;
  std::shared_ptr<dist::SliceStore> shared;
  if (!backing) {
    setup.store = std::make_shared<dist::Store>();
    shared = setup.store;
  }
  for (std::size_t s = 0; s < site_count; ++s) {
    dist::Site::Config config;
    config.id = static_cast<dist::SiteId>(s);
    setup.sites.push_back(
        std::make_unique<dist::Site>(config, backing ? backing() : shared));
    for (std::size_t t = 0; t < tasks_per_site; ++t) {
      TaskId task = static_cast<TaskId>(s * 1000 + t + 1);
      PhaserUid p = static_cast<PhaserUid>(s * 1000 + t + 1);
      setup.sites.back()->verifier().state().set_blocked(
          chain_status(task, p, 0, 1));
    }
    setup.sites.back()->publish_now();
  }
  return setup;
}

void churn_task(dist::Site& site, dist::SiteId site_id, std::size_t round) {
  // Re-block one task with an alternating wait phase (2, 1, 2, ... — the
  // initial state is phase 1): a genuine change every round.
  TaskId task = static_cast<TaskId>(site_id * 1000 + 1);
  PhaserUid p = static_cast<PhaserUid>(site_id * 1000 + 1);
  site.verifier().state().set_blocked(
      chain_status(task, p, 0, 2 - (round % 2)));
}

JsonObject one_site_churn_impl(
    const std::string& name,
    const std::function<std::shared_ptr<dist::SliceStore>()>& backing) {
  constexpr std::size_t kSites = 8;
  constexpr std::size_t kTasksPerSite = 64;
  constexpr std::size_t kRounds = 100;
  constexpr std::size_t kSteadyRounds = 100;

  ChurnSetup setup = make_cluster(kSites, kTasksPerSite, backing);
  dist::Site& churner = *setup.sites[0];
  dist::Site& checker = *setup.sites[1];

  checker.check_now();  // bootstrap: fetches all kSites slices once
  std::uint64_t fetched_before = checker.stats().slices_fetched;

  auto t0 = Clock::now();
  for (std::size_t round = 0; round < kRounds; ++round) {
    churn_task(churner, 0, round);
    for (auto& site : setup.sites) site->publish_now();
    checker.check_now();
  }
  auto t1 = Clock::now();

  std::uint64_t fetched_churn =
      checker.stats().slices_fetched - fetched_before;

  // Steady phase: nobody changes anything; publishes and checks all skip.
  for (std::size_t round = 0; round < kSteadyRounds; ++round) {
    for (auto& site : setup.sites) site->publish_now();
    checker.check_now();
  }

  std::uint64_t quiet_skips = 0;
  for (std::size_t s = 1; s < kSites; ++s) {
    quiet_skips += setup.sites[s]->stats().publishes_skipped;
  }

  JsonObject counters;
  counters.add("changed_slices", static_cast<std::uint64_t>(kRounds));
  counters.add("slices_fetched_during_churn", fetched_churn);
  counters.add("churner_delta_publishes", churner.stats().delta_publishes);
  counters.add("churner_publishes_skipped", churner.stats().publishes_skipped);
  counters.add("quiet_site_publishes_skipped", quiet_skips);
  counters.add("checker_checks_skipped", checker.stats().checks_skipped);
  counters.add("store_failures", checker.stats().store_failures);

  JsonObject out;
  out.add("name", name);
  out.add("sites", static_cast<std::uint64_t>(kSites));
  out.add("tasks_per_site", static_cast<std::uint64_t>(kTasksPerSite));
  out.add("rounds", static_cast<std::uint64_t>(kRounds));
  out.add("steady_rounds", static_cast<std::uint64_t>(kSteadyRounds));
  out.add("ns_per_churn_round", ns_between(t0, t1) / kRounds);
  out.add_raw("counters", counters.str(4));
  return out;
}

JsonObject one_site_churn() {
  return one_site_churn_impl("one_site_churn", {});
}

/// The ROADMAP item: the same churn invariants over a real armus-kv TCP
/// server. Each site holds its own connection (RemoteStore); the counters
/// must come out identical to the in-process run — the network hop may
/// cost wall-clock, never extra transfers.
JsonObject one_site_churn_kv() {
  net::KvServer server;  // ephemeral loopback port
  server.start();
  std::string host = "127.0.0.1";
  std::uint16_t port = server.port();
  auto backing = [host, port]() -> std::shared_ptr<dist::SliceStore> {
    net::RemoteStore::Config config;
    config.host = host;
    config.port = port;
    return std::make_shared<net::RemoteStore>(std::move(config));
  };
  JsonObject out = one_site_churn_impl("one_site_churn_kv", backing);
  server.stop();
  return out;
}

JsonObject full_churn() {
  constexpr std::size_t kSites = 8;
  constexpr std::size_t kTasksPerSite = 64;
  constexpr std::size_t kRounds = 50;

  ChurnSetup setup = make_cluster(kSites, kTasksPerSite);
  dist::Site& checker = *setup.sites[0];
  checker.check_now();
  std::uint64_t fetched_before = checker.stats().slices_fetched;

  auto t0 = Clock::now();
  for (std::size_t round = 0; round < kRounds; ++round) {
    for (std::size_t s = 0; s < kSites; ++s) {
      churn_task(*setup.sites[s], static_cast<dist::SiteId>(s), round);
      setup.sites[s]->publish_now();
    }
    checker.check_now();
  }
  auto t1 = Clock::now();

  JsonObject counters;
  counters.add("changed_slices", static_cast<std::uint64_t>(kSites * kRounds));
  counters.add("slices_fetched_during_churn",
               checker.stats().slices_fetched - fetched_before);
  counters.add("checker_checks_skipped", checker.stats().checks_skipped);
  counters.add("store_failures", checker.stats().store_failures);

  JsonObject out;
  out.add("name", std::string("full_churn"));
  out.add("sites", static_cast<std::uint64_t>(kSites));
  out.add("tasks_per_site", static_cast<std::uint64_t>(kTasksPerSite));
  out.add("rounds", static_cast<std::uint64_t>(kRounds));
  out.add("ns_per_churn_round", ns_between(t0, t1) / kRounds);
  out.add_raw("counters", counters.str(4));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path =
      armus::bench::json_out_path(argc, argv, "BENCH_incremental_scan.json");

  std::vector<JsonObject> workloads;
  workloads.push_back(steady_state_local());
  workloads.push_back(one_site_churn());
  workloads.push_back(one_site_churn_kv());
  workloads.push_back(full_churn());

  std::ostringstream json;
  json << "{\n  \"schema\": \"armus.bench.incremental_scan.v1\",\n"
       << "  \"workloads\": [\n";
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    json << "    " << workloads[i].str(4);
    if (i + 1 < workloads.size()) json << ",";
    json << "\n";
  }
  json << "  ]\n}\n";

  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  out << json.str();
  std::cout << json.str();
  std::cout << "wrote " << path << "\n";
  return 0;
}
