// Fleet-scale benchmark for the armus-kv epoll event loop: can one server
// with O(cores) threads absorb the publish traffic of 100 / 1k / 10k
// sites, with a crowd of idle connections parked on the loop, and zero
// request errors? Emits machine-readable JSON (armus.bench.kv_fleet.v1)
// so successive PRs have a latency/throughput trajectory;
// tools/check_bench_json.py asserts the counter invariants and --baseline
// bounds the drift.
//
// Shape: `--workers` publisher threads each own a contiguous range of
// site ids over ONE persistent RemoteStore connection (a worker is the
// stand-in for a whole host of sites — at 10k sites one connection per
// site would just benchmark the fd limit). Every round each worker
// re-publishes every site in its range and records the per-publish
// round-trip latency into an obs::Histogram. Meanwhile `idle` extra
// connections sit on the server doing nothing, so the loop pays the
// poll-set cost of a real fleet, not just of the active publishers.
//
// Usage: micro_kv_fleet [--sites N[,N...]] [--rounds R] [--workers W]
//                       [--processes P] [--idle I] [--json-out PATH]
//   --sites      fleet sizes to sweep (default 100,1000,10000)
//   --rounds     publish rounds per site (default: auto by fleet size)
//   --workers    publisher threads (default min(sites, 16))
//   --processes  fork P publisher *processes* instead of threads; each
//                child pipes its latency histogram back as raw bytes
//                (obs::Histogram is trivially copyable)
//   --idle       parked connections (default min(sites, 256))

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "net/kv_server.h"
#include "net/remote_store.h"
#include "net/socket_io.h"
#include "obs/registry.h"

namespace {

using namespace armus;
using Clock = std::chrono::steady_clock;

struct FleetOptions {
  std::vector<std::size_t> sites{100, 1000, 10000};
  std::size_t rounds = 0;     ///< 0 = auto by fleet size
  std::size_t workers = 0;    ///< 0 = min(sites, 16)
  std::size_t processes = 0;  ///< 0 = thread mode
  std::size_t idle = SIZE_MAX;  ///< SIZE_MAX = min(sites, 256)
};

/// What one publisher (thread or forked process) brings back. Trivially
/// copyable on purpose: in --processes mode a child write(2)s this struct
/// to a pipe and the parent merges, no serialisation layer needed.
struct WorkerResult {
  obs::Histogram latency;            ///< per-publish round trip, µs
  std::uint64_t publishes = 0;       ///< successful put_slice calls
  std::uint64_t request_errors = 0;  ///< put_slice throws
  std::uint64_t client_failures = 0;  ///< RemoteStore network failures
  std::uint64_t client_connects = 0;
};
static_assert(std::is_trivially_copyable_v<WorkerResult>,
              "piped raw between processes");

void merge_into(WorkerResult& total, const WorkerResult& part) {
  total.latency.merge(part.latency);
  total.publishes += part.publishes;
  total.request_errors += part.request_errors;
  total.client_failures += part.client_failures;
  total.client_connects += part.client_connects;
}

/// Publishes sites [begin, end) for `rounds` rounds over one connection.
WorkerResult run_publisher(std::uint16_t port, std::size_t begin,
                           std::size_t end, std::size_t rounds) {
  WorkerResult result;
  net::RemoteStore::Config config;
  config.port = port;
  net::RemoteStore store(config);
  for (std::size_t round = 0; round < rounds; ++round) {
    for (std::size_t site = begin; site < end; ++site) {
      std::string payload = "slice r" + std::to_string(round);
      auto t0 = Clock::now();
      try {
        store.put_slice(static_cast<dist::SiteId>(site + 1),
                        std::move(payload));
      } catch (const dist::StoreUnavailableError&) {
        ++result.request_errors;
        continue;
      }
      auto t1 = Clock::now();
      result.latency.record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
              .count()));
      ++result.publishes;
    }
  }
  result.client_failures = store.stats().failures;
  result.client_connects = store.stats().connects;
  return result;
}

/// Splits `sites` into `parts` contiguous ranges; range i is
/// [bounds[i], bounds[i+1]).
std::vector<std::size_t> range_bounds(std::size_t sites, std::size_t parts) {
  std::vector<std::size_t> bounds(parts + 1, 0);
  for (std::size_t i = 0; i <= parts; ++i) bounds[i] = sites * i / parts;
  return bounds;
}

WorkerResult run_threads(std::uint16_t port, std::size_t sites,
                         std::size_t workers, std::size_t rounds) {
  std::vector<std::size_t> bounds = range_bounds(sites, workers);
  std::vector<WorkerResult> results(workers);
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      results[w] = run_publisher(port, bounds[w], bounds[w + 1], rounds);
    });
  }
  for (auto& t : threads) t.join();
  WorkerResult total;
  for (const WorkerResult& r : results) merge_into(total, r);
  return total;
}

WorkerResult run_processes(std::uint16_t port, std::size_t sites,
                           std::size_t processes, std::size_t rounds) {
  std::vector<std::size_t> bounds = range_bounds(sites, processes);
  std::vector<pid_t> pids;
  std::vector<int> pipes;
  for (std::size_t p = 0; p < processes; ++p) {
    int fds[2];
    if (pipe(fds) != 0) {
      std::perror("pipe");
      std::exit(1);
    }
    pid_t pid = fork();
    if (pid < 0) {
      std::perror("fork");
      std::exit(1);
    }
    if (pid == 0) {
      close(fds[0]);
      WorkerResult result =
          run_publisher(port, bounds[p], bounds[p + 1], rounds);
      ssize_t n = write(fds[1], &result, sizeof(result));
      _exit(n == static_cast<ssize_t>(sizeof(result)) ? 0 : 1);
    }
    close(fds[1]);
    pids.push_back(pid);
    pipes.push_back(fds[0]);
  }
  WorkerResult total;
  bool broken = false;
  for (std::size_t p = 0; p < processes; ++p) {
    WorkerResult part;
    std::size_t got = 0;
    while (got < sizeof(part)) {
      ssize_t n = read(pipes[p], reinterpret_cast<char*>(&part) + got,
                       sizeof(part) - got);
      if (n <= 0) break;
      got += static_cast<std::size_t>(n);
    }
    close(pipes[p]);
    int status = 0;
    waitpid(pids[p], &status, 0);
    if (got != sizeof(part) || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      broken = true;
      continue;
    }
    merge_into(total, part);
  }
  if (broken) ++total.request_errors;  // a lost child is a failed run
  return total;
}

std::string json_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

/// Same tiny assembler as the sibling benches: numbers, strings, one
/// level of nesting — no JSON dependency.
class JsonObject {
 public:
  void add(const std::string& key, std::uint64_t value) {
    fields_.push_back("\"" + key + "\": " + std::to_string(value));
  }
  void add(const std::string& key, double value) {
    fields_.push_back("\"" + key + "\": " + json_num(value));
  }
  void add(const std::string& key, const std::string& value) {
    fields_.push_back("\"" + key + "\": \"" + value + "\"");
  }
  void add_raw(const std::string& key, const std::string& raw) {
    fields_.push_back("\"" + key + "\": " + raw);
  }
  [[nodiscard]] std::string str(int indent) const {
    std::string pad(indent, ' ');
    std::string inner_pad(indent + 2, ' ');
    std::string out = "{\n";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      out += inner_pad + fields_[i];
      if (i + 1 < fields_.size()) out += ",";
      out += "\n";
    }
    return out + pad + "}";
  }

 private:
  std::vector<std::string> fields_;
};

std::size_t auto_rounds(std::size_t sites) {
  if (sites <= 200) return 50;
  if (sites <= 2000) return 20;
  return 5;
}

JsonObject run_fleet(std::size_t sites, const FleetOptions& options) {
  std::size_t rounds = options.rounds ? options.rounds : auto_rounds(sites);
  std::size_t workers =
      options.processes
          ? options.processes
          : (options.workers ? options.workers : std::min<std::size_t>(sites, 16));
  std::size_t idle = options.idle == SIZE_MAX
                         ? std::min<std::size_t>(sites, 256)
                         : options.idle;

  net::KvServer server;  // default config: ephemeral port, O(cores) loops
  server.start();

  // The parked fleet: connections that never send a byte but sit in the
  // poll set for the whole churn.
  std::vector<int> idle_fds;
  idle_fds.reserve(idle);
  for (std::size_t i = 0; i < idle; ++i) {
    int fd = net::io::connect_to("127.0.0.1", server.port(), 1000);
    if (fd >= 0) idle_fds.push_back(fd);
  }

  auto t0 = Clock::now();
  WorkerResult total =
      options.processes
          ? run_processes(server.port(), sites, workers, rounds)
          : run_threads(server.port(), sites, workers, rounds);
  auto t1 = Clock::now();
  double elapsed_s =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
              .count()) /
      1e6;

  for (int fd : idle_fds) net::io::close_fd(fd);
  net::KvServer::Stats server_stats = server.stats();
  std::vector<std::uint64_t> contention = server.backing()->shard_contention();
  std::uint64_t live_slices = server.backing()->slice_count();
  server.stop();

  std::uint64_t contention_total = 0;
  std::string contention_json = "[";
  for (std::size_t i = 0; i < contention.size(); ++i) {
    contention_total += contention[i];
    if (i) contention_json += ", ";
    contention_json += std::to_string(contention[i]);
  }
  contention_json += "]";

  JsonObject latency;
  latency.add("count", total.latency.count());
  latency.add("min_us", total.latency.min());
  latency.add("mean_us", total.latency.mean());
  latency.add("p50_us", total.latency.percentile(50));
  latency.add("p99_us", total.latency.percentile(99));
  latency.add("p999_us", total.latency.percentile(99.9));
  latency.add("max_us", total.latency.max());

  JsonObject counters;
  counters.add("server_requests", server_stats.requests);
  counters.add("server_errors", server_stats.errors);
  counters.add("server_connections", server_stats.connections);
  counters.add("server_dropped_backpressure", server_stats.dropped_backpressure);
  counters.add("server_dropped_idle", server_stats.dropped_idle);
  counters.add("server_dropped_protocol", server_stats.dropped_protocol);
  counters.add("client_failures", total.client_failures);
  counters.add("client_connects", total.client_connects);
  counters.add("live_slices", live_slices);
  counters.add("shard_contention_total", contention_total);

  JsonObject out;
  out.add("name", "fleet_" + std::to_string(sites));
  out.add("sites", static_cast<std::uint64_t>(sites));
  out.add("rounds", static_cast<std::uint64_t>(rounds));
  out.add("workers", static_cast<std::uint64_t>(workers));
  out.add("mode", std::string(options.processes ? "processes" : "threads"));
  out.add("idle_connections", static_cast<std::uint64_t>(idle_fds.size()));
  out.add("publishes", total.publishes);
  out.add("request_errors", total.request_errors);
  out.add("requests_per_sec",
          elapsed_s > 0 ? static_cast<double>(total.publishes) / elapsed_s
                        : 0.0);
  out.add_raw("latency_us", latency.str(4));
  out.add_raw("counters", counters.str(4));
  out.add_raw("shard_contention", contention_json);
  std::fprintf(stderr,
               "fleet_%zu: %llu publishes in %.2fs (%s, %zu workers, %zu "
               "idle conns), p50 %lluus p99 %lluus, %llu errors\n",
               sites, static_cast<unsigned long long>(total.publishes),
               elapsed_s, options.processes ? "processes" : "threads", workers,
               idle_fds.size(),
               static_cast<unsigned long long>(total.latency.percentile(50)),
               static_cast<unsigned long long>(total.latency.percentile(99)),
               static_cast<unsigned long long>(total.request_errors));
  return out;
}

std::vector<std::size_t> parse_sites(const std::string& spec) {
  std::vector<std::size_t> sites;
  std::stringstream in(spec);
  std::string item;
  while (std::getline(in, item, ',')) {
    std::size_t value = std::stoul(item);
    if (value == 0) throw std::invalid_argument("--sites needs positive ints");
    sites.push_back(value);
  }
  if (sites.empty()) throw std::invalid_argument("--sites needs a list");
  return sites;
}

}  // namespace

int main(int argc, char** argv) {
  // Flags take values, so json_out_path's positional fallback would
  // misread "--sites 200"; --json-out is parsed here instead.
  std::string path = "BENCH_kv_fleet.json";
  FleetOptions options;
  try {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--sites" && i + 1 < argc) {
        options.sites = parse_sites(argv[++i]);
      } else if (arg == "--rounds" && i + 1 < argc) {
        options.rounds = std::stoul(argv[++i]);
      } else if (arg == "--workers" && i + 1 < argc) {
        options.workers = std::stoul(argv[++i]);
      } else if (arg == "--processes" && i + 1 < argc) {
        options.processes = std::stoul(argv[++i]);
      } else if (arg == "--idle" && i + 1 < argc) {
        options.idle = std::stoul(argv[++i]);
      } else if (arg == "--json-out" && i + 1 < argc) {
        path = argv[++i];
      } else if (arg.rfind("--json-out=", 0) == 0) {
        path = arg.substr(std::strlen("--json-out="));
      } else {
        std::fprintf(stderr,
                     "usage: micro_kv_fleet [--sites N[,N...]] [--rounds R]\n"
                     "                      [--workers W] [--processes P]\n"
                     "                      [--idle I] [--json-out PATH]\n");
        return 2;
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "micro_kv_fleet: %s\n", e.what());
    return 2;
  }

  std::vector<JsonObject> workloads;
  for (std::size_t sites : options.sites) {
    workloads.push_back(run_fleet(sites, options));
  }

  std::ostringstream json;
  json << "{\n  \"schema\": \"armus.bench.kv_fleet.v1\",\n"
       << "  \"workloads\": [\n";
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    json << "    " << workloads[i].str(4);
    if (i + 1 < workloads.size()) json << ",";
    json << "\n";
  }
  json << "  ]\n}\n";

  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  out << json.str();
  std::cout << json.str();
  std::cout << "wrote " << path << "\n";
  return 0;
}
