// Ablation for the networked slice store: armus-kv round-trip costs
// (PUT_SLICE, LIST_SLICES, full publish+check rounds) against the
// in-process store, plus the SharedStore/SliceCache decode-caching win —
// repeated blocked_count()/snapshot() over unchanged slices is O(changed),
// shown by the decodes counter staying flat.
#include <benchmark/benchmark.h>

#include "dist/codec.h"
#include "dist/site.h"
#include "net/kv_server.h"
#include "net/remote_store.h"
#include "util/rng.h"

namespace {

using namespace armus;

std::vector<BlockedStatus> synthetic_statuses(int count) {
  util::Xoshiro256 rng(5);
  std::vector<BlockedStatus> statuses;
  for (int i = 1; i <= count; ++i) {
    BlockedStatus s;
    s.task = static_cast<TaskId>(i);
    s.waits.push_back(Resource{1 + rng.below(8), 1 + rng.below(4)});
    for (int r = 0; r < 3; ++r) {
      s.registered.push_back({1 + rng.below(8), rng.below(4)});
    }
    statuses.push_back(std::move(s));
  }
  return statuses;
}

net::RemoteStore::Config client_config(std::uint16_t port) {
  net::RemoteStore::Config config;
  config.port = port;
  return config;
}

/// One armus-kv PUT_SLICE round trip over loopback TCP.
void BM_RemotePutSlice(benchmark::State& state) {
  net::KvServer server;
  server.start();
  net::RemoteStore client(client_config(server.port()));
  std::string payload =
      dist::encode_statuses(synthetic_statuses(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.put_slice(1, payload));
  }
  state.counters["payload_bytes"] = static_cast<double>(payload.size());
}
BENCHMARK(BM_RemotePutSlice)->Arg(8)->Arg(64)->Arg(512);

/// LIST_SLICES of N sites over loopback TCP.
void BM_RemoteSnapshot(benchmark::State& state) {
  net::KvServer server;
  server.start();
  net::RemoteStore client(client_config(server.port()));
  std::string payload = dist::encode_statuses(synthetic_statuses(32));
  for (dist::SiteId s = 0; s < static_cast<dist::SiteId>(state.range(0)); ++s) {
    client.put_slice(s, payload);
  }
  for (auto _ : state) {
    auto snapshot = client.snapshot();
    benchmark::DoNotOptimize(snapshot);
  }
  state.counters["sites"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_RemoteSnapshot)->Arg(4)->Arg(16)->Arg(64);

/// A site's full publish+check round, in-process store vs armus-kv: what
/// moving the store out of the process costs per §5.2 period.
void publish_check_round(benchmark::State& state,
                         std::shared_ptr<dist::SliceStore> store, int sites) {
  std::vector<std::unique_ptr<dist::Site>> cluster;
  for (int s = 0; s < sites; ++s) {
    dist::Site::Config config;
    config.id = static_cast<dist::SiteId>(s);
    cluster.push_back(std::make_unique<dist::Site>(config, store));
    for (int t = 0; t < 8; ++t) {
      BlockedStatus status;
      status.task = static_cast<TaskId>(s * 100 + t + 1);
      status.waits.push_back(Resource{static_cast<PhaserUid>(s + 1), 1});
      status.registered.push_back({static_cast<PhaserUid>(s + 1), 1});
      cluster.back()->verifier().state().set_blocked(status);
    }
    cluster.back()->publish_now();
  }
  dist::Site& probe = *cluster[0];
  for (auto _ : state) {
    probe.publish_now();
    probe.check_now();
  }
  state.counters["sites"] = static_cast<double>(sites);
}

void BM_InProcessPublishCheckRound(benchmark::State& state) {
  publish_check_round(state, std::make_shared<dist::Store>(),
                      static_cast<int>(state.range(0)));
}
BENCHMARK(BM_InProcessPublishCheckRound)->Arg(2)->Arg(8)->Arg(32);

void BM_RemotePublishCheckRound(benchmark::State& state) {
  net::KvServer server;
  server.start();
  publish_check_round(
      state, std::make_shared<net::RemoteStore>(client_config(server.port())),
      static_cast<int>(state.range(0)));
}
BENCHMARK(BM_RemotePublishCheckRound)->Arg(2)->Arg(8)->Arg(32);

/// The decode-cache win: blocked_count over N sites when slices never
/// change between reads. `decodes_per_read` collapses to ~0 with the
/// version cache (every payload served from cache); it would be N without.
void BM_SharedStoreBlockedCountUnchanged(benchmark::State& state) {
  auto backing = std::make_shared<dist::Store>();
  int sites = static_cast<int>(state.range(0));
  std::string payload = dist::encode_statuses(synthetic_statuses(32));
  for (dist::SiteId s = 1; s <= static_cast<dist::SiteId>(sites); ++s) {
    backing->put_slice(s, payload);
  }
  dist::SharedStore store(backing, 0);
  (void)store.blocked_count();  // warm the cache
  std::uint64_t decodes_before = store.decode_count();
  std::uint64_t reads = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.blocked_count());
    ++reads;
  }
  state.counters["sites"] = static_cast<double>(sites);
  state.counters["decodes_per_read"] =
      reads == 0 ? 0.0
                 : static_cast<double>(store.decode_count() - decodes_before) /
                       static_cast<double>(reads);
}
BENCHMARK(BM_SharedStoreBlockedCountUnchanged)->Arg(4)->Arg(16)->Arg(64);

/// Worst case for the cache: every read follows a republish of one slice,
/// so each round decodes exactly the changed slice (O(changed), not O(N)).
void BM_SharedStoreBlockedCountOneChanged(benchmark::State& state) {
  auto backing = std::make_shared<dist::Store>();
  int sites = static_cast<int>(state.range(0));
  std::string payload = dist::encode_statuses(synthetic_statuses(32));
  for (dist::SiteId s = 1; s <= static_cast<dist::SiteId>(sites); ++s) {
    backing->put_slice(s, payload);
  }
  dist::SharedStore store(backing, 0);
  (void)store.blocked_count();
  std::uint64_t decodes_before = store.decode_count();
  std::uint64_t reads = 0;
  for (auto _ : state) {
    backing->put_slice(1, payload);  // bump one slice's version
    benchmark::DoNotOptimize(store.blocked_count());
    ++reads;
  }
  state.counters["sites"] = static_cast<double>(sites);
  state.counters["decodes_per_read"] =
      reads == 0 ? 0.0
                 : static_cast<double>(store.decode_count() - decodes_before) /
                       static_cast<double>(reads);
}
BENCHMARK(BM_SharedStoreBlockedCountOneChanged)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
