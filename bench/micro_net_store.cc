// Ablation for the networked slice store: armus-kv round-trip costs
// (PUT_SLICE, LIST_SLICES, full publish+check rounds) against the
// in-process store, plus the SharedStore/SliceCache decode-caching win —
// repeated blocked_count()/snapshot() over unchanged slices is O(changed),
// shown by the decodes counter staying flat.
//
// Two modes:
//   * default              — the Google Benchmark suite below.
//   * --json-out <path>    — a deterministic run that writes
//     BENCH_net_store.json (schema armus.bench.net_store.v1): loopback
//     publish-latency percentiles through obs::Histogram plus the
//     decode-cache counter invariants tools/check_bench_json.py pins in
//     CI. Counters carry the guarantees; latencies are the trajectory.
#include <benchmark/benchmark.h>

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench_common.h"
#include "dist/codec.h"
#include "dist/site.h"
#include "net/kv_server.h"
#include "net/remote_store.h"
#include "obs/registry.h"
#include "util/rng.h"

namespace {

using namespace armus;

std::vector<BlockedStatus> synthetic_statuses(int count) {
  util::Xoshiro256 rng(5);
  std::vector<BlockedStatus> statuses;
  for (int i = 1; i <= count; ++i) {
    BlockedStatus s;
    s.task = static_cast<TaskId>(i);
    s.waits.push_back(Resource{1 + rng.below(8), 1 + rng.below(4)});
    for (int r = 0; r < 3; ++r) {
      s.registered.push_back({1 + rng.below(8), rng.below(4)});
    }
    statuses.push_back(std::move(s));
  }
  return statuses;
}

net::RemoteStore::Config client_config(std::uint16_t port) {
  net::RemoteStore::Config config;
  config.port = port;
  return config;
}

/// One armus-kv PUT_SLICE round trip over loopback TCP.
void BM_RemotePutSlice(benchmark::State& state) {
  net::KvServer server;
  server.start();
  net::RemoteStore client(client_config(server.port()));
  std::string payload =
      dist::encode_statuses(synthetic_statuses(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.put_slice(1, payload));
  }
  state.counters["payload_bytes"] = static_cast<double>(payload.size());
}
BENCHMARK(BM_RemotePutSlice)->Arg(8)->Arg(64)->Arg(512);

/// LIST_SLICES of N sites over loopback TCP.
void BM_RemoteSnapshot(benchmark::State& state) {
  net::KvServer server;
  server.start();
  net::RemoteStore client(client_config(server.port()));
  std::string payload = dist::encode_statuses(synthetic_statuses(32));
  for (dist::SiteId s = 0; s < static_cast<dist::SiteId>(state.range(0)); ++s) {
    client.put_slice(s, payload);
  }
  for (auto _ : state) {
    auto snapshot = client.snapshot();
    benchmark::DoNotOptimize(snapshot);
  }
  state.counters["sites"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_RemoteSnapshot)->Arg(4)->Arg(16)->Arg(64);

/// A site's full publish+check round, in-process store vs armus-kv: what
/// moving the store out of the process costs per §5.2 period.
void publish_check_round(benchmark::State& state,
                         std::shared_ptr<dist::SliceStore> store, int sites) {
  std::vector<std::unique_ptr<dist::Site>> cluster;
  for (int s = 0; s < sites; ++s) {
    dist::Site::Config config;
    config.id = static_cast<dist::SiteId>(s);
    cluster.push_back(std::make_unique<dist::Site>(config, store));
    for (int t = 0; t < 8; ++t) {
      BlockedStatus status;
      status.task = static_cast<TaskId>(s * 100 + t + 1);
      status.waits.push_back(Resource{static_cast<PhaserUid>(s + 1), 1});
      status.registered.push_back({static_cast<PhaserUid>(s + 1), 1});
      cluster.back()->verifier().state().set_blocked(status);
    }
    cluster.back()->publish_now();
  }
  dist::Site& probe = *cluster[0];
  for (auto _ : state) {
    probe.publish_now();
    probe.check_now();
  }
  state.counters["sites"] = static_cast<double>(sites);
}

void BM_InProcessPublishCheckRound(benchmark::State& state) {
  publish_check_round(state, std::make_shared<dist::Store>(),
                      static_cast<int>(state.range(0)));
}
BENCHMARK(BM_InProcessPublishCheckRound)->Arg(2)->Arg(8)->Arg(32);

void BM_RemotePublishCheckRound(benchmark::State& state) {
  net::KvServer server;
  server.start();
  publish_check_round(
      state, std::make_shared<net::RemoteStore>(client_config(server.port())),
      static_cast<int>(state.range(0)));
}
BENCHMARK(BM_RemotePublishCheckRound)->Arg(2)->Arg(8)->Arg(32);

/// The decode-cache win: blocked_count over N sites when slices never
/// change between reads. `decodes_per_read` collapses to ~0 with the
/// version cache (every payload served from cache); it would be N without.
void BM_SharedStoreBlockedCountUnchanged(benchmark::State& state) {
  auto backing = std::make_shared<dist::Store>();
  int sites = static_cast<int>(state.range(0));
  std::string payload = dist::encode_statuses(synthetic_statuses(32));
  for (dist::SiteId s = 1; s <= static_cast<dist::SiteId>(sites); ++s) {
    backing->put_slice(s, payload);
  }
  dist::SharedStore store(backing, 0);
  (void)store.blocked_count();  // warm the cache
  std::uint64_t decodes_before = store.decode_count();
  std::uint64_t reads = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.blocked_count());
    ++reads;
  }
  state.counters["sites"] = static_cast<double>(sites);
  state.counters["decodes_per_read"] =
      reads == 0 ? 0.0
                 : static_cast<double>(store.decode_count() - decodes_before) /
                       static_cast<double>(reads);
}
BENCHMARK(BM_SharedStoreBlockedCountUnchanged)->Arg(4)->Arg(16)->Arg(64);

/// Worst case for the cache: every read follows a republish of one slice,
/// so each round decodes exactly the changed slice (O(changed), not O(N)).
void BM_SharedStoreBlockedCountOneChanged(benchmark::State& state) {
  auto backing = std::make_shared<dist::Store>();
  int sites = static_cast<int>(state.range(0));
  std::string payload = dist::encode_statuses(synthetic_statuses(32));
  for (dist::SiteId s = 1; s <= static_cast<dist::SiteId>(sites); ++s) {
    backing->put_slice(s, payload);
  }
  dist::SharedStore store(backing, 0);
  (void)store.blocked_count();
  std::uint64_t decodes_before = store.decode_count();
  std::uint64_t reads = 0;
  for (auto _ : state) {
    backing->put_slice(1, payload);  // bump one slice's version
    benchmark::DoNotOptimize(store.blocked_count());
    ++reads;
  }
  state.counters["sites"] = static_cast<double>(sites);
  state.counters["decodes_per_read"] =
      reads == 0 ? 0.0
                 : static_cast<double>(store.decode_count() - decodes_before) /
                       static_cast<double>(reads);
}
BENCHMARK(BM_SharedStoreBlockedCountOneChanged)->Arg(4)->Arg(16)->Arg(64);

// --- deterministic JSON mode (--json-out) ------------------------------------

using Clock = std::chrono::steady_clock;

std::uint64_t us_between(Clock::time_point a, Clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(b - a).count());
}

void append_histogram(std::ostringstream& json, const obs::Histogram& hist) {
  json << "{\n"
       << "      \"count\": " << hist.count() << ",\n"
       << "      \"min_us\": " << hist.min() << ",\n"
       << "      \"mean_us\": " << hist.mean() << ",\n"
       << "      \"p50_us\": " << hist.percentile(50) << ",\n"
       << "      \"p99_us\": " << hist.percentile(99) << ",\n"
       << "      \"p999_us\": " << hist.percentile(99.9) << ",\n"
       << "      \"max_us\": " << hist.max() << "\n    }";
}

/// kRounds PUT_SLICE publishes over loopback TCP, every round a genuinely
/// changed payload (no skip, no delta — RemoteStore::put_slice directly),
/// with per-publish latency percentiles. The counters prove the run was
/// clean: the server saw every request, nothing errored, the client never
/// reconnected.
void emit_publish_latency(std::ostringstream& json) {
  constexpr int kRounds = 400;
  constexpr int kTasks = 64;

  net::KvServer server;
  server.start();
  net::RemoteStore::Config config;
  config.port = server.port();
  net::RemoteStore client(config);

  std::vector<BlockedStatus> statuses = synthetic_statuses(kTasks);
  obs::Histogram latency;
  for (int round = 0; round < kRounds; ++round) {
    // Alternate one task's wait phase so each payload differs from the last.
    statuses[0].waits[0].phase = 1 + static_cast<Phase>(round % 2);
    std::string payload = dist::encode_statuses(statuses);
    auto t0 = Clock::now();
    client.put_slice(1, payload);
    latency.record(us_between(t0, Clock::now()));
  }
  net::KvServer::Stats server_stats = server.stats();
  net::RemoteStore::Stats client_stats = client.stats();
  server.stop();

  json << "    {\n      \"name\": \"publish_latency\",\n"
       << "      \"rounds\": " << kRounds << ",\n"
       << "      \"tasks_per_slice\": " << kTasks << ",\n"
       << "      \"latency_us\": ";
  append_histogram(json, latency);
  json << ",\n      \"counters\": {\n"
       << "        \"server_requests\": " << server_stats.requests << ",\n"
       << "        \"server_errors\": " << server_stats.errors << ",\n"
       << "        \"client_connects\": " << client_stats.connects << ",\n"
       << "        \"client_failures\": " << client_stats.failures << "\n"
       << "      }\n    }";
}

/// The SharedStore decode-cache invariants as exact counters: reads over an
/// unchanged store decode nothing; each read after one republish decodes
/// exactly the one changed slice.
void emit_decode_cache(std::ostringstream& json) {
  constexpr int kSites = 16;
  constexpr int kReads = 200;

  auto backing = std::make_shared<dist::Store>();
  std::string payload = dist::encode_statuses(synthetic_statuses(32));
  for (dist::SiteId s = 1; s <= kSites; ++s) backing->put_slice(s, payload);
  dist::SharedStore store(backing, 0);
  (void)store.blocked_count();  // warm the cache: every slice decodes once

  std::uint64_t before = store.decode_count();
  for (int i = 0; i < kReads; ++i) (void)store.blocked_count();
  std::uint64_t decodes_unchanged = store.decode_count() - before;

  before = store.decode_count();
  for (int i = 0; i < kReads; ++i) {
    backing->put_slice(1, payload);  // bump one slice's version
    (void)store.blocked_count();
  }
  std::uint64_t decodes_one_changed = store.decode_count() - before;

  json << "    {\n      \"name\": \"decode_cache\",\n"
       << "      \"sites\": " << kSites << ",\n"
       << "      \"reads\": " << kReads << ",\n"
       << "      \"counters\": {\n"
       << "        \"decodes_unchanged\": " << decodes_unchanged << ",\n"
       << "        \"decodes_one_changed\": " << decodes_one_changed << "\n"
       << "      }\n    }";
}

int run_json_mode(int argc, char** argv) {
  std::string path =
      armus::bench::json_out_path(argc, argv, "BENCH_net_store.json");

  std::ostringstream json;
  json << "{\n  \"schema\": \"armus.bench.net_store.v1\",\n"
       << "  \"workloads\": [\n";
  emit_publish_latency(json);
  json << ",\n";
  emit_decode_cache(json);
  json << "\n  ]\n}\n";

  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  out << json.str();
  std::cout << json.str() << "wrote " << path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json-out", 10) == 0) {
      return run_json_mode(argc, argv);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
