// Ablation: cost of the phaser primitives and of the Armus hooks on the
// blocking path — barrier steps per second for unchecked / detection /
// avoidance, the detection-period interference (§ DESIGN.md ablation 3),
// and registration churn (dynamic membership cost).
//
// Threading is self-managed: each benchmark invocation spawns its own
// worker gang advancing the shared phaser while the main task's advances
// are timed. Workers always deregister on exit, so teardown can never
// strand a waiter.
#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>

#include "phaser/phaser.h"
#include "runtime/task.h"

namespace {

using namespace armus;

/// Barrier-step throughput with `workers + 1` members on one phaser; the
/// main task's advance rate is the global barrier rate.
void barrier_steps(benchmark::State& state, Verifier* verifier, int workers) {
  auto phaser = ph::Phaser::create(verifier);
  TaskId self = rt::current_task();
  if (phaser->is_registered(self)) phaser->deregister(self);
  phaser->register_task_at_observed(self);

  std::atomic<bool> stop{false};
  std::vector<TaskId> ids;
  for (int w = 0; w < workers; ++w) {
    TaskId id = fresh_task_id();
    phaser->register_task_at_observed(id);
    ids.push_back(id);
  }
  std::vector<std::thread> gang;
  for (int w = 0; w < workers; ++w) {
    TaskId id = ids[static_cast<std::size_t>(w)];
    gang.emplace_back([&, id] {
      while (!stop.load(std::memory_order_acquire)) {
        phaser->advance(id);
      }
      phaser->deregister(id);
    });
  }

  for (auto _ : state) {
    phaser->advance(self);
  }

  stop.store(true, std::memory_order_release);
  // Release any worker still blocked on our next arrival.
  phaser->arrive_and_deregister(self);
  for (auto& t : gang) t.join();
  state.SetItemsProcessed(state.iterations() * (workers + 1));
}

void BM_BarrierStepUnchecked(benchmark::State& state) {
  barrier_steps(state, nullptr, static_cast<int>(state.range(0)));
}
BENCHMARK(BM_BarrierStepUnchecked)->Arg(1)->Arg(3)->Arg(7)->UseRealTime();

void BM_BarrierStepDetection(benchmark::State& state) {
  VerifierConfig config;
  config.mode = VerifyMode::kDetection;
  config.period = std::chrono::milliseconds(state.range(1));
  Verifier verifier(std::move(config));
  barrier_steps(state, &verifier, static_cast<int>(state.range(0)));
  state.counters["checks"] = static_cast<double>(verifier.stats().checks);
}
// Sweep the scan period at 4 members: 10 ms (aggressive) to 400 ms (lazy).
BENCHMARK(BM_BarrierStepDetection)
    ->Args({3, 10})->Args({3, 100})->Args({3, 400})->UseRealTime();

void BM_BarrierStepAvoidance(benchmark::State& state) {
  VerifierConfig config;
  config.mode = VerifyMode::kAvoidance;
  Verifier verifier(std::move(config));
  barrier_steps(state, &verifier, static_cast<int>(state.range(0)));
  state.counters["checks"] = static_cast<double>(verifier.stats().checks);
}
BENCHMARK(BM_BarrierStepAvoidance)->Arg(1)->Arg(3)->UseRealTime();

/// Dynamic membership churn: register + arrive + deregister, single task.
void BM_RegistrationChurn(benchmark::State& state) {
  auto phaser = ph::Phaser::create(nullptr);
  TaskId anchor = fresh_task_id();
  phaser->register_task(anchor, 0);  // keeps the phaser non-empty
  TaskId guest = fresh_task_id();
  for (auto _ : state) {
    phaser->register_task(guest, phaser->local_phase(anchor));
    phaser->arrive_and_deregister(guest);
    phaser->arrive(anchor);
  }
}
BENCHMARK(BM_RegistrationChurn);

/// Split-phase signal cost (arrive without wait) vs a full advance.
void BM_LoneArrive(benchmark::State& state) {
  auto phaser = ph::Phaser::create(nullptr);
  TaskId self = fresh_task_id();
  phaser->register_task(self, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(phaser->arrive(self));
  }
}
BENCHMARK(BM_LoneArrive);

/// The avoidance doom-check itself, at varying blocked-set sizes.
void BM_AvoidanceCheckCost(benchmark::State& state) {
  VerifierConfig config;
  config.mode = VerifyMode::kAvoidance;
  Verifier verifier(std::move(config));
  int blocked = static_cast<int>(state.range(0));
  for (TaskId t = 1; t <= static_cast<TaskId>(blocked); ++t) {
    BlockedStatus s;
    s.task = t;
    s.waits.push_back(Resource{1, 1});
    s.registered.push_back({1, 1});
    verifier.state().set_blocked(s);
  }
  BlockedStatus probe;
  probe.task = 100000;
  probe.waits.push_back(Resource{2, 1});
  probe.registered.push_back({2, 1});
  for (auto _ : state) {
    verifier.before_block(probe);  // runs the full analysis
    verifier.after_unblock(probe.task);
  }
}
BENCHMARK(BM_AvoidanceCheckCost)->Arg(4)->Arg(32)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
