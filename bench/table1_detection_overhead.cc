// Table 1 — "Relative execution overhead in detection mode": the NPB/JGF
// suite (BT CG FT MG RT SP) at increasing task counts, detection with the
// adaptive graph model every 100 ms, overhead relative to the unchecked run
// of the same kernel.
//
// Paper reference (64-core Opteron, class A-C inputs): overheads below 15%,
// mostly negligible (e.g. CG 9% @64, MG 13% @64, FT ~0%).
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace armus;
  bench::Options options = bench::Options::from_env();

  std::vector<std::string> header{"Bench"};
  for (int threads : options.thread_counts) {
    header.push_back(std::to_string(threads));
  }
  util::Table table(header);

  for (const wl::Kernel& kernel : wl::npb_kernels()) {
    std::vector<std::string> row{kernel.name};
    for (int threads : options.thread_counts) {
      wl::RunConfig config = bench::tuned_config(kernel.name, options, threads);
      util::Summary base = bench::time_kernel(
          kernel, config, VerifyMode::kOff, GraphModel::kAuto, options.samples);
      util::Summary checked =
          bench::time_kernel(kernel, config, VerifyMode::kDetection,
                             GraphModel::kAuto, options.samples);
      row.push_back(util::format_overhead(util::relative_overhead(checked, base)));
      std::fprintf(stderr, "[table1] %s t=%d base=%.3fs det=%.3fs\n",
                   kernel.name.c_str(), threads, base.mean, checked.mean);
    }
    table.add_row(std::move(row));
  }

  bench::emit(
      "Table 1: relative execution overhead, detection mode (adaptive model)",
      table);
  return 0;
}
