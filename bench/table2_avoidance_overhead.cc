// Table 2 — "Relative execution overhead in avoidance mode": the NPB/JGF
// suite with every task checking the graph before it blocks (adaptive
// model), overhead relative to the unchecked run.
//
// Paper reference: overhead grows with task count since each blocking task
// checks; worst case CG 50% @64, MG 30% @64, RT 16% @64.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace armus;
  bench::Options options = bench::Options::from_env();

  std::vector<std::string> header{"Bench"};
  for (int threads : options.thread_counts) {
    header.push_back(std::to_string(threads));
  }
  util::Table table(header);

  for (const wl::Kernel& kernel : wl::npb_kernels()) {
    std::vector<std::string> row{kernel.name};
    for (int threads : options.thread_counts) {
      wl::RunConfig config = bench::tuned_config(kernel.name, options, threads);
      util::Summary base = bench::time_kernel(
          kernel, config, VerifyMode::kOff, GraphModel::kAuto, options.samples);
      util::Summary checked =
          bench::time_kernel(kernel, config, VerifyMode::kAvoidance,
                             GraphModel::kAuto, options.samples);
      row.push_back(util::format_overhead(util::relative_overhead(checked, base)));
      std::fprintf(stderr, "[table2] %s t=%d base=%.3fs avoid=%.3fs\n",
                   kernel.name.c_str(), threads, base.mean, checked.mean);
    }
    table.add_row(std::move(row));
  }

  bench::emit(
      "Table 2: relative execution overhead, avoidance mode (adaptive model)",
      table);
  return 0;
}
