// Table 3 — "Edge count and verification overhead per benchmark per graph
// mode": for each §6.3 course program and each model selection (Auto, SG,
// WFG), the mean number of graph edges per analysis and the relative
// overhead in avoidance and detection modes.
//
// Paper reference: the edge profile is the point — PS: 781 WFG edges vs 6
// SG edges; BFS: 579 vs 7; FI: the SG is the *larger* one (2137 vs 1281);
// Auto tracks the smaller model in every case.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace armus;
  bench::Options options = bench::Options::from_env();

  util::Table table({"Bench", "Mode", "Edges(avoid)", "Avoidance", "Edges(det)",
                     "Detection"});

  for (const wl::Kernel& kernel : wl::course_kernels()) {
    wl::RunConfig config = bench::tuned_config(kernel.name, options, /*threads=*/4);
    const int repeats = bench::tuning_for(kernel.name, options).repeats;

    util::Summary base = bench::time_kernel(
        kernel, config, VerifyMode::kOff, GraphModel::kAuto, options.samples, nullptr, repeats);

    struct ModeRow {
      const char* label;
      GraphModel model;
    };
    for (ModeRow mode : {ModeRow{"Auto", GraphModel::kAuto},
                         ModeRow{"SG", GraphModel::kSg},
                         ModeRow{"WFG", GraphModel::kWfg}}) {
      Verifier::Stats avoid_stats;
      util::Summary avoid =
          bench::time_kernel(kernel, config, VerifyMode::kAvoidance, mode.model,
                             options.samples, &avoid_stats, repeats);
      Verifier::Stats detect_stats;
      util::Summary detect =
          bench::time_kernel(kernel, config, VerifyMode::kDetection, mode.model,
                             options.samples, &detect_stats, repeats);
      table.add_row(
          {kernel.name, mode.label, util::fmt_double(avoid_stats.mean_edges(), 1),
           util::format_overhead(util::relative_overhead(avoid, base)),
           util::fmt_double(detect_stats.mean_edges(), 1),
           util::format_overhead(util::relative_overhead(detect, base))});
      std::fprintf(stderr,
                   "[table3] %s %s avoid_edges=%.1f det_edges=%.1f "
                   "(checks: %llu/%llu, sg/wfg builds avoid: %llu/%llu)\n",
                   kernel.name.c_str(), mode.label, avoid_stats.mean_edges(),
                   detect_stats.mean_edges(),
                   static_cast<unsigned long long>(avoid_stats.checks),
                   static_cast<unsigned long long>(detect_stats.checks),
                   static_cast<unsigned long long>(avoid_stats.sg_builds),
                   static_cast<unsigned long long>(avoid_stats.wfg_builds));
    }
  }

  bench::emit("Table 3: edge count and verification overhead per graph mode",
              table);
  return 0;
}
