// Runs two of the §6.3 course workloads (BFS with a barrier per level, and
// the prefix sum with one task per element) under detection mode, printing
// what the adaptive graph selection did — a live view of Table 3's point:
// the same checker picks the SG here because these programs produce far
// more blocked tasks than barriers.
#include <cstdio>

#include "workloads/workload.h"

using namespace armus;

int main() {
  VerifierConfig config;
  config.mode = VerifyMode::kDetection;
  config.period = std::chrono::milliseconds(5);
  Verifier verifier(config);

  for (const char* name : {"BFS", "PS"}) {
    verifier.reset_stats();
    wl::RunConfig run;
    run.scale = 2;
    run.verifier = &verifier;
    wl::RunResult result = wl::kernel_by_name(name).run(run);
    auto stats = verifier.stats();
    std::printf("%s: %s (checksum %.0f)\n", name,
                result.valid ? "valid" : "INVALID", result.checksum);
    std::printf("  scans: %llu | graphs built: SG %llu, WFG %llu | "
                "mean edges %.1f | max edges %llu\n",
                static_cast<unsigned long long>(stats.checks),
                static_cast<unsigned long long>(stats.sg_builds),
                static_cast<unsigned long long>(stats.wfg_builds),
                stats.mean_edges(),
                static_cast<unsigned long long>(stats.max_edges));
    if (!result.valid) return 1;
  }

  std::printf("\nBoth workloads flood the verifier with short-lived tasks "
              "against a handful of barriers;\nthe adaptive selection keeps "
              "the graphs tiny by building State Graphs (SG builds >> WFG "
              "builds).\n");
  return 0;
}
