// Distributed deadlock detection on the simulated cluster (§5.2): four
// sites share a store (the Redis stand-in); tasks on different sites
// deadlock across two phasers; every site independently detects the cycle
// from the global snapshot — including while the store suffers an outage.
#include <atomic>
#include <cstdio>
#include <thread>

#include "dist/site.h"
#include "phaser/phaser.h"
#include "runtime/task.h"

using namespace armus;
using namespace std::chrono_literals;

int main() {
  dist::Cluster::Config config;
  config.site_count = 4;
  config.publish_period = 25ms;
  config.check_period = 25ms;
  std::atomic<int> reports{0};
  config.on_deadlock = [&](dist::SiteId site, const DeadlockReport& report) {
    ++reports;
    std::printf("site %u detected: %s\n", site, report.to_string().c_str());
  };
  dist::Cluster cluster(config);
  cluster.start();

  auto p = ph::Phaser::create(&cluster.site(0).verifier());
  auto q = ph::Phaser::create(&cluster.site(0).verifier());

  std::atomic<bool> start{false};
  auto make_task = [&](int site, bool first) {
    return rt::spawn_with(
        [&](TaskId child) {
          p->register_task(child, 0);
          q->register_task(child, 0);
        },
        [&, first] {
          while (!start.load()) std::this_thread::yield();
          TaskId self = rt::current_task();
          auto& mine = first ? p : q;
          auto& theirs = first ? q : p;
          mine->arrive(self);
          mine->await(self, 1);  // the cross-site cycle closes here
          if (theirs->is_registered(self)) theirs->arrive_and_deregister(self);
          if (mine->is_registered(self)) mine->deregister(self);
        },
        &cluster.site(static_cast<std::size_t>(site)).verifier(),
        "site" + std::to_string(site) + "-worker");
  };
  rt::Task t0 = make_task(0, true);
  rt::Task t1 = make_task(2, false);
  start.store(true);

  // Inject a store outage while the deadlock is forming: sites must keep
  // running (fault tolerance) and detect once the store recovers.
  std::this_thread::sleep_for(30ms);
  std::printf("-- injecting store outage --\n");
  cluster.local_store()->set_available(false);
  std::this_thread::sleep_for(100ms);
  std::printf("-- store recovered --\n");
  cluster.local_store()->set_available(true);

  for (int i = 0; i < 400 && reports.load() < 4; ++i) {
    std::this_thread::sleep_for(10ms);
  }

  // Resolve the deadlock so the demo terminates: deregister each task from
  // the phaser it never arrived at.
  std::printf("-- resolving: dropping stragglers --\n");
  if (q->is_registered(t0.id())) q->deregister(t0.id());
  if (p->is_registered(t1.id())) p->deregister(t1.id());
  t0.join();
  t1.join();

  std::size_t failures = 0;
  for (std::size_t s = 0; s < cluster.size(); ++s) {
    auto stats = cluster.site(s).stats();
    failures += stats.store_failures;
    std::printf("site %zu: publishes=%llu checks=%llu store_failures=%llu\n",
                s, static_cast<unsigned long long>(stats.publishes),
                static_cast<unsigned long long>(stats.checks),
                static_cast<unsigned long long>(stats.store_failures));
  }
  cluster.stop();

  std::printf("reports: %d (every site should report once: 4); "
              "store failures absorbed: %zu\n",
              reports.load(), failures);
  return (reports.load() == 4 && failures > 0) ? 0 : 1;
}
