// The paper's running example in both dialects, under *avoidance*:
//
//   * Figure 1 — X10 style: clocks + finish;
//   * Figure 2 — Java style: two Phasers (cyclic + join).
//
// In avoidance mode the blocking operation that would complete the deadlock
// cycle throws DeadlockAvoidedError instead of blocking; the handler
// applies the documented fix (deregistering from the cyclic barrier) and
// the program completes with correct output.
#include <cstdio>
#include <vector>

#include "runtime/clock.h"
#include "runtime/jphaser.h"

using namespace armus;

namespace {

void x10_style(Verifier& verifier, bool buggy) {
  constexpr int kWorkers = 4, kIters = 3;
  std::vector<double> a(kWorkers + 2, 1.0);
  a[0] = 0.0;
  a[kWorkers + 1] = 2.0;

  rt::Clock c = rt::Clock::make(&verifier);
  rt::Finish finish(&verifier);
  for (int i = 1; i <= kWorkers; ++i) {
    rt::async_clocked(finish, {c}, [&, i] {
      try {
        for (int j = 0; j < kIters; ++j) {
          double l = a[static_cast<std::size_t>(i) - 1];
          double r = a[static_cast<std::size_t>(i) + 1];
          c.advance();
          a[static_cast<std::size_t>(i)] = (l + r) / 2;
          c.advance();
        }
      } catch (const DeadlockAvoidedError& e) {
        // Clock::advance already deregistered us (§2.1 recovery).
        std::printf("  worker %d avoided: %s\n", i, e.what());
      }
    });
  }
  if (!buggy) c.drop();  // the fix from §2.1
  try {
    finish.wait();
  } catch (const DeadlockAvoidedError& e) {
    std::printf("  parent avoided: %s\n", e.what());
    if (c.is_registered()) c.drop();
    finish.wait();  // children can proceed now
  }
  std::printf("  a = [");
  for (double v : a) std::printf(" %.3f", v);
  std::printf(" ]\n");
}

void java_style(Verifier& verifier, bool buggy) {
  constexpr int kWorkers = 4, kIters = 3;
  std::vector<double> a(kWorkers + 2, 1.0);
  a[0] = 0.0;
  a[kWorkers + 1] = 2.0;

  rt::JPhaser c(1, &verifier);  // new Phaser(1): the parent's party
  rt::JPhaser b(1, &verifier);
  c.bind_current();             // the JArmus.register annotation
  b.bind_current();

  std::vector<rt::Task> threads;
  for (int i = 1; i <= kWorkers; ++i) {
    c.register_party();
    b.register_party();
    threads.push_back(rt::spawn([&, i] {
      c.bind_current();
      b.bind_current();
      try {
        for (int j = 0; j < kIters; ++j) {
          double l = a[static_cast<std::size_t>(i) - 1];
          double r = a[static_cast<std::size_t>(i) + 1];
          c.arrive_and_await_advance();
          a[static_cast<std::size_t>(i)] = (l + r) / 2;
          c.arrive_and_await_advance();
        }
        c.arrive_and_deregister();
      } catch (const DeadlockAvoidedError& e) {
        std::printf("  worker %d avoided: %s\n", i, e.what());
        if (c.underlying()->is_registered(rt::current_task())) {
          c.underlying()->deregister(rt::current_task());
        }
      }
      b.arrive_and_deregister();
    }, &verifier));
  }
  if (!buggy) c.arrive_and_deregister();  // the Figure 2 fix
  try {
    b.arrive_and_await_advance();
  } catch (const DeadlockAvoidedError& e) {
    std::printf("  parent avoided: %s\n", e.what());
    if (c.underlying()->is_registered(rt::current_task())) {
      c.underlying()->deregister(rt::current_task());
    }
    b.await_advance(0);
  }
  for (rt::Task& t : threads) t.join();
  std::printf("  a = [");
  for (double v : a) std::printf(" %.3f", v);
  std::printf(" ]\n");
}

}  // namespace

int main() {
  VerifierConfig config;
  config.mode = VerifyMode::kAvoidance;
  Verifier verifier(config);
  set_default_verifier(&verifier);

  std::printf("== Figure 1 (X10 style), buggy: avoidance interrupts ==\n");
  x10_style(verifier, /*buggy=*/true);
  std::printf("== Figure 1 (X10 style), fixed ==\n");
  x10_style(verifier, /*buggy=*/false);

  std::printf("== Figure 2 (Java style), buggy: avoidance interrupts ==\n");
  java_style(verifier, /*buggy=*/true);
  std::printf("== Figure 2 (Java style), fixed ==\n");
  java_style(verifier, /*buggy=*/false);

  auto stats = verifier.stats();
  std::printf("avoidance interrupts: %llu (expected >= 2)\n",
              static_cast<unsigned long long>(stats.avoidance_interrupts));
  set_default_verifier(nullptr);
  return stats.avoidance_interrupts >= 2 ? 0 : 1;
}
