// Multi-process distributed detection through armus-kv: the first run of
// the §5.2 protocol where "distributed" actually crosses OS process
// boundaries.
//
// The binary plays three roles, selected by argv[1]:
//
//   (none)        driver: forks `server`, reads its port, forks two
//                 `site` children wired to it via ARMUS_STORE, waits for
//                 both to report success.
//   ha            failover driver (docs/HA.md): forks a primary AND a
//                 replica server, points both sites at the pair
//                 (comma-separated ARMUS_STORE), waits until both slices
//                 are blocked, then SIGKILLs the primary and promotes the
//                 replica mid-deadlock — both sites must still detect.
//                 Prints "PRIMARY <url>" / "REPLICA <url>" / "PROMOTED
//                 <url>" lines so an external observer (the CI e2e) can
//                 aim armus-top at the promoted replica during the hold
//                 window.
//   server        runs a KvServer on an ephemeral loopback port and
//                 prints "PORT <n>" on stdout; exits on stdin EOF.
//                 ARMUS_ROLE=replica + ARMUS_PRIMARY=tcp://host:port make
//                 it a replica of a running primary.
//   site <id>     one Armus site: spawns a real task that blocks on a
//                 phaser so that the two site processes deadlock against
//                 each other; exits 0 once its checker has detected the
//                 cross-process cycle (and the task has been rescued).
//   promote <url> one PROMOTE round trip (operator tooling for scripts).
//
// The deadlock is the classic two-phaser cycle: site 0's task arrives on
// p and awaits p's phase 1 while still registered on q; site 1's task
// arrives on q and awaits q's phase 1 while still registered on p. No
// single process ever holds both halves — only the merged armus-kv
// snapshot shows the cycle.
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/ids.h"
#include "dist/site.h"
#include "net/config.h"
#include "net/kv_server.h"
#include "net/remote_store.h"
#include "phaser/phaser.h"
#include "runtime/task.h"
#include "util/env.h"

using namespace armus;
using namespace std::chrono_literals;

namespace {

int run_server() {
  // Blocked before any server thread exists, so every thread inherits
  // the mask and sigwait below is the one consumer.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  net::KvServer::Config config;  // ephemeral loopback port
  if (auto token = util::env_str("ARMUS_AUTH_TOKEN")) {
    config.auth_token = *token;  // WIRE_PROTOCOL §12: gate mutating ops
  }
  if (auto role = util::env_str("ARMUS_ROLE"); role && *role == "replica") {
    config.role = net::KvServer::Role::kReplica;  // docs/HA.md
    if (auto primary = util::env_str("ARMUS_PRIMARY")) {
      config.primary = *primary;
    }
  }
  if (std::int64_t slow = util::env_int("ARMUS_SLOW_REQUEST_US", 0);
      slow > 0) {
    config.slow_request_us = static_cast<std::uint64_t>(slow);
  }
  net::KvServer server(config);
  server.start();
  std::printf("PORT %u\n", server.port());
  std::fflush(stdout);

  // Shutdown: a "STOP" line (the driver's pipe) or EOF after any input;
  // with no usable stdin at all (backgrounded with </dev/null) serve
  // until SIGINT/SIGTERM.
  std::string input;
  char buf[64];
  ssize_t n;
  while ((n = ::read(STDIN_FILENO, buf, sizeof(buf))) > 0) {
    input.append(buf, static_cast<std::size_t>(n));
    if (input.find("STOP") != std::string::npos) break;
  }
  if (input.empty()) {
    int sig = 0;
    sigwait(&signals, &sig);
  }
  server.stop();
  return 0;
}

int run_site(dist::SiteId id, const std::string& url) {
  // Task ids are allocated per process; give each site its own range so
  // the merged snapshot never conflates tasks of different processes.
  // Phaser uids are deliberately NOT offset: both site processes create
  // p then q as their first phasers, so "phaser 1"/"phaser 2" name the
  // same logical barriers cluster-wide.
  seed_task_ids(1 + static_cast<TaskId>(id) * (1ull << 32));

  dist::Site::Config config;
  config.id = id;
  config.publish_period = 20ms;
  config.check_period = 20ms;
  std::atomic<int> detections{0};
  config.on_deadlock = [&](const DeadlockReport& report) {
    std::printf("site %u detected cross-process deadlock: %s\n", id,
                report.to_string().c_str());
    std::fflush(stdout);
    ++detections;
  };
  dist::Site site(config, net::remote_store_from_url(url));

  auto p = ph::Phaser::create(&site.verifier());
  auto q = ph::Phaser::create(&site.verifier());
  auto& mine = id == 0 ? p : q;
  auto& theirs = id == 0 ? q : p;

  // The peer site's task, represented locally by a ghost member that never
  // arrives: phaser instances do not span processes, so each process pins
  // its local p and q open on behalf of the remote task — without it the
  // local barrier would complete and nothing would ever block. The ghost
  // never blocks, so it is never published; only the merged armus-kv
  // snapshot (local worker + remote worker) contains the cycle.
  TaskId ghost = fresh_task_id();
  p->register_task(ghost, 0);
  q->register_task(ghost, 0);

  rt::Task worker = rt::spawn_with(
      [&](TaskId child) {
        p->register_task(child, 0);
        q->register_task(child, 0);
      },
      [&] {
        TaskId self = rt::current_task();
        mine->arrive(self);
        mine->await(self, 1);  // blocks until the driver-side rescue
        if (theirs->is_registered(self)) theirs->arrive_and_deregister(self);
        if (mine->is_registered(self)) mine->deregister(self);
      },
      &site.verifier(), "site" + std::to_string(id) + "-worker");

  site.start();
  for (int i = 0; i < 1500 && detections.load() == 0; ++i) {
    std::this_thread::sleep_for(10ms);
  }
  bool detected = detections.load() > 0;

  // ARMUS_DEMO_HOLD_MS=<ms>: keep the detected deadlock alive (worker
  // still blocked, slice still published) before the rescue, so an
  // external observer — armus-top in the CI e2e — has a window to see
  // both sites' blocked counts and the merged cross-process cycle.
  if (std::int64_t hold = util::env_int("ARMUS_DEMO_HOLD_MS", 0);
      detected && hold > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(hold));
  }

  // Rescue the worker so the process can exit cleanly: dropping the ghost
  // lets the local barrier complete, exactly like deregistering the remote
  // straggler would in a single-process run.
  if (mine->is_registered(ghost)) mine->deregister(ghost);
  if (theirs->is_registered(ghost)) theirs->deregister(ghost);
  worker.join();
  site.stop();

  auto stats = site.stats();
  std::printf("site %u: publishes=%llu checks=%llu store_failures=%llu %s\n",
              id, static_cast<unsigned long long>(stats.publishes),
              static_cast<unsigned long long>(stats.checks),
              static_cast<unsigned long long>(stats.store_failures),
              detected ? "DETECTED" : "TIMEOUT");
  std::fflush(stdout);
  return detected ? 0 : 1;
}

pid_t spawn_child(const char* exe, const std::vector<std::string>& args,
                  const std::string& store_url, int* stdout_pipe,
                  int* stdin_pipe,
                  const std::vector<std::pair<std::string, std::string>>& env =
                      {}) {
  int out_fds[2] = {-1, -1};
  int in_fds[2] = {-1, -1};
  if (stdout_pipe && ::pipe(out_fds) != 0) return -1;
  if (stdin_pipe && ::pipe(in_fds) != 0) return -1;
  pid_t pid = ::fork();
  if (pid != 0) {  // parent (or fork failure)
    if (stdout_pipe) {
      ::close(out_fds[1]);
      *stdout_pipe = out_fds[0];
    }
    if (stdin_pipe) {
      ::close(in_fds[0]);
      *stdin_pipe = in_fds[1];
    }
    return pid;
  }
  // child
  if (stdout_pipe) {
    ::dup2(out_fds[1], STDOUT_FILENO);
    ::close(out_fds[0]);
    ::close(out_fds[1]);
  }
  if (stdin_pipe) {
    ::dup2(in_fds[0], STDIN_FILENO);
    ::close(in_fds[0]);
    ::close(in_fds[1]);
  }
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(exe));
  for (const std::string& arg : args) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);
  if (!store_url.empty()) ::setenv("ARMUS_STORE", store_url.c_str(), 1);
  for (const auto& [name, value] : env) {
    ::setenv(name.c_str(), value.c_str(), 1);
  }
  ::execv(exe, argv.data());
  std::perror("execv");
  std::_Exit(127);
}

// Reads the "PORT <n>" banner a `server` child prints on startup.
// Returns 0 on any failure.
unsigned read_port(int fd) {
  std::string banner;
  char c;
  while (banner.find('\n') == std::string::npos && ::read(fd, &c, 1) == 1) {
    banner.push_back(c);
  }
  unsigned port = 0;
  if (std::sscanf(banner.c_str(), "PORT %u", &port) != 1) return 0;
  return port;
}

int run_driver(const char* exe) {
  // 1. armus-kv server process, ephemeral port reported on its stdout.
  int server_out = -1, server_in = -1;
  pid_t server = spawn_child(exe, {"server"}, "", &server_out, &server_in);
  if (server <= 0) {
    std::fprintf(stderr, "driver: cannot fork server\n");
    return 1;
  }
  unsigned port = read_port(server_out);
  if (port == 0) {
    std::fprintf(stderr, "driver: no port from server\n");
    ::kill(server, SIGKILL);
    return 1;
  }
  std::string url = "tcp://127.0.0.1:" + std::to_string(port);
  std::printf("driver: armus-kv server pid %d on %s\n", server, url.c_str());

  // 2. Two site processes, each holding one half of the deadlock.
  pid_t sites[2];
  for (int id = 0; id < 2; ++id) {
    sites[id] = spawn_child(exe, {"site", std::to_string(id)}, url, nullptr,
                            nullptr);
    if (sites[id] <= 0) {
      std::fprintf(stderr, "driver: cannot fork site %d\n", id);
      ::kill(server, SIGKILL);
      return 1;
    }
  }

  // 3. Both sites must exit 0 (= detected the cross-process deadlock).
  int failures = 0;
  for (int id = 0; id < 2; ++id) {
    int status = 0;
    ::waitpid(sites[id], &status, 0);
    bool ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    std::printf("driver: site %d %s\n", id, ok ? "detected" : "FAILED");
    if (!ok) ++failures;
  }

  // 4. A STOP line on the server's stdin asks it to exit.
  (void)!::write(server_in, "STOP\n", 5);
  ::close(server_in);
  int status = 0;
  ::waitpid(server, &status, 0);
  ::close(server_out);

  std::printf("driver: %s\n", failures == 0
                                  ? "cross-process deadlock detected by "
                                    "both sites through armus-kv"
                                  : "FAILED");
  return failures == 0 ? 0 : 1;
}

// Failover driver (docs/HA.md §runbook, exercised by the CI e2e): both
// sites talk to a primary+replica pair through a comma-separated
// ARMUS_STORE; once both halves of the deadlock are published, the
// primary is SIGKILLed mid-hold and the replica promoted — the sites'
// own detection (exit 0) is the proof that failover lost nothing.
int run_ha(const char* exe) {
  // 1. Primary, then a replica subscribed to it.
  int primary_out = -1, primary_in = -1;
  pid_t primary = spawn_child(exe, {"server"}, "", &primary_out, &primary_in);
  if (primary <= 0) {
    std::fprintf(stderr, "ha: cannot fork primary\n");
    return 1;
  }
  unsigned primary_port = read_port(primary_out);
  if (primary_port == 0) {
    std::fprintf(stderr, "ha: no port from primary\n");
    ::kill(primary, SIGKILL);
    return 1;
  }
  std::string primary_url = "tcp://127.0.0.1:" + std::to_string(primary_port);
  std::printf("PRIMARY %s\n", primary_url.c_str());
  std::fflush(stdout);

  int replica_out = -1, replica_in = -1;
  pid_t replica = spawn_child(exe, {"server"}, "", &replica_out, &replica_in,
                              {{"ARMUS_ROLE", "replica"},
                               {"ARMUS_PRIMARY", primary_url}});
  if (replica <= 0) {
    std::fprintf(stderr, "ha: cannot fork replica\n");
    ::kill(primary, SIGKILL);
    return 1;
  }
  unsigned replica_port = read_port(replica_out);
  if (replica_port == 0) {
    std::fprintf(stderr, "ha: no port from replica\n");
    ::kill(primary, SIGKILL);
    ::kill(replica, SIGKILL);
    return 1;
  }
  std::string replica_url = "tcp://127.0.0.1:" + std::to_string(replica_port);
  std::printf("REPLICA %s\n", replica_url.c_str());
  std::fflush(stdout);

  // 2. Both sites get BOTH endpoints: reads fail over to the replica the
  // moment the primary dies; writes follow once it is promoted.
  std::string store_urls = primary_url + "," + replica_url;
  pid_t sites[2];
  for (int id = 0; id < 2; ++id) {
    sites[id] = spawn_child(exe, {"site", std::to_string(id)}, store_urls,
                            nullptr, nullptr);
    if (sites[id] <= 0) {
      std::fprintf(stderr, "ha: cannot fork site %d\n", id);
      ::kill(primary, SIGKILL);
      ::kill(replica, SIGKILL);
      return 1;
    }
  }

  // 3. Wait until both halves of the deadlock are published to the
  // primary (blocked > 0 on both slices) — the moment worth crashing at.
  bool armed = false;
  try {
    auto probe = net::remote_store_from_url(primary_url);
    for (int i = 0; i < 600 && !armed; ++i) {
      try {
        net::InspectInfo info = probe->inspect();
        int blocked_sites = 0;
        for (const auto& row : info.sites) {
          if (row.blocked > 0) ++blocked_sites;
        }
        armed = blocked_sites >= 2;
      } catch (const dist::StoreUnavailableError&) {
      }
      if (!armed) std::this_thread::sleep_for(25ms);
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "ha: probe failed: %s\n", error.what());
  }
  if (!armed) {
    std::fprintf(stderr, "ha: sites never published a blocked pair\n");
    ::kill(primary, SIGKILL);
    ::kill(replica, SIGKILL);
    return 1;
  }

  // 4. Kill the primary mid-deadlock, then promote the replica. The
  // promotion bumps the replica's boot generation, so the sites' readers
  // refetch from scratch instead of ever seeing versions roll back.
  ::kill(primary, SIGKILL);
  ::waitpid(primary, nullptr, 0);
  ::close(primary_out);
  ::close(primary_in);
  std::printf("KILLED %s\n", primary_url.c_str());
  std::fflush(stdout);
  try {
    net::remote_store_from_url(replica_url)->promote();
  } catch (const std::exception& error) {
    std::fprintf(stderr, "ha: promote failed: %s\n", error.what());
    ::kill(replica, SIGKILL);
    return 1;
  }
  std::printf("PROMOTED %s\n", replica_url.c_str());
  std::fflush(stdout);

  // 5. Both sites must still exit 0 (= detected the cross-process
  // deadlock, before or after the failover).
  int failures = 0;
  for (int id = 0; id < 2; ++id) {
    int status = 0;
    ::waitpid(sites[id], &status, 0);
    bool ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    std::printf("ha: site %d %s\n", id, ok ? "detected" : "FAILED");
    if (!ok) ++failures;
  }

  (void)!::write(replica_in, "STOP\n", 5);
  ::close(replica_in);
  int status = 0;
  ::waitpid(replica, &status, 0);
  ::close(replica_out);

  std::printf("ha: %s\n",
              failures == 0 ? "cross-process deadlock survived primary "
                              "failure and promotion"
                            : "FAILED");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "server") == 0) {
    return run_server();
  }
  if (argc >= 3 && std::strcmp(argv[1], "site") == 0) {
    dist::SiteId id = static_cast<dist::SiteId>(std::atoi(argv[2]));
    const char* url = std::getenv("ARMUS_STORE");
    if (!url) {
      std::fprintf(stderr, "site: ARMUS_STORE not set\n");
      return 1;
    }
    return run_site(id, url);
  }
  if (argc >= 2 && std::strcmp(argv[1], "ha") == 0) {
    return run_ha(argv[0]);
  }
  if (argc >= 3 && std::strcmp(argv[1], "promote") == 0) {
    try {
      std::uint64_t generation =
          net::remote_store_from_url(argv[2])->promote();
      std::printf("promoted %s (generation %llu)\n", argv[2],
                  static_cast<unsigned long long>(generation));
      return 0;
    } catch (const std::exception& error) {
      std::fprintf(stderr, "promote: %s\n", error.what());
      return 1;
    }
  }
  if (argc == 1) {
    return run_driver(argv[0]);
  }
  std::fprintf(stderr,
               "usage: %s               (driver: server + 2 sites)\n"
               "       %s ha            (failover driver: primary + replica "
               "+ 2 sites,\n"
               "                         SIGKILL + promotion mid-deadlock)\n"
               "       %s server        (armus-kv on an ephemeral port; "
               "ARMUS_ROLE=replica\n"
               "                         + ARMUS_PRIMARY=<url> for a "
               "replica)\n"
               "       %s site <id>     (requires ARMUS_STORE=url[,url])\n"
               "       %s promote <url> (one PROMOTE round trip)\n",
               argv[0], argv[0], argv[0], argv[0], argv[0]);
  return 2;
}
