// PL model checker: parses a PL program (the paper's §3 core language),
// exhaustively explores its interleavings and reports whether any reachable
// state deadlocks — with both the ground-truth verdict (Definitions 3.1/3.2)
// and the graph analysis on ϕ(S), which must agree (Theorems 4.10/4.15).
//
//   $ ./build/examples/pl_check            # checks the built-in Figure 3
//   $ ./build/examples/pl_check prog.pl    # checks a program from a file
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/checker.h"
#include "graph/cycle.h"
#include "pl/deadlock.h"
#include "pl/explorer.h"
#include "pl/parser.h"

using namespace armus;

namespace {

// Figure 3 with I = 2 workers and one loop iteration unrolled, in concrete
// syntax. The driver never advances pc: the paper's running-example bug.
constexpr const char* kFigure3 = R"(
pc = newPhaser();
pb = newPhaser();
t0 = newTid();
reg(pc, t0); reg(pb, t0);
fork(t0)
  skip; adv(pc); await(pc);
  skip; adv(pc); await(pc);
  dereg(pc); dereg(pb);
end;
t1 = newTid();
reg(pc, t1); reg(pb, t1);
fork(t1)
  skip; adv(pc); await(pc);
  skip; adv(pc); await(pc);
  dereg(pc); dereg(pb);
end;
// dereg(pc);   <- uncomment to apply the fix from the paper
adv(pb); await(pb);
skip;
)";

}  // namespace

int main(int argc, char** argv) {
  std::string source = kFigure3;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    source = buffer.str();
  }

  pl::Seq program;
  try {
    program = pl::parse_program(source);
  } catch (const pl::ParseError& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 2;
  }
  std::printf("checking program:\n%s\n", pl::to_string(program).c_str());

  pl::ExploreConfig config;
  config.max_states = 200000;
  config.max_depth = 200;
  std::size_t theorem_checks = 0;
  pl::ExploreResult result =
      pl::explore(program, config, [&](const pl::State& state) {
        // Cross-check the metatheory on every reachable state.
        auto statuses = pl::phi(state);
        bool ground = pl::is_deadlocked(state);
        bool graph = graph::has_cycle(build_auto(statuses).graph);
        if (ground != graph) {
          std::fprintf(stderr, "THEOREM VIOLATION at state:\n%s\n",
                       state.to_string().c_str());
          std::abort();
        }
        ++theorem_checks;
      });

  std::printf("states explored : %zu%s\n", result.states_visited,
              result.truncated ? " (truncated: raise bounds for full proof)"
                               : " (exhaustive)");
  std::printf("terminal states : %zu\n", result.terminal_states);
  std::printf("theorem checks  : %zu (ground truth == graph verdict)\n",
              theorem_checks);
  std::printf("deadlocked      : %zu\n", result.deadlocked_states);

  if (result.deadlocked_states > 0) {
    const pl::State& example = result.deadlock_examples.front();
    std::printf("\nexample deadlocked state:\n%s", example.to_string().c_str());
    CheckResult check = check_deadlocks(pl::phi(example), GraphModel::kAuto);
    for (const DeadlockReport& report : check.reports) {
      std::printf("%s\n", report.to_string().c_str());
    }
    return 1;
  }
  std::printf("no deadlock reachable.\n");
  return 0;
}
