// Quickstart: create a clock, spawn tasks, deadlock on purpose, and watch
// Armus detect it — then run the fixed version to completion.
//
//   $ ./build/examples/quickstart
//
// The bug is the paper's running example (§2.1): the parent task is
// implicitly registered with the clock it creates, never advances it, and
// blocks at the finish — so the workers wait for the parent (via the clock)
// while the parent waits for the workers (via the finish).
#include <atomic>
#include <cstdio>

#include "runtime/clock.h"

using namespace armus;

int main() {
  // A detection-mode verifier scanning every 20 ms with the adaptive graph
  // model (the default). The callback both reports and *repairs*: it drops
  // the parent from the clock, which is exactly the one-line fix.
  std::atomic<int> deadlocks{0};
  rt::Clock clock;
  TaskId parent = rt::current_task();

  VerifierConfig config;
  config.mode = VerifyMode::kDetection;
  config.period = std::chrono::milliseconds(20);
  config.on_deadlock = [&](const DeadlockReport& report) {
    ++deadlocks;
    std::printf("DETECTED: %s\n", report.to_string().c_str());
    std::printf("repairing: dropping the parent from the clock...\n");
    if (clock.underlying()->is_registered(parent)) {
      clock.underlying()->deregister(parent);
    }
  };
  Verifier verifier(config);
  set_default_verifier(&verifier);

  std::printf("-- buggy version (parent stays registered) --\n");
  {
    clock = rt::Clock::make(&verifier);
    rt::Finish finish(&verifier);
    for (int i = 0; i < 3; ++i) {
      rt::async_clocked(finish, {clock}, [&] {
        clock.advance();  // waits for everyone, including the parent...
        clock.advance();
      });
    }
    finish.wait();  // ...while the parent waits here: deadlock.
    std::printf("finished after %d deadlock report(s)\n\n", deadlocks.load());
  }

  std::printf("-- fixed version (parent drops the clock) --\n");
  {
    clock = rt::Clock::make(&verifier);
    rt::Finish finish(&verifier);
    for (int i = 0; i < 3; ++i) {
      rt::async_clocked(finish, {clock}, [&] {
        clock.advance();
        clock.advance();
      });
    }
    clock.drop();  // the fix
    finish.wait();
    std::printf("finished cleanly; total deadlock reports: %d\n",
                deadlocks.load());
  }

  set_default_verifier(nullptr);
  return deadlocks.load() == 1 ? 0 : 1;
}
