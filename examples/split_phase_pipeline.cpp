// Producer/consumer pipeline on raw phasers, showing the generalised
// synchronisation patterns Armus verifies beyond plain barriers (§2.2):
//
//   * signal-only (producer) and wait-only (consumer) registration modes;
//   * split-phase synchronisation: `arrive` now, `await` later, with
//     useful work in between (fuzzy barriers);
//   * awaiting arbitrary future phases (the consumer skips ahead).
#include <cstdio>
#include <vector>

#include "phaser/phaser.h"
#include "runtime/task.h"

using namespace armus;

int main() {
  VerifierConfig config;
  config.mode = VerifyMode::kDetection;
  config.period = std::chrono::milliseconds(50);
  Verifier verifier(config);

  constexpr int kItems = 16;
  std::vector<int> buffer(kItems + 1, 0);

  auto stream = ph::Phaser::create(&verifier);

  // Producer: signal-only member. Its arrivals publish one item per phase.
  rt::Task producer = rt::spawn_with(
      [&](TaskId child) { stream->register_task(child, 0, ph::RegMode::kSig); },
      [&] {
        TaskId self = rt::current_task();
        for (int item = 1; item <= kItems; ++item) {
          buffer[static_cast<std::size_t>(item)] = item * item;
          Phase published = stream->arrive(self);  // split-phase: no wait
          std::printf("produced item %llu\n",
                      static_cast<unsigned long long>(published));
        }
        stream->deregister(self);
      },
      &verifier, "producer");

  // Consumer: wait-only member — it never impedes the producer. It skips
  // ahead: only every 4th item matters, so it awaits phases 4, 8, 12, 16
  // directly (awaiting an arbitrary future phase).
  rt::Task consumer = rt::spawn_with(
      [&](TaskId child) { stream->register_task(child, 0, ph::RegMode::kWait); },
      [&] {
        TaskId self = rt::current_task();
        long total = 0;
        for (Phase n = 4; n <= kItems; n += 4) {
          stream->await(self, n);  // blocks until item n is published
          total += buffer[static_cast<std::size_t>(n)];
          std::printf("consumed item %llu -> %d\n",
                      static_cast<unsigned long long>(n),
                      buffer[static_cast<std::size_t>(n)]);
        }
        std::printf("consumer total: %ld (expected %d)\n", total,
                    16 + 64 + 144 + 256);
        stream->deregister(self);
      },
      &verifier, "consumer");

  producer.join();
  consumer.join();

  // A second phaser demonstrates the split-phase *wait* half: arrive early,
  // overlap work, await the same phase later.
  auto fuzzy = ph::Phaser::create(&verifier);
  rt::Task a = rt::spawn_with(
      [&](TaskId child) { fuzzy->register_task(child, 0); },
      [&] {
        TaskId self = rt::current_task();
        Phase ticket = fuzzy->arrive(self);   // signal
        std::printf("task A overlapping work while peers catch up...\n");
        fuzzy->await(self, ticket);           // complete the barrier step
        std::printf("task A past the fuzzy barrier\n");
        fuzzy->deregister(self);
      },
      &verifier, "fuzzy-a");
  rt::Task b = rt::spawn_with(
      [&](TaskId child) { fuzzy->register_task(child, 0); },
      [&] {
        TaskId self = rt::current_task();
        fuzzy->advance(self);  // classic blocking step
        std::printf("task B past the fuzzy barrier\n");
        fuzzy->deregister(self);
      },
      &verifier, "fuzzy-b");
  a.join();
  b.join();

  bool clean = verifier.reported().empty();
  std::printf("deadlocks reported: %zu (expected 0)\n",
              verifier.reported().size());
  return clean ? 0 : 1;
}
