#pragma once

#include <string>
#include <vector>

#include "core/resource.h"

/// The blocked status a task publishes to the verification library when it
/// is about to block (§5.1): the resources it waits for, and its own local
/// phase on every phaser it is registered with.
///
/// Everything here is *local to the task* — this is the property (§2.1) that
/// lets distributed sites publish their slices independently without
/// agreeing on a global view of barrier membership.
namespace armus {

/// One registration of the task: the task's local phase on `phaser`.
/// The task impedes every event (phaser, n) with n > local_phase, i.e. it is
/// a member of I(res(phaser, n)) for all such n (Definition 4.1).
struct RegEntry {
  PhaserUid phaser = 0;
  Phase local_phase = 0;

  friend bool operator==(const RegEntry&, const RegEntry&) = default;
};

struct BlockedStatus {
  TaskId task = kInvalidTask;

  /// W(t): the resources this task is blocked on. For PL phasers this is a
  /// singleton {res(p, n)}; locks and compound runtime operations may
  /// contribute several entries.
  std::vector<Resource> waits;

  /// The task's registrations (only signal-capable ones — a wait-only
  /// registration never impedes anyone and is omitted by the runtime layer).
  std::vector<RegEntry> registered;

  friend bool operator==(const BlockedStatus&, const BlockedStatus&) = default;
};

inline std::string to_string(const BlockedStatus& s) {
  std::string out = "t" + std::to_string(s.task) + " waits {";
  for (std::size_t i = 0; i < s.waits.size(); ++i) {
    if (i) out += ", ";
    out += to_string(s.waits[i]);
  }
  out += "} registered {";
  for (std::size_t i = 0; i < s.registered.size(); ++i) {
    if (i) out += ", ";
    out += "p" + std::to_string(s.registered[i].phaser) + ":" +
           std::to_string(s.registered[i].local_phase);
  }
  out += "}";
  return out;
}

}  // namespace armus
