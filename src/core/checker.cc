#include "core/checker.h"

#include <algorithm>
#include <unordered_set>

#include "graph/cycle.h"

namespace armus {

namespace {

using graph::Node;

/// Flags per SCC: true when the component is cyclic (size >= 2 or self-loop).
std::vector<bool> cyclic_flags(const graph::DiGraph& g,
                               const graph::SccResult& scc) {
  std::vector<std::size_t> sizes(scc.count, 0);
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    ++sizes[static_cast<std::size_t>(scc.component[v])];
  }
  std::vector<bool> cyclic(scc.count, false);
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    std::size_t c = static_cast<std::size_t>(scc.component[v]);
    if (sizes[c] >= 2) {
      cyclic[c] = true;
    } else {
      auto edges = g.out(static_cast<Node>(v));
      if (std::find(edges.begin(), edges.end(), static_cast<Node>(v)) !=
          edges.end()) {
        cyclic[c] = true;
      }
    }
  }
  return cyclic;
}

/// True iff a DFS from any of `starts` reaches a node in a cyclic SCC.
bool reaches_cycle(const graph::DiGraph& g, const std::vector<Node>& starts) {
  graph::SccResult scc = graph::strongly_connected_components(g);
  std::vector<bool> cyclic = cyclic_flags(g, scc);
  std::vector<bool> visited(g.num_nodes(), false);
  std::vector<Node> stack;
  for (Node s : starts) {
    if (!visited[static_cast<std::size_t>(s)]) {
      visited[static_cast<std::size_t>(s)] = true;
      stack.push_back(s);
    }
  }
  while (!stack.empty()) {
    Node v = stack.back();
    stack.pop_back();
    if (cyclic[static_cast<std::size_t>(scc.component[v])]) return true;
    for (Node w : g.out(v)) {
      if (!visited[static_cast<std::size_t>(w)]) {
        visited[static_cast<std::size_t>(w)] = true;
        stack.push_back(w);
      }
    }
  }
  return false;
}

}  // namespace

DeadlockReport make_report(const BuiltGraph& built,
                           std::span<const BlockedStatus> snapshot,
                           const std::vector<Node>& cycle_nodes) {
  DeadlockReport report;
  report.model = built.model;

  std::unordered_set<TaskId> task_set;
  std::unordered_set<Resource, ResourceHash> resource_set;

  for (Node v : cycle_nodes) {
    if (built.is_task_node(v)) {
      task_set.insert(built.tasks[static_cast<std::size_t>(v)]);
    } else {
      resource_set.insert(
          built.resources[static_cast<std::size_t>(v) - built.tasks.size()]);
    }
  }

  // Complete the picture from the snapshot: for a WFG cycle add the waited
  // events of the deadlocked tasks; for an SG cycle add the tasks blocked on
  // the cycle's events (those tasks can never proceed).
  for (const BlockedStatus& status : snapshot) {
    if (task_set.count(status.task)) {
      for (const Resource& r : status.waits) resource_set.insert(r);
    } else {
      for (const Resource& r : status.waits) {
        if (resource_set.count(r)) {
          task_set.insert(status.task);
          break;
        }
      }
    }
  }

  report.tasks.assign(task_set.begin(), task_set.end());
  std::sort(report.tasks.begin(), report.tasks.end());
  report.resources.assign(resource_set.begin(), resource_set.end());
  std::sort(report.resources.begin(), report.resources.end());
  return report;
}

CheckResult check_deadlocks(std::span<const BlockedStatus> snapshot,
                            GraphModel model) {
  CheckResult result;
  if (snapshot.empty()) return result;

  BuiltGraph built = build_graph(snapshot, model);
  result.model_used = built.model;
  result.nodes = built.nodes();
  result.edges = built.edges();

  for (const auto& component : graph::cyclic_components(built.graph)) {
    result.reports.push_back(make_report(built, snapshot, component));
  }
  return result;
}

bool task_is_doomed(const BuiltGraph& built,
                    std::span<const BlockedStatus> snapshot, TaskId task) {
  std::vector<Node> starts;
  if (built.model == GraphModel::kSg) {
    // Start from the events the task waits on.
    const BlockedStatus* status = nullptr;
    for (const BlockedStatus& s : snapshot) {
      if (s.task == task) {
        status = &s;
        break;
      }
    }
    if (status == nullptr) return false;
    std::unordered_map<Resource, Node, ResourceHash> ids;
    for (std::size_t v = 0; v < built.resources.size(); ++v) {
      ids.emplace(built.resources[v], static_cast<Node>(v));
    }
    for (const Resource& r : status->waits) {
      auto it = ids.find(r);
      if (it != ids.end()) starts.push_back(it->second);
    }
  } else {
    // WFG / GRG: start from the task's own node.
    for (std::size_t v = 0; v < built.tasks.size(); ++v) {
      if (built.tasks[v] == task) {
        starts.push_back(static_cast<Node>(v));
        break;
      }
    }
  }
  if (starts.empty()) return false;
  return reaches_cycle(built.graph, starts);
}

}  // namespace armus
