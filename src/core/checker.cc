#include "core/checker.h"

#include <algorithm>
#include <unordered_set>

#include "core/observer.h"

#include "graph/cycle.h"

namespace armus {

using graph::Node;

DeadlockReport make_report(const BuiltGraph& built,
                           std::span<const BlockedStatus> snapshot,
                           const std::vector<Node>& cycle_nodes) {
  DeadlockReport report;
  report.model = built.model;

  std::unordered_set<TaskId> task_set;
  std::unordered_set<Resource, ResourceHash> resource_set;

  for (Node v : cycle_nodes) {
    if (built.is_task_node(v)) {
      task_set.insert(built.tasks[static_cast<std::size_t>(v)]);
    } else {
      resource_set.insert(
          built.resources[static_cast<std::size_t>(v) - built.tasks.size()]);
    }
  }

  // Complete the picture from the snapshot: for a WFG cycle add the waited
  // events of the deadlocked tasks; for an SG cycle add the tasks blocked on
  // the cycle's events (those tasks can never proceed).
  for (const BlockedStatus& status : snapshot) {
    if (task_set.count(status.task)) {
      for (const Resource& r : status.waits) resource_set.insert(r);
    } else {
      for (const Resource& r : status.waits) {
        if (resource_set.count(r)) {
          task_set.insert(status.task);
          break;
        }
      }
    }
  }

  report.tasks.assign(task_set.begin(), task_set.end());
  std::sort(report.tasks.begin(), report.tasks.end());
  report.resources.assign(resource_set.begin(), resource_set.end());
  std::sort(report.resources.begin(), report.resources.end());
  return report;
}

CheckResult check_deadlocks(const BuiltGraph& built,
                            std::span<const BlockedStatus> snapshot) {
  CheckResult result;
  result.model_used = built.model;
  result.nodes = built.nodes();
  result.edges = built.edges();
  for (const auto& component : built.analysis().cyclic_components()) {
    result.reports.push_back(make_report(built, snapshot, component));
  }
  return result;
}

CheckResult check_deadlocks(std::span<const BlockedStatus> snapshot,
                            GraphModel model) {
  if (snapshot.empty()) return CheckResult{};
  return check_deadlocks(build_graph(snapshot, model), snapshot);
}

ScanInfo scan_info(std::size_t blocked, const CheckResult& result) {
  ScanInfo info;
  info.blocked = blocked;
  info.nodes = result.nodes;
  info.edges = result.edges;
  info.model_used = result.model_used;
  info.reports = result.reports.size();
  return info;
}

bool task_is_doomed(const BuiltGraph& built,
                    std::span<const BlockedStatus> snapshot, TaskId task) {
  const GraphAnalysis& analysis = built.analysis();
  std::vector<Node> starts;
  if (built.model == GraphModel::kSg) {
    // Start from the events the task waits on.
    const BlockedStatus* status = nullptr;
    for (const BlockedStatus& s : snapshot) {
      if (s.task == task) {
        status = &s;
        break;
      }
    }
    if (status == nullptr) return false;
    for (const Resource& r : status->waits) {
      auto it = analysis.resource_nodes.find(r);
      if (it != analysis.resource_nodes.end()) starts.push_back(it->second);
    }
  } else {
    // WFG / GRG: start from the task's own node.
    auto it = analysis.task_nodes.find(task);
    if (it != analysis.task_nodes.end()) starts.push_back(it->second);
  }
  if (starts.empty()) return false;
  return analysis.reaches_cycle(built.graph, starts);
}

}  // namespace armus
