#pragma once

#include <span>
#include <vector>

#include "core/report.h"

/// The deadlock checker: graph construction + cycle analysis over a snapshot
/// of blocked statuses (steps 2 and 3 of the §4 algorithm).
namespace armus {

struct CheckResult {
  /// One report per independent deadlock (cyclic SCC). Empty = no deadlock.
  std::vector<DeadlockReport> reports;

  /// Model actually used (for kAuto this records the SG/WFG outcome).
  GraphModel model_used = GraphModel::kWfg;

  std::size_t nodes = 0;
  std::size_t edges = 0;

  [[nodiscard]] bool deadlocked() const { return !reports.empty(); }
};

/// Analyses `snapshot` with the given model policy and returns every
/// deadlock found.
CheckResult check_deadlocks(std::span<const BlockedStatus> snapshot,
                            GraphModel model);

/// Analyses an already-built graph (the incremental maintainer's path —
/// core/incremental_checker.h — and any caller holding a BuiltGraph).
/// Cycle enumeration runs off `built.analysis()`, so repeated calls on one
/// graph share a single SCC computation.
CheckResult check_deadlocks(const BuiltGraph& built,
                            std::span<const BlockedStatus> snapshot);

/// True iff `task` can never unblock given this snapshot: its node (WFG) or
/// one of its waited events (SG) reaches a cycle. This is the avoidance-mode
/// test (§5) and mirrors Theorem 4.15's "there exists a cycle reachable
/// from t".
bool task_is_doomed(const BuiltGraph& built,
                    std::span<const BlockedStatus> snapshot, TaskId task);

/// Expands a set of cycle nodes into a DeadlockReport, resolving tasks and
/// resources from the snapshot.
DeadlockReport make_report(const BuiltGraph& built,
                           std::span<const BlockedStatus> snapshot,
                           const std::vector<graph::Node>& cycle_nodes);

}  // namespace armus
