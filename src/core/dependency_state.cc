#include "core/dependency_state.h"

#include <algorithm>

namespace armus {

void DependencyState::set_blocked(BlockedStatus status) {
  Shard& shard = shard_for(status.task);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto [it, inserted] = shard.blocked.try_emplace(status.task);
  // Only a mutation that alters the contents advances the epoch: avoidance
  // rechecks re-publish identical statuses every few milliseconds, and those
  // must not make the periodic scanner rebuild an unchanged graph.
  if (!inserted && it->second == status) return;
  it->second = std::move(status);
  version_.fetch_add(1, std::memory_order_acq_rel);
}

void DependencyState::clear_blocked(TaskId task) {
  Shard& shard = shard_for(task);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.blocked.erase(task) > 0) {
    version_.fetch_add(1, std::memory_order_acq_rel);
  }
}

std::vector<BlockedStatus> DependencyState::snapshot() const {
  std::vector<BlockedStatus> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [task, status] : shard.blocked) out.push_back(status);
  }
  std::sort(out.begin(), out.end(),
            [](const BlockedStatus& a, const BlockedStatus& b) {
              return a.task < b.task;
            });
  return out;
}

std::size_t DependencyState::blocked_count() const {
  std::size_t count = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    count += shard.blocked.size();
  }
  return count;
}

void DependencyState::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (!shard.blocked.empty()) {
      shard.blocked.clear();
      version_.fetch_add(1, std::memory_order_acq_rel);
    }
  }
}

std::uint64_t DependencyState::version() const {
  return version_.load(std::memory_order_acquire);
}

}  // namespace armus
