#include "core/dependency_state.h"

#include <algorithm>

namespace armus {

void DependencyState::set_blocked(BlockedStatus status) {
  Shard& shard = shard_for(status.task);
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.blocked[status.task] = std::move(status);
}

void DependencyState::clear_blocked(TaskId task) {
  Shard& shard = shard_for(task);
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.blocked.erase(task);
}

std::vector<BlockedStatus> DependencyState::snapshot() const {
  std::vector<BlockedStatus> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [task, status] : shard.blocked) out.push_back(status);
  }
  std::sort(out.begin(), out.end(),
            [](const BlockedStatus& a, const BlockedStatus& b) {
              return a.task < b.task;
            });
  return out;
}

std::size_t DependencyState::blocked_count() const {
  std::size_t count = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    count += shard.blocked.size();
  }
  return count;
}

void DependencyState::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.blocked.clear();
  }
}

}  // namespace armus
