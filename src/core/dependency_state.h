#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/state_store.h"

/// The process-local StateStore implementation (§5.1).
///
/// "Maintaining the blocked status is more frequent than checking for
/// deadlocks, so the resource-dependencies are rearranged per task to
/// optimise updates": statuses are keyed by task and sharded across
/// independently locked buckets so that concurrent block/unblock events on
/// different tasks never contend. The checker takes an O(blocked) snapshot.
///
/// One instance may back several Verifiers (VerifierConfig::store): each
/// publishes its tasks' statuses into the shared state, and every checker
/// sees the union — the in-process analogue of the §5.2 global store.
namespace armus {

class DependencyState final : public StateStore {
 public:
  DependencyState() = default;

  void set_blocked(BlockedStatus status) override;
  void clear_blocked(TaskId task) override;
  [[nodiscard]] std::vector<BlockedStatus> snapshot() const override;
  [[nodiscard]] std::size_t blocked_count() const override;
  void clear() override;

  /// Change epoch (always versioned, starts at 1): bumped only by mutations
  /// that actually alter the contents, so an avoidance-mode task
  /// re-publishing its unchanged status keeps the epoch stable and periodic
  /// scans stay skippable.
  [[nodiscard]] std::uint64_t version() const override;

 private:
  static constexpr std::size_t kShards = 16;

  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<TaskId, BlockedStatus> blocked;
  };

  Shard& shard_for(TaskId task) { return shards_[task % kShards]; }
  const Shard& shard_for(TaskId task) const { return shards_[task % kShards]; }

  std::array<Shard, kShards> shards_;
  std::atomic<std::uint64_t> version_{1};
};

}  // namespace armus
