#pragma once

#include <array>
#include <cstddef>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/blocked_status.h"

/// The resource-dependency store of the verification library (§5.1).
///
/// "Maintaining the blocked status is more frequent than checking for
/// deadlocks, so the resource-dependencies are rearranged per task to
/// optimise updates": statuses are keyed by task and sharded across
/// independently locked buckets so that concurrent block/unblock events on
/// different tasks never contend. The checker takes an O(blocked) snapshot.
namespace armus {

class DependencyState {
 public:
  DependencyState() = default;
  DependencyState(const DependencyState&) = delete;
  DependencyState& operator=(const DependencyState&) = delete;

  /// Publishes (or replaces) the blocked status of `status.task`.
  void set_blocked(BlockedStatus status);

  /// Removes the blocked status of `task` (no-op if absent).
  void clear_blocked(TaskId task);

  /// Copies all current blocked statuses, sorted by task id so downstream
  /// graph construction (and tests) are deterministic.
  [[nodiscard]] std::vector<BlockedStatus> snapshot() const;

  /// Number of currently blocked tasks.
  [[nodiscard]] std::size_t blocked_count() const;

  /// Removes every status (used between test cases / site restarts).
  void clear();

 private:
  static constexpr std::size_t kShards = 16;

  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<TaskId, BlockedStatus> blocked;
  };

  Shard& shard_for(TaskId task) { return shards_[task % kShards]; }
  const Shard& shard_for(TaskId task) const { return shards_[task % kShards]; }

  std::array<Shard, kShards> shards_;
};

}  // namespace armus
