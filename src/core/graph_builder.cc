#include "core/graph_builder.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace armus {

namespace {

using graph::Node;

/// De-duplicates directed edges during construction. Node ids fit in 32 bits
/// (a snapshot never holds 2^32 tasks), so an edge packs into one word.
class EdgeSet {
 public:
  /// `expected_tasks` sizes the hash table up front: blocked tasks
  /// contribute a few edges each in the common (sparse) shapes, so one
  /// rehash-free reservation covers the whole build.
  explicit EdgeSet(std::size_t expected_tasks) {
    seen_.reserve(expected_tasks * 2);
  }

  bool insert(Node u, Node v) {
    std::uint64_t key = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u))
                         << 32) |
                        static_cast<std::uint32_t>(v);
    return seen_.insert(key).second;
  }
  [[nodiscard]] std::size_t size() const { return seen_.size(); }

 private:
  std::unordered_set<std::uint64_t> seen_;
};

/// Index over a snapshot: which resources are waited on, grouped by phaser
/// with phases sorted ascending — so "all waited events (p, n) with n > m"
/// is a binary search plus a suffix scan.
struct WaitIndex {
  struct WaitedEvent {
    Phase phase;
    Node resource_node;  // dense id of the resource (SG/GRG numbering)
  };

  std::unordered_map<PhaserUid, std::vector<WaitedEvent>> by_phaser;
  std::vector<Resource> resources;                      // node id -> resource
  std::unordered_map<Resource, Node, ResourceHash> ids; // resource -> node id

  Node intern(const Resource& r) {
    auto [it, inserted] = ids.try_emplace(r, static_cast<Node>(resources.size()));
    if (inserted) resources.push_back(r);
    return it->second;
  }

  explicit WaitIndex(std::span<const BlockedStatus> snapshot) {
    std::size_t total_waits = 0;
    for (const BlockedStatus& status : snapshot) total_waits += status.waits.size();
    ids.reserve(total_waits);
    resources.reserve(total_waits);
    by_phaser.reserve(total_waits);
    for (const BlockedStatus& status : snapshot) {
      for (const Resource& r : status.waits) {
        Node node = intern(r);
        by_phaser[r.phaser].push_back({r.phase, node});
      }
    }
    for (auto& [phaser, events] : by_phaser) {
      std::sort(events.begin(), events.end(),
                [](const WaitedEvent& a, const WaitedEvent& b) {
                  return a.phase < b.phase;
                });
      events.erase(std::unique(events.begin(), events.end(),
                               [](const WaitedEvent& a, const WaitedEvent& b) {
                                 return a.resource_node == b.resource_node;
                               }),
                   events.end());
    }
  }

  /// Invokes `fn(resource_node)` for every waited event on `phaser` with a
  /// phase strictly greater than `local_phase` — exactly the events the
  /// registration (phaser, local_phase) impedes.
  template <typename Fn>
  void for_each_impeded(PhaserUid phaser, Phase local_phase, Fn&& fn) const {
    auto it = by_phaser.find(phaser);
    if (it == by_phaser.end()) return;
    const auto& events = it->second;
    auto first = std::upper_bound(
        events.begin(), events.end(), local_phase,
        [](Phase value, const WaitedEvent& e) { return value < e.phase; });
    for (; first != events.end(); ++first) fn(first->resource_node);
  }
};

/// Maps tasks in the snapshot to dense WFG node ids [0, |snapshot|).
std::unordered_map<TaskId, Node> task_nodes(std::span<const BlockedStatus> snapshot) {
  std::unordered_map<TaskId, Node> ids;
  ids.reserve(snapshot.size());
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    ids.emplace(snapshot[i].task, static_cast<Node>(i));
  }
  return ids;
}

/// Shared SG construction. When `edge_budget_per_task >= 0`, aborts (returns
/// false) as soon as unique edges exceed budget * tasks-processed (the §5.1
/// adaptive threshold with budget = 2).
bool build_sg_into(std::span<const BlockedStatus> snapshot, BuiltGraph& out,
                   long edge_budget_per_task) {
  WaitIndex index(snapshot);
  out.model = GraphModel::kSg;
  out.resources = index.resources;
  out.graph = graph::DiGraph(index.resources.size());
  EdgeSet edges(snapshot.size());

  std::size_t tasks_processed = 0;
  std::vector<Node> waited_nodes;  // hoisted: one allocation for the build
  for (const BlockedStatus& status : snapshot) {
    ++tasks_processed;
    // Edges (r1, r2) for every r1 impeded by this task and r2 it waits on.
    waited_nodes.clear();
    waited_nodes.reserve(status.waits.size());
    for (const Resource& r : status.waits) waited_nodes.push_back(index.ids.at(r));

    for (const RegEntry& reg : status.registered) {
      index.for_each_impeded(reg.phaser, reg.local_phase, [&](Node impeded) {
        for (Node waited : waited_nodes) {
          if (edges.insert(impeded, waited)) out.graph.add_edge(impeded, waited);
        }
      });
    }
    if (edge_budget_per_task >= 0 &&
        edges.size() > static_cast<std::size_t>(edge_budget_per_task) * tasks_processed) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string to_string(GraphModel model) {
  switch (model) {
    case GraphModel::kWfg: return "wfg";
    case GraphModel::kSg: return "sg";
    case GraphModel::kGrg: return "grg";
    case GraphModel::kAuto: return "auto";
  }
  return "?";
}

GraphModel graph_model_from_string(const std::string& name) {
  if (name == "wfg") return GraphModel::kWfg;
  if (name == "sg") return GraphModel::kSg;
  if (name == "grg") return GraphModel::kGrg;
  if (name == "auto") return GraphModel::kAuto;
  throw std::invalid_argument("unknown graph model: '" + name + "'");
}

std::string BuiltGraph::label(graph::Node v) const {
  if (is_task_node(v)) return "t" + std::to_string(tasks[static_cast<std::size_t>(v)]);
  return to_string(resources[static_cast<std::size_t>(v) - tasks.size()]);
}

std::vector<std::vector<Node>> GraphAnalysis::cyclic_components() const {
  std::vector<std::vector<Node>> members(scc.count);
  for (std::size_t v = 0; v < scc.component.size(); ++v) {
    std::size_t c = static_cast<std::size_t>(scc.component[v]);
    if (cyclic[c]) members[c].push_back(static_cast<Node>(v));
  }
  std::vector<std::vector<Node>> out;
  for (auto& group : members) {
    if (!group.empty()) out.push_back(std::move(group));
  }
  return out;
}

bool GraphAnalysis::reaches_cycle(const graph::DiGraph& g,
                                  std::span<const Node> starts) const {
  std::vector<bool> visited(g.num_nodes(), false);
  std::vector<Node> stack;
  for (Node s : starts) {
    if (!visited[static_cast<std::size_t>(s)]) {
      visited[static_cast<std::size_t>(s)] = true;
      stack.push_back(s);
    }
  }
  while (!stack.empty()) {
    Node v = stack.back();
    stack.pop_back();
    if (cyclic[static_cast<std::size_t>(scc.component[v])]) return true;
    for (Node w : g.out(v)) {
      if (!visited[static_cast<std::size_t>(w)]) {
        visited[static_cast<std::size_t>(w)] = true;
        stack.push_back(w);
      }
    }
  }
  return false;
}

const GraphAnalysis& BuiltGraph::analysis() const {
  if (analysis_) return *analysis_;
  auto computed = std::make_shared<GraphAnalysis>();
  computed->scc = graph::strongly_connected_components(graph);

  // Per-SCC cyclic flags: size >= 2, or a singleton carrying a self-loop.
  std::vector<std::size_t> sizes(computed->scc.count, 0);
  for (std::size_t v = 0; v < graph.num_nodes(); ++v) {
    ++sizes[static_cast<std::size_t>(computed->scc.component[v])];
  }
  computed->cyclic.assign(computed->scc.count, false);
  for (std::size_t v = 0; v < graph.num_nodes(); ++v) {
    std::size_t c = static_cast<std::size_t>(computed->scc.component[v]);
    if (sizes[c] >= 2) {
      computed->cyclic[c] = true;
    } else {
      auto edges = graph.out(static_cast<Node>(v));
      if (std::find(edges.begin(), edges.end(), static_cast<Node>(v)) !=
          edges.end()) {
        computed->cyclic[c] = true;
      }
    }
  }

  computed->task_nodes.reserve(tasks.size());
  for (std::size_t v = 0; v < tasks.size(); ++v) {
    computed->task_nodes.emplace(tasks[v], static_cast<Node>(v));
  }
  computed->resource_nodes.reserve(resources.size());
  for (std::size_t v = 0; v < resources.size(); ++v) {
    // Resource nodes follow the task nodes (for the SG, tasks is empty and
    // the offset is zero).
    computed->resource_nodes.emplace(resources[v],
                                     static_cast<Node>(v + tasks.size()));
  }

  analysis_ = std::move(computed);
  return *analysis_;
}

BuiltGraph build_wfg(std::span<const BlockedStatus> snapshot) {
  BuiltGraph out;
  out.model = GraphModel::kWfg;
  out.tasks.reserve(snapshot.size());
  for (const BlockedStatus& status : snapshot) out.tasks.push_back(status.task);
  out.graph = graph::DiGraph(snapshot.size());

  WaitIndex index(snapshot);
  auto nodes = task_nodes(snapshot);

  // Waiters per waited resource node: who waits on each event.
  std::vector<std::vector<Node>> waiters(index.resources.size());
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    for (const Resource& r : snapshot[i].waits) {
      waiters[static_cast<std::size_t>(index.ids.at(r))].push_back(
          static_cast<Node>(i));
    }
  }

  EdgeSet edges(snapshot.size());
  for (const BlockedStatus& status : snapshot) {
    Node impeder = nodes.at(status.task);
    for (const RegEntry& reg : status.registered) {
      index.for_each_impeded(reg.phaser, reg.local_phase, [&](Node impeded_res) {
        for (Node waiter : waiters[static_cast<std::size_t>(impeded_res)]) {
          if (edges.insert(waiter, impeder)) out.graph.add_edge(waiter, impeder);
        }
      });
    }
  }
  return out;
}

BuiltGraph build_sg(std::span<const BlockedStatus> snapshot) {
  BuiltGraph out;
  build_sg_into(snapshot, out, /*edge_budget_per_task=*/-1);
  return out;
}

BuiltGraph build_grg(std::span<const BlockedStatus> snapshot) {
  BuiltGraph out;
  out.model = GraphModel::kGrg;
  out.tasks.reserve(snapshot.size());
  for (const BlockedStatus& status : snapshot) out.tasks.push_back(status.task);

  WaitIndex index(snapshot);
  out.resources = index.resources;
  out.graph = graph::DiGraph(snapshot.size() + index.resources.size());
  const Node resource_base = static_cast<Node>(snapshot.size());

  EdgeSet edges(snapshot.size());
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    const BlockedStatus& status = snapshot[i];
    Node task_node = static_cast<Node>(i);
    // (t, r) for every r in W(t).
    for (const Resource& r : status.waits) {
      Node rn = resource_base + index.ids.at(r);
      if (edges.insert(task_node, rn)) out.graph.add_edge(task_node, rn);
    }
    // (r, t) for every waited r impeded by t.
    for (const RegEntry& reg : status.registered) {
      index.for_each_impeded(reg.phaser, reg.local_phase, [&](Node impeded) {
        Node rn = resource_base + impeded;
        if (edges.insert(rn, task_node)) out.graph.add_edge(rn, task_node);
      });
    }
  }
  return out;
}

BuiltGraph build_auto(std::span<const BlockedStatus> snapshot) {
  BuiltGraph out;
  if (build_sg_into(snapshot, out, /*edge_budget_per_task=*/2)) return out;
  return build_wfg(snapshot);
}

BuiltGraph build_graph(std::span<const BlockedStatus> snapshot, GraphModel model) {
  switch (model) {
    case GraphModel::kWfg: return build_wfg(snapshot);
    case GraphModel::kSg: return build_sg(snapshot);
    case GraphModel::kGrg: return build_grg(snapshot);
    case GraphModel::kAuto: return build_auto(snapshot);
  }
  throw std::logic_error("unreachable graph model");
}

}  // namespace armus
