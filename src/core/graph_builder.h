#pragma once

#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/blocked_status.h"
#include "graph/cycle.h"
#include "graph/digraph.h"

/// Construction of the three graph models of §4.2 from a snapshot of blocked
/// statuses, plus the adaptive SG-first selection of §5.1.
///
/// Edges follow Definitions 4.2–4.4 with `t ∈ I(res(p, n))` decided locally:
/// a blocked task t with registration (p, m) impedes event (p, n) iff m < n
/// (Lemma 4.9). Only *waited* resources become SG/GRG nodes — an event no
/// task waits on can never lie on a cycle, so excluding it changes no
/// verification outcome while keeping graphs small.
namespace armus {

/// Which graph model the checker uses. kAuto implements §5.1: build the SG
/// first, fall back to the WFG when at any point the number of SG edges
/// exceeds twice the number of tasks processed so far.
enum class GraphModel { kWfg, kSg, kGrg, kAuto };

std::string to_string(GraphModel model);

/// Parses "wfg" / "sg" / "grg" / "auto" (used by ARMUS_GRAPH_MODEL).
GraphModel graph_model_from_string(const std::string& name);

/// Cycle analysis of a BuiltGraph, computed once and reused: SCCs, the
/// per-component cyclic flags, and the payload→node indices. Avoidance-mode
/// doom checks used to rebuild all three per query (SCC per reaches-cycle
/// call, a resource→node map per SG query, a linear task scan per WFG
/// query); with the cache a doom check is one indexed lookup plus one DFS —
/// O(reachability) per query.
struct GraphAnalysis {
  graph::SccResult scc;
  /// Per SCC: true when the component is cyclic (size >= 2 or a self-loop).
  std::vector<bool> cyclic;
  /// Node id of each task payload (WFG and GRG task nodes).
  std::unordered_map<TaskId, graph::Node> task_nodes;
  /// Node id of each resource payload (SG and GRG resource nodes).
  std::unordered_map<Resource, graph::Node, ResourceHash> resource_nodes;

  /// The members of every cyclic SCC (the independent deadlocks).
  [[nodiscard]] std::vector<std::vector<graph::Node>> cyclic_components() const;

  /// True iff a DFS over `g` from any of `starts` reaches a cyclic SCC.
  [[nodiscard]] bool reaches_cycle(const graph::DiGraph& g,
                                   std::span<const graph::Node> starts) const;
};

/// A constructed graph plus the payload mapping from dense node ids back to
/// tasks/resources. For the WFG all nodes are tasks; for the SG all nodes
/// are resources; for the GRG task nodes come first, then resource nodes.
struct BuiltGraph {
  graph::DiGraph graph;
  GraphModel model = GraphModel::kWfg;

  /// Payload of task nodes: `tasks[v]` for WFG nodes, and for GRG nodes
  /// v < tasks.size().
  std::vector<TaskId> tasks;

  /// Payload of resource nodes: `resources[v]` for SG nodes, and for GRG
  /// nodes `resources[v - tasks.size()]`.
  std::vector<Resource> resources;

  [[nodiscard]] std::size_t edges() const { return graph.num_edges(); }
  [[nodiscard]] std::size_t nodes() const { return graph.num_nodes(); }

  /// True iff GRG node `v` is a task node.
  [[nodiscard]] bool is_task_node(graph::Node v) const {
    return static_cast<std::size_t>(v) < tasks.size();
  }

  /// Display label for node `v` (task or resource).
  [[nodiscard]] std::string label(graph::Node v) const;

  /// The cycle analysis of this graph, computed lazily on first use and
  /// cached (the graph is immutable once built). Not internally
  /// synchronised: callers sharing one BuiltGraph across threads hold their
  /// own lock, as the Verifier does.
  [[nodiscard]] const GraphAnalysis& analysis() const;

 private:
  mutable std::shared_ptr<const GraphAnalysis> analysis_;
};

/// Wait-For Graph (Definition 4.2): edge t1 -> t2 iff some r in W(t1) is
/// impeded by t2.
BuiltGraph build_wfg(std::span<const BlockedStatus> snapshot);

/// State Graph (Definition 4.3): edge r1 -> r2 iff some task t impedes r1
/// and waits on r2.
BuiltGraph build_sg(std::span<const BlockedStatus> snapshot);

/// General Resource Graph (Definition 4.4): bipartite task/resource edges.
BuiltGraph build_grg(std::span<const BlockedStatus> snapshot);

/// Adaptive selection (§5.1): SG-first with the `edges > 2 x tasks processed`
/// threshold, falling back to the WFG.
BuiltGraph build_auto(std::span<const BlockedStatus> snapshot);

/// Builds the graph for `model` (kAuto dispatches to build_auto).
BuiltGraph build_graph(std::span<const BlockedStatus> snapshot, GraphModel model);

}  // namespace armus
