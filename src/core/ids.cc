#include "core/ids.h"

#include <atomic>

namespace armus {

namespace {
std::atomic<TaskId> g_next_task{1};
std::atomic<PhaserUid> g_next_phaser{1};
}  // namespace

TaskId fresh_task_id() { return g_next_task.fetch_add(1, std::memory_order_relaxed); }

PhaserUid fresh_phaser_uid() {
  return g_next_phaser.fetch_add(1, std::memory_order_relaxed);
}

void seed_task_ids(TaskId first) {
  TaskId current = g_next_task.load(std::memory_order_relaxed);
  while (current < first &&
         !g_next_task.compare_exchange_weak(current, first,
                                            std::memory_order_relaxed)) {
  }
}

}  // namespace armus
