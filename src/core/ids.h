#pragma once

#include <cstdint>

/// Process-wide identifiers for tasks and phasers.
///
/// Task names `t` and phaser names `p` from the PL formalisation (§3) map to
/// 64-bit ids. Ids are never reused; allocation is a relaxed atomic fetch-add
/// so id creation never serialises task spawning.
namespace armus {

using TaskId = std::uint64_t;
using PhaserUid = std::uint64_t;

/// A phase number — the timestamp of a synchronisation event in the sense of
/// Lamport logical clocks (§2.2, "Event-based concurrency dependencies").
using Phase = std::uint64_t;

inline constexpr TaskId kInvalidTask = 0;

/// Allocates a fresh, never-reused task id (ids start at 1).
TaskId fresh_task_id();

/// Allocates a fresh, never-reused phaser id (ids start at 1).
PhaserUid fresh_phaser_uid();

/// Raises the task-id counter to at least `first` (never lowers it). A
/// multi-process deployment calls this once at startup with a per-site
/// base (e.g. 1 + site_id * 2^32) so task ids are disjoint across the
/// processes publishing into one shared store — ids are allocated
/// per-process, and the merged global snapshot must never conflate two
/// sites' tasks.
void seed_task_ids(TaskId first);

}  // namespace armus
