#include "core/incremental_checker.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <vector>

namespace armus {

namespace {

using graph::Node;

/// Sorted multiset of (phase, task) registration occurrences on one phaser:
/// "every occurrence with phase < n" is the range [begin, lower_bound(n)).
using ImpederSet = std::multiset<std::pair<Phase, TaskId>>;

}  // namespace

/// One incrementally maintained graph. All three §4.2 models share the same
/// machinery: interned node ids with free lists (stable while a payload is
/// live), the wait/impeder indices, and a counted edge multiset — an edge
/// exists while at least one (task occurrence, wait/registration occurrence)
/// pair implies it, so add_task/remove_task are exact inverses.
class IncrementalChecker::Core {
 public:
  explicit Core(GraphModel model) : model_(model) {}

  using Current = std::map<TaskId, BlockedStatus>;

  void add_task(const BlockedStatus& s, const Current& current) {
    switch (model_) {
      case GraphModel::kSg: add_sg(s, current); return;
      case GraphModel::kWfg: add_wfg(s); return;
      case GraphModel::kGrg: add_grg(s); return;
      case GraphModel::kAuto: break;
    }
  }

  void remove_task(const BlockedStatus& s, const Current& current) {
    switch (model_) {
      case GraphModel::kSg: remove_sg(s, current); return;
      case GraphModel::kWfg: remove_wfg(s); return;
      case GraphModel::kGrg: remove_grg(s); return;
      case GraphModel::kAuto: break;
    }
  }

  void clear() {
    task_ids_.clear();
    task_slots_.clear();
    task_free_.clear();
    resource_ids_.clear();
    resource_slots_.clear();
    resource_free_.clear();
    edges_.clear();
    waited_count_.clear();
    waited_by_phaser_.clear();
    impeders_.clear();
    waiters_.clear();
  }

  [[nodiscard]] std::size_t unique_edges() const { return edges_.size(); }

  /// Dense, deterministic materialisation: task nodes sorted by id first,
  /// resource nodes sorted by (phaser, phase) after — the same payload sets
  /// (and therefore the same CheckResult) as the from-scratch builder.
  [[nodiscard]] BuiltGraph materialise() const {
    BuiltGraph out;
    out.model = model_;

    out.tasks.reserve(task_ids_.size());
    for (const auto& [task, id] : task_ids_) out.tasks.push_back(task);
    std::sort(out.tasks.begin(), out.tasks.end());

    out.resources.reserve(resource_ids_.size());
    for (const auto& [resource, id] : resource_ids_) out.resources.push_back(resource);
    std::sort(out.resources.begin(), out.resources.end());

    std::vector<Node> task_dense(task_slots_.size(), -1);
    for (std::size_t i = 0; i < out.tasks.size(); ++i) {
      task_dense[task_ids_.at(out.tasks[i])] = static_cast<Node>(i);
    }
    std::vector<Node> resource_dense(resource_slots_.size(), -1);
    for (std::size_t i = 0; i < out.resources.size(); ++i) {
      resource_dense[resource_ids_.at(out.resources[i])] =
          static_cast<Node>(i + out.tasks.size());
    }

    out.graph = graph::DiGraph(out.tasks.size() + out.resources.size());
    std::vector<std::pair<Node, Node>> edges;
    edges.reserve(edges_.size());
    for (const auto& [key, count] : edges_) {
      std::uint32_t uk = static_cast<std::uint32_t>(key >> 32);
      std::uint32_t vk = static_cast<std::uint32_t>(key);
      edges.emplace_back(dense_of(uk, task_dense, resource_dense),
                         dense_of(vk, task_dense, resource_dense));
    }
    std::sort(edges.begin(), edges.end());
    for (const auto& [u, v] : edges) out.graph.add_edge(u, v);
    return out;
  }

 private:
  /// Tag bit distinguishing resource ids from task ids inside edge keys
  /// (the GRG mixes both kinds in one graph).
  static constexpr std::uint32_t kResourceTag = 0x80000000u;

  static Node dense_of(std::uint32_t key, const std::vector<Node>& task_dense,
                       const std::vector<Node>& resource_dense) {
    return (key & kResourceTag) ? resource_dense[key & ~kResourceTag]
                                : task_dense[key];
  }

  // --- node interning (persistent ids, reused via free lists) -------------

  std::uint32_t acquire_task(TaskId task) {
    std::uint32_t id;
    if (task_free_.empty()) {
      id = static_cast<std::uint32_t>(task_slots_.size());
      task_slots_.push_back(task);
    } else {
      id = task_free_.back();
      task_free_.pop_back();
      task_slots_[id] = task;
    }
    task_ids_.emplace(task, id);
    return id;
  }

  void release_task(TaskId task) {
    auto it = task_ids_.find(task);
    task_free_.push_back(it->second);
    task_ids_.erase(it);
  }

  std::uint32_t acquire_resource(const Resource& r) {
    std::uint32_t id;
    if (resource_free_.empty()) {
      id = static_cast<std::uint32_t>(resource_slots_.size());
      resource_slots_.push_back(r);
    } else {
      id = resource_free_.back();
      resource_free_.pop_back();
      resource_slots_[id] = r;
    }
    resource_ids_.emplace(r, id);
    return id;
  }

  void release_resource(const Resource& r) {
    auto it = resource_ids_.find(r);
    resource_free_.push_back(it->second);
    resource_ids_.erase(it);
  }

  [[nodiscard]] std::uint32_t task_key(TaskId task) const {
    return task_ids_.at(task);
  }
  [[nodiscard]] std::uint32_t resource_key(const Resource& r) const {
    return resource_ids_.at(r) | kResourceTag;
  }

  // --- counted edges -------------------------------------------------------

  static std::uint64_t pack(std::uint32_t u, std::uint32_t v) {
    return (static_cast<std::uint64_t>(u) << 32) | v;
  }

  void add_edge(std::uint32_t u, std::uint32_t v) { ++edges_[pack(u, v)]; }

  void remove_edge(std::uint32_t u, std::uint32_t v) {
    auto it = edges_.find(pack(u, v));
    if (--it->second == 0) edges_.erase(it);
  }

  // --- index helpers -------------------------------------------------------

  /// Invokes fn(task) once per registration occurrence on `phaser` with a
  /// local phase strictly below `phase` — the tasks impeding event
  /// (phaser, phase), one call per occurrence.
  template <typename Fn>
  void for_each_impeder(PhaserUid phaser, Phase phase, Fn&& fn) const {
    auto it = impeders_.find(phaser);
    if (it == impeders_.end()) return;
    auto end = it->second.lower_bound({phase, 0});
    for (auto imp = it->second.begin(); imp != end; ++imp) fn(imp->second);
  }

  /// Invokes fn(resource) for every currently waited event on `phaser` with
  /// a phase strictly greater than `local_phase` — the events the
  /// registration (phaser, local_phase) impedes.
  template <typename Fn>
  void for_each_impeded(PhaserUid phaser, Phase local_phase, Fn&& fn) const {
    auto it = waited_by_phaser_.find(phaser);
    if (it == waited_by_phaser_.end()) return;
    for (auto ev = it->second.upper_bound(local_phase); ev != it->second.end();
         ++ev) {
      fn(ev->second);
    }
  }

  void index_wait(const Resource& r) {
    waited_by_phaser_[r.phaser].emplace(r.phase, r);
  }

  void unindex_wait(const Resource& r) {
    auto it = waited_by_phaser_.find(r.phaser);
    it->second.erase(r.phase);
    if (it->second.empty()) waited_by_phaser_.erase(it);
  }

  void index_reg(const RegEntry& reg, TaskId task) {
    impeders_[reg.phaser].insert({reg.local_phase, task});
  }

  void unindex_reg(const RegEntry& reg, TaskId task) {
    auto it = impeders_.find(reg.phaser);
    it->second.erase(it->second.find({reg.local_phase, task}));
    if (it->second.empty()) impeders_.erase(it);
  }

  // --- SG: edges (r1, r2) — r1 impeded by a task that waits on r2 ---------
  //
  // Contribution accounting: edge (e, w) carries one count per
  // (registration occurrence impeding e, wait occurrence w) pair over live
  // tasks, gated on e being waited. A pair is added at the later of "the
  // impeding task appears" / "e enters the wait index", and removed at the
  // earlier of the mirrored events — add and remove below are exact
  // inverses of each other.

  void add_sg(const BlockedStatus& s, const Current& current) {
    // Waits into the index first: an event entering the index picks up the
    // contributions of every existing impeder. s itself is not registered
    // yet, so its own contributions cannot be double counted.
    for (const Resource& r : s.waits) {
      if (waited_count_[r]++ == 0) {
        std::uint32_t rn = acquire_resource(r) | kResourceTag;
        index_wait(r);
        for_each_impeder(r.phaser, r.phase, [&](TaskId v) {
          for (const Resource& w : current.at(v).waits) {
            add_edge(rn, resource_key(w));
          }
        });
      }
    }
    // Own registrations: every impeded waited event (including s's own
    // waits) gains edges to s's waits.
    for (const RegEntry& reg : s.registered) {
      index_reg(reg, s.task);
      for_each_impeded(reg.phaser, reg.local_phase, [&](const Resource& e) {
        std::uint32_t en = resource_key(e);
        for (const Resource& w : s.waits) add_edge(en, resource_key(w));
      });
    }
  }

  void remove_sg(const BlockedStatus& s, const Current& current) {
    for (const RegEntry& reg : s.registered) {
      for_each_impeded(reg.phaser, reg.local_phase, [&](const Resource& e) {
        std::uint32_t en = resource_key(e);
        for (const Resource& w : s.waits) remove_edge(en, resource_key(w));
      });
      unindex_reg(reg, s.task);
    }
    for (const Resource& r : s.waits) {
      auto count = waited_count_.find(r);
      if (--count->second == 0) {
        std::uint32_t rn = resource_key(r);
        for_each_impeder(r.phaser, r.phase, [&](TaskId v) {
          for (const Resource& w : current.at(v).waits) {
            remove_edge(rn, resource_key(w));
          }
        });
        unindex_wait(r);
        waited_count_.erase(count);
        release_resource(r);
      }
    }
  }

  // --- WFG: edges (t1, t2) — t1 waits on an event t2 impedes --------------

  void add_wfg(const BlockedStatus& s) {
    std::uint32_t un = acquire_task(s.task);
    // As waiter: one contribution per (wait occurrence, existing
    // registration occurrence impeding it).
    for (const Resource& r : s.waits) {
      for_each_impeder(r.phaser, r.phase,
                       [&](TaskId v) { add_edge(un, task_key(v)); });
      if (waited_count_[r]++ == 0) index_wait(r);
      waiters_[r].insert(s.task);
    }
    // As impeder: one contribution per (registration occurrence, existing
    // wait occurrence it impedes) — s's own waits are indexed by now, so a
    // task impeding its own wait yields its self-loop here, exactly once.
    for (const RegEntry& reg : s.registered) {
      index_reg(reg, s.task);
      for_each_impeded(reg.phaser, reg.local_phase, [&](const Resource& e) {
        for (TaskId t : waiters_.at(e)) add_edge(task_key(t), un);
      });
    }
  }

  void remove_wfg(const BlockedStatus& s) {
    std::uint32_t un = task_key(s.task);
    for (const RegEntry& reg : s.registered) {
      for_each_impeded(reg.phaser, reg.local_phase, [&](const Resource& e) {
        for (TaskId t : waiters_.at(e)) remove_edge(task_key(t), un);
      });
      unindex_reg(reg, s.task);
    }
    for (const Resource& r : s.waits) {
      for_each_impeder(r.phaser, r.phase,
                       [&](TaskId v) { remove_edge(un, task_key(v)); });
      auto ws = waiters_.find(r);
      ws->second.erase(ws->second.find(s.task));
      if (ws->second.empty()) waiters_.erase(ws);
      auto count = waited_count_.find(r);
      if (--count->second == 0) {
        unindex_wait(r);
        waited_count_.erase(count);
      }
    }
    release_task(s.task);
  }

  // --- GRG: (t, r) for r in W(t); (r, t) for waited r impeded by t --------

  void add_grg(const BlockedStatus& s) {
    std::uint32_t un = acquire_task(s.task);
    for (const Resource& r : s.waits) {
      if (waited_count_[r]++ == 0) {
        std::uint32_t rn = acquire_resource(r) | kResourceTag;
        index_wait(r);
        for_each_impeder(r.phaser, r.phase,
                         [&](TaskId v) { add_edge(rn, task_key(v)); });
      }
      add_edge(un, resource_key(r));
    }
    for (const RegEntry& reg : s.registered) {
      index_reg(reg, s.task);
      for_each_impeded(reg.phaser, reg.local_phase, [&](const Resource& e) {
        add_edge(resource_key(e), un);
      });
    }
  }

  void remove_grg(const BlockedStatus& s) {
    std::uint32_t un = task_key(s.task);
    for (const RegEntry& reg : s.registered) {
      for_each_impeded(reg.phaser, reg.local_phase, [&](const Resource& e) {
        remove_edge(resource_key(e), un);
      });
      unindex_reg(reg, s.task);
    }
    for (const Resource& r : s.waits) {
      remove_edge(un, resource_key(r));
      auto count = waited_count_.find(r);
      if (--count->second == 0) {
        std::uint32_t rn = resource_key(r);
        for_each_impeder(r.phaser, r.phase,
                         [&](TaskId v) { remove_edge(rn, task_key(v)); });
        unindex_wait(r);
        waited_count_.erase(count);
        release_resource(r);
      }
    }
    release_task(s.task);
  }

  GraphModel model_;

  std::unordered_map<TaskId, std::uint32_t> task_ids_;
  std::vector<TaskId> task_slots_;  ///< persistent id -> payload
  std::vector<std::uint32_t> task_free_;
  std::unordered_map<Resource, std::uint32_t, ResourceHash> resource_ids_;
  std::vector<Resource> resource_slots_;
  std::vector<std::uint32_t> resource_free_;

  /// Edge key (packed persistent node ids) -> contribution count.
  std::unordered_map<std::uint64_t, std::uint32_t> edges_;

  /// How many live wait occurrences reference each event (> 0 while the
  /// event is in the wait index / interned as a node).
  std::unordered_map<Resource, std::uint32_t, ResourceHash> waited_count_;
  /// Waited events per phaser, phase-ordered (incremental WaitIndex).
  std::unordered_map<PhaserUid, std::map<Phase, Resource>> waited_by_phaser_;
  /// Registration occurrences per phaser, phase-ordered.
  std::unordered_map<PhaserUid, ImpederSet> impeders_;
  /// Wait occurrences per event (WFG only: its edges target waiter tasks).
  std::unordered_map<Resource, std::multiset<TaskId>, ResourceHash> waiters_;
};

IncrementalChecker::IncrementalChecker(Config config) : config_(config) {
  GraphModel primary = config_.model == GraphModel::kAuto ? GraphModel::kSg
                                                          : config_.model;
  primary_ = std::make_unique<Core>(primary);
  if (config_.model == GraphModel::kAuto) {
    secondary_ = std::make_unique<Core>(GraphModel::kWfg);
  }
}

IncrementalChecker::~IncrementalChecker() = default;

const IncrementalChecker::Core& IncrementalChecker::chosen_core() const {
  if (config_.model != GraphModel::kAuto) return *primary_;
  // §5.1 density rule on the final counts: keep the SG while it stays
  // within 2 edges per blocked task, otherwise report from the WFG.
  return primary_->unique_edges() <= 2 * current_.size() ? *primary_
                                                         : *secondary_;
}

CheckResult IncrementalChecker::check(std::span<const BlockedStatus> snapshot) {
  ++stats_.checks;

  // Task-level delta between the maintained state and the new snapshot
  // (both sorted by task id).
  std::vector<const BlockedStatus*> upserts;
  std::vector<TaskId> removals;
  auto it = current_.begin();
  for (const BlockedStatus& s : snapshot) {
    while (it != current_.end() && it->first < s.task) {
      removals.push_back(it->first);
      ++it;
    }
    if (it != current_.end() && it->first == s.task) {
      if (!(it->second == s)) upserts.push_back(&s);
      ++it;
    } else {
      upserts.push_back(&s);
    }
  }
  for (; it != current_.end(); ++it) removals.push_back(it->first);

  if (upserts.empty() && removals.empty() && has_result_) {
    ++stats_.unchanged_hits;
    return last_result_;
  }

  const std::size_t changes = upserts.size() + removals.size();
  const auto threshold = std::max<std::size_t>(
      config_.rebuild_min_tasks,
      static_cast<std::size_t>(config_.rebuild_fraction *
                               static_cast<double>(snapshot.size())));
  if (!has_result_ || changes > threshold) {
    ++stats_.full_rebuilds;
    current_.clear();
    primary_->clear();
    if (secondary_) secondary_->clear();
    for (const BlockedStatus& s : snapshot) current_.emplace(s.task, s);
    for (const auto& [task, status] : current_) {
      primary_->add_task(status, current_);
      if (secondary_) secondary_->add_task(status, current_);
    }
  } else {
    ++stats_.delta_applies;
    stats_.tasks_applied += changes;
    // current_ mirrors the cores at every core call: remove with the old
    // status still mapped, then swap the map entry, then add.
    for (TaskId task : removals) {
      auto node = current_.find(task);
      primary_->remove_task(node->second, current_);
      if (secondary_) secondary_->remove_task(node->second, current_);
      current_.erase(node);
    }
    for (const BlockedStatus* s : upserts) {
      auto node = current_.find(s->task);
      if (node != current_.end()) {
        primary_->remove_task(node->second, current_);
        if (secondary_) secondary_->remove_task(node->second, current_);
        node->second = *s;
      } else {
        node = current_.emplace(s->task, *s).first;
      }
      primary_->add_task(node->second, current_);
      if (secondary_) secondary_->add_task(node->second, current_);
    }
  }

  if (current_.empty()) {
    built_ = BuiltGraph{};
    last_result_ = CheckResult{};
  } else {
    ++stats_.graphs_built;
    built_ = chosen_core().materialise();
    last_result_ = check_deadlocks(built_, snapshot);
  }
  has_result_ = true;
  return last_result_;
}

void IncrementalChecker::reset() {
  current_.clear();
  primary_->clear();
  if (secondary_) secondary_->clear();
  built_ = BuiltGraph{};
  last_result_ = CheckResult{};
  has_result_ = false;
}

}  // namespace armus
