#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>

#include "core/checker.h"

/// Incremental maintenance of the §4 dependency graphs across periodic
/// checks.
///
/// The from-scratch builders (graph_builder.h) pay O(blocked) per scan:
/// re-interning every waited event, re-sorting the wait index, re-hashing
/// every edge. At a 100 ms scan period almost nothing changes between
/// scans, so this class keeps the wait/impeder indices and the per-task
/// edge contributions alive and applies *task-level deltas* — the tasks
/// that blocked, unblocked, or changed status since the previous check —
/// making graph maintenance O(changed) instead of O(blocked). Cycle
/// analysis still runs over the maintained graph (O(V+E), allocation-light
/// via BuiltGraph::analysis()); when the delta fraction is large the
/// checker falls back to a from-scratch rebuild, which is cheaper than
/// replaying many deltas.
///
/// Every edge is kept with a contribution count (how many task/occurrence
/// pairs imply it), so removing a task subtracts exactly what adding it
/// contributed and the maintained graph is always identical — nodes, edge
/// set, deadlock reports — to the one the from-scratch builder would
/// produce for the same snapshot (pinned by tests/incremental_test.cc).
///
/// Model policy: kWfg/kSg/kGrg maintain that one graph. kAuto maintains
/// the SG and WFG side by side (both O(changed) per delta) and picks per
/// check by the §5.1 density rule on the *final* edge count
/// (SG edges > 2 × blocked tasks → WFG). The streaming builder's
/// `build_auto` applies the same threshold per processed-task prefix and
/// may therefore fall back on shapes the final count accepts; both
/// choices are sound and CheckResult::model_used records the outcome.
namespace armus {

class IncrementalChecker {
 public:
  struct Config {
    GraphModel model = GraphModel::kAuto;

    /// When more than this fraction of the snapshot changed since the last
    /// check, rebuild from scratch instead of applying per-task deltas.
    double rebuild_fraction = 0.5;

    /// Deltas of at most this many tasks are always applied incrementally,
    /// regardless of the fraction (tiny snapshots would otherwise always
    /// rebuild).
    std::size_t rebuild_min_tasks = 8;
  };

  struct Stats {
    std::uint64_t checks = 0;          ///< check() calls
    std::uint64_t unchanged_hits = 0;  ///< cached result returned, no graph work
    std::uint64_t graphs_built = 0;    ///< checks that materialised + analysed
    std::uint64_t full_rebuilds = 0;   ///< state rebuilt from scratch
    std::uint64_t delta_applies = 0;   ///< checks maintained incrementally
    std::uint64_t tasks_applied = 0;   ///< task-level deltas applied in total
  };

  explicit IncrementalChecker(GraphModel model) : IncrementalChecker(Config{.model = model}) {}
  explicit IncrementalChecker(Config config);
  ~IncrementalChecker();
  IncrementalChecker(const IncrementalChecker&) = delete;
  IncrementalChecker& operator=(const IncrementalChecker&) = delete;

  /// Analyses `snapshot` (sorted by task id, one entry per task — the
  /// StateStore::snapshot() contract), reusing graph state from the
  /// previous call. An unchanged snapshot returns the cached result
  /// without touching the graph.
  CheckResult check(std::span<const BlockedStatus> snapshot);

  /// The graph behind the most recent check(): the avoidance path runs
  /// task_is_doomed over it, sharing its analysis() cache across doom
  /// queries while the state is unchanged. Empty before the first check.
  [[nodiscard]] const BuiltGraph& built() const { return built_; }

  /// The most recent check()'s result (valid once has_result()). Callers
  /// that can prove the state is unchanged — e.g. a Verifier whose change
  /// epoch did not move — reuse it without even assembling a snapshot.
  [[nodiscard]] const CheckResult& last_result() const { return last_result_; }
  [[nodiscard]] bool has_result() const { return has_result_; }

  /// Drops all maintained state (stats survive; reset_stats clears those).
  void reset();

  [[nodiscard]] Stats stats() const { return stats_; }
  void reset_stats() { stats_ = Stats{}; }
  [[nodiscard]] GraphModel model() const { return config_.model; }

 private:
  class Core;  // one maintained graph (defined in incremental_checker.cc)

  /// The core whose graph this check reports (kAuto: density rule).
  [[nodiscard]] const Core& chosen_core() const;

  Config config_;
  /// The statuses the cores currently reflect, keyed (and ordered) by task.
  std::map<TaskId, BlockedStatus> current_;
  std::unique_ptr<Core> primary_;    ///< the model's graph (SG for kAuto)
  std::unique_ptr<Core> secondary_;  ///< WFG side of kAuto, else null
  BuiltGraph built_;
  CheckResult last_result_;
  bool has_result_ = false;
  Stats stats_;
};

}  // namespace armus
