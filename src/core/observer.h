#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "core/blocked_status.h"
#include "core/report.h"

/// The event-observer seam of the verification layer (the "task observer"
/// side of §5.3 turned outward): a passive listener on everything the
/// library sees — registration changes, blocked-status publishes, scans,
/// and deadlock reports. `trace::Recorder` implements it to persist runs
/// (docs/TRACE_FORMAT.md); core/ itself depends only on this interface,
/// never on trace/.
///
/// Callbacks fire on the mutating thread, ordered so that a replayed
/// trace is state-consistent: a state event (blocked/unblocked/
/// registration) is delivered *before* the mutation becomes visible to
/// checkers (for registry events: inside the registry's critical
/// section), while on_scan/on_report fire after the analysis. Any
/// analysis that observed a mutation therefore appends its SCAN record
/// after that mutation's record — so a replay at the recorded scan
/// points sees *at least* what the live checker saw, and every recorded
/// report is reproducible offline. The guarantee is deliberately
/// one-directional: a state record whose mutation landed between a
/// scan's snapshot and its SCAN append precedes that SCAN in the trace,
/// so a replay may additionally surface a cycle the live scan's timing
/// missed — a predictive finding, never a lost one. Implementations do
/// their own synchronisation, must be fast (they can run under a
/// registry shard lock), and must not call back into the verifier or
/// registry.
namespace armus {

/// The phaser argument of on_task_deregistered meaning "every registration
/// of the task was dropped at once" (task termination). Real phaser uids
/// start at 1, so 0 is free.
inline constexpr PhaserUid kAllPhasers = 0;

/// Summary of one completed analysis (a detection scan, a synchronous
/// check, or an avoidance doom check). Epoch-skipped scans never reach the
/// observer — only analyses that actually looked at the state.
struct ScanInfo {
  std::size_t blocked = 0;   ///< snapshot size analysed
  std::size_t nodes = 0;     ///< graph nodes
  std::size_t edges = 0;     ///< graph edges
  GraphModel model_used = GraphModel::kWfg;
  std::size_t reports = 0;   ///< cycles present (not necessarily fresh)
};

/// The ScanInfo of one completed analysis — the single assembly point for
/// every scan emitter (Verifier, dist::Site). Defined in checker.cc.
struct CheckResult;
ScanInfo scan_info(std::size_t blocked, const CheckResult& result);

class EventObserver {
 public:
  virtual ~EventObserver() = default;

  /// `task`'s local phase on `phaser` was recorded or updated (a no-op
  /// re-registration at the same phase does not fire).
  virtual void on_task_registered(TaskId task, PhaserUid phaser,
                                  Phase local_phase) {
    (void)task, (void)phaser, (void)local_phase;
  }

  /// `task`'s registration on `phaser` was dropped (kAllPhasers = all of
  /// them at once). Absent registrations do not fire.
  virtual void on_task_deregistered(TaskId task, PhaserUid phaser) {
    (void)task, (void)phaser;
  }

  /// `status` was published to the store (before_block / avoidance
  /// recheck). Re-publishes of an unchanged status may fire again.
  virtual void on_blocked(const BlockedStatus& status) { (void)status; }

  /// The publish announced by the immediately preceding on_blocked for
  /// `task` failed (e.g. a store outage): the store rolled back to the
  /// task's *previous* visible status — still blocked on the old status
  /// if it had one, not blocked at all otherwise. A recorder undoes the
  /// announced publish the same way, so the trace tracks what checkers
  /// actually see.
  virtual void on_block_rollback(TaskId task) { (void)task; }

  /// `task`'s blocked status was withdrawn (after_unblock, or avoidance
  /// withdrawing a doomed task's status before interrupting it).
  virtual void on_unblocked(TaskId task) { (void)task; }

  /// One analysis ran over the current state.
  virtual void on_scan(const ScanInfo& info) { (void)info; }

  /// A deadlock was found and is being reported (deduplicated by task
  /// set — the same cycle never fires twice from one verifier or site).
  virtual void on_report(const DeadlockReport& report) { (void)report; }

  /// The shared store's availability changed as seen from `site`: `down`
  /// is true on the first failed operation after a healthy stretch and
  /// false on the first success after an outage — a transition event, not
  /// a per-failure one, so observers see each outage exactly once however
  /// long it lasts. `op` names the operation that noticed ("publish",
  /// "check", "scan"). Emitted by dist::Site and the Verifier's scanner;
  /// recorders that only persist verification state ignore it.
  virtual void on_store_outage(std::uint32_t site, bool down,
                               std::string_view op) {
    (void)site, (void)down, (void)op;
  }
};

}  // namespace armus
