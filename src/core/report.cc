#include "core/report.h"

#include <sstream>

namespace armus {

std::string DeadlockReport::to_string() const {
  std::ostringstream out;
  out << "deadlock (" << armus::to_string(model) << "): tasks [";
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (i) out << ", ";
    out << "t" << tasks[i];
  }
  out << "] events [";
  for (std::size_t i = 0; i < resources.size(); ++i) {
    if (i) out << ", ";
    out << armus::to_string(resources[i]);
  }
  out << "]";
  return out.str();
}

std::uint64_t DeadlockReport::fingerprint() const {
  // FNV-1a over the sorted task ids: stable across scans because reports
  // always sort their task lists.
  std::uint64_t h = 1469598103934665603ULL;
  for (TaskId t : tasks) {
    for (int shift = 0; shift < 64; shift += 8) {
      h ^= (t >> shift) & 0xff;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

}  // namespace armus
