#pragma once

#include <string>
#include <vector>

#include "core/blocked_status.h"
#include "core/graph_builder.h"

/// Deadlock reports produced by the checker. A report corresponds to one
/// cyclic strongly connected component of the analysis graph: the set of
/// tasks that are mutually waiting and the synchronisation events involved.
namespace armus {

struct DeadlockReport {
  /// Tasks that can never proceed because of this cycle, sorted ascending.
  std::vector<TaskId> tasks;

  /// The synchronisation events (phaser, phase) on the cycle, sorted.
  std::vector<Resource> resources;

  /// Graph model that produced the finding (kWfg or kSg).
  GraphModel model = GraphModel::kWfg;

  /// One-line human-readable summary.
  [[nodiscard]] std::string to_string() const;

  /// A stable fingerprint of the task set, used to avoid re-reporting the
  /// same deadlock on every detection scan.
  [[nodiscard]] std::uint64_t fingerprint() const;
};

}  // namespace armus
