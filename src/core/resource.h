#pragma once

#include <cstddef>
#include <functional>
#include <string>

#include "core/ids.h"

/// A resource in the sense of §4.1: the synchronisation *event* "phaser p
/// reaches phase n". The paper's `res` is a bijection from resources to
/// (phaser, phase) pairs; here the pair *is* the representation, so the
/// bijection is the identity.
///
/// This event-based view is the key idea that makes dynamic membership cheap:
/// the checker never needs a membership list, only phase numbers reported
/// locally by each blocked task.
namespace armus {

struct Resource {
  PhaserUid phaser = 0;
  Phase phase = 0;

  friend bool operator==(const Resource&, const Resource&) = default;
  friend auto operator<=>(const Resource&, const Resource&) = default;
};

/// Human-readable rendering, e.g. "p3@7" for phaser 3, phase 7.
inline std::string to_string(const Resource& r) {
  return "p" + std::to_string(r.phaser) + "@" + std::to_string(r.phase);
}

struct ResourceHash {
  std::size_t operator()(const Resource& r) const noexcept {
    // Mix the two words; the golden-ratio constant decorrelates phaser ids
    // (small, dense) from phases (small, dense).
    std::uint64_t h = r.phaser * 0x9e3779b97f4a7c15ULL;
    h ^= r.phase + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return static_cast<std::size_t>(h);
  }
};

}  // namespace armus
