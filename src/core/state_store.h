#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/blocked_status.h"

/// The pluggable blocked-status store of the verification library (§5.1).
///
/// The paper's architecture separates *maintaining* the blocked statuses
/// (frequent, per-task) from *checking* them (periodic, whole-snapshot).
/// This interface is the seam between the two: a Verifier performs every
/// state read/write through it, so the same verification layer runs against
///
///   * a process-local store (DependencyState — sharded, lock-striped), or
///   * a store shared by several Verifiers in one process (pass one
///     DependencyState to many VerifierConfigs), or
///   * a site slice of a distributed global store (dist::SharedStore, the
///     §5.2 multi-site deployment where per-site Armus instances publish
///     into one logically-shared store).
namespace armus {

class StateStore {
 public:
  StateStore() = default;
  StateStore(const StateStore&) = delete;
  StateStore& operator=(const StateStore&) = delete;
  virtual ~StateStore() = default;

  /// Publishes (or replaces) the blocked status of `status.task`. A task has
  /// at most one live status; re-publishing overwrites.
  virtual void set_blocked(BlockedStatus status) = 0;

  /// Removes the blocked status of `task` (no-op if absent).
  virtual void clear_blocked(TaskId task) = 0;

  /// Copies all current blocked statuses, sorted by task id so downstream
  /// graph construction (and tests) are deterministic. For shared stores
  /// this is the *merged* view over every publisher.
  [[nodiscard]] virtual std::vector<BlockedStatus> snapshot() const = 0;

  /// Number of currently blocked tasks (merged view for shared stores).
  [[nodiscard]] virtual std::size_t blocked_count() const = 0;

  /// Removes every status this store is responsible for (used between test
  /// cases / site restarts).
  virtual void clear() = 0;

  /// Monotonic change epoch: advances whenever the store's visible contents
  /// change (a successful set_blocked that alters a status, a clear_blocked
  /// that removes one, a clear of a non-empty store — and, for shared
  /// stores, any other publisher's change). Two equal non-zero epochs mean
  /// "nothing changed in between", which is what lets a periodic checker
  /// skip the snapshot + graph build entirely at steady state.
  ///
  /// Returns kUnversioned (0) when the implementation cannot provide the
  /// guarantee; callers must then treat every read as potentially changed.
  /// Versioned implementations never return 0.
  [[nodiscard]] virtual std::uint64_t version() const { return kUnversioned; }

  /// The version() sentinel of stores that cannot track change epochs.
  static constexpr std::uint64_t kUnversioned = 0;
};

}  // namespace armus
