#include "core/status_codec.h"

#include "util/varint.h"

namespace armus {

using util::append_varint;
using util::read_count;
using util::read_varint;

void append_status(std::string& out, const BlockedStatus& status) {
  append_varint(out, status.task);
  append_varint(out, status.waits.size());
  for (const Resource& wait : status.waits) {
    append_varint(out, wait.phaser);
    append_varint(out, wait.phase);
  }
  append_varint(out, status.registered.size());
  for (const RegEntry& reg : status.registered) {
    append_varint(out, reg.phaser);
    append_varint(out, reg.local_phase);
  }
}

BlockedStatus read_status(std::string_view bytes, std::size_t* offset) {
  BlockedStatus status;
  status.task = read_varint(bytes, offset);
  std::uint64_t nwaits = read_count(bytes, offset, "wait");
  status.waits.reserve(nwaits);
  for (std::uint64_t w = 0; w < nwaits; ++w) {
    Resource wait;
    wait.phaser = read_varint(bytes, offset);
    wait.phase = read_varint(bytes, offset);
    status.waits.push_back(wait);
  }
  std::uint64_t nregs = read_count(bytes, offset, "registration");
  status.registered.reserve(nregs);
  for (std::uint64_t r = 0; r < nregs; ++r) {
    RegEntry reg;
    reg.phaser = read_varint(bytes, offset);
    reg.local_phase = read_varint(bytes, offset);
    status.registered.push_back(reg);
  }
  return status;
}

}  // namespace armus
