#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "core/blocked_status.h"

/// The shared binary encoding of a single BlockedStatus (all integers
/// unsigned LEB128 varints):
///
///   status := task:varint
///             nwaits:varint (phaser:varint phase:varint)*
///             nregs:varint  (phaser:varint phase:varint)*
///
/// Two wire formats embed it: slice batches/deltas (`dist/codec`,
/// docs/WIRE_PROTOCOL.md §1) and trace BLOCKED records (`src/trace/`,
/// docs/TRACE_FORMAT.md). It lives in core/ so both can share the bytes
/// without depending on each other.
namespace armus {

void append_status(std::string& out, const BlockedStatus& status);

/// Strict reader; throws util::CodecError on truncation or an implausible
/// wait/registration count.
BlockedStatus read_status(std::string_view bytes, std::size_t* offset);

}  // namespace armus
