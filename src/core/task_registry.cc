#include "core/task_registry.h"

#include <algorithm>

namespace armus {

// Observer calls below stay inside the shard critical section: a reader
// (merge_into/entries) that observes the mutation acquires the shard lock
// after it was released, so the mutation's record precedes any SCAN record
// of an analysis that saw it — the trace-ordering invariant replay relies
// on. The cost is one observer append under the shard lock; observers are
// buffered writers and registrations are rare next to scans.

void TaskRegistry::set_entry(TaskId task, PhaserUid phaser, Phase local_phase) {
  Shard& shard = shard_for(task);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto [it, inserted] = shard.regs[task].try_emplace(phaser, local_phase);
  if (!inserted) {
    if (it->second == local_phase) return;  // no-op re-registration
    it->second = local_phase;
  }
  version_.fetch_add(1, std::memory_order_acq_rel);
  if (EventObserver* obs = observer_.load(std::memory_order_acquire)) {
    obs->on_task_registered(task, phaser, local_phase);
  }
}

void TaskRegistry::remove_entry(TaskId task, PhaserUid phaser) {
  Shard& shard = shard_for(task);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.regs.find(task);
  if (it == shard.regs.end()) return;
  if (it->second.erase(phaser) == 0) return;
  if (it->second.empty()) shard.regs.erase(it);
  version_.fetch_add(1, std::memory_order_acq_rel);
  if (EventObserver* obs = observer_.load(std::memory_order_acquire)) {
    obs->on_task_deregistered(task, phaser);
  }
}

void TaskRegistry::remove_task(TaskId task) {
  Shard& shard = shard_for(task);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.regs.erase(task) == 0) return;
  version_.fetch_add(1, std::memory_order_acq_rel);
  if (EventObserver* obs = observer_.load(std::memory_order_acquire)) {
    obs->on_task_deregistered(task, kAllPhasers);
  }
}

std::vector<RegEntry> TaskRegistry::entries(TaskId task) const {
  const Shard& shard = shard_for(task);
  std::lock_guard<std::mutex> lock(shard.mutex);
  std::vector<RegEntry> out;
  auto it = shard.regs.find(task);
  if (it == shard.regs.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [phaser, phase] : it->second) out.push_back({phaser, phase});
  return out;
}

void TaskRegistry::merge_into(BlockedStatus& status) const {
  std::vector<RegEntry> fresh = entries(status.task);
  if (fresh.empty()) return;
  for (const RegEntry& entry : fresh) {
    auto it = std::find_if(status.registered.begin(), status.registered.end(),
                           [&](const RegEntry& e) { return e.phaser == entry.phaser; });
    if (it != status.registered.end()) {
      it->local_phase = entry.local_phase;
    } else {
      status.registered.push_back(entry);
    }
  }
}

}  // namespace armus
