#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/blocked_status.h"
#include "core/observer.h"

/// Tracks, per task, the signal-capable registrations (phaser -> local
/// phase) — the "resource mapper" half of the application layer (§5.3).
///
/// Phasers update this registry on register/arrive/deregister; the checker
/// reads it when it snapshots blocked statuses, so dependencies always
/// reflect the *current* local phases, including registrations performed on
/// behalf of a task by its parent (X10 `clocked`, PL `reg(t, p)`).
///
/// Wait-only registrations never impede anybody (they cannot hold a barrier
/// back) and are deliberately not recorded.
namespace armus {

class TaskRegistry {
 public:
  TaskRegistry() = default;
  TaskRegistry(const TaskRegistry&) = delete;
  TaskRegistry& operator=(const TaskRegistry&) = delete;

  /// Records (or updates) task's local phase on `phaser`.
  void set_entry(TaskId task, PhaserUid phaser, Phase local_phase);

  /// Removes task's registration on `phaser` (no-op if absent).
  void remove_entry(TaskId task, PhaserUid phaser);

  /// Drops every registration of `task` (task termination).
  void remove_task(TaskId task);

  /// The task's current registrations, unordered.
  [[nodiscard]] std::vector<RegEntry> entries(TaskId task) const;

  /// Overlays the registry's entries for `status.task` onto
  /// `status.registered` (registry values win per phaser; entries present
  /// only in the status — e.g. synthetic test data or lock generations —
  /// are preserved).
  void merge_into(BlockedStatus& status) const;

  /// Monotonic change epoch (starts at 1): bumped only by mutations that
  /// alter a registration. Part of the scan epoch — a registration change
  /// while the blocked set is stable (e.g. a parent registering a blocked
  /// child, X10 `clocked`) must still invalidate a skipped scan.
  [[nodiscard]] std::uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  /// Attaches a passive listener notified after every mutation that
  /// actually changed a registration (exactly the mutations that bump
  /// version()); nullptr detaches. Not owned; the caller keeps it alive
  /// while attached — the Verifier wires its VerifierConfig::observer here.
  void set_observer(EventObserver* observer) {
    observer_.store(observer, std::memory_order_release);
  }

 private:
  static constexpr std::size_t kShards = 16;

  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<TaskId, std::unordered_map<PhaserUid, Phase>> regs;
  };

  Shard& shard_for(TaskId task) { return shards_[task % kShards]; }
  const Shard& shard_for(TaskId task) const { return shards_[task % kShards]; }

  std::array<Shard, kShards> shards_;
  std::atomic<std::uint64_t> version_{1};
  std::atomic<EventObserver*> observer_{nullptr};
};

}  // namespace armus
