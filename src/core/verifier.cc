#include "core/verifier.h"

#include <atomic>

#include "graph/cycle.h"
#include "util/env.h"
#include "util/log.h"

namespace armus {

std::string to_string(VerifyMode mode) {
  switch (mode) {
    case VerifyMode::kOff: return "off";
    case VerifyMode::kDetection: return "detection";
    case VerifyMode::kAvoidance: return "avoidance";
  }
  return "?";
}

VerifyMode verify_mode_from_string(const std::string& name) {
  if (name == "off") return VerifyMode::kOff;
  if (name == "detection") return VerifyMode::kDetection;
  if (name == "avoidance") return VerifyMode::kAvoidance;
  throw std::invalid_argument("unknown verify mode: '" + name + "'");
}

namespace {

/// A scan/recheck period must be positive — zero or negative would spin the
/// scanner or divide the recheck loop by nothing; fail loudly instead.
std::chrono::milliseconds positive_period_from_env(const std::string& name,
                                                   std::int64_t fallback) {
  std::int64_t ms = util::env_int(name, fallback);
  if (ms <= 0) {
    throw std::invalid_argument(name + " must be positive, got " +
                                std::to_string(ms));
  }
  return std::chrono::milliseconds(ms);
}

}  // namespace

VerifierConfig VerifierConfig::from_env() {
  VerifierConfig config;
  if (auto mode = util::env_str("ARMUS_MODE")) {
    config.mode = verify_mode_from_string(*mode);
  }
  if (auto model = util::env_str("ARMUS_GRAPH_MODEL")) {
    config.model = graph_model_from_string(*model);
  }
  config.period =
      positive_period_from_env("ARMUS_CHECK_PERIOD_MS", config.period.count());
  config.avoidance_recheck = positive_period_from_env(
      "ARMUS_AVOIDANCE_RECHECK_MS", config.avoidance_recheck.count());
  config.scanner_enabled =
      util::env_bool("ARMUS_SCANNER", config.scanner_enabled);
  return config;
}

DeadlockAvoidedError::DeadlockAvoidedError(DeadlockReport report)
    : std::runtime_error(report.to_string()), report_(std::move(report)) {}

Verifier::Verifier(VerifierConfig config)
    : config_(std::move(config)),
      store_(config_.store ? config_.store
                           : std::make_shared<DependencyState>()),
      incremental_(config_.model) {
  if (!config_.on_deadlock) {
    config_.on_deadlock = [this](const DeadlockReport& report) {
      util::log_error(describe(report));
    };
  }
  // The registry is owned by this verifier, so one attachment covers both
  // halves of the event stream (statuses here, registrations there).
  registry_.set_observer(config_.observer.get());
  start();
}

Verifier::~Verifier() { stop(); }

void Verifier::start() {
  if (config_.mode != VerifyMode::kDetection || !config_.scanner_enabled) return;
  std::lock_guard<std::mutex> lock(scanner_mutex_);
  if (scanner_.joinable()) return;
  stop_requested_ = false;
  scanner_ = std::thread([this] { scanner_loop(); });
}

void Verifier::stop() {
  {
    std::lock_guard<std::mutex> lock(scanner_mutex_);
    stop_requested_ = true;
  }
  scanner_cv_.notify_all();
  if (scanner_.joinable()) scanner_.join();
}

void Verifier::scanner_loop() {
  std::unique_lock<std::mutex> lock(scanner_mutex_);
  // Only this thread reads or writes the outage latch, so it lives on the
  // stack: one structured store_outage event per transition (down on the
  // first failed scan, up on the first scan that succeeds again), not a
  // stderr line per failed period.
  bool store_down = false;
  for (;;) {
    if (scanner_cv_.wait_for(lock, config_.period,
                             [this] { return stop_requested_; })) {
      return;
    }
    lock.unlock();
    try {
      scan_now();
      if (store_down) {
        store_down = false;
        if (EventObserver* obs = config_.observer.get()) {
          obs->on_store_outage(0, false, "scan");
        }
      }
    } catch (const std::exception& e) {
      // A pluggable store (VerifierConfig::store) may fail transiently —
      // e.g. dist::StoreUnavailableError during an outage. The scanner
      // must outlive the outage, not terminate the process.
      if (!store_down) {
        store_down = true;
        util::log_error(std::string("scan failed: ") + e.what());
        if (EventObserver* obs = config_.observer.get()) {
          obs->on_store_outage(0, true, "scan");
        }
      }
    }
    lock.lock();
  }
}

std::vector<BlockedStatus> Verifier::current_snapshot() const {
  auto snapshot = store_->snapshot();
  for (BlockedStatus& status : snapshot) registry_.merge_into(status);
  return snapshot;
}

Verifier::Epoch Verifier::read_epoch() const {
  // The store version is read first and committed only after a successful
  // analysis, so an exception (e.g. a store outage) can never mark a state
  // as scanned that was not.
  return Epoch{store_->version(), registry_.version()};
}

bool Verifier::epoch_unchanged_locked(const Epoch& epoch) const {
  return epoch_valid_ && epoch.store_version != StateStore::kUnversioned &&
         epoch.store_version == last_epoch_.store_version &&
         epoch.registry_version == last_epoch_.registry_version;
}

void Verifier::commit_epoch_locked(const Epoch& epoch) {
  last_epoch_ = epoch;
  epoch_valid_ = epoch.store_version != StateStore::kUnversioned;
}

bool Verifier::scan_now() {
  Epoch epoch = read_epoch();
  {
    std::lock_guard<std::mutex> lock(check_mutex_);
    if (epoch_unchanged_locked(epoch)) {
      std::lock_guard<std::mutex> stats_lock(mutex_);
      ++stats_.scans_skipped;
      return false;
    }
  }
  // One store read per tick: blocked_count() would cost a second full
  // snapshot round-trip on remote-backed stores.
  auto snapshot = current_snapshot();
  CheckResult result;
  {
    std::lock_guard<std::mutex> lock(check_mutex_);
    result = incremental_.check(snapshot);
  }
  notify_scan(snapshot.size(), result);
  if (!snapshot.empty()) {
    record_check(result);
    for (const DeadlockReport& report : result.reports) {
      bool fresh = false;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        fresh = fingerprints_.insert(report.fingerprint()).second;
        if (fresh) {
          reported_.push_back(report);
          ++stats_.deadlocks_found;
        }
      }
      if (fresh) {
        if (EventObserver* obs = config_.observer.get()) obs->on_report(report);
        if (config_.on_deadlock) config_.on_deadlock(report);
      }
    }
  }
  // Committed only now: a throwing on_deadlock callback leaves the epoch
  // open, so the next tick re-runs the (cached) analysis and delivers the
  // reports that did not make it out — already-delivered ones stay
  // deduplicated by their fingerprints.
  std::lock_guard<std::mutex> lock(check_mutex_);
  commit_epoch_locked(epoch);
  return true;
}

void Verifier::record_check(const CheckResult& result) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.checks;
  if (result.model_used == GraphModel::kSg) {
    ++stats_.sg_builds;
  } else {
    ++stats_.wfg_builds;
  }
  stats_.total_edges += result.edges;
  stats_.max_edges = std::max<std::uint64_t>(stats_.max_edges, result.edges);
}

void Verifier::before_block(const BlockedStatus& status) {
  if (config_.mode == VerifyMode::kOff) return;
  // Observer before store: any analysis that sees this status snapshots
  // after set_blocked committed, hence after the BLOCKED record — so its
  // SCAN record lands later in the trace and a replay at that scan point
  // sees the same state the live checker saw.
  publish_blocked(status);
  if (config_.mode != VerifyMode::kAvoidance) return;
  check_doomed_or_throw(status.task);
}

void Verifier::recheck_blocked(const BlockedStatus& status) {
  if (config_.mode != VerifyMode::kAvoidance) return;
  publish_blocked(status);
  check_doomed_or_throw(status.task);
}

void Verifier::publish_blocked(const BlockedStatus& status) {
  EventObserver* obs = config_.observer.get();
  if (obs) obs->on_blocked(status);
  try {
    store_->set_blocked(status);
  } catch (...) {
    // The publish failed (e.g. a store outage): checkers still see the
    // task's *previous* visible status (stores withdraw a failed update —
    // see SharedStore::set_blocked), so the observer must roll the record
    // back the same way.
    if (obs) obs->on_block_rollback(status.task);
    throw;
  }
}

void Verifier::check_doomed_or_throw(TaskId task) {
  // No epoch bookkeeping here: avoidance mode runs no scanner, the
  // preceding set_blocked moved the epoch anyway, and reading it would
  // cost remote-backed stores an extra round trip on the blocking path.
  auto snapshot = current_snapshot();
  CheckResult result;
  bool doomed = false;
  {
    // The incremental checker keeps the graph (and its SCC analysis) alive
    // across doom checks: a poll over an unchanged state costs one delta
    // comparison plus one DFS, not a rebuild.
    std::lock_guard<std::mutex> lock(check_mutex_);
    result = incremental_.check(snapshot);
    doomed = task_is_doomed(incremental_.built(), snapshot, task);
  }
  record_check(result);
  notify_scan(snapshot.size(), result);

  if (!doomed) return;

  // The block would never complete: withdraw the status and interrupt the
  // operation. The report aggregates every cycle present plus this task.
  if (EventObserver* obs = config_.observer.get()) obs->on_unblocked(task);
  store_->clear_blocked(task);
  DeadlockReport merged;
  merged.model = result.model_used;
  for (const DeadlockReport& part : result.reports) {
    merged.tasks.insert(merged.tasks.end(), part.tasks.begin(), part.tasks.end());
    merged.resources.insert(merged.resources.end(), part.resources.begin(),
                            part.resources.end());
  }
  merged.tasks.push_back(task);
  std::sort(merged.tasks.begin(), merged.tasks.end());
  merged.tasks.erase(std::unique(merged.tasks.begin(), merged.tasks.end()),
                     merged.tasks.end());
  std::sort(merged.resources.begin(), merged.resources.end());
  merged.resources.erase(
      std::unique(merged.resources.begin(), merged.resources.end()),
      merged.resources.end());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.avoidance_interrupts;
  }
  if (EventObserver* obs = config_.observer.get()) obs->on_report(merged);
  throw DeadlockAvoidedError(std::move(merged));
}

void Verifier::after_unblock(TaskId task) {
  if (config_.mode == VerifyMode::kOff) return;
  // Observer first, mirroring before_block: an analysis that no longer
  // sees the status snapshotted after the withdrawal, hence after the
  // UNBLOCKED record.
  if (EventObserver* obs = config_.observer.get()) obs->on_unblocked(task);
  store_->clear_blocked(task);
}

CheckResult Verifier::check_now() {
  Epoch epoch = read_epoch();
  {
    std::lock_guard<std::mutex> lock(check_mutex_);
    if (epoch_unchanged_locked(epoch) && incremental_.has_result()) {
      CheckResult result = incremental_.last_result();
      record_check(result);
      return result;
    }
  }
  auto snapshot = current_snapshot();
  CheckResult result;
  {
    std::lock_guard<std::mutex> lock(check_mutex_);
    result = incremental_.check(snapshot);
    commit_epoch_locked(epoch);
  }
  record_check(result);
  notify_scan(snapshot.size(), result);
  return result;
}

void Verifier::notify_scan(std::size_t blocked, const CheckResult& result) {
  EventObserver* obs = config_.observer.get();
  if (obs == nullptr) return;
  obs->on_scan(scan_info(blocked, result));
}

std::vector<DeadlockReport> Verifier::reported() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return reported_;
}

Verifier::Stats Verifier::stats() const {
  Stats out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out = stats_;
  }
  {
    std::lock_guard<std::mutex> lock(check_mutex_);
    IncrementalChecker::Stats inc = incremental_.stats();
    out.graphs_built = inc.graphs_built;
    out.incremental_applies = inc.delta_applies;
    out.full_rebuilds = inc.full_rebuilds;
  }
  return out;
}

void Verifier::reset_stats() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_ = Stats{};
    reported_.clear();
    fingerprints_.clear();
  }
  std::lock_guard<std::mutex> lock(check_mutex_);
  incremental_.reset_stats();
}

void Verifier::set_task_name(TaskId task, std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  names_[task] = std::move(name);
}

std::string Verifier::task_name(TaskId task) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = names_.find(task);
  if (it != names_.end()) return it->second;
  return "t" + std::to_string(task);
}

std::string Verifier::describe(const DeadlockReport& report) const {
  std::string out = "deadlock (" + armus::to_string(report.model) + "): tasks [";
  for (std::size_t i = 0; i < report.tasks.size(); ++i) {
    if (i) out += ", ";
    out += task_name(report.tasks[i]);
  }
  out += "] events [";
  for (std::size_t i = 0; i < report.resources.size(); ++i) {
    if (i) out += ", ";
    out += armus::to_string(report.resources[i]);
  }
  out += "]";
  return out;
}

VerifierRegistry& VerifierRegistry::instance() {
  // Leaked intentionally: tasks may unbind during static destruction.
  static VerifierRegistry* registry = new VerifierRegistry();
  return *registry;
}

Verifier* VerifierRegistry::fallback() const {
  return fallback_.load(std::memory_order_acquire);
}

void VerifierRegistry::set_fallback(Verifier* verifier) {
  fallback_.store(verifier, std::memory_order_release);
}

void VerifierRegistry::bind(TaskId task, Verifier* verifier) {
  Shard& shard = shard_for(task);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (verifier == nullptr) {
    shard.map.erase(task);
  } else {
    shard.map[task] = verifier;
  }
}

void VerifierRegistry::unbind(TaskId task) { bind(task, nullptr); }

Verifier* VerifierRegistry::bound(TaskId task) const {
  const Shard& shard = shard_for(task);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(task);
  return it == shard.map.end() ? nullptr : it->second;
}

Verifier* default_verifier() { return VerifierRegistry::instance().fallback(); }

void set_default_verifier(Verifier* verifier) {
  VerifierRegistry::instance().set_fallback(verifier);
}

void bind_task_verifier(TaskId task, Verifier* verifier) {
  VerifierRegistry::instance().bind(task, verifier);
}

void unbind_task_verifier(TaskId task) {
  VerifierRegistry::instance().unbind(task);
}

Verifier* task_verifier(TaskId task) {
  return VerifierRegistry::instance().bound(task);
}

}  // namespace armus
