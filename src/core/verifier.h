#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "core/checker.h"
#include "core/dependency_state.h"
#include "core/incremental_checker.h"
#include "core/observer.h"
#include "core/state_store.h"
#include "core/task_registry.h"

/// The verification layer of Armus (§5): owns the resource-dependency state
/// and runs the deadlock checker in one of two modes.
///
/// * **Detection**: a dedicated scanner thread analyses the blocked statuses
///   every `period` (100 ms in the paper's local runs) and reports existing
///   deadlocks through a callback. Lower overhead; reports after the fact.
/// * **Avoidance**: every task checks the graph synchronously *before*
///   blocking; if the block would never complete, the blocking operation is
///   interrupted with a DeadlockAvoidedError so the program can recover.
namespace armus {

enum class VerifyMode { kOff, kDetection, kAvoidance };

std::string to_string(VerifyMode mode);
VerifyMode verify_mode_from_string(const std::string& name);

struct VerifierConfig {
  VerifyMode mode = VerifyMode::kDetection;
  GraphModel model = GraphModel::kAuto;

  /// Detection scan period. The paper runs local detection at 100 ms and
  /// distributed detection at 200 ms.
  std::chrono::milliseconds period{100};

  /// Avoidance mode: how often an already-blocked task re-runs the doom
  /// check. A deadlock cycle is closed by its *last* blocker — that one is
  /// interrupted synchronously by before_block — but the paper's §2.1
  /// behaviour ("an exception is raised in Lines 8 and 11", i.e. in every
  /// stuck task) requires the earlier blockers to notice too; they poll at
  /// this period while waiting.
  std::chrono::milliseconds avoidance_recheck{10};

  /// Detection mode: run the local scanner thread. Distributed sites (§5.2)
  /// disable it — their checker operates on the *global* store snapshot
  /// instead, driven by dist::Site.
  bool scanner_enabled = true;

  /// The blocked-status store this Verifier reads and writes. nullptr (the
  /// default) gives the Verifier a fresh process-local DependencyState.
  /// Passing the same store to several configs makes their Verifiers
  /// publish into — and check against — one shared state, so a checker at
  /// any of them sees cross-verifier cycles (the in-process analogue of the
  /// §5.2 shared global store; dist::SharedStore plugs in an actual
  /// multi-site store slice here).
  std::shared_ptr<StateStore> store;

  /// Invoked by the detection scanner once per newly found deadlock
  /// (deduplicated by task set). Defaults to logging via util::log_error.
  std::function<void(const DeadlockReport&)> on_deadlock;

  /// Passive listener on everything this verifier sees: blocked-status
  /// publishes and withdrawals, registration changes (wired into the task
  /// registry), analyses, and reports. nullptr (the default) = none.
  /// `trace::Recorder` plugs in here to persist the run; core/ knows only
  /// this interface. The env spelling lives at the top of the stack:
  /// `net::verifier_config_from_env()` attaches a recorder when
  /// ARMUS_TRACE names a path.
  std::shared_ptr<EventObserver> observer;

  /// Reads ARMUS_MODE, ARMUS_GRAPH_MODEL, ARMUS_CHECK_PERIOD_MS,
  /// ARMUS_AVOIDANCE_RECHECK_MS and ARMUS_SCANNER. Non-positive periods and
  /// malformed values raise std::invalid_argument.
  static VerifierConfig from_env();
};

/// Thrown by avoidance mode when a blocking operation would deadlock. The
/// operation did not block; the program may recover (e.g. deregister from
/// the offending barrier, as the X10 examples in §2.1 do).
class DeadlockAvoidedError : public std::runtime_error {
 public:
  explicit DeadlockAvoidedError(DeadlockReport report);
  [[nodiscard]] const DeadlockReport& report() const { return report_; }

 private:
  DeadlockReport report_;
};

class Verifier {
 public:
  explicit Verifier(VerifierConfig config = {});
  ~Verifier();

  Verifier(const Verifier&) = delete;
  Verifier& operator=(const Verifier&) = delete;

  // --- Application-layer hooks (the "task observer" of §5.3) -------------

  /// Publishes `status` ahead of the task blocking. In avoidance mode, runs
  /// the check; if the task would never unblock, withdraws the status and
  /// throws DeadlockAvoidedError. In detection mode simply records it.
  void before_block(const BlockedStatus& status);

  /// Withdraws the blocked status once the task resumes (or gives up).
  void after_unblock(TaskId task);

  /// Avoidance-mode poll for a task that is already blocked: re-publishes
  /// `status` and throws DeadlockAvoidedError (after withdrawing it) when
  /// the task has become doomed since it blocked. No-op in other modes.
  void recheck_blocked(const BlockedStatus& status);

  // --- Analysis ------------------------------------------------------------

  /// Runs one synchronous analysis of the current state (updates stats but
  /// does not fire callbacks). When the change epoch (store version +
  /// registry version) is unchanged since the previous analysis, returns
  /// the cached result without copying a snapshot or touching the graph.
  CheckResult check_now();

  /// One detection-scanner tick, run synchronously: analyse the state and
  /// report new deadlocks through on_deadlock. Returns false when the scan
  /// was skipped because the change epoch is unchanged — the O(changed)
  /// steady-state guarantee (zero snapshot copies, zero graph builds),
  /// pinned by Stats::scans_skipped / graphs_built. The scanner thread
  /// calls this every period; tests and benchmarks drive it directly.
  bool scan_now();

  /// The blocked statuses as the checker sees them: stored waits overlaid
  /// with the *current* registrations from the task registry, so that
  /// registrations performed while a task is already blocked (PL `reg`,
  /// X10 `clocked` by the parent) are never missed.
  [[nodiscard]] std::vector<BlockedStatus> current_snapshot() const;

  /// All deadlocks reported by the detection scanner so far.
  [[nodiscard]] std::vector<DeadlockReport> reported() const;

  // --- Lifecycle -------------------------------------------------------------

  /// Starts the detection scanner (no-op unless mode == kDetection; the
  /// constructor already calls this).
  void start();

  /// Stops the scanner; safe to call repeatedly.
  void stop();

  // --- Introspection -----------------------------------------------------

  [[nodiscard]] VerifyMode mode() const { return config_.mode; }
  [[nodiscard]] GraphModel model() const { return config_.model; }
  [[nodiscard]] const VerifierConfig& config() const { return config_; }

  /// The blocked-status store (local by default, possibly shared — see
  /// VerifierConfig::store). All of the Verifier's own reads/writes go
  /// through this interface too.
  StateStore& state() { return *store_; }
  [[nodiscard]] const StateStore& state() const { return *store_; }
  [[nodiscard]] const std::shared_ptr<StateStore>& store() const {
    return store_;
  }

  TaskRegistry& registry() { return registry_; }
  [[nodiscard]] const TaskRegistry& registry() const { return registry_; }

  struct Stats {
    std::uint64_t checks = 0;
    std::uint64_t deadlocks_found = 0;
    std::uint64_t avoidance_interrupts = 0;
    std::uint64_t sg_builds = 0;
    std::uint64_t wfg_builds = 0;
    std::uint64_t total_edges = 0;
    std::uint64_t max_edges = 0;

    /// Scanner ticks skipped because the change epoch was unchanged (no
    /// snapshot copy, no graph work).
    std::uint64_t scans_skipped = 0;

    /// Analyses that actually materialised a graph (an unchanged-state
    /// check served from cache does not count). Steady state: 0.
    std::uint64_t graphs_built = 0;

    /// Of the graph maintenance rounds, how many applied task-level deltas
    /// vs. rebuilt from scratch (IncrementalChecker passthrough).
    std::uint64_t incremental_applies = 0;
    std::uint64_t full_rebuilds = 0;

    /// Average graph size per analysis — the paper's Table 3 "Edges" rows.
    [[nodiscard]] double mean_edges() const {
      return checks == 0 ? 0.0 : static_cast<double>(total_edges) /
                                     static_cast<double>(checks);
    }
  };

  [[nodiscard]] Stats stats() const;
  void reset_stats();

  /// Optional task display names used in reports ("task observer" metadata).
  void set_task_name(TaskId task, std::string name);
  [[nodiscard]] std::string task_name(TaskId task) const;

  /// Renders a report using registered task names.
  [[nodiscard]] std::string describe(const DeadlockReport& report) const;

 private:
  /// The change epoch a scan observed: store version + registry version,
  /// read *before* the snapshot so a concurrent mutation can only make the
  /// next scan conservative (an extra scan), never miss one.
  struct Epoch {
    std::uint64_t store_version = 0;
    std::uint64_t registry_version = 0;
  };

  void scanner_loop();
  void record_check(const CheckResult& result);

  /// Forwards one completed analysis to the config observer (no-op when
  /// none is attached). Called outside the internal locks.
  void notify_scan(std::size_t blocked, const CheckResult& result);

  /// Records the status with the observer, then publishes it to the store
  /// (withdrawing the record again if the publish throws) — the
  /// trace-ordering half of before_block/recheck_blocked.
  void publish_blocked(const BlockedStatus& status);

  [[nodiscard]] Epoch read_epoch() const;
  /// True iff the store is versioned and `epoch` matches the last committed
  /// one. Caller holds check_mutex_.
  [[nodiscard]] bool epoch_unchanged_locked(const Epoch& epoch) const;
  /// Records `epoch` after a successful analysis. Caller holds check_mutex_.
  void commit_epoch_locked(const Epoch& epoch);

  /// Runs the avoidance analysis for `task`; throws DeadlockAvoidedError
  /// (after withdrawing the task's status) when it can never unblock.
  void check_doomed_or_throw(TaskId task);

  VerifierConfig config_;
  std::shared_ptr<StateStore> store_;
  TaskRegistry registry_;

  /// Guards the incremental checker and the epoch bookkeeping. The two
  /// mutexes DO nest (scan_now's skip branch and check_now's cached branch
  /// take mutex_ for stats while holding check_mutex_); the mandatory
  /// order is check_mutex_ before mutex_ — never acquire check_mutex_
  /// while holding mutex_.
  mutable std::mutex check_mutex_;
  IncrementalChecker incremental_;
  Epoch last_epoch_;
  bool epoch_valid_ = false;

  mutable std::mutex mutex_;  // guards stats_, reported_, names_, fingerprints_
  Stats stats_;
  std::vector<DeadlockReport> reported_;
  std::unordered_set<std::uint64_t> fingerprints_;
  std::unordered_map<TaskId, std::string> names_;

  std::mutex scanner_mutex_;
  std::condition_variable scanner_cv_;
  bool stop_requested_ = false;
  std::thread scanner_;
};

/// Process-wide task→verifier bindings plus the default verifier, in one
/// place (this used to be three loose globals). Two layers:
///
///   * **fallback** — the verifier used by runtime objects constructed
///     without an explicit one. Starts as nullptr (verification off).
///   * **per-task bindings** — multi-site (distributed) runs have phasers
///     spanning sites, but each task must report its blocking events to its
///     *own* site's Armus instance (§5.2). The runtime binds a task at
///     spawn and unbinds at termination; dist::Cluster::bind_task routes a
///     task to its site; phasers resolve per-task bookkeeping through the
///     binding when present (unless the phaser itself is unchecked).
///
/// Bindings are sharded by task id, so binding/unbinding on task spawn and
/// exit never serialises distinct tasks.
class VerifierRegistry {
 public:
  static VerifierRegistry& instance();

  /// The process default. nullptr = verification off.
  [[nodiscard]] Verifier* fallback() const;
  void set_fallback(Verifier* verifier);

  /// Binds `task` to `verifier`; nullptr unbinds.
  void bind(TaskId task, Verifier* verifier);
  void unbind(TaskId task);

  /// The task's own binding, nullptr when unbound.
  [[nodiscard]] Verifier* bound(TaskId task) const;

 private:
  VerifierRegistry() = default;

  static constexpr std::size_t kShards = 16;
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<TaskId, Verifier*> map;
  };

  Shard& shard_for(TaskId task) { return shards_[task % kShards]; }
  const Shard& shard_for(TaskId task) const { return shards_[task % kShards]; }

  std::atomic<Verifier*> fallback_{nullptr};
  std::array<Shard, kShards> shards_;
};

// The call-site spelling of the registry operations; use these everywhere
// (VerifierRegistry::instance() exists for holding a reference).
Verifier* default_verifier();
void set_default_verifier(Verifier* verifier);
void bind_task_verifier(TaskId task, Verifier* verifier);
void unbind_task_verifier(TaskId task);
Verifier* task_verifier(TaskId task);  ///< nullptr when unbound

}  // namespace armus
