#include "dist/codec.h"

#include <cstdint>

namespace armus::dist {

void append_varint(std::string& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

std::uint64_t read_varint(std::string_view bytes, std::size_t* offset) {
  std::uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (*offset >= bytes.size()) {
      throw CodecError("truncated varint at byte " + std::to_string(*offset));
    }
    std::uint8_t byte = static_cast<std::uint8_t>(bytes[(*offset)++]);
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      // The final group of a 64-bit varint (shift 63) has one payload bit.
      if (shift == 63 && (byte & 0x7e) != 0) {
        throw CodecError("varint overflows 64 bits");
      }
      return value;
    }
  }
  throw CodecError("varint longer than 10 bytes");
}

namespace {

/// Guards element counts before anything is allocated: every encoded
/// element occupies at least one byte, so a count exceeding the remaining
/// input is bogus no matter what follows.
std::uint64_t read_count(std::string_view bytes, std::size_t* offset,
                         const char* what) {
  std::uint64_t count = read_varint(bytes, offset);
  if (count > bytes.size() - *offset) {
    throw CodecError(std::string("implausible ") + what + " count " +
                     std::to_string(count) + " with " +
                     std::to_string(bytes.size() - *offset) +
                     " bytes remaining");
  }
  return count;
}

}  // namespace

namespace {

void append_status(std::string& out, const BlockedStatus& status) {
  append_varint(out, status.task);
  append_varint(out, status.waits.size());
  for (const Resource& wait : status.waits) {
    append_varint(out, wait.phaser);
    append_varint(out, wait.phase);
  }
  append_varint(out, status.registered.size());
  for (const RegEntry& reg : status.registered) {
    append_varint(out, reg.phaser);
    append_varint(out, reg.local_phase);
  }
}

BlockedStatus read_status(std::string_view bytes, std::size_t* offset) {
  BlockedStatus status;
  status.task = read_varint(bytes, offset);
  std::uint64_t nwaits = read_count(bytes, offset, "wait");
  status.waits.reserve(nwaits);
  for (std::uint64_t w = 0; w < nwaits; ++w) {
    Resource wait;
    wait.phaser = read_varint(bytes, offset);
    wait.phase = read_varint(bytes, offset);
    status.waits.push_back(wait);
  }
  std::uint64_t nregs = read_count(bytes, offset, "registration");
  status.registered.reserve(nregs);
  for (std::uint64_t r = 0; r < nregs; ++r) {
    RegEntry reg;
    reg.phaser = read_varint(bytes, offset);
    reg.local_phase = read_varint(bytes, offset);
    status.registered.push_back(reg);
  }
  return status;
}

}  // namespace

std::string encode_statuses(const std::vector<BlockedStatus>& statuses) {
  std::string out;
  // Varints below 128 dominate; 4 bytes/status is a good starting guess.
  out.reserve(8 + statuses.size() * 4);
  append_varint(out, statuses.size());
  for (const BlockedStatus& status : statuses) append_status(out, status);
  return out;
}

std::vector<BlockedStatus> decode_statuses(std::string_view bytes) {
  std::size_t offset = 0;
  std::uint64_t count = read_count(bytes, &offset, "status");
  std::vector<BlockedStatus> statuses;
  statuses.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    statuses.push_back(read_status(bytes, &offset));
  }
  if (offset != bytes.size()) {
    throw CodecError("trailing garbage: " + std::to_string(bytes.size() - offset) +
                     " bytes after " + std::to_string(count) + " statuses");
  }
  return statuses;
}

std::string encode_delta(const SliceDelta& delta) {
  std::string out;
  out.reserve(8 + delta.upserts.size() * 4 + delta.removals.size());
  append_varint(out, delta.upserts.size());
  for (const BlockedStatus& status : delta.upserts) append_status(out, status);
  append_varint(out, delta.removals.size());
  for (TaskId task : delta.removals) append_varint(out, task);
  return out;
}

SliceDelta decode_delta(std::string_view bytes) {
  std::size_t offset = 0;
  SliceDelta delta;
  std::uint64_t nupserts = read_count(bytes, &offset, "upsert");
  delta.upserts.reserve(nupserts);
  for (std::uint64_t i = 0; i < nupserts; ++i) {
    delta.upserts.push_back(read_status(bytes, &offset));
  }
  std::uint64_t nremovals = read_count(bytes, &offset, "removal");
  delta.removals.reserve(nremovals);
  for (std::uint64_t i = 0; i < nremovals; ++i) {
    delta.removals.push_back(read_varint(bytes, &offset));
  }
  if (offset != bytes.size()) {
    throw CodecError("trailing garbage: " +
                     std::to_string(bytes.size() - offset) + " bytes in delta");
  }
  return delta;
}

SliceDelta diff_statuses(const std::vector<BlockedStatus>& from,
                         const std::vector<BlockedStatus>& to) {
  SliceDelta delta;
  std::size_t i = 0;
  for (const BlockedStatus& status : to) {
    while (i < from.size() && from[i].task < status.task) {
      delta.removals.push_back(from[i++].task);
    }
    if (i < from.size() && from[i].task == status.task) {
      if (!(from[i] == status)) delta.upserts.push_back(status);
      ++i;
    } else {
      delta.upserts.push_back(status);
    }
  }
  for (; i < from.size(); ++i) delta.removals.push_back(from[i].task);
  return delta;
}

std::vector<BlockedStatus> apply_delta(std::vector<BlockedStatus> base,
                                       const SliceDelta& delta) {
  std::vector<BlockedStatus> out;
  out.reserve(base.size() + delta.upserts.size());
  std::size_t u = 0;
  std::size_t r = 0;
  auto pending_upserts_below = [&](TaskId task) {
    while (u < delta.upserts.size() && delta.upserts[u].task < task) {
      out.push_back(delta.upserts[u++]);
    }
  };
  for (BlockedStatus& status : base) {
    pending_upserts_below(status.task);
    if (u < delta.upserts.size() && delta.upserts[u].task == status.task) {
      out.push_back(delta.upserts[u++]);
      continue;  // replaced
    }
    while (r < delta.removals.size() && delta.removals[r] < status.task) ++r;
    if (r < delta.removals.size() && delta.removals[r] == status.task) {
      ++r;
      continue;  // removed
    }
    out.push_back(std::move(status));
  }
  while (u < delta.upserts.size()) out.push_back(delta.upserts[u++]);
  return out;
}

}  // namespace armus::dist
