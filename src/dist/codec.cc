#include "dist/codec.h"

#include <cstdint>

#include "core/status_codec.h"

namespace armus::dist {

using util::read_count;

std::string encode_statuses(const std::vector<BlockedStatus>& statuses) {
  std::string out;
  // Varints below 128 dominate; 4 bytes/status is a good starting guess.
  out.reserve(8 + statuses.size() * 4);
  append_varint(out, statuses.size());
  for (const BlockedStatus& status : statuses) append_status(out, status);
  return out;
}

std::vector<BlockedStatus> decode_statuses(std::string_view bytes) {
  std::size_t offset = 0;
  std::uint64_t count = read_count(bytes, &offset, "status");
  std::vector<BlockedStatus> statuses;
  statuses.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    statuses.push_back(read_status(bytes, &offset));
  }
  if (offset != bytes.size()) {
    throw CodecError("trailing garbage: " + std::to_string(bytes.size() - offset) +
                     " bytes after " + std::to_string(count) + " statuses");
  }
  return statuses;
}

std::string encode_delta(const SliceDelta& delta) {
  std::string out;
  out.reserve(8 + delta.upserts.size() * 4 + delta.removals.size());
  append_varint(out, delta.upserts.size());
  for (const BlockedStatus& status : delta.upserts) append_status(out, status);
  append_varint(out, delta.removals.size());
  for (TaskId task : delta.removals) append_varint(out, task);
  return out;
}

SliceDelta decode_delta(std::string_view bytes) {
  std::size_t offset = 0;
  SliceDelta delta;
  std::uint64_t nupserts = read_count(bytes, &offset, "upsert");
  delta.upserts.reserve(nupserts);
  for (std::uint64_t i = 0; i < nupserts; ++i) {
    delta.upserts.push_back(read_status(bytes, &offset));
  }
  std::uint64_t nremovals = read_count(bytes, &offset, "removal");
  delta.removals.reserve(nremovals);
  for (std::uint64_t i = 0; i < nremovals; ++i) {
    delta.removals.push_back(read_varint(bytes, &offset));
  }
  if (offset != bytes.size()) {
    throw CodecError("trailing garbage: " +
                     std::to_string(bytes.size() - offset) + " bytes in delta");
  }
  return delta;
}

SliceDelta diff_statuses(const std::vector<BlockedStatus>& from,
                         const std::vector<BlockedStatus>& to) {
  SliceDelta delta;
  std::size_t i = 0;
  for (const BlockedStatus& status : to) {
    while (i < from.size() && from[i].task < status.task) {
      delta.removals.push_back(from[i++].task);
    }
    if (i < from.size() && from[i].task == status.task) {
      if (!(from[i] == status)) delta.upserts.push_back(status);
      ++i;
    } else {
      delta.upserts.push_back(status);
    }
  }
  for (; i < from.size(); ++i) delta.removals.push_back(from[i].task);
  return delta;
}

std::vector<BlockedStatus> apply_delta(std::vector<BlockedStatus> base,
                                       const SliceDelta& delta) {
  std::vector<BlockedStatus> out;
  out.reserve(base.size() + delta.upserts.size());
  std::size_t u = 0;
  std::size_t r = 0;
  auto pending_upserts_below = [&](TaskId task) {
    while (u < delta.upserts.size() && delta.upserts[u].task < task) {
      out.push_back(delta.upserts[u++]);
    }
  };
  for (BlockedStatus& status : base) {
    pending_upserts_below(status.task);
    if (u < delta.upserts.size() && delta.upserts[u].task == status.task) {
      out.push_back(delta.upserts[u++]);
      continue;  // replaced
    }
    while (r < delta.removals.size() && delta.removals[r] < status.task) ++r;
    if (r < delta.removals.size() && delta.removals[r] == status.task) {
      ++r;
      continue;  // removed
    }
    out.push_back(std::move(status));
  }
  while (u < delta.upserts.size()) out.push_back(delta.upserts[u++]);
  return out;
}

}  // namespace armus::dist
