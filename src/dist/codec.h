#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/blocked_status.h"
#include "util/varint.h"

/// Compact binary (de)serialisation of BlockedStatus batches — the wire
/// format a site uses to publish its slice of blocked statuses into the
/// shared global store (§5.2). The paper's Fig. 7 setup pays exactly this
/// cost on every publish/check round, so the encoding is sized for the
/// common case: ids and phases are small integers, encoded as LEB128
/// varints (1 byte below 128) rather than fixed 8-byte words.
///
/// Layout (all integers unsigned LEB128):
///
///   batch    := count:varint status*
///   status   := task:varint
///               nwaits:varint (phaser:varint phase:varint)*
///               nregs:varint  (phaser:varint phase:varint)*
///
/// Decoding is strict: truncated input, an unterminated varint, a count
/// that cannot fit in the remaining bytes, and trailing garbage all raise
/// CodecError. A store snapshot is only as trustworthy as its slices, so a
/// corrupt slice must fail loudly instead of yielding a bogus graph.
namespace armus::dist {

/// The varint primitive and its strict error now live in util/varint.h so
/// every armus wire format (slice batches here, armus-kv message bodies in
/// src/net/, trace files in src/trace/) shares one implementation; these
/// aliases keep the historical dist:: spellings working.
using CodecError = util::CodecError;
using util::append_varint;
using util::read_varint;

/// Serialises `statuses` into the batch format above.
std::string encode_statuses(const std::vector<BlockedStatus>& statuses);

/// Parses a batch produced by encode_statuses. Throws CodecError on any
/// malformed input.
std::vector<BlockedStatus> decode_statuses(std::string_view bytes);

/// A slice *delta* frame: the task-level difference between two slice
/// payloads. A site whose slice is large but whose change is small (the
/// steady-state norm at a 100–200 ms publish period) sends this against
/// the version it last published instead of re-sending the full batch:
///
///   delta := nupserts:varint status*  nremovals:varint task:varint*
///
/// Upserts replace (or add) the status of their task; removals drop a
/// task. Both lists are sorted by task id. The store applies the delta to
/// the slice payload it holds at exactly the base version — so a stored
/// slice is always a *full* batch and readers never need delta context
/// (see SliceStore::put_slice_delta and docs/WIRE_PROTOCOL.md §8).
struct SliceDelta {
  std::vector<BlockedStatus> upserts;
  std::vector<TaskId> removals;

  [[nodiscard]] bool empty() const { return upserts.empty() && removals.empty(); }
};

std::string encode_delta(const SliceDelta& delta);

/// Parses a delta frame; same strictness as decode_statuses.
SliceDelta decode_delta(std::string_view bytes);

/// The delta that turns `from` into `to` (both sorted by task id — the
/// encode_statuses order).
SliceDelta diff_statuses(const std::vector<BlockedStatus>& from,
                         const std::vector<BlockedStatus>& to);

/// Applies `delta` to `base` (sorted by task id), returning the new batch
/// sorted by task id. An upsert of a present task replaces it; a removal
/// of an absent task is a no-op (deltas are computed against the exact
/// base version, so neither occurs in practice).
std::vector<BlockedStatus> apply_delta(std::vector<BlockedStatus> base,
                                       const SliceDelta& delta);

}  // namespace armus::dist
