#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/blocked_status.h"

/// Compact binary (de)serialisation of BlockedStatus batches — the wire
/// format a site uses to publish its slice of blocked statuses into the
/// shared global store (§5.2). The paper's Fig. 7 setup pays exactly this
/// cost on every publish/check round, so the encoding is sized for the
/// common case: ids and phases are small integers, encoded as LEB128
/// varints (1 byte below 128) rather than fixed 8-byte words.
///
/// Layout (all integers unsigned LEB128):
///
///   batch    := count:varint status*
///   status   := task:varint
///               nwaits:varint (phaser:varint phase:varint)*
///               nregs:varint  (phaser:varint phase:varint)*
///
/// Decoding is strict: truncated input, an unterminated varint, a count
/// that cannot fit in the remaining bytes, and trailing garbage all raise
/// CodecError. A store snapshot is only as trustworthy as its slices, so a
/// corrupt slice must fail loudly instead of yielding a bogus graph.
namespace armus::dist {

class CodecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Appends `value` to `out` as an unsigned LEB128 varint (the primitive
/// every armus wire format builds on — slice batches here, armus-kv
/// message bodies in src/net/).
void append_varint(std::string& out, std::uint64_t value);

/// Strict LEB128 reader over [*offset, bytes.size()): advances *offset
/// past the varint. Throws CodecError on truncation, a varint longer than
/// 10 bytes, or 64-bit overflow.
std::uint64_t read_varint(std::string_view bytes, std::size_t* offset);

/// Serialises `statuses` into the batch format above.
std::string encode_statuses(const std::vector<BlockedStatus>& statuses);

/// Parses a batch produced by encode_statuses. Throws CodecError on any
/// malformed input.
std::vector<BlockedStatus> decode_statuses(std::string_view bytes);

}  // namespace armus::dist
