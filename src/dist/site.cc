#include "dist/site.h"

#include <algorithm>

#include "obs/env.h"

namespace armus::dist {

namespace {

VerifierConfig site_verifier_config(const Site::Config& config) {
  VerifierConfig vc;
  vc.mode = VerifyMode::kDetection;
  vc.model = config.model;
  vc.period = config.check_period;
  // The local scanner stays off: this verifier's state holds only this
  // site's half of any cross-site cycle. Site::check_now analyses the
  // merged global snapshot instead.
  vc.scanner_enabled = false;
  // Deadlocks are reported by the site's global checker, never by the
  // verifier itself; silence its default logging callback.
  vc.on_deadlock = [](const DeadlockReport&) {};
  vc.observer = config.observer;
  return vc;
}

/// Resolves Config::observer, defaulting to the environment-selected
/// observers (ARMUS_TRACE recorder, ARMUS_EVENTS JSONL reporter, or both
/// fanned out) so every site becomes a producer with zero code changes.
Site::Config resolve_observer(Site::Config config) {
  if (!config.observer) config.observer = obs::observer_from_env();
  return config;
}

}  // namespace

Site::Site(Config config, std::shared_ptr<SliceStore> store)
    : config_(resolve_observer(std::move(config))),
      store_(std::move(store)),
      verifier_(site_verifier_config(config_)),
      incremental_(config_.model) {}

Site::~Site() { stop(); }

bool Site::publish_now() {
  std::vector<BlockedStatus> statuses = verifier_.current_snapshot();
  std::string payload = encode_statuses(statuses);

  std::lock_guard<std::mutex> publish_lock(publish_mutex_);
  if (store_suspect_.exchange(false)) {
    // The checker (or a previous publish) saw the store fail since our
    // last write: it may have restarted and lost our slice, so neither
    // the unchanged-skip nor a delta against the old base is safe.
    published_ok_ = false;
  }
  if (published_ok_ && payload == last_payload_) {
    // Nothing blocked or unblocked since the last successful publish: the
    // stored slice is already exact, and its unchanged version lets every
    // reader skip it too.
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.publishes_skipped;
    return true;
  }

  bool delta_sent = false;
  std::uint64_t version = 0;
  try {
    if (published_ok_ && payload.size() >= config_.delta_min_bytes) {
      std::string delta = encode_delta(diff_statuses(last_statuses_, statuses));
      if (delta.size() * 2 <= payload.size()) {
        try {
          version = store_->put_slice_delta(config_.id, last_version_, delta);
          delta_sent = true;
        } catch (const SliceBaseMismatchError&) {
          // The store does not hold our base (restart, competing writer,
          // or a backend without delta support): send the full slice.
        }
      }
    }
    if (!delta_sent) version = store_->put_slice(config_.id, payload);
  } catch (const StoreUnavailableError&) {
    // Re-publish the full slice once the store is back: the outage may
    // have eaten state (server restart), so the skip/delta bases are void.
    published_ok_ = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.store_failures;
    }
    note_store_result(false, "publish");
    return false;
  }

  last_payload_ = std::move(payload);
  last_statuses_ = std::move(statuses);
  last_version_ = version;
  published_ok_ = true;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.publishes;
    if (delta_sent) ++stats_.delta_publishes;
  }
  note_store_result(true, "publish");
  return true;
}

bool Site::check_now() {
  // The shared guarded read: change-narrowed fetch, restart detection,
  // stale-response discard, decode cache. A corrupt slice must not blind
  // the checker to the healthy ones (it is counted as a store failure —
  // once per corrupt publish, since the cache remembers the verdict until
  // the slice's version changes).
  CachedSliceReader::Read read;
  try {
    read = reader_.read(*store_, [this](SiteId, const CodecError&) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.store_failures;
    });
  } catch (const StoreUnavailableError&) {
    store_suspect_.store(true);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.store_failures;
    }
    note_store_result(false, "check");
    return false;
  }
  note_store_result(true, "check");

  if (read.outcome != CachedSliceReader::Outcome::kApplied) {
    // Unchanged store (or a response a concurrent check already
    // superseded): the previous verdict stands, with zero decodes and
    // zero graph work.
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.checks_skipped;
    return true;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.slices_fetched += read.slices_fetched;
  }
  CheckResult result;
  std::size_t merged_size = 0;
  {
    std::lock_guard<std::mutex> cache_lock(cache_mutex_);
    merged_size = reader_.merged().size();
    result = incremental_.check(reader_.merged());
  }
  if (EventObserver* obs = config_.observer.get()) {
    obs->on_scan(scan_info(merged_size, result));
  }

  std::vector<DeadlockReport> fresh;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.checks;
    for (DeadlockReport& report : result.reports) {
      if (!fingerprints_.insert(report.fingerprint()).second) continue;
      reported_.push_back(report);
      ++stats_.deadlocks_found;
      fresh.push_back(std::move(report));
    }
  }
  for (const DeadlockReport& report : fresh) {
    if (EventObserver* obs = config_.observer.get()) obs->on_report(report);
    if (config_.on_deadlock) config_.on_deadlock(report);
  }
  return true;
}

void Site::note_store_result(bool ok, const char* op) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // A transition happens exactly when the new verdict disagrees with the
    // recorded one: first failure while healthy, first success while down.
    if (store_down_ == !ok) return;
    store_down_ = !ok;
  }
  if (EventObserver* obs = config_.observer.get()) {
    obs->on_store_outage(config_.id, !ok, op);
  }
}

std::vector<DeadlockReport> Site::reported() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return reported_;
}

Site::Stats Site::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void Site::start() {
  std::lock_guard<std::mutex> lock(thread_mutex_);
  if (publisher_.joinable()) return;
  stop_requested_ = false;
  publisher_ = std::thread(
      [this] { loop(config_.publish_period, &Site::publish_now); });
  checker_ =
      std::thread([this] { loop(config_.check_period, &Site::check_now); });
}

void Site::stop() {
  {
    std::lock_guard<std::mutex> lock(thread_mutex_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  if (publisher_.joinable()) publisher_.join();
  if (checker_.joinable()) checker_.join();
}

void Site::loop(std::chrono::milliseconds period, bool (Site::*step)()) {
  std::unique_lock<std::mutex> lock(thread_mutex_);
  for (;;) {
    if (stop_cv_.wait_for(lock, period, [this] { return stop_requested_; })) {
      return;
    }
    lock.unlock();
    (this->*step)();
    lock.lock();
  }
}

// --- Cluster -----------------------------------------------------------------

Cluster::Cluster(Config config)
    : config_(std::move(config)),
      store_(config_.backing ? config_.backing
                             : std::make_shared<Store>(config_.store)) {
  sites_.reserve(config_.site_count);
  for (std::size_t i = 0; i < config_.site_count; ++i) {
    Site::Config sc;
    sc.id = static_cast<SiteId>(i);
    sc.publish_period = config_.publish_period;
    sc.check_period = config_.check_period;
    sc.model = config_.model;
    if (config_.on_deadlock) {
      sc.on_deadlock = [this, id = sc.id](const DeadlockReport& report) {
        config_.on_deadlock(id, report);
      };
    }
    sites_.push_back(std::make_unique<Site>(std::move(sc), store_));
  }
}

Cluster::~Cluster() { stop(); }

void Cluster::start() {
  for (auto& site : sites_) site->start();
}

void Cluster::stop() {
  for (auto& site : sites_) site->stop();
}

std::shared_ptr<Store> Cluster::local_store() const {
  return std::dynamic_pointer_cast<Store>(store_);
}

std::size_t Cluster::total_reports() const {
  std::size_t total = 0;
  for (const auto& site : sites_) total += site->reported().size();
  return total;
}

void Cluster::bind_task(TaskId task, SiteId site) {
  // at(): a miscomputed site id must fail loudly, not hand the registry a
  // garbage Verifier*.
  bind_task_verifier(task, &sites_.at(static_cast<std::size_t>(site))->verifier());
}

void Cluster::unbind_task(TaskId task) { unbind_task_verifier(task); }

}  // namespace armus::dist
