#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/verifier.h"
#include "dist/codec.h"
#include "dist/store.h"

/// The multi-site deployment of §5.2: one Armus instance ("site") per
/// process-group, all publishing their blocked statuses into a shared
/// global store and each checking the *merged* snapshot on a period
/// (200 ms in the paper's distributed runs).
///
/// A Site wraps a scanner-disabled Verifier: the local detection thread is
/// off because a site's own state holds only its half of any cross-site
/// cycle — the checker must run over the global snapshot instead. Tasks
/// attach to their site through the VerifierRegistry binding
/// (Cluster::bind_task), so a phaser spanning sites still reports each
/// task's blocking events to that task's own site.
namespace armus::dist {

class Site {
 public:
  struct Config {
    SiteId id = 0;

    /// How often the publisher pushes this site's slice to the store.
    std::chrono::milliseconds publish_period{200};

    /// How often the checker analyses the merged global snapshot (the
    /// paper's distributed detection period).
    std::chrono::milliseconds check_period{200};

    GraphModel model = GraphModel::kAuto;

    /// Slices at least this large try a delta publish (codec delta frame
    /// against the version this site last stored) when the delta encodes
    /// to at most half the full payload. Below the threshold the full
    /// slice is cheaper than the server-side apply.
    std::size_t delta_min_bytes = 256;

    /// Invoked once per newly found deadlock (deduplicated by task set).
    /// nullptr = silent (reports still accumulate).
    std::function<void(const DeadlockReport&)> on_deadlock;

    /// Passive event listener wired into the site's verifier (blocked
    /// statuses, registrations), the site's own global checks (SCAN /
    /// REPORT events), and store outage/recovery transitions. nullptr
    /// (the default) falls back to obs::observer_from_env(), so any site
    /// in a process started with ARMUS_TRACE=<path> records its half of
    /// the run automatically and ARMUS_EVENTS=<path|stderr> streams the
    /// same events as JSON lines — both at once when both are set.
    std::shared_ptr<EventObserver> observer;
  };

  struct Stats {
    std::uint64_t publishes = 0;        ///< completed slice publishes
    std::uint64_t publishes_skipped = 0;///< unchanged payload: no store write
    std::uint64_t delta_publishes = 0;  ///< of `publishes`, sent as deltas
    std::uint64_t checks = 0;           ///< completed global checks
    std::uint64_t checks_skipped = 0;   ///< store version unchanged: no work
    std::uint64_t slices_fetched = 0;   ///< changed slices received by checks
    std::uint64_t deadlocks_found = 0;  ///< deduplicated reports
    std::uint64_t store_failures = 0;   ///< absorbed outages / corrupt slices
  };

  /// `store` may be any SliceStore backend: the in-process dist::Store or
  /// a net::RemoteStore speaking to an armus-kv server in another process.
  Site(Config config, std::shared_ptr<SliceStore> store);
  ~Site();
  Site(const Site&) = delete;
  Site& operator=(const Site&) = delete;

  [[nodiscard]] SiteId id() const { return config_.id; }
  Verifier& verifier() { return verifier_; }
  [[nodiscard]] const std::shared_ptr<SliceStore>& store() const {
    return store_;
  }

  /// Encodes this site's current snapshot (stored waits overlaid with live
  /// registrations) and publishes it as the site's slice. An encoding
  /// identical to the last successfully stored one skips the store write
  /// entirely (publishes_skipped); a large slice with a small change goes
  /// out as a codec delta frame against the stored version
  /// (delta_publishes), falling back to the full slice when the store's
  /// base does not match. Returns false — and counts a store failure —
  /// when the store is unavailable (the next successful publish then
  /// re-sends the full slice).
  bool publish_now();

  /// Reads the slices *changed since its previous check* from the store
  /// (LIST_SLICES_SINCE on a versioned backend), folds them into the
  /// decode cache, and runs the incrementally maintained deadlock checker
  /// over the merged global snapshot. An unchanged store skips everything
  /// (checks_skipped). New deadlocks (by task set) are recorded and
  /// reported through on_deadlock. Returns false — and counts a store
  /// failure — when the store is unavailable.
  bool check_now();

  /// All deadlocks this site found in the global snapshot, in discovery
  /// order.
  [[nodiscard]] std::vector<DeadlockReport> reported() const;

  [[nodiscard]] Stats stats() const;

  /// Starts the publisher and checker threads (idempotent).
  void start();

  /// Stops them; safe to call repeatedly.
  void stop();

 private:
  void loop(std::chrono::milliseconds period, bool (Site::*step)());

  /// Folds one store operation outcome into the outage state and, on a
  /// transition (healthy→down on the first failure, down→healthy on the
  /// first success), emits a structured store_outage event through the
  /// observer — once per outage, however long it lasts, instead of a
  /// stderr line per failed period.
  void note_store_result(bool ok, const char* op);

  Config config_;
  std::shared_ptr<SliceStore> store_;
  Verifier verifier_;

  mutable std::mutex mutex_;  // guards stats_, reported_, fingerprints_
  /// Checker state: only changed slices travel and decode (the shared
  /// CachedSliceReader, self-locked, owns the fetch guards and decode
  /// cache), and the graph is maintained incrementally across checks
  /// (IncrementalChecker, guarded by cache_mutex_ so a long analysis
  /// never blocks stats()/reported() readers). Lock order where both are
  /// held: cache_mutex_ before mutex_.
  std::mutex cache_mutex_;
  CachedSliceReader reader_;
  IncrementalChecker incremental_;

  /// Publisher state (serialised by its own mutex; the publisher thread
  /// and publish_now callers never hold cache_mutex_). Lock order where
  /// both are held: publish_mutex_ before mutex_.
  std::mutex publish_mutex_;
  std::string last_payload_;
  std::vector<BlockedStatus> last_statuses_;
  std::uint64_t last_version_ = 0;
  bool published_ok_ = false;
  /// Set by any observed store failure (e.g. the checker hitting an
  /// outage): the store may have lost our slice, so the next publish must
  /// send the full payload even if unchanged — the skip and delta bases
  /// are void. publish_now consumes the flag.
  std::atomic<bool> store_suspect_{false};

  Stats stats_;
  std::vector<DeadlockReport> reported_;
  std::unordered_set<std::uint64_t> fingerprints_;
  /// Current outage verdict (guarded by mutex_); see note_store_result.
  bool store_down_ = false;

  std::mutex thread_mutex_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  std::thread publisher_;
  std::thread checker_;
};

/// N sites over one shared store — the whole simulated cluster, plus the
/// task-binding glue the distributed workloads use to spread tasks over
/// sites.
class Cluster {
 public:
  struct Config {
    std::size_t site_count = 2;
    std::chrono::milliseconds publish_period{200};
    std::chrono::milliseconds check_period{200};
    GraphModel model = GraphModel::kAuto;

    /// Per-site deadlock callback (every site checks the global snapshot
    /// independently, so N sites report a cluster-wide deadlock N times —
    /// once each).
    std::function<void(SiteId, const DeadlockReport&)> on_deadlock;

    /// Store knobs for the default in-process backend (latency injection
    /// for benchmarks). Ignored when `backing` is set.
    Store::Config store;

    /// Optional externally owned backend every site publishes into — e.g.
    /// a net::RemoteStore bound to an armus-kv server. nullptr (default):
    /// the cluster creates its own in-process Store.
    std::shared_ptr<SliceStore> backing;
  };

  explicit Cluster(Config config);
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] std::size_t size() const { return sites_.size(); }
  Site& site(std::size_t index) { return *sites_.at(index); }
  [[nodiscard]] const std::shared_ptr<SliceStore>& store() const {
    return store_;
  }

  /// The in-process backend, for fault injection — nullptr when the
  /// cluster runs over an external `Config::backing`.
  [[nodiscard]] std::shared_ptr<Store> local_store() const;

  void start();
  void stop();

  /// Sum of every site's reported deadlock count.
  [[nodiscard]] std::size_t total_reports() const;

  /// Attaches `task` to `site`'s verifier through the VerifierRegistry, so
  /// the task's blocking events (on any phaser) go to that site's Armus
  /// instance. The runtime's spawn/exit path unbinds automatically;
  /// unbind_task covers externally managed tasks.
  void bind_task(TaskId task, SiteId site);
  void unbind_task(TaskId task);

 private:
  Config config_;
  std::shared_ptr<SliceStore> store_;
  std::vector<std::unique_ptr<Site>> sites_;
};

}  // namespace armus::dist
