#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/verifier.h"
#include "dist/codec.h"
#include "dist/store.h"

/// The multi-site deployment of §5.2: one Armus instance ("site") per
/// process-group, all publishing their blocked statuses into a shared
/// global store and each checking the *merged* snapshot on a period
/// (200 ms in the paper's distributed runs).
///
/// A Site wraps a scanner-disabled Verifier: the local detection thread is
/// off because a site's own state holds only its half of any cross-site
/// cycle — the checker must run over the global snapshot instead. Tasks
/// attach to their site through the VerifierRegistry binding
/// (Cluster::bind_task), so a phaser spanning sites still reports each
/// task's blocking events to that task's own site.
namespace armus::dist {

class Site {
 public:
  struct Config {
    SiteId id = 0;

    /// How often the publisher pushes this site's slice to the store.
    std::chrono::milliseconds publish_period{200};

    /// How often the checker analyses the merged global snapshot (the
    /// paper's distributed detection period).
    std::chrono::milliseconds check_period{200};

    GraphModel model = GraphModel::kAuto;

    /// Invoked once per newly found deadlock (deduplicated by task set).
    /// nullptr = silent (reports still accumulate).
    std::function<void(const DeadlockReport&)> on_deadlock;
  };

  struct Stats {
    std::uint64_t publishes = 0;       ///< completed slice publishes
    std::uint64_t checks = 0;          ///< completed global checks
    std::uint64_t deadlocks_found = 0; ///< deduplicated reports
    std::uint64_t store_failures = 0;  ///< absorbed outages / corrupt slices
  };

  /// `store` may be any SliceStore backend: the in-process dist::Store or
  /// a net::RemoteStore speaking to an armus-kv server in another process.
  Site(Config config, std::shared_ptr<SliceStore> store);
  ~Site();
  Site(const Site&) = delete;
  Site& operator=(const Site&) = delete;

  [[nodiscard]] SiteId id() const { return config_.id; }
  Verifier& verifier() { return verifier_; }
  [[nodiscard]] const std::shared_ptr<SliceStore>& store() const {
    return store_;
  }

  /// Encodes this site's current snapshot (stored waits overlaid with live
  /// registrations) and publishes it as the site's slice. Returns false —
  /// and counts a store failure — when the store is unavailable.
  bool publish_now();

  /// Reads every slice from the store, decodes and merges them, and runs
  /// the deadlock checker over the global snapshot. New deadlocks (by task
  /// set) are recorded and reported through on_deadlock. Returns false —
  /// and counts a store failure — when the store is unavailable.
  bool check_now();

  /// All deadlocks this site found in the global snapshot, in discovery
  /// order.
  [[nodiscard]] std::vector<DeadlockReport> reported() const;

  [[nodiscard]] Stats stats() const;

  /// Starts the publisher and checker threads (idempotent).
  void start();

  /// Stops them; safe to call repeatedly.
  void stop();

 private:
  void loop(std::chrono::milliseconds period, bool (Site::*step)());

  Config config_;
  std::shared_ptr<SliceStore> store_;
  Verifier verifier_;

  mutable std::mutex mutex_;  // guards stats_, reported_, fingerprints_
  /// Unchanged slices are served from their cached decode, so a check is
  /// O(changed slices) — see SliceCache. Guarded by its own mutex so a
  /// long decode round never blocks stats()/reported() readers. Lock
  /// order where both are held: cache_mutex_ before mutex_.
  std::mutex cache_mutex_;
  SliceCache cache_;
  Stats stats_;
  std::vector<DeadlockReport> reported_;
  std::unordered_set<std::uint64_t> fingerprints_;

  std::mutex thread_mutex_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  std::thread publisher_;
  std::thread checker_;
};

/// N sites over one shared store — the whole simulated cluster, plus the
/// task-binding glue the distributed workloads use to spread tasks over
/// sites.
class Cluster {
 public:
  struct Config {
    std::size_t site_count = 2;
    std::chrono::milliseconds publish_period{200};
    std::chrono::milliseconds check_period{200};
    GraphModel model = GraphModel::kAuto;

    /// Per-site deadlock callback (every site checks the global snapshot
    /// independently, so N sites report a cluster-wide deadlock N times —
    /// once each).
    std::function<void(SiteId, const DeadlockReport&)> on_deadlock;

    /// Store knobs for the default in-process backend (latency injection
    /// for benchmarks). Ignored when `backing` is set.
    Store::Config store;

    /// Optional externally owned backend every site publishes into — e.g.
    /// a net::RemoteStore bound to an armus-kv server. nullptr (default):
    /// the cluster creates its own in-process Store.
    std::shared_ptr<SliceStore> backing;
  };

  explicit Cluster(Config config);
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] std::size_t size() const { return sites_.size(); }
  Site& site(std::size_t index) { return *sites_.at(index); }
  [[nodiscard]] const std::shared_ptr<SliceStore>& store() const {
    return store_;
  }

  /// The in-process backend, for fault injection — nullptr when the
  /// cluster runs over an external `Config::backing`.
  [[nodiscard]] std::shared_ptr<Store> local_store() const;

  void start();
  void stop();

  /// Sum of every site's reported deadlock count.
  [[nodiscard]] std::size_t total_reports() const;

  /// Attaches `task` to `site`'s verifier through the VerifierRegistry, so
  /// the task's blocking events (on any phaser) go to that site's Armus
  /// instance. The runtime's spawn/exit path unbinds automatically;
  /// unbind_task covers externally managed tasks.
  void bind_task(TaskId task, SiteId site);
  void unbind_task(TaskId task);

 private:
  Config config_;
  std::shared_ptr<SliceStore> store_;
  std::vector<std::unique_ptr<Site>> sites_;
};

}  // namespace armus::dist
