#include "dist/store.h"

#include <algorithm>
#include <thread>

namespace armus::dist {

namespace {

void simulate_hop(std::chrono::microseconds latency) {
  if (latency.count() > 0) std::this_thread::sleep_for(latency);
}

}  // namespace

void Store::check_available_locked() const {
  if (!available_) throw StoreUnavailableError();
}

void Store::put_slice(SiteId site, std::string payload) {
  simulate_hop(config_.latency);
  std::lock_guard<std::mutex> lock(mutex_);
  check_available_locked();
  Slice& slice = slices_[site];
  slice.site = site;
  slice.payload = std::move(payload);
  ++slice.version;
  ++writes_;
}

void Store::remove_slice(SiteId site) {
  simulate_hop(config_.latency);
  std::lock_guard<std::mutex> lock(mutex_);
  check_available_locked();
  slices_.erase(site);
  ++writes_;
}

std::vector<Store::Slice> Store::snapshot() const {
  simulate_hop(config_.latency);
  std::lock_guard<std::mutex> lock(mutex_);
  check_available_locked();
  std::vector<Slice> out;
  out.reserve(slices_.size());
  for (const auto& [site, slice] : slices_) out.push_back(slice);
  ++reads_;
  return out;
}

void Store::set_available(bool available) {
  std::lock_guard<std::mutex> lock(mutex_);
  available_ = available;
}

bool Store::available() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return available_;
}

std::uint64_t Store::writes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return writes_;
}

std::uint64_t Store::reads() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return reads_;
}

std::vector<BlockedStatus> merge_slices(
    const std::vector<Store::Slice>& slices,
    const std::function<void(SiteId, const CodecError&)>& on_corrupt) {
  std::vector<BlockedStatus> merged;
  for (const Store::Slice& slice : slices) {
    std::vector<BlockedStatus> decoded;
    try {
      decoded = decode_statuses(slice.payload);
    } catch (const CodecError& e) {
      if (!on_corrupt) throw;
      on_corrupt(slice.site, e);
      continue;
    }
    merged.insert(merged.end(), std::make_move_iterator(decoded.begin()),
                  std::make_move_iterator(decoded.end()));
  }
  std::sort(merged.begin(), merged.end(),
            [](const BlockedStatus& a, const BlockedStatus& b) {
              return a.task < b.task;
            });
  return merged;
}

// --- SharedStore -------------------------------------------------------------

SharedStore::SharedStore(std::shared_ptr<Store> store, SiteId site)
    : store_(std::move(store)), site_(site) {}

SharedStore::~SharedStore() {
  try {
    store_->remove_slice(site_);
  } catch (const StoreUnavailableError&) {
    // A slice stranded by an outage is the crash case: survivors cope.
  }
}

void SharedStore::flush_locked() {
  std::vector<BlockedStatus> batch;
  batch.reserve(mirror_.size());
  for (const auto& [task, status] : mirror_) batch.push_back(status);
  store_->put_slice(site_, encode_statuses(batch));
}

void SharedStore::set_blocked(BlockedStatus status) {
  std::lock_guard<std::mutex> lock(mutex_);
  TaskId task = status.task;
  auto it = mirror_.find(task);
  if (it != mirror_.end() && it->second == status) return;  // no-op republish
  BlockedStatus previous;
  bool had_previous = it != mirror_.end();
  if (had_previous) previous = it->second;
  mirror_[task] = std::move(status);
  try {
    flush_locked();
  } catch (...) {
    // Keep mirror and store consistent: withdraw the failed update.
    if (had_previous) {
      mirror_[task] = std::move(previous);
    } else {
      mirror_.erase(task);
    }
    throw;
  }
}

void SharedStore::clear_blocked(TaskId task) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = mirror_.find(task);
  if (it == mirror_.end()) return;
  BlockedStatus previous = std::move(it->second);
  mirror_.erase(it);
  try {
    flush_locked();
  } catch (...) {
    mirror_[task] = std::move(previous);
    throw;
  }
}

std::vector<BlockedStatus> SharedStore::snapshot() const {
  return merge_slices(store_->snapshot());
}

std::size_t SharedStore::blocked_count() const {
  std::size_t count = 0;
  for (const Store::Slice& slice : store_->snapshot()) {
    count += decode_statuses(slice.payload).size();
  }
  return count;
}

void SharedStore::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (mirror_.empty()) return;
  auto previous = std::move(mirror_);
  mirror_.clear();
  try {
    flush_locked();
  } catch (...) {
    mirror_ = std::move(previous);
    throw;
  }
}

}  // namespace armus::dist
