#include "dist/store.h"

#include <algorithm>
#include <thread>

namespace armus::dist {

namespace {

void simulate_hop(std::chrono::microseconds latency) {
  if (latency.count() > 0) std::this_thread::sleep_for(latency);
}

void sort_by_task(std::vector<BlockedStatus>& statuses) {
  std::sort(statuses.begin(), statuses.end(),
            [](const BlockedStatus& a, const BlockedStatus& b) {
              return a.task < b.task;
            });
}

}  // namespace

void Store::check_available_locked() const {
  if (!available_) throw StoreUnavailableError();
}

std::uint64_t Store::put_slice(SiteId site, std::string payload) {
  simulate_hop(config_.latency);
  std::lock_guard<std::mutex> lock(mutex_);
  check_available_locked();
  dist::Slice& slice = slices_[site];
  slice.site = site;
  slice.payload = std::move(payload);
  ++slice.version;
  ++writes_;
  return slice.version;
}

std::pair<bool, std::uint64_t> Store::put_slice_if_newer(SiteId site,
                                                         std::string payload,
                                                         std::uint64_t version) {
  simulate_hop(config_.latency);
  std::lock_guard<std::mutex> lock(mutex_);
  check_available_locked();
  auto it = slices_.find(site);
  if (it != slices_.end() && version <= it->second.version) {
    return {false, it->second.version};
  }
  dist::Slice& slice = slices_[site];
  slice.site = site;
  slice.payload = std::move(payload);
  slice.version = version;
  ++writes_;
  return {true, version};
}

void Store::remove_slice(SiteId site) {
  simulate_hop(config_.latency);
  std::lock_guard<std::mutex> lock(mutex_);
  check_available_locked();
  slices_.erase(site);
  ++writes_;
}

std::optional<dist::Slice> Store::get_slice(SiteId site) const {
  simulate_hop(config_.latency);
  std::lock_guard<std::mutex> lock(mutex_);
  check_available_locked();
  ++reads_;
  auto it = slices_.find(site);
  if (it == slices_.end()) return std::nullopt;
  return it->second;
}

std::vector<dist::Slice> Store::snapshot() const {
  simulate_hop(config_.latency);
  std::lock_guard<std::mutex> lock(mutex_);
  check_available_locked();
  std::vector<dist::Slice> out;
  out.reserve(slices_.size());
  for (const auto& [site, slice] : slices_) out.push_back(slice);
  ++reads_;
  return out;
}

void Store::set_available(bool available) {
  std::lock_guard<std::mutex> lock(mutex_);
  available_ = available;
}

bool Store::available() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return available_;
}

std::uint64_t Store::writes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return writes_;
}

std::uint64_t Store::reads() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return reads_;
}

std::vector<BlockedStatus> merge_slices(
    const std::vector<Slice>& slices,
    const std::function<void(SiteId, const CodecError&)>& on_corrupt) {
  std::vector<BlockedStatus> merged;
  for (const Slice& slice : slices) {
    std::vector<BlockedStatus> decoded;
    try {
      decoded = decode_statuses(slice.payload);
    } catch (const CodecError& e) {
      if (!on_corrupt) throw;
      on_corrupt(slice.site, e);
      continue;
    }
    merged.insert(merged.end(), std::make_move_iterator(decoded.begin()),
                  std::make_move_iterator(decoded.end()));
  }
  sort_by_task(merged);
  return merged;
}

// --- SliceCache --------------------------------------------------------------

void SliceCache::refresh(
    const std::vector<Slice>& slices,
    const std::function<void(SiteId, const CodecError&)>& on_corrupt) {
  for (const Slice& slice : slices) {
    auto it = entries_.find(slice.site);
    if (it != entries_.end() && it->second.version == slice.version) continue;
    Entry entry;
    entry.version = slice.version;
    ++decodes_;
    try {
      entry.statuses = decode_statuses(slice.payload);
    } catch (const CodecError& e) {
      if (!on_corrupt) throw;
      // Cache the corruption verdict too: an unchanged corrupt slice must
      // not be re-decoded (and re-reported) on every round.
      entry.corrupt = true;
      on_corrupt(slice.site, e);
    }
    entries_[slice.site] = std::move(entry);
  }
  // Evict sites that vanished from the snapshot (remove_slice / restarted
  // store). Both `slices` (SliceStore contract) and `entries_` are sorted
  // by site id, so one linear sweep finds the absentees.
  auto slice_it = slices.begin();
  for (auto it = entries_.begin(); it != entries_.end();) {
    while (slice_it != slices.end() && slice_it->site < it->first) ++slice_it;
    bool present = slice_it != slices.end() && slice_it->site == it->first;
    it = present ? std::next(it) : entries_.erase(it);
  }
}

std::vector<BlockedStatus> SliceCache::merge(
    const std::vector<Slice>& slices,
    const std::function<void(SiteId, const CodecError&)>& on_corrupt) {
  refresh(slices, on_corrupt);
  std::vector<BlockedStatus> merged;
  for (const auto& [site, entry] : entries_) {
    merged.insert(merged.end(), entry.statuses.begin(), entry.statuses.end());
  }
  sort_by_task(merged);
  return merged;
}

std::size_t SliceCache::status_count(
    const std::vector<Slice>& slices,
    const std::function<void(SiteId, const CodecError&)>& on_corrupt) {
  refresh(slices, on_corrupt);
  std::size_t count = 0;
  for (const auto& [site, entry] : entries_) count += entry.statuses.size();
  return count;
}

// --- SharedStore -------------------------------------------------------------

SharedStore::SharedStore(std::shared_ptr<SliceStore> store, SiteId site)
    : store_(std::move(store)), site_(site) {}

SharedStore::~SharedStore() {
  try {
    store_->remove_slice(site_);
  } catch (const StoreUnavailableError&) {
    // A slice stranded by an outage is the crash case: survivors cope.
  }
}

void SharedStore::flush_locked() {
  std::vector<BlockedStatus> batch;
  batch.reserve(mirror_.size());
  for (const auto& [task, status] : mirror_) batch.push_back(status);
  store_->put_slice(site_, encode_statuses(batch));
}

void SharedStore::set_blocked(BlockedStatus status) {
  std::lock_guard<std::mutex> lock(mutex_);
  TaskId task = status.task;
  auto it = mirror_.find(task);
  if (it != mirror_.end() && it->second == status) return;  // no-op republish
  BlockedStatus previous;
  bool had_previous = it != mirror_.end();
  if (had_previous) previous = it->second;
  mirror_[task] = std::move(status);
  try {
    flush_locked();
  } catch (...) {
    // Keep mirror and store consistent: withdraw the failed update.
    if (had_previous) {
      mirror_[task] = std::move(previous);
    } else {
      mirror_.erase(task);
    }
    throw;
  }
}

void SharedStore::clear_blocked(TaskId task) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = mirror_.find(task);
  if (it == mirror_.end()) return;
  BlockedStatus previous = std::move(it->second);
  mirror_.erase(it);
  try {
    flush_locked();
  } catch (...) {
    mirror_[task] = std::move(previous);
    throw;
  }
}

std::vector<BlockedStatus> SharedStore::snapshot() const {
  std::vector<Slice> slices = store_->snapshot();
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_.merge(slices);
}

std::size_t SharedStore::blocked_count() const {
  std::vector<Slice> slices = store_->snapshot();
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_.status_count(slices);
}

std::uint64_t SharedStore::decode_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_.decodes();
}

void SharedStore::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (mirror_.empty()) return;
  auto previous = std::move(mirror_);
  mirror_.clear();
  try {
    flush_locked();
  } catch (...) {
    mirror_ = std::move(previous);
    throw;
  }
}

}  // namespace armus::dist
