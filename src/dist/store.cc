#include "dist/store.h"

#include <algorithm>
#include <random>
#include <thread>

namespace armus::dist {

namespace {

void simulate_hop(std::chrono::microseconds latency) {
  if (latency.count() > 0) std::this_thread::sleep_for(latency);
}

/// A non-zero boot generation. Randomness (not a counter) because two
/// *processes* hosting successive lives of "the same" store must not
/// collide — that is exactly the restart case the generation detects.
std::uint64_t fresh_generation() {
  std::random_device rd;
  for (;;) {
    std::uint64_t g = (static_cast<std::uint64_t>(rd()) << 32) | rd();
    if (g != 0) return g;
  }
}

void sort_by_task(std::vector<BlockedStatus>& statuses) {
  std::sort(statuses.begin(), statuses.end(),
            [](const BlockedStatus& a, const BlockedStatus& b) {
              return a.task < b.task;
            });
}

}  // namespace

DeltaSnapshot SliceStore::snapshot_since(std::uint64_t since) const {
  // Unversioned fallback for backends without change tracking: a full
  // read, reported as such (version 0) so callers never skip on it.
  (void)since;
  DeltaSnapshot delta;
  delta.changed = snapshot();
  delta.live_sites.reserve(delta.changed.size());
  for (const Slice& slice : delta.changed) delta.live_sites.push_back(slice.site);
  return delta;
}

std::uint64_t SliceStore::put_slice_delta(SiteId site,
                                          std::uint64_t base_version,
                                          const std::string& delta) {
  // Backends without delta support reject every base: the writer falls
  // back to a full-slice publish.
  (void)site;
  (void)base_version;
  (void)delta;
  throw SliceBaseMismatchError(0);
}

Store::Store(Config config)
    : config_(std::move(config)),
      generation_(config_.generation != 0 ? config_.generation
                                          : fresh_generation()) {
  if (!config_.clock) {
    config_.clock = [] { return std::chrono::steady_clock::now(); };
  }
  std::size_t count = config_.shards == 0 ? 1 : config_.shards;
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

void Store::check_available() const {
  if (!available_.load(std::memory_order_relaxed)) {
    throw StoreUnavailableError();
  }
}

Store::Shard& Store::shard_for(SiteId site) const {
  return *shards_[site % shards_.size()];
}

std::unique_lock<std::mutex> Store::lock_shard(const Shard& shard) const {
  std::unique_lock<std::mutex> lock(shard.mutex, std::try_to_lock);
  if (!lock.owns_lock()) {
    shard.contention.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
  return lock;
}

void Store::touch_locked(Shard& shard, SiteId site) {
  // The store-wide counter is bumped *while holding the shard's mutex*.
  // That ordering is what makes snapshot_since lossless: a reader first
  // loads the counter (V0), then visits every shard under its lock. Any
  // write the reader's visit missed must have taken the shard lock after
  // the reader released it — which happens-after the reader's V0 load, so
  // by read-write coherence on the atomic its changed_at is > V0 and the
  // reader's next snapshot_since(V0) fetches it.
  shard.changed_at[site] = version_.fetch_add(1, std::memory_order_acq_rel) + 1;
  shard.changed_time[site] = config_.clock();
  writes_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Store::put_slice(SiteId site, std::string payload) {
  simulate_hop(config_.latency);
  Shard& shard = shard_for(site);
  auto lock = lock_shard(shard);
  check_available();
  dist::Slice& slice = shard.slices[site];
  slice.site = site;
  slice.payload = std::move(payload);
  ++slice.version;
  touch_locked(shard, site);
  return slice.version;
}

std::pair<bool, std::uint64_t> Store::put_slice_if_newer(SiteId site,
                                                         std::string payload,
                                                         std::uint64_t version) {
  simulate_hop(config_.latency);
  Shard& shard = shard_for(site);
  auto lock = lock_shard(shard);
  check_available();
  auto it = shard.slices.find(site);
  if (it != shard.slices.end() && version <= it->second.version) {
    return {false, it->second.version};
  }
  dist::Slice& slice = shard.slices[site];
  slice.site = site;
  slice.payload = std::move(payload);
  slice.version = version;
  touch_locked(shard, site);
  return {true, version};
}

std::uint64_t Store::put_slice_delta(SiteId site, std::uint64_t base_version,
                                     const std::string& delta) {
  simulate_hop(config_.latency);
  Shard& shard = shard_for(site);
  auto lock = lock_shard(shard);
  check_available();
  auto it = shard.slices.find(site);
  if (it == shard.slices.end() || it->second.version != base_version) {
    throw SliceBaseMismatchError(it == shard.slices.end()
                                     ? 0
                                     : it->second.version);
  }
  std::vector<BlockedStatus> statuses = decode_statuses(it->second.payload);
  it->second.payload = encode_statuses(apply_delta(std::move(statuses),
                                                   decode_delta(delta)));
  ++it->second.version;
  touch_locked(shard, site);
  return it->second.version;
}

std::pair<bool, std::uint64_t> Store::put_slice_delta_if_newer(
    SiteId site, std::uint64_t base_version, std::uint64_t proposed,
    const std::string& delta) {
  simulate_hop(config_.latency);
  Shard& shard = shard_for(site);
  auto lock = lock_shard(shard);
  check_available();
  auto it = shard.slices.find(site);
  if (it == shard.slices.end() || it->second.version != base_version) {
    throw SliceBaseMismatchError(it == shard.slices.end()
                                     ? 0
                                     : it->second.version);
  }
  if (proposed <= it->second.version) return {false, it->second.version};
  std::vector<BlockedStatus> statuses = decode_statuses(it->second.payload);
  it->second.payload = encode_statuses(apply_delta(std::move(statuses),
                                                   decode_delta(delta)));
  it->second.version = proposed;
  touch_locked(shard, site);
  return {true, proposed};
}

void Store::remove_slice(SiteId site) {
  simulate_hop(config_.latency);
  Shard& shard = shard_for(site);
  auto lock = lock_shard(shard);
  check_available();
  if (shard.slices.erase(site) > 0) {
    shard.changed_at.erase(site);
    shard.changed_time.erase(site);
  }
  // A removal changes the global view even when the site had no slice —
  // keeping the counter monotone per accepted write is simpler and only
  // costs readers a no-op refresh.
  version_.fetch_add(1, std::memory_order_acq_rel);
  writes_.fetch_add(1, std::memory_order_relaxed);
}

std::optional<dist::Slice> Store::get_slice(SiteId site) const {
  simulate_hop(config_.latency);
  Shard& shard = shard_for(site);
  auto lock = lock_shard(shard);
  check_available();
  reads_.fetch_add(1, std::memory_order_relaxed);
  auto it = shard.slices.find(site);
  if (it == shard.slices.end()) return std::nullopt;
  return it->second;
}

std::vector<dist::Slice> Store::snapshot() const {
  simulate_hop(config_.latency);
  check_available();
  std::vector<dist::Slice> out;
  for (const auto& shard : shards_) {
    auto lock = lock_shard(*shard);
    for (const auto& [site, slice] : shard->slices) out.push_back(slice);
  }
  std::sort(out.begin(), out.end(),
            [](const dist::Slice& a, const dist::Slice& b) {
              return a.site < b.site;
            });
  reads_.fetch_add(1, std::memory_order_relaxed);
  return out;
}

DeltaSnapshot Store::snapshot_since(std::uint64_t since) const {
  simulate_hop(config_.latency);
  check_available();
  DeltaSnapshot delta;
  // Loaded *before* visiting any shard; see touch_locked for why a write
  // concurrent with the scan is either included here or has changed_at >
  // this value (so the reader's next call fetches it) — never both missed.
  delta.version = version_.load(std::memory_order_acquire);
  delta.generation = generation_.load(std::memory_order_acquire);
  for (const auto& shard : shards_) {
    auto lock = lock_shard(*shard);
    for (const auto& [site, slice] : shard->slices) {
      delta.live_sites.push_back(site);
      if (shard->changed_at.at(site) > since) delta.changed.push_back(slice);
    }
  }
  std::sort(delta.live_sites.begin(), delta.live_sites.end());
  std::sort(delta.changed.begin(), delta.changed.end(),
            [](const dist::Slice& a, const dist::Slice& b) {
              return a.site < b.site;
            });
  reads_.fetch_add(1, std::memory_order_relaxed);
  return delta;
}

std::uint64_t Store::version() const {
  return version_.load(std::memory_order_acquire);
}

std::vector<SliceInspect> Store::inspect() const {
  check_available();
  auto now = config_.clock();
  std::vector<SliceInspect> rows;
  for (const auto& shard : shards_) {
    auto lock = lock_shard(*shard);
    for (const auto& [site, slice] : shard->slices) {
      SliceInspect row;
      row.site = site;
      row.version = slice.version;
      row.payload_bytes = slice.payload.size();
      try {
        row.blocked = decode_statuses(slice.payload).size();
      } catch (const CodecError&) {
        // Introspection reports what it can; the checker's corrupt-slice
        // path owns the loud handling.
        row.blocked = 0;
      }
      auto changed = shard->changed_time.find(site);
      if (changed != shard->changed_time.end() && now > changed->second) {
        row.age_ms = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                now - changed->second)
                .count());
      }
      rows.push_back(row);
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const SliceInspect& a, const SliceInspect& b) {
              return a.site < b.site;
            });
  return rows;
}

std::uint64_t Store::generation() const {
  return generation_.load(std::memory_order_acquire);
}

void Store::bump_generation() {
  generation_.store(fresh_generation(), std::memory_order_release);
}

std::size_t Store::retain_only(const std::vector<SiteId>& live) {
  std::size_t removed = 0;
  for (const auto& shard : shards_) {
    auto lock = lock_shard(*shard);
    check_available();
    for (auto it = shard->slices.begin(); it != shard->slices.end();) {
      if (std::binary_search(live.begin(), live.end(), it->first)) {
        ++it;
        continue;
      }
      SiteId site = it->first;
      it = shard->slices.erase(it);
      shard->changed_at.erase(site);
      shard->changed_time.erase(site);
      version_.fetch_add(1, std::memory_order_acq_rel);
      writes_.fetch_add(1, std::memory_order_relaxed);
      ++removed;
    }
  }
  return removed;
}

void Store::set_available(bool available) {
  available_.store(available, std::memory_order_relaxed);
}

bool Store::available() const {
  return available_.load(std::memory_order_relaxed);
}

std::uint64_t Store::writes() const {
  return writes_.load(std::memory_order_relaxed);
}

std::uint64_t Store::reads() const {
  return reads_.load(std::memory_order_relaxed);
}

std::size_t Store::slice_count() const {
  std::size_t count = 0;
  for (const auto& shard : shards_) {
    auto lock = lock_shard(*shard);
    count += shard->slices.size();
  }
  return count;
}

std::size_t Store::shard_count() const { return shards_.size(); }

std::vector<std::uint64_t> Store::shard_contention() const {
  std::vector<std::uint64_t> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    out.push_back(shard->contention.load(std::memory_order_relaxed));
  }
  return out;
}

std::vector<BlockedStatus> merge_slices(
    const std::vector<Slice>& slices,
    const std::function<void(SiteId, const CodecError&)>& on_corrupt) {
  std::vector<BlockedStatus> merged;
  for (const Slice& slice : slices) {
    std::vector<BlockedStatus> decoded;
    try {
      decoded = decode_statuses(slice.payload);
    } catch (const CodecError& e) {
      if (!on_corrupt) throw;
      on_corrupt(slice.site, e);
      continue;
    }
    merged.insert(merged.end(), std::make_move_iterator(decoded.begin()),
                  std::make_move_iterator(decoded.end()));
  }
  sort_by_task(merged);
  return merged;
}

// --- SliceCache --------------------------------------------------------------

void SliceCache::apply(
    const DeltaSnapshot& delta,
    const std::function<void(SiteId, const CodecError&)>& on_corrupt) {
  for (const Slice& slice : delta.changed) {
    auto it = entries_.find(slice.site);
    if (it != entries_.end() && it->second.version == slice.version) continue;
    Entry entry;
    entry.version = slice.version;
    ++decodes_;
    try {
      entry.statuses = decode_statuses(slice.payload);
    } catch (const CodecError& e) {
      if (!on_corrupt) throw;
      // Cache the corruption verdict too: an unchanged corrupt slice must
      // not be re-decoded (and re-reported) on every round.
      entry.corrupt = true;
      on_corrupt(slice.site, e);
    }
    entries_[slice.site] = std::move(entry);
  }
  // Evict sites that no longer hold a slice. Both lists are sorted.
  auto live_it = delta.live_sites.begin();
  for (auto it = entries_.begin(); it != entries_.end();) {
    while (live_it != delta.live_sites.end() && *live_it < it->first) ++live_it;
    bool present = live_it != delta.live_sites.end() && *live_it == it->first;
    it = present ? std::next(it) : entries_.erase(it);
  }
}

std::vector<BlockedStatus> SliceCache::merged() const {
  std::vector<BlockedStatus> out;
  for (const auto& [site, entry] : entries_) {
    out.insert(out.end(), entry.statuses.begin(), entry.statuses.end());
  }
  sort_by_task(out);
  return out;
}

std::size_t SliceCache::merged_count() const {
  std::size_t count = 0;
  for (const auto& [site, entry] : entries_) count += entry.statuses.size();
  return count;
}

// --- CachedSliceReader -------------------------------------------------------

CachedSliceReader::Read CachedSliceReader::read(
    const SliceStore& store,
    const std::function<void(SiteId, const CodecError&)>& on_corrupt) {
  std::uint64_t since;
  std::uint64_t generation;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    since = seen_version_;
    generation = seen_generation_;
  }
  // The round trips happen without the lock: a fetch must never block
  // merged()/change_token() readers on another thread.
  DeltaSnapshot delta = store.snapshot_since(since);
  bool full_refetch = false;
  if (delta.version != 0 &&
      ((generation != 0 && delta.generation != generation) ||
       delta.version < since)) {
    // A different boot generation (or a counter that went backwards): a
    // restarted store. Its change history — and its slice versions — are
    // void, so refetch everything and rebuild the cache from scratch.
    delta = store.snapshot_since(0);
    full_refetch = true;
  }

  std::lock_guard<std::mutex> lock(mutex_);
  if (delta.version == 0) {
    // Unversioned backend: every read is a full, applied read.
    unversioned_ = true;
    cache_.apply(delta, on_corrupt);
    primed_ = true;
    ++change_token_;
    return {Outcome::kApplied, delta.changed.size()};
  }
  if (full_refetch) {
    if (seen_generation_ == delta.generation && delta.version < seen_version_) {
      // A concurrent read already applied a newer snapshot of the same
      // (restarted) store lifetime while our refetch was in flight.
      return {Outcome::kStale, 0};
    }
    // Per-slice versions can collide across store lifetimes; stale cache
    // entries must not be trusted to match by version.
    cache_.clear();
  } else if ((seen_generation_ != 0 && delta.generation != seen_generation_) ||
             delta.version < seen_version_) {
    // A concurrent read applied a newer response (possibly from a newer
    // store lifetime) while this one was in flight; the cache is ahead.
    return {Outcome::kStale, 0};
  } else if (primed_ && delta.version == seen_version_ &&
             delta.changed.empty()) {
    return {Outcome::kUnchanged, 0};
  }
  cache_.apply(delta, on_corrupt);
  seen_version_ = delta.version;
  seen_generation_ = delta.generation;
  primed_ = true;
  ++change_token_;
  return {Outcome::kApplied, delta.changed.size()};
}

std::vector<BlockedStatus> CachedSliceReader::merged() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_.merged();
}

std::size_t CachedSliceReader::merged_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_.merged_count();
}

std::uint64_t CachedSliceReader::change_token() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return change_token_;
}

bool CachedSliceReader::backend_unversioned() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return unversioned_;
}

std::uint64_t CachedSliceReader::decodes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_.decodes();
}

// --- SharedStore -------------------------------------------------------------

SharedStore::SharedStore(std::shared_ptr<SliceStore> store, SiteId site)
    : store_(std::move(store)), site_(site) {}

SharedStore::~SharedStore() {
  try {
    store_->remove_slice(site_);
  } catch (const StoreUnavailableError&) {
    // A slice stranded by an outage is the crash case: survivors cope.
  }
}

void SharedStore::flush_locked() {
  std::vector<BlockedStatus> batch;
  batch.reserve(mirror_.size());
  for (const auto& [task, status] : mirror_) batch.push_back(status);
  store_->put_slice(site_, encode_statuses(batch));
}

void SharedStore::set_blocked(BlockedStatus status) {
  std::lock_guard<std::mutex> lock(mutex_);
  TaskId task = status.task;
  auto it = mirror_.find(task);
  if (it != mirror_.end() && it->second == status) return;  // no-op republish
  BlockedStatus previous;
  bool had_previous = it != mirror_.end();
  if (had_previous) previous = it->second;
  mirror_[task] = std::move(status);
  try {
    flush_locked();
  } catch (...) {
    // Keep mirror and store consistent: withdraw the failed update.
    if (had_previous) {
      mirror_[task] = std::move(previous);
    } else {
      mirror_.erase(task);
    }
    throw;
  }
}

void SharedStore::clear_blocked(TaskId task) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = mirror_.find(task);
  if (it == mirror_.end()) return;
  BlockedStatus previous = std::move(it->second);
  mirror_.erase(it);
  try {
    flush_locked();
  } catch (...) {
    mirror_[task] = std::move(previous);
    throw;
  }
}

std::vector<BlockedStatus> SharedStore::snapshot() const {
  reader_.read(*store_);
  return reader_.merged();
}

std::size_t SharedStore::blocked_count() const {
  reader_.read(*store_);
  return reader_.merged_count();
}

std::uint64_t SharedStore::version() const {
  // Over an unversioned backend a change probe costs a full read and
  // proves nothing — report kUnversioned (callers then never skip)
  // without touching the store again.
  if (reader_.backend_unversioned()) return StateStore::kUnversioned;
  reader_.read(*store_);
  if (reader_.backend_unversioned()) return StateStore::kUnversioned;
  return reader_.change_token();
}

std::uint64_t SharedStore::decode_count() const { return reader_.decodes(); }

void SharedStore::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (mirror_.empty()) return;
  auto previous = std::move(mirror_);
  mirror_.clear();
  try {
    flush_locked();
  } catch (...) {
    mirror_ = std::move(previous);
    throw;
  }
}

}  // namespace armus::dist
