#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/state_store.h"
#include "dist/codec.h"

/// The shared global store of the distributed deployment (§5.2): sites
/// publish blocked-status slices into it, checkers read the snapshot of
/// every slice.
///
/// Each site owns one *slice* — an opaque payload (codec-encoded
/// BlockedStatus batch) it overwrites wholesale on every publish — and a
/// checker reads the snapshot of every slice. Slices are independent, so a
/// site crash leaves its last published slice visible (exactly what lets a
/// surviving site still detect a cycle through the dead site's tasks).
///
/// Two backends implement the SliceStore interface:
///   * Store            — in-process (one address space, tests/benchmarks)
///   * net::RemoteStore — TCP client of an armus-kv server (separate
///                        processes/hosts; see src/net/ and
///                        docs/WIRE_PROTOCOL.md)
namespace armus::dist {

using SiteId = std::uint32_t;

/// Raised by store operations while the store is unavailable: a simulated
/// outage on the in-process Store, or any network failure on a
/// net::RemoteStore. Sites absorb it and retry on their next period.
class StoreUnavailableError : public std::runtime_error {
 public:
  StoreUnavailableError() : std::runtime_error("store unavailable") {}
  explicit StoreUnavailableError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Raised by put_slice_delta when the store does not hold the slice at
/// exactly the delta's base version (another writer got there, the store
/// restarted, or the backend cannot apply deltas at all). The writer
/// falls back to a full-slice publish.
class SliceBaseMismatchError : public std::runtime_error {
 public:
  explicit SliceBaseMismatchError(std::uint64_t current_version)
      : std::runtime_error("slice base version mismatch (current " +
                           std::to_string(current_version) + ")"),
        current_version_(current_version) {}

  /// The version the store actually holds (0 when unknown).
  [[nodiscard]] std::uint64_t current_version() const {
    return current_version_;
  }

 private:
  std::uint64_t current_version_;
};

/// One site's published payload. `version` is strictly increasing per
/// site, so a reader (or a cache) can tell a re-publish from an unchanged
/// slice without decoding the payload.
struct Slice {
  SiteId site = 0;
  std::string payload;
  std::uint64_t version = 0;
};

/// A change-narrowed store read (snapshot_since): only the slices whose
/// content changed after the reader's last observed store version travel,
/// plus the list of live sites so the reader can evict removed slices.
struct DeltaSnapshot {
  /// The store-wide change version as of this read; pass it back as the
  /// next `since`. 0 means the backend is unversioned — the reader must
  /// treat every response as changed and never skip.
  std::uint64_t version = 0;

  /// The store's boot generation (non-zero for versioned backends): a
  /// fresh value per store lifetime. A reader seeing a different
  /// generation than its last read is talking to a restarted store whose
  /// change history — and whose slice versions — started over; it must
  /// drop its cache and refetch from 0, because per-slice versions can
  /// collide across lifetimes.
  std::uint64_t generation = 0;

  /// Slices changed after `since`, sorted by site id.
  std::vector<Slice> changed;

  /// Every site currently holding a slice, sorted.
  std::vector<SiteId> live_sites;
};

/// The slice API every store backend exposes. Site/Cluster and
/// SharedStore run unchanged over any implementation; backends signal
/// unavailability (outage, network failure) with StoreUnavailableError
/// and callers map that onto the periodic-retry path.
class SliceStore {
 public:
  virtual ~SliceStore() = default;

  /// Overwrites `site`'s slice; returns the slice's new version.
  virtual std::uint64_t put_slice(SiteId site, std::string payload) = 0;

  /// Applies a codec delta frame (dist::SliceDelta) to `site`'s slice,
  /// which must currently be at exactly `base_version`; returns the new
  /// version. Throws SliceBaseMismatchError when the base does not match —
  /// including the default implementation for backends without delta
  /// support — and the writer then re-publishes the full slice.
  virtual std::uint64_t put_slice_delta(SiteId site, std::uint64_t base_version,
                                        const std::string& delta);

  /// Drops `site`'s slice (graceful site shutdown; a crashed site leaves
  /// its slice behind).
  virtual void remove_slice(SiteId site) = 0;

  /// Every current slice, sorted by site id.
  [[nodiscard]] virtual std::vector<Slice> snapshot() const = 0;

  /// The slices changed since store version `since` (0 = everything), plus
  /// the live-site list. The default implementation falls back to a full
  /// snapshot() with DeltaSnapshot::version = 0 ("unversioned": correct,
  /// never skippable); versioned backends override it so an unchanged
  /// store answers with an empty `changed` list — the read-amplification
  /// fix for N-site deployments (LIST_SLICES_SINCE on armus-kv).
  [[nodiscard]] virtual DeltaSnapshot snapshot_since(std::uint64_t since) const;
};

/// One slice's row in a store introspection (INSPECT on armus-kv, the
/// armus-top table): how current and how busy each site's published
/// state is, computable without shipping the payloads.
struct SliceInspect {
  SiteId site = 0;
  std::uint64_t version = 0;        ///< slice version
  std::uint64_t blocked = 0;        ///< decoded status count (0 if corrupt)
  std::uint64_t age_ms = 0;         ///< now − last accepted change
  std::uint64_t payload_bytes = 0;  ///< encoded slice size
};

class Store final : public SliceStore {
 public:
  struct Config {
    /// Simulated one-way network latency added to every operation.
    std::chrono::microseconds latency{0};

    /// Boot generation reported by snapshot_since. 0 (the default) draws a
    /// fresh random value per Store — tests pinning wire bytes set it.
    std::uint64_t generation = 0;

    /// Clock stamping slice changes and computing inspect() publish ages.
    /// Default: std::chrono::steady_clock::now. Tests pinning INSPECT
    /// wire bytes inject a controllable one.
    std::function<std::chrono::steady_clock::time_point()> clock;

    /// Slice-map shards. Writes to different shards (site id modulo the
    /// count) contend only on their shard's mutex, so thousands of sites
    /// can publish concurrently; 0 is clamped to 1. Purely a concurrency
    /// knob — every observable ordering and version sequence is
    /// shard-count independent.
    std::size_t shards = 16;
  };

  /// Back-compat spelling: the slice type predates the SliceStore split.
  using Slice = dist::Slice;

  Store() : Store(Config{}) {}
  explicit Store(Config config);
  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  /// Overwrites `site`'s slice. Throws StoreUnavailableError during an
  /// outage.
  std::uint64_t put_slice(SiteId site, std::string payload) override;

  /// Conditional write for replicated clients (the armus-kv server's PUT
  /// path): stores `payload` at exactly `version` when `version` is newer
  /// than the current slice, otherwise leaves the slice untouched.
  /// Returns {accepted, current version after the call}; a rejected write
  /// reports the version the writer must exceed. Throws
  /// StoreUnavailableError during an outage.
  std::pair<bool, std::uint64_t> put_slice_if_newer(SiteId site,
                                                    std::string payload,
                                                    std::uint64_t version);

  /// Decodes the stored payload, applies the delta frame, re-encodes, and
  /// bumps the slice version. Throws SliceBaseMismatchError unless the
  /// slice is at exactly `base_version`; CodecError if the stored payload
  /// or the delta is malformed.
  std::uint64_t put_slice_delta(SiteId site, std::uint64_t base_version,
                                const std::string& delta) override;

  /// The armus-kv server's delta path: applies the delta only when the
  /// slice is at `base_version` *and* `proposed` is newer than the current
  /// version, storing exactly `proposed`. Returns {accepted, current
  /// version}; base mismatches throw SliceBaseMismatchError.
  std::pair<bool, std::uint64_t> put_slice_delta_if_newer(
      SiteId site, std::uint64_t base_version, std::uint64_t proposed,
      const std::string& delta);

  void remove_slice(SiteId site) override;

  /// `site`'s slice, if published.
  [[nodiscard]] std::optional<dist::Slice> get_slice(SiteId site) const;

  /// Every current slice, sorted by site id. Throws StoreUnavailableError
  /// during an outage.
  [[nodiscard]] std::vector<dist::Slice> snapshot() const override;

  /// Change-narrowed read: slices whose content changed after store
  /// version `since`, plus the live-site list. The returned version is the
  /// store-wide change counter (starts at 1 for an empty store, bumped by
  /// every accepted write or removal), so `snapshot_since(version)` on an
  /// idle store answers with an empty `changed` list.
  [[nodiscard]] DeltaSnapshot snapshot_since(std::uint64_t since) const override;

  /// The store-wide change version (what snapshot_since reports).
  [[nodiscard]] std::uint64_t version() const;

  /// One introspection row per live slice, sorted by site id: version,
  /// decoded blocked count (0 for a corrupt payload — introspection must
  /// not throw on data the checker would skip), publish age against
  /// Config::clock, and payload size. The INSPECT opcode serves exactly
  /// this; armus-top renders it. Throws StoreUnavailableError during an
  /// outage.
  [[nodiscard]] std::vector<SliceInspect> inspect() const;

  /// The store's boot generation (as reported by snapshot_since).
  [[nodiscard]] std::uint64_t generation() const;

  /// Swaps in a fresh random boot generation, exactly as if the store had
  /// restarted — every reader's next snapshot_since sees the mismatch,
  /// drops its cache, and refetches from 0. The armus-kv failover path
  /// (replica promotion, replication resync) calls this so a reader can
  /// never carry slice-version comparisons across the discontinuity.
  /// Slices and the change version survive; only the generation changes.
  void bump_generation();

  /// Removes every slice whose site is absent from `live` (sorted
  /// ascending) — the replication client's eviction half of applying a
  /// streamed frame. Returns the number of slices removed; the store-wide
  /// change version is bumped once per removal, as remove_slice would.
  std::size_t retain_only(const std::vector<SiteId>& live);

  /// Failure injection: while unavailable, every operation throws. Data
  /// survives the outage.
  void set_available(bool available);
  [[nodiscard]] bool available() const;

  /// Completed write / read operation counts (put_slice + remove_slice are
  /// writes, snapshot/get_slice are reads; failed attempts don't count).
  [[nodiscard]] std::uint64_t writes() const;
  [[nodiscard]] std::uint64_t reads() const;

  /// Live slice count (cheap: no payloads touched).
  [[nodiscard]] std::size_t slice_count() const;

  /// The shard layout, for observability: shard_contention()[i] counts the
  /// times a writer or reader found shard i's mutex held and had to wait.
  /// Zero under a well-spread load — the sharding working as intended.
  [[nodiscard]] std::size_t shard_count() const;
  [[nodiscard]] std::vector<std::uint64_t> shard_contention() const;

 private:
  /// One shard of the slice map: site id modulo the shard count picks the
  /// shard, and everything keyed by site lives under its mutex. The
  /// store-wide change counter stays a single atomic — bumped *inside* the
  /// owning shard's critical section, which is what keeps snapshot_since
  /// sound (see the comment there).
  struct Shard {
    mutable std::mutex mutex;
    std::map<SiteId, dist::Slice> slices;
    /// Store version at which each live slice last changed.
    std::map<SiteId, std::uint64_t> changed_at;
    /// Clock reading at each live slice's last accepted change (inspect()
    /// publish ages).
    std::map<SiteId, std::chrono::steady_clock::time_point> changed_time;
    /// Lock acquisitions that found the mutex held (try_lock failed).
    mutable std::atomic<std::uint64_t> contention{0};
  };

  void check_available() const;
  [[nodiscard]] Shard& shard_for(SiteId site) const;
  /// Locks `shard`, counting contention when the mutex was already held.
  [[nodiscard]] std::unique_lock<std::mutex> lock_shard(const Shard& shard) const;
  /// Bumps the store-wide version and stamps `site`'s change. Caller holds
  /// the owning shard's mutex and has already mutated the slice.
  void touch_locked(Shard& shard, SiteId site);

  Config config_;
  mutable std::vector<std::unique_ptr<Shard>> shards_;
  /// Store-wide change counter; 1 = the initial empty state (0 is the
  /// DeltaSnapshot "unversioned" sentinel).
  std::atomic<std::uint64_t> version_{1};
  /// Boot generation (non-zero), see DeltaSnapshot::generation. Changes
  /// only through bump_generation (promotion / replication resync).
  std::atomic<std::uint64_t> generation_;
  std::atomic<bool> available_{true};
  std::atomic<std::uint64_t> writes_{0};
  mutable std::atomic<std::uint64_t> reads_{0};
};

/// Decodes every slice and merges the statuses into one snapshot, sorted
/// by task — the global view a distributed checker analyses. A corrupt
/// slice is reported through `on_corrupt` and skipped when the callback is
/// set; with no callback the CodecError propagates.
std::vector<BlockedStatus> merge_slices(
    const std::vector<Slice>& slices,
    const std::function<void(SiteId, const CodecError&)>& on_corrupt = {});

/// Version-keyed decode cache: a slice whose version is unchanged since
/// the previous call is served from its cached decode, so a snapshot
/// round costs O(changed slices) decodes instead of O(all slices) — the
/// per-check-proportional-to-change property the periodic checkers need
/// at scale. Entries for sites that vanish from the snapshot are evicted.
///
/// Not internally synchronised; callers (SharedStore, Site) hold their
/// own lock around it.
class SliceCache {
 public:
  /// Applies a change-narrowed read: decodes the changed slices and evicts
  /// entries for sites absent from the live list. With snapshot_since this
  /// is the whole read path — unchanged slices neither travel nor decode.
  void apply(const DeltaSnapshot& delta,
             const std::function<void(SiteId, const CodecError&)>& on_corrupt = {});

  /// Drops every entry (the decode counter survives). Callers clear before
  /// applying a from-zero refetch of a *restarted* store: per-slice
  /// versions can collide across store lifetimes, so stale entries must
  /// not be trusted to match by version.
  void clear() { entries_.clear(); }

  /// The merged view of the current entries, sorted by task (use after
  /// apply()).
  [[nodiscard]] std::vector<BlockedStatus> merged() const;

  /// Total status count across the current entries.
  [[nodiscard]] std::size_t merged_count() const;

  /// Cumulative payload decodes performed (i.e. cache misses). A caller
  /// issuing N calls over unchanged slices sees this stay constant after
  /// the first — the unit-level evidence for the O(changed) claim.
  [[nodiscard]] std::uint64_t decodes() const { return decodes_; }

 private:
  struct Entry {
    std::uint64_t version = 0;
    bool corrupt = false;
    std::vector<BlockedStatus> statuses;
  };

  std::map<SiteId, Entry> entries_;
  std::uint64_t decodes_ = 0;
};

/// The guarded read path every slice-store consumer shares: one
/// change-narrowed fetch (snapshot_since) plus the restart and concurrency
/// handling, feeding a SliceCache, behind its own lock. SharedStore and
/// Site::check_now both read through one of these, so the restart rules —
/// boot-generation mismatch or version regression ⇒ drop the cache and
/// refetch from zero; a response older than what a concurrent reader
/// already applied ⇒ discard — live in exactly one place.
class CachedSliceReader {
 public:
  enum class Outcome {
    kUnchanged,  ///< store version unchanged: the cache is already exact
    kStale,      ///< a concurrent read applied a newer response; cache ahead
    kApplied,    ///< delta applied (possibly a restart-triggered refetch)
  };

  struct Read {
    Outcome outcome = Outcome::kApplied;
    /// Changed slices in the applied delta (0 unless kApplied).
    std::size_t slices_fetched = 0;
  };

  /// One guarded read against `store`. Store exceptions
  /// (StoreUnavailableError) propagate untouched; `on_corrupt` as in
  /// SliceCache::apply (absent ⇒ CodecError propagates).
  Read read(const SliceStore& store,
            const std::function<void(SiteId, const CodecError&)>& on_corrupt = {});

  /// Merged statuses (sorted by task) / status count over the cache.
  [[nodiscard]] std::vector<BlockedStatus> merged() const;
  [[nodiscard]] std::size_t merged_count() const;

  /// Monotonic local change token: bumped by every applied delta, stable
  /// across unchanged reads. Unlike the raw store version it cannot repeat
  /// across store restarts (a generation change forces an applied
  /// refetch), so it is safe to use as a StateStore epoch. 0 until the
  /// first applied read.
  [[nodiscard]] std::uint64_t change_token() const;

  /// True once a read has shown the backend to be unversioned
  /// (DeltaSnapshot::version == 0): every read applies in full and cheap
  /// change probes are pointless.
  [[nodiscard]] bool backend_unversioned() const;

  /// Cumulative payload decodes (SliceCache::decodes passthrough).
  [[nodiscard]] std::uint64_t decodes() const;

 private:
  mutable std::mutex mutex_;
  SliceCache cache_;
  std::uint64_t seen_version_ = 0;
  std::uint64_t seen_generation_ = 0;
  std::uint64_t change_token_ = 0;
  bool primed_ = false;
  bool unversioned_ = false;
};

/// A StateStore that *is* a site's window onto the shared store: every
/// mutation re-encodes this site's slice and writes it through, and every
/// read decodes the merged snapshot of all sites. Plugging one of these
/// into VerifierConfig::store yields the §5.2 "Verifier bound to the shared
/// store" — its checker sees the whole cluster's blocked statuses, while
/// its blocking hooks publish only this site's tasks.
///
/// dist::Site instead batches its publishes on a period (write-through on
/// every block/unblock costs a store round-trip per event); SharedStore is
/// the strongly consistent variant for in-process sharing, tests, and the
/// ARMUS_STORE=tcp://… env path (over a net::RemoteStore backend).
///
/// Store outages surface as StoreUnavailableError from the mutating and
/// reading calls; the local mirror stays coherent, so the next successful
/// write re-publishes the full slice.
class SharedStore final : public StateStore {
 public:
  SharedStore(std::shared_ptr<SliceStore> store, SiteId site);

  /// Removes this site's slice on clean destruction; a crashed site (one
  /// that never destructs) leaves its slice for the survivors to analyse.
  ~SharedStore() override;

  void set_blocked(BlockedStatus status) override;
  void clear_blocked(TaskId task) override;

  /// The merged, decoded view of *every* site's slice, sorted by task.
  /// Reads are change-narrowed (snapshot_since): only slices that changed
  /// since this store's last read travel and decode.
  [[nodiscard]] std::vector<BlockedStatus> snapshot() const override;
  [[nodiscard]] std::size_t blocked_count() const override;

  /// Clears this site's tasks (not other sites').
  void clear() override;

  /// The StateStore change epoch, derived from the backing store's change
  /// version and boot generation — any site's publish (or removal)
  /// advances it, and a store restart can never repeat an epoch (the
  /// generation forces a fresh value even when the new store's counters
  /// collide with the old ones). Costs one snapshot_since round trip,
  /// which is payload-free while nothing changed; the fetched changes
  /// feed the decode cache, so a following snapshot() is served without
  /// re-transfer. Returns kUnversioned over a backend whose
  /// snapshot_since is the unversioned fallback (detected after the
  /// first read; thereafter free).
  [[nodiscard]] std::uint64_t version() const override;

  [[nodiscard]] SiteId site() const { return site_; }
  [[nodiscard]] const std::shared_ptr<SliceStore>& backing() const {
    return store_;
  }

  /// Payload decodes performed by snapshot()/blocked_count() so far; stays
  /// flat across repeated calls while no slice changes.
  [[nodiscard]] std::uint64_t decode_count() const;

 private:
  /// Re-encodes the mirror and publishes it; caller holds mutex_.
  void flush_locked();

  std::shared_ptr<SliceStore> store_;
  SiteId site_;
  mutable std::mutex mutex_;
  /// This site's statuses, ordered by task for a deterministic encoding.
  std::map<TaskId, BlockedStatus> mirror_;
  /// The shared guarded read path (self-locked): change-narrowed fetches,
  /// restart handling, decode cache.
  mutable CachedSliceReader reader_;
};

}  // namespace armus::dist
