#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/state_store.h"
#include "dist/codec.h"

/// The shared global store of the distributed deployment (§5.2): our
/// in-process stand-in for the Redis instance the paper's multi-site Armus
/// publishes blocked statuses into.
///
/// Each site owns one *slice* — an opaque payload (codec-encoded
/// BlockedStatus batch) it overwrites wholesale on every publish — and a
/// checker reads the snapshot of every slice. Slices are independent, so a
/// site crash leaves its last published slice visible (exactly what lets a
/// surviving site still detect a cycle through the dead site's tasks).
namespace armus::dist {

using SiteId = std::uint32_t;

/// Raised by store operations while the store is unavailable (simulated
/// network partition / Redis outage). Sites absorb it and retry on their
/// next period.
class StoreUnavailableError : public std::runtime_error {
 public:
  StoreUnavailableError() : std::runtime_error("store unavailable") {}
};

class Store {
 public:
  struct Config {
    /// Simulated one-way network latency added to every operation.
    std::chrono::microseconds latency{0};
  };

  /// One site's published payload. `version` counts that site's writes, so
  /// a checker (or test) can tell a re-publish from a stale read.
  struct Slice {
    SiteId site = 0;
    std::string payload;
    std::uint64_t version = 0;
  };

  Store() = default;
  explicit Store(Config config) : config_(config) {}
  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  /// Overwrites `site`'s slice. Throws StoreUnavailableError during an
  /// outage.
  void put_slice(SiteId site, std::string payload);

  /// Drops `site`'s slice (graceful site shutdown; a crashed site leaves
  /// its slice behind).
  void remove_slice(SiteId site);

  /// Every current slice, sorted by site id. Throws StoreUnavailableError
  /// during an outage.
  [[nodiscard]] std::vector<Slice> snapshot() const;

  /// Failure injection: while unavailable, every operation throws. Data
  /// survives the outage.
  void set_available(bool available);
  [[nodiscard]] bool available() const;

  /// Completed write / read operation counts (put_slice + remove_slice are
  /// writes, snapshot is a read; failed attempts don't count).
  [[nodiscard]] std::uint64_t writes() const;
  [[nodiscard]] std::uint64_t reads() const;

 private:
  void check_available_locked() const;

  Config config_;
  mutable std::mutex mutex_;
  std::map<SiteId, Slice> slices_;
  bool available_ = true;
  std::uint64_t writes_ = 0;
  mutable std::uint64_t reads_ = 0;
};

/// Decodes every slice and merges the statuses into one snapshot, sorted
/// by task — the global view a distributed checker analyses. A corrupt
/// slice is reported through `on_corrupt` and skipped when the callback is
/// set; with no callback the CodecError propagates.
std::vector<BlockedStatus> merge_slices(
    const std::vector<Store::Slice>& slices,
    const std::function<void(SiteId, const CodecError&)>& on_corrupt = {});

/// A StateStore that *is* a site's window onto the shared store: every
/// mutation re-encodes this site's slice and writes it through, and every
/// read decodes the merged snapshot of all sites. Plugging one of these
/// into VerifierConfig::store yields the §5.2 "Verifier bound to the shared
/// store" — its checker sees the whole cluster's blocked statuses, while
/// its blocking hooks publish only this site's tasks.
///
/// dist::Site instead batches its publishes on a period (write-through on
/// every block/unblock costs a store round-trip per event); SharedStore is
/// the strongly consistent variant for in-process sharing and tests.
///
/// Store outages surface as StoreUnavailableError from the mutating and
/// reading calls; the local mirror stays coherent, so the next successful
/// write re-publishes the full slice.
class SharedStore final : public StateStore {
 public:
  SharedStore(std::shared_ptr<Store> store, SiteId site);

  /// Removes this site's slice on clean destruction; a crashed site (one
  /// that never destructs) leaves its slice for the survivors to analyse.
  ~SharedStore() override;

  void set_blocked(BlockedStatus status) override;
  void clear_blocked(TaskId task) override;

  /// The merged, decoded view of *every* site's slice, sorted by task.
  [[nodiscard]] std::vector<BlockedStatus> snapshot() const override;
  [[nodiscard]] std::size_t blocked_count() const override;

  /// Clears this site's tasks (not other sites').
  void clear() override;

  [[nodiscard]] SiteId site() const { return site_; }
  [[nodiscard]] const std::shared_ptr<Store>& backing() const { return store_; }

 private:
  /// Re-encodes the mirror and publishes it; caller holds mutex_.
  void flush_locked();

  std::shared_ptr<Store> store_;
  SiteId site_;
  mutable std::mutex mutex_;
  /// This site's statuses, ordered by task for a deterministic encoding.
  std::map<TaskId, BlockedStatus> mirror_;
};

}  // namespace armus::dist
