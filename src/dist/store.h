#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/state_store.h"
#include "dist/codec.h"

/// The shared global store of the distributed deployment (§5.2): sites
/// publish blocked-status slices into it, checkers read the snapshot of
/// every slice.
///
/// Each site owns one *slice* — an opaque payload (codec-encoded
/// BlockedStatus batch) it overwrites wholesale on every publish — and a
/// checker reads the snapshot of every slice. Slices are independent, so a
/// site crash leaves its last published slice visible (exactly what lets a
/// surviving site still detect a cycle through the dead site's tasks).
///
/// Two backends implement the SliceStore interface:
///   * Store            — in-process (one address space, tests/benchmarks)
///   * net::RemoteStore — TCP client of an armus-kv server (separate
///                        processes/hosts; see src/net/ and
///                        docs/WIRE_PROTOCOL.md)
namespace armus::dist {

using SiteId = std::uint32_t;

/// Raised by store operations while the store is unavailable: a simulated
/// outage on the in-process Store, or any network failure on a
/// net::RemoteStore. Sites absorb it and retry on their next period.
class StoreUnavailableError : public std::runtime_error {
 public:
  StoreUnavailableError() : std::runtime_error("store unavailable") {}
  explicit StoreUnavailableError(const std::string& what)
      : std::runtime_error(what) {}
};

/// One site's published payload. `version` is strictly increasing per
/// site, so a reader (or a cache) can tell a re-publish from an unchanged
/// slice without decoding the payload.
struct Slice {
  SiteId site = 0;
  std::string payload;
  std::uint64_t version = 0;
};

/// The slice API every store backend exposes. Site/Cluster and
/// SharedStore run unchanged over any implementation; backends signal
/// unavailability (outage, network failure) with StoreUnavailableError
/// and callers map that onto the periodic-retry path.
class SliceStore {
 public:
  virtual ~SliceStore() = default;

  /// Overwrites `site`'s slice; returns the slice's new version.
  virtual std::uint64_t put_slice(SiteId site, std::string payload) = 0;

  /// Drops `site`'s slice (graceful site shutdown; a crashed site leaves
  /// its slice behind).
  virtual void remove_slice(SiteId site) = 0;

  /// Every current slice, sorted by site id.
  [[nodiscard]] virtual std::vector<Slice> snapshot() const = 0;
};

class Store final : public SliceStore {
 public:
  struct Config {
    /// Simulated one-way network latency added to every operation.
    std::chrono::microseconds latency{0};
  };

  /// Back-compat spelling: the slice type predates the SliceStore split.
  using Slice = dist::Slice;

  Store() = default;
  explicit Store(Config config) : config_(config) {}
  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  /// Overwrites `site`'s slice. Throws StoreUnavailableError during an
  /// outage.
  std::uint64_t put_slice(SiteId site, std::string payload) override;

  /// Conditional write for replicated clients (the armus-kv server's PUT
  /// path): stores `payload` at exactly `version` when `version` is newer
  /// than the current slice, otherwise leaves the slice untouched.
  /// Returns {accepted, current version after the call}; a rejected write
  /// reports the version the writer must exceed. Throws
  /// StoreUnavailableError during an outage.
  std::pair<bool, std::uint64_t> put_slice_if_newer(SiteId site,
                                                    std::string payload,
                                                    std::uint64_t version);

  void remove_slice(SiteId site) override;

  /// `site`'s slice, if published.
  [[nodiscard]] std::optional<dist::Slice> get_slice(SiteId site) const;

  /// Every current slice, sorted by site id. Throws StoreUnavailableError
  /// during an outage.
  [[nodiscard]] std::vector<dist::Slice> snapshot() const override;

  /// Failure injection: while unavailable, every operation throws. Data
  /// survives the outage.
  void set_available(bool available);
  [[nodiscard]] bool available() const;

  /// Completed write / read operation counts (put_slice + remove_slice are
  /// writes, snapshot/get_slice are reads; failed attempts don't count).
  [[nodiscard]] std::uint64_t writes() const;
  [[nodiscard]] std::uint64_t reads() const;

 private:
  void check_available_locked() const;

  Config config_;
  mutable std::mutex mutex_;
  std::map<SiteId, dist::Slice> slices_;
  bool available_ = true;
  std::uint64_t writes_ = 0;
  mutable std::uint64_t reads_ = 0;
};

/// Decodes every slice and merges the statuses into one snapshot, sorted
/// by task — the global view a distributed checker analyses. A corrupt
/// slice is reported through `on_corrupt` and skipped when the callback is
/// set; with no callback the CodecError propagates.
std::vector<BlockedStatus> merge_slices(
    const std::vector<Slice>& slices,
    const std::function<void(SiteId, const CodecError&)>& on_corrupt = {});

/// Version-keyed decode cache: a slice whose version is unchanged since
/// the previous call is served from its cached decode, so a snapshot
/// round costs O(changed slices) decodes instead of O(all slices) — the
/// per-check-proportional-to-change property the periodic checkers need
/// at scale. Entries for sites that vanish from the snapshot are evicted.
///
/// Not internally synchronised; callers (SharedStore, Site) hold their
/// own lock around it.
class SliceCache {
 public:
  /// merge_slices, but re-decoding only slices whose version changed.
  std::vector<BlockedStatus> merge(
      const std::vector<Slice>& slices,
      const std::function<void(SiteId, const CodecError&)>& on_corrupt = {});

  /// Total status count across `slices` — blocked_count without building
  /// the merged vector. Same caching; corrupt slices count zero.
  std::size_t status_count(
      const std::vector<Slice>& slices,
      const std::function<void(SiteId, const CodecError&)>& on_corrupt = {});

  /// Cumulative payload decodes performed (i.e. cache misses). A caller
  /// issuing N calls over unchanged slices sees this stay constant after
  /// the first — the unit-level evidence for the O(changed) claim.
  [[nodiscard]] std::uint64_t decodes() const { return decodes_; }

 private:
  struct Entry {
    std::uint64_t version = 0;
    bool corrupt = false;
    std::vector<BlockedStatus> statuses;
  };

  /// Refreshes entries for `slices` (decoding the changed ones) and
  /// evicts entries for absent sites.
  void refresh(const std::vector<Slice>& slices,
               const std::function<void(SiteId, const CodecError&)>& on_corrupt);

  std::map<SiteId, Entry> entries_;
  std::uint64_t decodes_ = 0;
};

/// A StateStore that *is* a site's window onto the shared store: every
/// mutation re-encodes this site's slice and writes it through, and every
/// read decodes the merged snapshot of all sites. Plugging one of these
/// into VerifierConfig::store yields the §5.2 "Verifier bound to the shared
/// store" — its checker sees the whole cluster's blocked statuses, while
/// its blocking hooks publish only this site's tasks.
///
/// dist::Site instead batches its publishes on a period (write-through on
/// every block/unblock costs a store round-trip per event); SharedStore is
/// the strongly consistent variant for in-process sharing, tests, and the
/// ARMUS_STORE=tcp://… env path (over a net::RemoteStore backend).
///
/// Store outages surface as StoreUnavailableError from the mutating and
/// reading calls; the local mirror stays coherent, so the next successful
/// write re-publishes the full slice.
class SharedStore final : public StateStore {
 public:
  SharedStore(std::shared_ptr<SliceStore> store, SiteId site);

  /// Removes this site's slice on clean destruction; a crashed site (one
  /// that never destructs) leaves its slice for the survivors to analyse.
  ~SharedStore() override;

  void set_blocked(BlockedStatus status) override;
  void clear_blocked(TaskId task) override;

  /// The merged, decoded view of *every* site's slice, sorted by task.
  /// Unchanged slices are served from the version cache.
  [[nodiscard]] std::vector<BlockedStatus> snapshot() const override;
  [[nodiscard]] std::size_t blocked_count() const override;

  /// Clears this site's tasks (not other sites').
  void clear() override;

  [[nodiscard]] SiteId site() const { return site_; }
  [[nodiscard]] const std::shared_ptr<SliceStore>& backing() const {
    return store_;
  }

  /// Payload decodes performed by snapshot()/blocked_count() so far; stays
  /// flat across repeated calls while no slice changes.
  [[nodiscard]] std::uint64_t decode_count() const;

 private:
  /// Re-encodes the mirror and publishes it; caller holds mutex_.
  void flush_locked();

  std::shared_ptr<SliceStore> store_;
  SiteId site_;
  mutable std::mutex mutex_;
  /// This site's statuses, ordered by task for a deterministic encoding.
  std::map<TaskId, BlockedStatus> mirror_;
  mutable SliceCache cache_;
};

}  // namespace armus::dist
