#include "fuzz/chaos.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/checker.h"
#include "dist/codec.h"
#include "dist/store.h"
#include "net/kv_server.h"
#include "net/remote_store.h"
#include "net/socket_io.h"

namespace armus::fuzz {

namespace {

using Clock = std::chrono::steady_clock;

// ---------------------------------------------------------------------------
// Server child processes: this binary re-exec'd as `--kv-server`.

struct ServerProc {
  pid_t pid = -1;
  std::uint16_t port = 0;
  int stdin_fd = -1;   ///< write end of the child's stdin (EOF = shut down)
  int stdout_fd = -1;  ///< read end of the child's stdout

  [[nodiscard]] std::string url() const {
    return "tcp://127.0.0.1:" + std::to_string(port);
  }
};

/// Forks + execs `exe --kv-server [--replica-of replica_of]` and reads the
/// "PORT <n>" banner. Throws std::runtime_error when the child cannot be
/// spawned or never reports a port.
ServerProc spawn_server(const std::string& exe, const std::string& replica_of) {
  int in_pipe[2];
  int out_pipe[2];
  if (::pipe(in_pipe) != 0 || ::pipe(out_pipe) != 0) {
    throw std::runtime_error("chaos: pipe() failed");
  }
  pid_t pid = ::fork();
  if (pid < 0) throw std::runtime_error("chaos: fork() failed");
  if (pid == 0) {
    ::dup2(in_pipe[0], STDIN_FILENO);
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::close(in_pipe[0]);
    ::close(in_pipe[1]);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(exe.c_str()));
    argv.push_back(const_cast<char*>("--kv-server"));
    if (!replica_of.empty()) {
      argv.push_back(const_cast<char*>("--replica-of"));
      argv.push_back(const_cast<char*>(replica_of.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(exe.c_str(), argv.data());
    _exit(127);
  }
  ServerProc proc;
  proc.pid = pid;
  proc.stdin_fd = in_pipe[1];
  proc.stdout_fd = out_pipe[0];
  ::close(in_pipe[0]);
  ::close(out_pipe[1]);

  // Read the "PORT <n>\n" banner with a deadline.
  std::string banner;
  Clock::time_point deadline = Clock::now() + std::chrono::seconds(10);
  while (banner.find('\n') == std::string::npos) {
    int remaining = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                              Clock::now())
            .count());
    if (remaining <= 0) break;
    struct pollfd pfd {};
    pfd.fd = proc.stdout_fd;
    pfd.events = POLLIN;
    if (::poll(&pfd, 1, remaining) <= 0) break;
    char buf[64];
    ssize_t n = ::read(proc.stdout_fd, buf, sizeof(buf));
    if (n <= 0) break;
    banner.append(buf, static_cast<std::size_t>(n));
  }
  unsigned port = 0;
  if (std::sscanf(banner.c_str(), "PORT %u", &port) != 1 || port == 0 ||
      port > 65535) {
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
    ::close(proc.stdin_fd);
    ::close(proc.stdout_fd);
    throw std::runtime_error("chaos: server helper never reported a port");
  }
  proc.port = static_cast<std::uint16_t>(port);
  return proc;
}

/// Unconditional teardown: SIGKILL (works on stopped children too) + reap.
/// Idempotent.
void reap(ServerProc& proc) {
  if (proc.pid > 0) {
    ::kill(proc.pid, SIGKILL);
    ::waitpid(proc.pid, nullptr, 0);
    proc.pid = -1;
  }
  if (proc.stdin_fd >= 0) ::close(proc.stdin_fd);
  if (proc.stdout_fd >= 0) ::close(proc.stdout_fd);
  proc.stdin_fd = proc.stdout_fd = -1;
}

// ---------------------------------------------------------------------------
// ChaosProxy: a TCP relay the sever-link scenario can cut and heal. The
// replica's REPLICATE subscription is pointed at the proxy instead of the
// primary; sever() closes the live relay and refuses new connections
// (accept-then-close, so the replica sees a clean reconnect failure, not a
// connection timeout), heal() lets the next reconnect through again.
// One relayed connection at a time — a replica runs exactly one
// subscription, and reconnects are serial.

class ChaosProxy {
 public:
  explicit ChaosProxy(std::uint16_t target_port) : target_port_(target_port) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw std::runtime_error("chaos: proxy socket failed");
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    struct sockaddr_in addr {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 4) != 0) {
      ::close(listen_fd_);
      throw std::runtime_error("chaos: proxy bind/listen failed");
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] { run(); });
  }

  ~ChaosProxy() { stop(); }

  [[nodiscard]] std::uint16_t port() const { return port_; }

  void sever() {
    std::lock_guard<std::mutex> lock(mutex_);
    severed_ = true;
    shutdown_pair_locked();
  }

  void heal() {
    std::lock_guard<std::mutex> lock(mutex_);
    severed_ = false;
  }

  void stop() {
    if (stop_.exchange(true)) return;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ::shutdown(listen_fd_, SHUT_RDWR);
      shutdown_pair_locked();
    }
    if (thread_.joinable()) thread_.join();
    ::close(listen_fd_);
  }

 private:
  void shutdown_pair_locked() {
    if (client_ >= 0) ::shutdown(client_, SHUT_RDWR);
    if (upstream_ >= 0) ::shutdown(upstream_, SHUT_RDWR);
  }

  void close_pair() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (client_ >= 0) ::close(client_);
    if (upstream_ >= 0) ::close(upstream_);
    client_ = upstream_ = -1;
  }

  /// One-directional pump after poll said `from` is readable.
  bool pump(int from, int to) {
    char buf[16 * 1024];
    ssize_t n = ::read(from, buf, sizeof(buf));
    if (n <= 0) return false;
    return net::io::write_all(to, std::string_view(buf, static_cast<std::size_t>(n)));
  }

  void run() {
    while (!stop_.load(std::memory_order_acquire)) {
      struct pollfd pfds[3];
      int nfds = 0;
      pfds[nfds].fd = listen_fd_;
      pfds[nfds].events = POLLIN;
      ++nfds;
      int client = -1;
      int upstream = -1;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        client = client_;
        upstream = upstream_;
      }
      if (client >= 0) {
        pfds[nfds].fd = client;
        pfds[nfds].events = POLLIN;
        ++nfds;
        pfds[nfds].fd = upstream;
        pfds[nfds].events = POLLIN;
        ++nfds;
      }
      if (::poll(pfds, static_cast<nfds_t>(nfds), 50) < 0) {
        if (errno == EINTR) continue;
        return;
      }
      if (stop_.load(std::memory_order_acquire)) return;
      if (pfds[0].revents != 0) accept_one();
      if (client >= 0 && nfds == 3 &&
          ((pfds[1].revents != 0 && !pump(client, upstream)) ||
           (pfds[2].revents != 0 && !pump(upstream, client)))) {
        close_pair();
      }
    }
  }

  void accept_one() {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;
    bool refuse;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      refuse = severed_ || client_ >= 0;
    }
    if (refuse) {
      ::close(fd);
      return;
    }
    int up = net::io::connect_to("127.0.0.1", target_port_, 1000);
    if (up < 0) {
      ::close(fd);
      return;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    client_ = fd;
    upstream_ = up;
  }

  std::uint16_t target_port_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::mutex mutex_;
  bool severed_ = false;
  int client_ = -1;
  int upstream_ = -1;
};

// ---------------------------------------------------------------------------
// The workload: a handcrafted cross-site deadlock (the exact shape
// examples/net_distributed_detection.cpp produces). Site 1's task has
// arrived on phaser 1 and awaits it at phase 1 while still holding
// phaser 2 at phase 0; site 2 is the mirror image. Each impedes the
// other's awaited event, so the merged snapshot has a WFG cycle that no
// single site can see alone.

std::string site_payload(dist::SiteId site) {
  BlockedStatus status;
  if (site == 1) {
    status.task = 101;
    status.waits = {Resource{1, 1}};
    status.registered = {RegEntry{1, 1}, RegEntry{2, 0}};
  } else {
    status.task = 202;
    status.waits = {Resource{2, 1}};
    status.registered = {RegEntry{2, 1}, RegEntry{1, 0}};
  }
  return dist::encode_statuses({status});
}

/// One publish round: both sites' slices through `writer`. A failover
/// window surfaces as StoreUnavailableError — absorbed and counted, the
/// way a real Site's outage path absorbs it.
bool publish_round(net::RemoteStore& writer, ChaosStats& stats) {
  try {
    writer.put_slice(1, site_payload(1));
    writer.put_slice(2, site_payload(2));
    ++stats.publishes;
    return true;
  } catch (const dist::StoreUnavailableError&) {
    ++stats.publish_failures;
    return false;
  }
}

// ---------------------------------------------------------------------------
// The monitor: reads full snapshots and enforces the fencing invariant —
// within one observed boot generation, a slice version never decreases.

class VersionMonitor {
 public:
  explicit VersionMonitor(std::string scenario, ChaosStats& stats)
      : scenario_(std::move(scenario)), stats_(stats) {}

  /// Records one snapshot; returns the merged statuses for convergence
  /// checks.
  std::vector<BlockedStatus> observe(const dist::DeltaSnapshot& delta) {
    ++stats_.observations;
    for (const dist::Slice& slice : delta.changed) {
      auto key = std::make_pair(delta.generation,
                                static_cast<std::uint64_t>(slice.site));
      auto [it, inserted] = max_seen_.try_emplace(key, slice.version);
      if (!inserted) {
        if (slice.version < it->second) {
          stats_.violations.push_back(Violation{
              scenario_ + ": site " + std::to_string(slice.site) +
                  " slice version regressed " + std::to_string(it->second) +
                  " -> " + std::to_string(slice.version) +
                  " within generation " + std::to_string(delta.generation),
              std::string()});
        } else {
          it->second = slice.version;
        }
      }
    }
    return dist::merge_slices(delta.changed);
  }

 private:
  std::string scenario_;
  ChaosStats& stats_;
  /// (generation, site) -> highest slice version observed.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> max_seen_;
};

/// Publishes through `writer` and reads through `reader` until the merged
/// snapshot holds both sites' statuses *and* the cross-site cycle is
/// detected, or the deadline passes (a violation: a published blocked
/// status was lost, or detection never converged).
bool converge(const std::string& scenario, net::RemoteStore& writer,
              net::RemoteStore& reader, VersionMonitor& monitor,
              ChaosStats& stats, std::chrono::milliseconds deadline =
                                     std::chrono::milliseconds(10000)) {
  Clock::time_point until = Clock::now() + deadline;
  bool saw_101 = false;
  bool saw_202 = false;
  while (Clock::now() < until) {
    publish_round(writer, stats);
    try {
      std::vector<BlockedStatus> merged = monitor.observe(
          reader.snapshot_since(0));
      saw_101 = saw_202 = false;
      for (const BlockedStatus& status : merged) {
        if (status.task == 101) saw_101 = true;
        if (status.task == 202) saw_202 = true;
      }
      if (saw_101 && saw_202 &&
          check_deadlocks(merged, GraphModel::kWfg).deadlocked()) {
        ++stats.convergences;
        return true;
      }
    } catch (const dist::StoreUnavailableError&) {
      // reader outage window: retry
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  std::string missing;
  if (!saw_101) missing += " task-101";
  if (!saw_202) missing += " task-202";
  stats.violations.push_back(Violation{
      scenario + ": deadlock not re-detected before the deadline" +
          (missing.empty() ? std::string(" (cycle missing)")
                           : " (lost blocked status:" + missing + ")"),
      std::string()});
  return false;
}

net::RemoteStore::Config client_config(std::vector<net::Endpoint> endpoints,
                                       std::uint64_t seed) {
  net::RemoteStore::Config config;
  config.host = endpoints.front().host;
  config.port = endpoints.front().port;
  config.endpoints = std::move(endpoints);
  config.connect_timeout = std::chrono::milliseconds(250);
  config.io_timeout = std::chrono::milliseconds(500);
  config.backoff_initial = std::chrono::milliseconds(10);
  config.backoff_max = std::chrono::milliseconds(100);
  config.backoff_seed = seed;
  return config;
}

net::Endpoint local(std::uint16_t port) {
  return net::Endpoint{"127.0.0.1", port};
}

struct Scenario {
  const char* name;
  void (*run)(const ChaosOptions&, ChaosStats&);
};

void note(const ChaosOptions& options, const char* fmt, const char* arg) {
  if (options.verbose) std::fprintf(stderr, fmt, arg);
}

// --- scenario: kill-primary ------------------------------------------------
// SIGKILL the primary mid-churn, promote the replica, and require the
// detection to re-converge through the promoted server under a fresh
// generation with no version regression.

void scenario_kill_primary(const ChaosOptions& options, ChaosStats& stats) {
  ServerProc primary = spawn_server(options.server_exe, "");
  ServerProc replica = spawn_server(options.server_exe, primary.url());
  try {
    net::RemoteStore writer(
        client_config({local(primary.port), local(replica.port)},
                      options.seed + 1));
    net::RemoteStore reader(client_config({local(replica.port)},
                                          options.seed + 2));
    VersionMonitor monitor("kill-primary", stats);

    note(options, "chaos: [%s] converging through the replica\n",
         "kill-primary");
    if (!converge("kill-primary (before fault)", writer, reader, monitor,
                  stats)) {
      throw std::runtime_error("baseline never converged");
    }

    note(options, "chaos: [%s] SIGKILL primary\n", "kill-primary");
    ::kill(primary.pid, SIGKILL);
    ::waitpid(primary.pid, nullptr, 0);
    primary.pid = -1;

    net::RemoteStore control(client_config({local(replica.port)},
                                           options.seed + 3));
    control.promote();
    note(options, "chaos: [%s] replica promoted, re-converging\n",
         "kill-primary");
    converge("kill-primary (after promote)", writer, reader, monitor, stats);
  } catch (const std::exception& e) {
    stats.violations.push_back(
        Violation{std::string("kill-primary: ") + e.what(), std::string()});
  }
  reap(primary);
  reap(replica);
}

// --- scenario: stop-primary ------------------------------------------------
// SIGSTOP the primary (stalled-but-open sockets: clients hit io timeouts,
// not connection refusals), hold it long enough for publish rounds to
// fail, SIGCONT, and require re-convergence with the *same* generation —
// no promotion happened, so nothing may have been fenced away.

void scenario_stop_primary(const ChaosOptions& options, ChaosStats& stats) {
  ServerProc primary = spawn_server(options.server_exe, "");
  ServerProc replica = spawn_server(options.server_exe, primary.url());
  try {
    net::RemoteStore writer(client_config({local(primary.port)},
                                          options.seed + 11));
    net::RemoteStore reader(client_config({local(replica.port)},
                                          options.seed + 12));
    VersionMonitor monitor("stop-primary", stats);

    if (!converge("stop-primary (before fault)", writer, reader, monitor,
                  stats)) {
      throw std::runtime_error("baseline never converged");
    }

    note(options, "chaos: [%s] SIGSTOP primary\n", "stop-primary");
    ::kill(primary.pid, SIGSTOP);
    Clock::time_point resume = Clock::now() + std::chrono::milliseconds(800);
    while (Clock::now() < resume) {
      publish_round(writer, stats);  // these should mostly time out
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    note(options, "chaos: [%s] SIGCONT primary\n", "stop-primary");
    ::kill(primary.pid, SIGCONT);

    converge("stop-primary (after resume)", writer, reader, monitor, stats);
  } catch (const std::exception& e) {
    stats.violations.push_back(
        Violation{std::string("stop-primary: ") + e.what(), std::string()});
  }
  reap(primary);
  reap(replica);
}

// --- scenario: sever-link --------------------------------------------------
// Cut the replication link (not the servers) while the primary keeps
// taking writes, then heal it: the replica must catch up — by resumption
// or resync — and its versions must never step backwards within a
// generation it exposed.

void scenario_sever_link(const ChaosOptions& options, ChaosStats& stats) {
  ServerProc primary = spawn_server(options.server_exe, "");
  ChaosProxy proxy(primary.port);
  ServerProc replica = spawn_server(
      options.server_exe, "tcp://127.0.0.1:" + std::to_string(proxy.port()));
  try {
    net::RemoteStore writer(client_config({local(primary.port)},
                                          options.seed + 21));
    net::RemoteStore reader(client_config({local(replica.port)},
                                          options.seed + 22));
    VersionMonitor monitor("sever-link", stats);

    if (!converge("sever-link (before fault)", writer, reader, monitor,
                  stats)) {
      throw std::runtime_error("baseline never converged");
    }

    note(options, "chaos: [%s] severing the replication link\n", "sever-link");
    proxy.sever();
    // Churn against the primary while the replica is cut off.
    for (int i = 0; i < 10; ++i) {
      publish_round(writer, stats);
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }
    note(options, "chaos: [%s] healing the link\n", "sever-link");
    proxy.heal();

    converge("sever-link (after heal)", writer, reader, monitor, stats);
  } catch (const std::exception& e) {
    stats.violations.push_back(
        Violation{std::string("sever-link: ") + e.what(), std::string()});
  }
  proxy.stop();
  reap(primary);
  reap(replica);
}

// --- scenario: promote-mid-churn -------------------------------------------
// Promote the replica while the old primary is still alive and accepting
// writes (the operator-error / split-brain window), then kill the old
// primary: clients must fail over, and the promoted store's fresh
// generation must fence everything — no regression observable.

void scenario_promote_mid_churn(const ChaosOptions& options,
                                ChaosStats& stats) {
  ServerProc primary = spawn_server(options.server_exe, "");
  ServerProc replica = spawn_server(options.server_exe, primary.url());
  try {
    net::RemoteStore writer(
        client_config({local(primary.port), local(replica.port)},
                      options.seed + 31));
    net::RemoteStore reader(client_config({local(replica.port)},
                                          options.seed + 32));
    VersionMonitor monitor("promote-mid-churn", stats);

    if (!converge("promote-mid-churn (before fault)", writer, reader, monitor,
                  stats)) {
      throw std::runtime_error("baseline never converged");
    }

    note(options, "chaos: [%s] promoting the replica under churn\n",
         "promote-mid-churn");
    net::RemoteStore control(client_config({local(replica.port)},
                                           options.seed + 33));
    control.promote();
    // A few rounds still land on the doomed primary (split-brain window:
    // those writes are fenced away by the promoted generation, by design).
    for (int i = 0; i < 5; ++i) {
      publish_round(writer, stats);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    note(options, "chaos: [%s] SIGKILL old primary\n", "promote-mid-churn");
    ::kill(primary.pid, SIGKILL);
    ::waitpid(primary.pid, nullptr, 0);
    primary.pid = -1;

    converge("promote-mid-churn (after failover)", writer, reader, monitor,
             stats);
  } catch (const std::exception& e) {
    stats.violations.push_back(Violation{
        std::string("promote-mid-churn: ") + e.what(), std::string()});
  }
  reap(primary);
  reap(replica);
}

constexpr Scenario kScenarios[] = {
    {"kill-primary", scenario_kill_primary},
    {"stop-primary", scenario_stop_primary},
    {"sever-link", scenario_sever_link},
    {"promote-mid-churn", scenario_promote_mid_churn},
};

}  // namespace

ChaosStats run_chaos(const ChaosOptions& options) {
  ChaosStats stats;
  if (options.server_exe.empty()) {
    stats.violations.push_back(
        Violation{"chaos: no server executable configured", std::string()});
    return stats;
  }
  ::signal(SIGPIPE, SIG_IGN);
  for (const Scenario& scenario : kScenarios) {
    if (!options.only.empty() && options.only != scenario.name) continue;
    ++stats.scenarios;
    note(options, "chaos: scenario %s\n", scenario.name);
    scenario.run(options, stats);
  }
  if (stats.scenarios == 0) {
    stats.violations.push_back(Violation{
        "chaos: unknown scenario '" + options.only + "'", std::string()});
  }
  return stats;
}

int run_chaos_server(const std::string& replica_of) {
  ::signal(SIGPIPE, SIG_IGN);
  net::KvServer::Config config;
  config.port = 0;
  if (!replica_of.empty()) {
    config.role = net::KvServer::Role::kReplica;
    config.primary = replica_of;
  }
  net::KvServer server(config);
  server.start();
  std::printf("PORT %u\n", server.port());
  std::fflush(stdout);
  // Serve until the harness closes our stdin (or kills us outright).
  char buf[64];
  while (::read(STDIN_FILENO, buf, sizeof(buf)) > 0) {
  }
  server.stop();
  return 0;
}

}  // namespace armus::fuzz
