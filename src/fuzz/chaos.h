#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/harness.h"

/// Fault-injection (chaos) harness for the armus-kv HA pair (docs/HA.md):
/// real primary/replica server *processes* under real faults — SIGKILL,
/// SIGSTOP/SIGCONT, a severed replication link, promotion mid-churn —
/// while clients keep publishing a handcrafted cross-site deadlock and a
/// monitor asserts the two invariants that make failover safe:
///
///   1. fencing: within one observed boot generation, no slice version
///      ever goes backwards (promotion/resync must change the generation
///      before any state could appear to roll back);
///   2. durability of detection: after every fault heals (or the replica
///      is promoted), the published blocked statuses are all present
///      again and the cross-process deadlock cycle is re-detected.
///
/// Server processes are this binary re-exec'd in a hidden helper mode
/// (armus-fuzz --kv-server), so the harness can SIGKILL/SIGSTOP a real
/// PID; the replication link runs through an in-process TCP relay the
/// sever-link scenario can cut and heal. Everything is driven from
/// `seed`, so a CI failure reproduces locally from the seed alone.
///
/// tools/armus_fuzz.cc drives this via --chaos.
namespace armus::fuzz {

struct ChaosOptions {
  /// Path to the binary to re-exec as the server helper — normally
  /// argv[0] of armus-fuzz itself.
  std::string server_exe;

  std::uint64_t seed = 1;  ///< backoff-jitter seeds for every client

  /// Run only the scenario with this name ("kill-primary", "stop-primary",
  /// "sever-link", "promote-mid-churn"); empty = the full matrix.
  std::string only;

  bool verbose = false;  ///< per-step progress on stderr
};

struct ChaosStats {
  std::uint64_t scenarios = 0;         ///< scenarios run
  std::uint64_t publishes = 0;         ///< successful slice publish rounds
  std::uint64_t publish_failures = 0;  ///< rounds lost to outage windows
  std::uint64_t observations = 0;      ///< monitor snapshots taken
  std::uint64_t convergences = 0;      ///< deadlock (re-)detections
  std::vector<Violation> violations;   ///< invariant breaches (the repro
                                       ///< is scenario name + seed)

  [[nodiscard]] bool ok() const { return violations.empty(); }
};

/// Runs the scenario matrix. Spawns (and always reaps) server child
/// processes via `options.server_exe --kv-server`.
ChaosStats run_chaos(const ChaosOptions& options);

/// The hidden helper behind `armus-fuzz --kv-server [--replica-of URL]`:
/// starts a KvServer on an ephemeral port (a replica of URL when given),
/// prints "PORT <n>" on stdout, and serves until stdin reaches EOF.
/// Returns the process exit code.
int run_chaos_server(const std::string& replica_of);

}  // namespace armus::fuzz
