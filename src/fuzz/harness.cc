#include "fuzz/harness.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <unordered_set>
#include <utility>

#include "core/dependency_state.h"
#include "dist/store.h"
#include "fuzz/mutator.h"
#include "trace/replayer.h"

namespace armus::fuzz {

namespace {

constexpr GraphModel kModels[4] = {GraphModel::kWfg, GraphModel::kSg,
                                   GraphModel::kGrg, GraphModel::kAuto};

/// One full offline replay; returns the sorted fingerprints of the
/// deduplicated replay-found cycles (order-free verdict identity).
std::vector<std::uint64_t> replay(const trace::MergedTrace& trace,
                                  GraphModel model,
                                  std::shared_ptr<StateStore> store) {
  trace::OfflineVerifier::Options options;
  options.model = model;
  options.store = std::move(store);
  options.final_scan = true;
  trace::OfflineVerifier verifier(options);
  trace::OfflineVerifier::Result result = verifier.run(trace);
  std::vector<std::uint64_t> fingerprints;
  fingerprints.reserve(result.replayed.size());
  for (const DeadlockReport& report : result.replayed) {
    fingerprints.push_back(report.fingerprint());
  }
  std::sort(fingerprints.begin(), fingerprints.end());
  return fingerprints;
}

}  // namespace

std::string Verdict::signature() const {
  std::string sig = decoded ? "ok" : "rej";
  sig += "-r" + std::to_string(records);
  if (decoded) {
    for (std::uint64_t count : cycles) {
      sig += "-c" + std::to_string(count);
    }
  }
  return sig;
}

std::optional<std::string> check_trace(const std::string& bytes,
                                       Verdict* verdict) {
  Verdict local_verdict;
  Verdict* v = verdict != nullptr ? verdict : &local_verdict;
  *v = Verdict{};

  // Phase 1: the strict decoder. TraceError is the contract's "no" —
  // anything else escaping the decoder is a bug.
  try {
    trace::TraceReader reader(bytes);
    trace::Record record;
    while (reader.next(&record)) ++v->records;
    v->decoded = true;
  } catch (const trace::TraceError&) {
    return std::nullopt;  // cleanly rejected: contract holds
  } catch (const std::exception& e) {
    return std::string("decode raised non-TraceError: ") + e.what();
  }

  // Phase 2: a decoded trace must replay under every model and both
  // backends, with backend-identical verdicts.
  trace::MergedTrace trace = trace::MergedTrace::from_bytes({bytes});
  for (std::size_t m = 0; m < 4; ++m) {
    std::vector<std::uint64_t> local;
    try {
      local = replay(trace, kModels[m], nullptr);
    } catch (const std::exception& e) {
      return "replay (model " + to_string(kModels[m]) +
             ", local store) raised: " + e.what();
    }
    std::vector<std::uint64_t> shared;
    try {
      shared = replay(trace, kModels[m],
                      std::make_shared<dist::SharedStore>(
                          std::make_shared<dist::Store>(), 1));
    } catch (const std::exception& e) {
      return "replay (model " + to_string(kModels[m]) +
             ", shared store) raised: " + e.what();
    }
    if (local != shared) {
      return "backend divergence under model " + to_string(kModels[m]) +
             ": local found " + std::to_string(local.size()) +
             " cycle(s), shared " + std::to_string(shared.size());
    }
    v->cycles[m] = local.size();
  }
  return std::nullopt;
}

std::string minimize_trace(const std::string& bytes) {
  trace::TraceHeader header;
  std::vector<trace::Record> records;
  try {
    records = decode_records(bytes, &header);
  } catch (const trace::TraceError&) {
    return bytes;  // undecodable entries keep their exact bytes
  }
  Verdict verdict;
  check_trace(bytes, &verdict);
  const std::string target = verdict.signature();

  // One greedy drop-one pass, newest record first (later records depend on
  // earlier state, so the tail shrinks most easily). Bounded: each attempt
  // costs a full 4×2 replay.
  std::size_t attempts = std::min<std::size_t>(records.size(), 128);
  for (std::size_t i = 0; i < attempts && !records.empty(); ++i) {
    std::size_t at = records.size() - 1 - (i % records.size());
    std::vector<trace::Record> candidate = records;
    candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(at));
    std::string encoded = encode_trace(header, candidate);
    Verdict after;
    check_trace(encoded, &after);
    if (after.signature() == target) records = std::move(candidate);
  }
  return encode_trace(header, records);
}

Harness::Harness(Options options) : options_(std::move(options)) {}

Harness::Stats Harness::run() {
  namespace fs = std::filesystem;
  Stats stats;

  std::vector<std::string> pool = options_.seeds;
  if (!options_.corpus_dir.empty() && fs::is_directory(options_.corpus_dir)) {
    std::vector<fs::path> entries;
    for (const fs::directory_entry& entry :
         fs::directory_iterator(options_.corpus_dir)) {
      if (entry.is_regular_file()) entries.push_back(entry.path());
    }
    std::sort(entries.begin(), entries.end());  // deterministic pool order
    for (const fs::path& path : entries) {
      std::ifstream in(path, std::ios::binary);
      pool.emplace_back(std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>());
    }
  }
  if (pool.empty()) return stats;

  // The seeds themselves are the first mutants: a recorded trace that
  // breaks the contract is the most urgent finding of all.
  std::unordered_set<std::string> seen;
  for (const std::string& entry : pool) {
    Verdict verdict;
    std::optional<std::string> violation = check_trace(entry, &verdict);
    stats.replays += verdict.decoded ? 8 : 0;
    if (violation) {
      stats.violations.push_back(Violation{"seed trace: " + *violation, entry});
    }
    seen.insert(verdict.signature());
  }

  Mutator mutator(options_.seed);
  for (std::uint64_t i = 0; i < options_.runs; ++i) {
    MutationOp op = MutationOp::kBitFlip;
    std::string mutant = mutator.mutate(pool, &op);
    ++stats.mutants;
    Verdict verdict;
    std::optional<std::string> violation = check_trace(mutant, &verdict);
    if (verdict.decoded) {
      ++stats.decoded;
      stats.replays += 8;
    } else {
      ++stats.rejected;
    }
    if (violation) {
      stats.violations.push_back(Violation{
          "mutant #" + std::to_string(i) + " (" + to_string(op) +
              ", seed " + std::to_string(options_.seed) + "): " + *violation,
          mutant});
      continue;
    }
    if (!seen.insert(verdict.signature()).second) continue;
    // New coverage bucket: minimize, add to the pool, persist.
    std::string minimized = minimize_trace(mutant);
    pool.push_back(minimized);
    ++stats.corpus_added;
    if (!options_.corpus_dir.empty()) {
      fs::create_directories(options_.corpus_dir);
      fs::path path = fs::path(options_.corpus_dir) /
                      ("sig-" + verdict.signature() + ".trace");
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(minimized.data(),
                static_cast<std::streamsize>(minimized.size()));
    }
  }
  return stats;
}

}  // namespace armus::fuzz
