#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/graph_builder.h"

/// The fuzzing harness: replays mutated traces against the full analysis
/// stack and asserts the strict-decode contract —
///
///   every byte string either fails to decode with trace::TraceError, or
///   decodes into records that replay cleanly under **all four graph
///   models and both store backends** (a fresh DependencyState and a
///   dist::SharedStore over an in-process dist::Store), with identical
///   deadlock verdicts across the backends.
///
/// Never a crash, never a foreign exception, never a backend divergence.
/// Anything else is a Violation, and its mutant bytes are the repro.
///
/// tools/armus_fuzz.cc drives this from CI (fixed seed, e2e-trace seeds);
/// tests/fuzz_test.cc pins the contract on a deterministic small run.
namespace armus::fuzz {

/// What one mutant did, summarised for corpus bucketing.
struct Verdict {
  bool decoded = false;     ///< full decode succeeded
  std::uint64_t records = 0;  ///< records decoded (prefix length on failure)
  /// Deduplicated replay-found deadlocks per model (wfg, sg, grg, auto),
  /// from the local backend.
  std::uint64_t cycles[4] = {0, 0, 0, 0};

  /// Coverage bucket: mutants with a new signature enter the corpus.
  [[nodiscard]] std::string signature() const;
};

struct Violation {
  std::string what;     ///< which guarantee broke, and how
  std::string mutant;   ///< the offending trace bytes
};

/// Checks one trace against the contract. Returns the violation text, or
/// nullopt when the contract holds (clean rejection included). `verdict`,
/// when given, is filled in either way.
std::optional<std::string> check_trace(const std::string& bytes,
                                       Verdict* verdict = nullptr);

class Harness {
 public:
  struct Options {
    std::uint64_t seed = 1;    ///< mutation RNG seed — the whole repro
    std::uint64_t runs = 500;  ///< mutants to generate
    /// Seed traces (bytes). At least one required; recorded e2e traces
    /// are the intended source.
    std::vector<std::string> seeds;
    /// Corpus directory: existing entries join the mutation pool, and
    /// mutants with a new coverage signature are minimized and saved.
    /// Empty = no persistence.
    std::string corpus_dir;
  };

  struct Stats {
    std::uint64_t mutants = 0;
    std::uint64_t decoded = 0;    ///< mutants that decoded fully
    std::uint64_t rejected = 0;   ///< mutants cleanly refused (TraceError)
    std::uint64_t replays = 0;    ///< model × backend replays executed
    std::uint64_t corpus_added = 0;
    std::vector<Violation> violations;

    [[nodiscard]] bool ok() const { return violations.empty(); }
  };

  explicit Harness(Options options);

  /// Generates and checks `runs` mutants. Deterministic in (seed, seeds,
  /// corpus contents).
  Stats run();

 private:
  Options options_;
};

/// Greedily shrinks a decodable trace while `signature()` stays the same
/// (one drop-one-record pass); returns `bytes` unchanged when it does not
/// decode. Corpus entries stay small without losing their bucket.
std::string minimize_trace(const std::string& bytes);

}  // namespace armus::fuzz
