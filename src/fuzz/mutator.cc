#include "fuzz/mutator.h"

#include <algorithm>
#include <utility>

#include "predict/causal.h"

namespace armus::fuzz {

std::string to_string(MutationOp op) {
  switch (op) {
    case MutationOp::kTruncate: return "truncate";
    case MutationOp::kBitFlip: return "bitflip";
    case MutationOp::kSplice: return "splice";
    case MutationOp::kDropRecord: return "drop-record";
    case MutationOp::kDuplicateRecord: return "duplicate-record";
    case MutationOp::kReorderSlack: return "reorder-slack";
  }
  return "?";
}

std::vector<trace::Record> decode_records(const std::string& bytes,
                                          trace::TraceHeader* header) {
  trace::TraceReader reader(bytes);
  if (header != nullptr) *header = reader.header();
  std::vector<trace::Record> records;
  trace::Record record;
  while (reader.next(&record)) {
    records.push_back(std::move(record));
    record = trace::Record{};
  }
  return records;
}

std::string encode_trace(const trace::TraceHeader& header,
                         const std::vector<trace::Record>& records) {
  std::string out = trace::encode_header(header);
  std::uint64_t clock = header.start_ns;
  for (const trace::Record& record : records) {
    std::uint64_t dt = record.at_ns > clock ? record.at_ns - clock : 0;
    trace::append_record(out, record, dt);
    clock += dt;
  }
  return out;
}

namespace {

/// Record-level mutants get synthetic, strictly increasing timestamps:
/// the schedule (record order) is what the mutation means; recorded
/// wall-clock gaps would only fight the re-encoder's monotonicity clamp.
void retimestamp(trace::TraceHeader& header,
                 std::vector<trace::Record>& records) {
  header.start_ns = 1;
  std::uint64_t at = 0;
  for (trace::Record& record : records) record.at_ns = (at += 1000);
}

}  // namespace

std::string Mutator::apply(MutationOp op, const std::string& base,
                           const std::string& partner) {
  switch (op) {
    case MutationOp::kTruncate: {
      if (base.empty()) return base;
      return base.substr(0, rng_.below(base.size()));
    }

    case MutationOp::kBitFlip: {
      if (base.empty()) return base;
      std::string bytes = base;
      std::uint64_t flips = 1 + rng_.below(8);
      for (std::uint64_t i = 0; i < flips; ++i) {
        std::size_t at = rng_.below(bytes.size());
        bytes[at] = static_cast<char>(
            static_cast<unsigned char>(bytes[at]) ^ (1u << rng_.below(8)));
      }
      return bytes;
    }

    case MutationOp::kSplice: {
      std::size_t cut_a = base.empty() ? 0 : rng_.below(base.size() + 1);
      std::size_t cut_b = partner.empty() ? 0 : rng_.below(partner.size() + 1);
      return base.substr(0, cut_a) + partner.substr(cut_b);
    }

    case MutationOp::kDropRecord: {
      trace::TraceHeader header;
      std::vector<trace::Record> records = decode_records(base, &header);
      if (records.empty()) return apply(MutationOp::kBitFlip, base, partner);
      records.erase(records.begin() +
                    static_cast<std::ptrdiff_t>(rng_.below(records.size())));
      retimestamp(header, records);
      return encode_trace(header, records);
    }

    case MutationOp::kDuplicateRecord: {
      trace::TraceHeader header;
      std::vector<trace::Record> records = decode_records(base, &header);
      if (records.empty()) return apply(MutationOp::kBitFlip, base, partner);
      std::size_t at = rng_.below(records.size());
      records.insert(records.begin() + static_cast<std::ptrdiff_t>(at),
                     records[at]);
      retimestamp(header, records);
      return encode_trace(header, records);
    }

    case MutationOp::kReorderSlack: {
      trace::TraceHeader header;
      std::vector<trace::Record> records = decode_records(base, &header);
      predict::CausalModel model(records);
      const std::vector<predict::Event>& events = model.events();
      // Events whose causal slack allows more than their own position.
      std::vector<std::uint32_t> movable;
      for (std::uint32_t e = 0; e < events.size(); ++e) {
        auto [lo, hi] = model.slack(e);
        if (lo < hi) movable.push_back(e);
      }
      if (movable.empty()) {
        return apply(MutationOp::kDuplicateRecord, base, partner);
      }
      std::uint32_t e = movable[rng_.below(movable.size())];
      auto [lo, hi] = model.slack(e);
      std::uint32_t q = lo + static_cast<std::uint32_t>(rng_.below(hi - lo + 1));
      if (q == e) q = q == hi ? lo : q + 1;
      // Move the record from its trace position to the target event's,
      // leaving the non-event (SCAN/REPORT) records where they sit.
      std::size_t from = events[e].trace_index;
      std::size_t to = events[q].trace_index;
      trace::Record moved = std::move(records[from]);
      records.erase(records.begin() + static_cast<std::ptrdiff_t>(from));
      if (to > from) --to;
      records.insert(records.begin() + static_cast<std::ptrdiff_t>(to),
                     std::move(moved));
      retimestamp(header, records);
      return encode_trace(header, records);
    }
  }
  return base;
}

std::string Mutator::mutate(const std::vector<std::string>& pool,
                            MutationOp* applied) {
  const std::string& base = pool[rng_.below(pool.size())];
  const std::string& partner = pool[rng_.below(pool.size())];
  auto op = static_cast<MutationOp>(rng_.below(kMutationOps));
  if (op == MutationOp::kDropRecord || op == MutationOp::kDuplicateRecord ||
      op == MutationOp::kReorderSlack) {
    // Record-level ops need a decodable base; a corpus entry that is
    // itself garbage degrades to a byte-level flip.
    try {
      std::string mutant = apply(op, base, partner);
      if (applied != nullptr) *applied = op;
      return mutant;
    } catch (const trace::TraceError&) {
      op = MutationOp::kBitFlip;
    }
  }
  std::string mutant = apply(op, base, partner);
  if (applied != nullptr) *applied = op;
  return mutant;
}

}  // namespace armus::fuzz
