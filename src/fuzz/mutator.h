#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/format.h"
#include "util/rng.h"

/// Deterministic trace mutation for the fuzzing harness (tools/armus_fuzz):
/// every mutant is a pure function of (seed, pool contents), so a CI
/// failure reproduces locally from the seed alone. Half the operators stay
/// at byte level (exercising the strict decoder on garbage), half work on
/// decoded records (exercising replay on well-formed but never-recorded
/// schedules — including causally legal reorders via predict::CausalModel).
namespace armus::fuzz {

enum class MutationOp : std::uint8_t {
  kTruncate = 0,        ///< cut the byte stream anywhere, mid-record included
  kBitFlip = 1,         ///< flip 1–8 random bits
  kSplice = 2,          ///< prefix of one trace + suffix of another, any offsets
  kDropRecord = 3,      ///< remove one decoded record
  kDuplicateRecord = 4, ///< repeat one decoded record
  kReorderSlack = 5,    ///< move one record within its causal slack
};

inline constexpr std::size_t kMutationOps = 6;

std::string to_string(MutationOp op);

/// Decodes header + all records; throws TraceError like every strict
/// consumer.
std::vector<trace::Record> decode_records(const std::string& bytes,
                                          trace::TraceHeader* header = nullptr);

/// Re-encodes a decoded trace (deltas recomputed from the records'
/// `at_ns`, non-monotonic steps clamped to zero like the writer does).
std::string encode_trace(const trace::TraceHeader& header,
                         const std::vector<trace::Record>& records);

class Mutator {
 public:
  explicit Mutator(std::uint64_t seed) : rng_(seed) {}

  /// One mutant from a random base (and, for splice, partner) in `pool`.
  /// Record-level ops on an undecodable base degrade to kBitFlip; the op
  /// actually applied is reported through `applied`.
  std::string mutate(const std::vector<std::string>& pool,
                     MutationOp* applied = nullptr);

  /// Applies one specific operator (tests pin each in isolation).
  /// `partner` is only read by kSplice.
  std::string apply(MutationOp op, const std::string& base,
                    const std::string& partner);

 private:
  util::Xoshiro256 rng_;
};

}  // namespace armus::fuzz
