#include "fuzz/wire.h"

#include <netinet/in.h>
#include <sys/socket.h>

#include <algorithm>
#include <thread>

#include "dist/codec.h"
#include "net/protocol.h"
#include "net/socket_io.h"
#include "net/watch.h"
#include "util/rng.h"

namespace armus::fuzz {

using dist::append_varint;
using dist::read_varint;
using net::frame;
using net::kDefaultMaxFrame;
using net::kProtocolVersion;
using net::MsgType;
using net::request_header;

namespace {

std::uint64_t pick(util::Xoshiro256& rng, std::uint64_t bound) {
  return bound == 0 ? 0 : rng() % bound;
}

/// Well-formed request bodies covering every opcode — the mutation pool.
std::vector<std::string> seed_bodies() {
  std::vector<std::string> pool;
  for (dist::SiteId site : {dist::SiteId{1}, dist::SiteId{2}}) {
    std::string put = request_header(MsgType::kPutSlice);
    append_varint(put, site);
    append_varint(put, 1 + site);
    net::append_bytes(put, site == 1 ? std::string() : std::string("opaque"));
    pool.push_back(std::move(put));

    std::string get = request_header(MsgType::kGetSlice);
    append_varint(get, site);
    pool.push_back(std::move(get));
  }
  pool.push_back(request_header(MsgType::kListSlices));
  pool.push_back(request_header(MsgType::kHeartbeat));
  {
    std::string clear = request_header(MsgType::kClear);
    append_varint(clear, 3);
    pool.push_back(std::move(clear));
  }
  {
    std::string delta = request_header(MsgType::kPutSliceDelta);
    append_varint(delta, 1);
    append_varint(delta, 2);
    append_varint(delta, 3);
    net::append_bytes(delta, "not a delta frame");
    pool.push_back(std::move(delta));
  }
  {
    std::string since = request_header(MsgType::kListSlicesSince);
    append_varint(since, 7);
    pool.push_back(std::move(since));
  }
  pool.push_back(request_header(MsgType::kInspect));
  pool.push_back(request_header(MsgType::kStats));
  {
    std::string auth = request_header(MsgType::kAuth);
    net::append_bytes(auth, "not-the-token");
    pool.push_back(std::move(auth));
  }
  return pool;
}

std::string bit_flip(util::Xoshiro256& rng, std::string bytes) {
  if (bytes.empty()) return bytes;
  std::uint64_t flips = 1 + pick(rng, 8);
  for (std::uint64_t i = 0; i < flips; ++i) {
    std::size_t at = pick(rng, bytes.size());
    bytes[at] = static_cast<char>(static_cast<unsigned char>(bytes[at]) ^
                                  (1u << pick(rng, 8)));
  }
  return bytes;
}

std::string random_bytes(util::Xoshiro256& rng, std::size_t length) {
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    out.push_back(static_cast<char>(rng() & 0xff));
  }
  return out;
}

/// A raw little-endian length prefix — for frames whose declared length
/// deliberately disagrees with the bytes that follow.
std::string raw_prefix(std::uint32_t length) {
  std::string out;
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((length >> shift) & 0xff));
  }
  return out;
}

/// The client-side mutant: a fake in-process "server" answers a real
/// WatchClient's handshake correctly, then pushes mutated event frames.
/// The contract is the client never mis-syncs — every frame either yields
/// a line, ends the stream, or surfaces dist::StoreUnavailableError; any
/// other exception (or a crash) is a violation.
void fuzz_watch_client(util::Xoshiro256& rng, WireStats& stats) {
  int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) return;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd, 1) < 0) {
    net::io::close_fd(listen_fd);
    return;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) < 0) {
    net::io::close_fd(listen_fd);
    return;
  }
  std::uint16_t port = ntohs(addr.sin_port);

  // Deterministic stream: a correct handshake answer, then mutated push
  // frames (the rng stays on this thread). Closing right after the write
  // turns a truncated frame into a prompt EOF instead of a timeout.
  std::string handshake;
  append_varint(handshake, 0);  // OK
  append_varint(handshake, net::kWatchAll);
  std::string good;
  append_varint(good, 0);  // OK
  net::append_bytes(
      good, "{\"v\":1,\"event\":\"slice_commit\",\"ts_ns\":1,\"site\":1}");
  std::string push_bytes = frame(handshake);
  std::uint64_t frames = 1 + pick(rng, 4);
  for (std::uint64_t i = 0; i < frames; ++i) {
    switch (pick(rng, 4)) {
      case 0:  // well-formed, as-is
        push_bytes += frame(good);
        break;
      case 1:  // bit-flipped body, correctly framed
        push_bytes += frame(bit_flip(rng, good));
        break;
      case 2:  // framed random garbage
        push_bytes += frame(random_bytes(rng, pick(rng, 48)));
        break;
      default:  // torn frame: declare more than we send, then EOF
        push_bytes += raw_prefix(
            static_cast<std::uint32_t>(good.size() + 1 + pick(rng, 64)));
        push_bytes += good.substr(0, pick(rng, good.size() + 1));
        break;
    }
  }

  std::thread fake_server([listen_fd, &push_bytes] {
    int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) return;
    net::io::set_io_timeout(conn, 2000);
    (void)net::io::read_frame(conn, kDefaultMaxFrame);  // the subscribe
    net::io::write_all(conn, push_bytes);
    net::io::close_fd(conn);
  });

  try {
    net::WatchClient::Config config;
    config.port = port;
    config.io_timeout = std::chrono::milliseconds(2000);
    net::WatchClient watch(std::move(config));
    while (watch.next()) {
    }
    // Clean end of stream — every frame before it parsed.
  } catch (const dist::StoreUnavailableError&) {
    // The documented surfacing of a malformed frame.
  } catch (const std::exception& e) {
    stats.violations.push_back(Violation{
        std::string("WatchClient leaked an unexpected exception: ") + e.what(),
        push_bytes});
  }
  fake_server.join();
  net::io::close_fd(listen_fd);
}

}  // namespace

WireStats fuzz_wire(net::KvServer& server, const WireOptions& options) {
  WireStats stats;
  util::Xoshiro256 rng(options.seed);
  const std::vector<std::string> pool = seed_bodies();
  const std::uint16_t port = server.port();

  int fd = -1;
  auto connect_now = [&]() -> bool {
    fd = net::io::connect_to("127.0.0.1", port, 1000);
    if (fd < 0) return false;
    net::io::set_io_timeout(fd, 2000);
    return true;
  };
  auto heartbeat_ok = [&]() -> bool {
    if (!net::io::write_all(fd, frame(request_header(MsgType::kHeartbeat)))) {
      return false;
    }
    std::optional<std::string> response =
        net::io::read_frame(fd, kDefaultMaxFrame);
    if (!response) return false;
    try {
      std::size_t offset = 0;
      if (read_varint(*response, &offset) != 0) return false;  // OK
      if (read_varint(*response, &offset) != kProtocolVersion) return false;
      net::expect_end(*response, offset);
    } catch (const dist::CodecError&) {
      return false;
    }
    return true;
  };
  /// The liveness invariant after a dropped connection: a *fresh*
  /// connection must heartbeat. False = the server is gone (violation
  /// recorded, fuzzing stops).
  auto reconnect_live = [&](const std::string& mutant) -> bool {
    net::io::close_fd(fd);
    fd = -1;
    if (connect_now() && heartbeat_ok()) return true;
    stats.violations.push_back(
        Violation{"armus-kv stopped answering fresh connections after mutant",
                  mutant});
    return false;
  };

  if (!connect_now() || !heartbeat_ok()) {
    stats.violations.push_back(
        Violation{"armus-kv unreachable before fuzzing", ""});
    net::io::close_fd(fd);
    return stats;
  }

  for (std::uint64_t run = 0; run < options.runs; ++run) {
    ++stats.mutants;
    std::string sent;
    std::size_t expected = 0;  ///< response frames owed (0 = torn stream)
    // A REPLICATE subscribe turns the connection into a server-push
    // stream; after reading the subscribe answer(s) the request/response
    // accounting no longer holds, so these mutants always tear the
    // connection down and re-assert liveness on a fresh one.
    bool stream = false;
    switch (pick(rng, 16)) {
      case 0:  // a well-formed request, as-is
        sent = frame(pool[pick(rng, pool.size())]);
        expected = 1;
        break;
      case 1:  // bit-flipped body, correctly framed
        sent = frame(bit_flip(rng, pool[pick(rng, pool.size())]));
        expected = 1;
        break;
      case 2: {  // mid-frame disconnect: declare more than we send
        const std::string& body = pool[pick(rng, pool.size())];
        sent = raw_prefix(static_cast<std::uint32_t>(body.size() + 1 +
                                                     pick(rng, 64)));
        sent += body.substr(0, pick(rng, body.size() + 1));
        break;
      }
      case 3:  // oversized declared length: must drop without allocating
        sent = raw_prefix(static_cast<std::uint32_t>(
            kDefaultMaxFrame + 1 + pick(rng, 1 << 20)));
        sent += random_bytes(rng, pick(rng, 16));
        break;
      case 4:  // framed random garbage (oversized varints live here)
        sent = frame(random_bytes(rng, pick(rng, 64)));
        expected = 1;
        break;
      case 5: {  // splice: prefix of one body + suffix of another
        const std::string& a = pool[pick(rng, pool.size())];
        const std::string& b = pool[pick(rng, pool.size())];
        std::string body = a.substr(0, pick(rng, a.size() + 1));
        body += b.substr(pick(rng, b.size() + 1));
        sent = frame(body);
        expected = 1;
        break;
      }
      case 6: {  // unknown opcode with a garbage payload
        std::string body;
        append_varint(body, kProtocolVersion);
        append_varint(body, 11 + pick(rng, 1 << 20));
        body += random_bytes(rng, pick(rng, 32));
        sent = frame(body);
        expected = 1;
        break;
      }
      case 7: {  // valid body + trailing garbage (strict decode must 400)
        std::string body = pool[pick(rng, pool.size())];
        body += random_bytes(rng, 1 + pick(rng, 16));
        sent = frame(body);
        expected = 1;
        break;
      }
      case 8: {  // pipelined burst: several frames in one write
        expected = 2 + pick(rng, 4);
        for (std::size_t i = 0; i < expected; ++i) {
          const std::string& body = pool[pick(rng, pool.size())];
          sent += frame(pick(rng, 2) == 0 ? bit_flip(rng, body) : body);
        }
        break;
      }
      case 9: {  // REPLICATE subscribe, then mid-stream disconnect
        std::string body = request_header(MsgType::kReplicate);
        append_varint(body, 0);
        append_varint(body, 0);
        sent = frame(body);
        expected = 1;
        stream = true;
        break;
      }
      case 10: {  // REPLICATE resuming from a stale / garbage base
        std::string body = request_header(MsgType::kReplicate);
        append_varint(body, rng());  // generation the store never had
        append_varint(body, rng());  // version far past the store's
        sent = frame(body);
        expected = 1;
        stream = true;
        break;
      }
      case 11: {  // duplicate REPLICATE frames pipelined on one connection
        std::string body = request_header(MsgType::kReplicate);
        append_varint(body, 0);
        append_varint(body, 0);
        sent = frame(body) + frame(body);
        expected = 2;
        stream = true;
        break;
      }
      case 12: {  // WATCH_EVENTS subscribe with a garbage bitmask
        std::string body = request_header(MsgType::kWatchEvents);
        append_varint(body, rng());  // all-zero-categories rejected, extra
                                     // bits masked off — either answers
        sent = frame(body);
        expected = 1;
        stream = true;
        break;
      }
      case 13: {  // WATCH_EVENTS subscribe, then mid-stream disconnect
        std::string body = request_header(MsgType::kWatchEvents);
        append_varint(body, 1 + pick(rng, net::kWatchAll));
        sent = frame(body);
        expected = 1;
        stream = true;
        break;
      }
      case 14: {  // duplicate WATCH subscribes pipelined on one connection
        std::string body = request_header(MsgType::kWatchEvents);
        append_varint(body, net::kWatchAll);
        sent = frame(body) + frame(body);
        expected = 2;
        stream = true;
        break;
      }
      default:  // mutated push frames thrown at a real WatchClient
        fuzz_watch_client(rng, stats);
        continue;
    }

    if (expected == 0) {
      // A torn or oversized frame: the stream is unusable either way
      // (the server drops us, or waits for bytes that never come — and we
      // hang up). The invariant is that a fresh connection still works.
      net::io::write_all(fd, sent);
      ++stats.drops;
      if (!reconnect_live(sent)) break;
      continue;
    }

    if (!net::io::write_all(fd, sent)) {
      ++stats.drops;
      if (!reconnect_live(sent)) break;
      continue;
    }
    bool dropped = false;
    for (std::size_t i = 0; i < expected; ++i) {
      std::optional<std::string> response =
          net::io::read_frame(fd, kDefaultMaxFrame);
      if (!response) {
        dropped = true;
        break;
      }
      ++stats.responses;
      try {
        std::size_t offset = 0;
        if (read_varint(*response, &offset) != 0) ++stats.error_responses;
      } catch (const dist::CodecError&) {
        stats.violations.push_back(
            Violation{"response frame without a parseable status", sent});
      }
    }
    if (stream) {
      // Subscribe answers read (and status-checked) above; hang up before
      // the push stream desyncs the accounting.
      ++stats.drops;
      if (!reconnect_live(sent)) break;
      continue;
    }
    if (dropped || !heartbeat_ok()) {
      ++stats.drops;
      if (!reconnect_live(sent)) break;
    }
  }

  // The storm must not have corrupted the protocol state: a full
  // LIST_SLICES still parses end to end.
  if (fd >= 0 &&
      net::io::write_all(fd, frame(request_header(MsgType::kListSlices)))) {
    std::optional<std::string> response =
        net::io::read_frame(fd, kDefaultMaxFrame);
    bool parsed = false;
    if (response) {
      try {
        std::size_t offset = 0;
        if (read_varint(*response, &offset) == 0) {
          std::uint64_t count = read_varint(*response, &offset);
          for (std::uint64_t i = 0; i < count; ++i) {
            (void)net::read_slice(*response, &offset);
          }
          net::expect_end(*response, offset);
          parsed = true;
        }
      } catch (const dist::CodecError&) {
      }
    }
    if (!parsed) {
      stats.violations.push_back(
          Violation{"LIST_SLICES no longer parses after fuzzing", ""});
    }
  }
  net::io::close_fd(fd);
  return stats;
}

}  // namespace armus::fuzz
