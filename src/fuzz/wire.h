#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/harness.h"
#include "net/kv_server.h"

/// Wire-protocol fuzzing for armus-kv (the network sibling of the trace
/// fuzzer in harness.h): deterministic mutated request frames thrown at a
/// *live* KvServer over real TCP, asserting the server-side framing
/// contract from docs/WIRE_PROTOCOL.md —
///
///   every byte string a client sends is answered with a well-formed
///   response frame (an error status for an unparseable body) or ends the
///   connection; the server never crashes, never stops answering fresh
///   connections, and a LIST_SLICES after the storm still parses.
///
/// Mutants cover truncated frames, oversized length prefixes, oversized
/// varints, unknown opcodes, trailing garbage, spliced bodies, pipelined
/// bursts, mid-frame disconnects, replication-stream abuse (REPLICATE
/// subscribe followed by a mid-stream disconnect, a resume from a stale or
/// garbage base, duplicate subscribe frames on one connection), and
/// WATCH_EVENTS abuse from both sides: garbage subscribe bitmasks,
/// mid-stream disconnects, duplicate subscribes on one connection, and —
/// the client half — mutated push frames served to a real net::WatchClient
/// by an in-process fake server, which must surface them as a clean
/// dist::StoreUnavailableError, never a mis-synced parse. Every mutant is
/// a pure function of the seed, so a CI failure reproduces locally from
/// the seed alone.
///
/// tools/armus_fuzz.cc drives this via --wire (fixed-seed CI smoke);
/// tests/net_test.cc pins a deterministic small run.
namespace armus::fuzz {

struct WireOptions {
  std::uint64_t seed = 1;    ///< mutation RNG seed — the whole repro
  std::uint64_t runs = 500;  ///< mutants to send
};

struct WireStats {
  std::uint64_t mutants = 0;          ///< mutants sent
  std::uint64_t responses = 0;        ///< response frames received
  std::uint64_t error_responses = 0;  ///< of which carried a non-OK status
  std::uint64_t drops = 0;  ///< exchanges that ended the connection
  std::vector<Violation> violations;  ///< mutant bytes are the repro

  [[nodiscard]] bool ok() const { return violations.empty(); }
};

/// Runs `options.runs` mutants against `server`, which must already be
/// start()ed; connects to 127.0.0.1:server.port(). The server's slices
/// may legitimately change (a mutant can be a valid PUT_SLICE) — the
/// contract is protocol integrity and liveness, not store immutability.
WireStats fuzz_wire(net::KvServer& server, const WireOptions& options);

}  // namespace armus::fuzz
