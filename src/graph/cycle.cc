#include "graph/cycle.h"

#include <algorithm>

namespace armus::graph {

namespace {

enum class Color : std::uint8_t { kWhite, kGray, kBlack };

// One frame of the explicit DFS stack: the node and the index of the next
// out-edge to explore.
struct Frame {
  Node node;
  std::size_t next_edge;
};

}  // namespace

std::optional<std::vector<Node>> find_cycle(const DiGraph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<Color> color(n, Color::kWhite);
  std::vector<Frame> stack;
  std::vector<Node> path;  // gray nodes in DFS order, parallel to `stack`

  for (std::size_t root = 0; root < n; ++root) {
    if (color[root] != Color::kWhite) continue;
    stack.push_back({static_cast<Node>(root), 0});
    path.push_back(static_cast<Node>(root));
    color[root] = Color::kGray;

    while (!stack.empty()) {
      Frame& frame = stack.back();
      auto edges = g.out(frame.node);
      if (frame.next_edge < edges.size()) {
        Node next = edges[frame.next_edge++];
        Color& c = color[static_cast<std::size_t>(next)];
        if (c == Color::kGray) {
          // Back edge: the cycle is the path suffix starting at `next`.
          auto it = std::find(path.begin(), path.end(), next);
          return std::vector<Node>(it, path.end());
        }
        if (c == Color::kWhite) {
          c = Color::kGray;
          stack.push_back({next, 0});
          path.push_back(next);
        }
      } else {
        color[static_cast<std::size_t>(frame.node)] = Color::kBlack;
        stack.pop_back();
        path.pop_back();
      }
    }
  }
  return std::nullopt;
}

bool has_cycle(const DiGraph& g) { return find_cycle(g).has_value(); }

SccResult strongly_connected_components(const DiGraph& g) {
  // Iterative Tarjan. index/lowlink of -1 means unvisited.
  const std::size_t n = g.num_nodes();
  SccResult result;
  result.component.assign(n, -1);

  std::vector<Node> index(n, -1);
  std::vector<Node> lowlink(n, -1);
  std::vector<bool> on_stack(n, false);
  std::vector<Node> scc_stack;
  std::vector<Frame> dfs;
  Node next_index = 0;

  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    dfs.push_back({static_cast<Node>(root), 0});
    while (!dfs.empty()) {
      Frame& frame = dfs.back();
      Node v = frame.node;
      if (frame.next_edge == 0) {
        index[static_cast<std::size_t>(v)] = next_index;
        lowlink[static_cast<std::size_t>(v)] = next_index;
        ++next_index;
        scc_stack.push_back(v);
        on_stack[static_cast<std::size_t>(v)] = true;
      }
      auto edges = g.out(v);
      bool descended = false;
      while (frame.next_edge < edges.size()) {
        Node w = edges[frame.next_edge++];
        if (index[static_cast<std::size_t>(w)] == -1) {
          dfs.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[static_cast<std::size_t>(w)]) {
          lowlink[static_cast<std::size_t>(v)] = std::min(
              lowlink[static_cast<std::size_t>(v)], index[static_cast<std::size_t>(w)]);
        }
      }
      if (descended) continue;
      if (lowlink[static_cast<std::size_t>(v)] == index[static_cast<std::size_t>(v)]) {
        // v is the root of an SCC: pop it.
        for (;;) {
          Node w = scc_stack.back();
          scc_stack.pop_back();
          on_stack[static_cast<std::size_t>(w)] = false;
          result.component[static_cast<std::size_t>(w)] =
              static_cast<Node>(result.count);
          if (w == v) break;
        }
        ++result.count;
      }
      dfs.pop_back();
      if (!dfs.empty()) {
        Node parent = dfs.back().node;
        lowlink[static_cast<std::size_t>(parent)] =
            std::min(lowlink[static_cast<std::size_t>(parent)],
                     lowlink[static_cast<std::size_t>(v)]);
      }
    }
  }
  return result;
}

std::vector<std::vector<Node>> cyclic_components(const DiGraph& g) {
  SccResult scc = strongly_connected_components(g);
  std::vector<std::vector<Node>> members(scc.count);
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    members[static_cast<std::size_t>(scc.component[v])].push_back(
        static_cast<Node>(v));
  }
  std::vector<std::vector<Node>> cyclic;
  for (auto& group : members) {
    if (group.size() >= 2) {
      cyclic.push_back(std::move(group));
      continue;
    }
    // Singleton component: cyclic only if it has a self-loop.
    Node v = group.front();
    auto edges = g.out(v);
    if (std::find(edges.begin(), edges.end(), v) != edges.end()) {
      cyclic.push_back(std::move(group));
    }
  }
  return cyclic;
}

}  // namespace armus::graph
