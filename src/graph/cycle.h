#pragma once

#include <optional>
#include <vector>

#include "graph/digraph.h"

/// Cycle detection — the third step of the verification algorithm (§4).
///
/// `find_cycle` is the operation the checker runs on every scan: a single
/// iterative depth-first search, O(V + E) (Tarjan 1972, cited as [40] in the
/// paper). It returns an explicit witness cycle so deadlock reports can name
/// the tasks/resources involved. `strongly_connected_components` supports
/// reporting *all* independent deadlocks at once and the property tests.
namespace armus::graph {

/// Returns a cycle as a node sequence c0 c1 ... ck where each consecutive
/// pair is an edge and (ck, c0) is an edge; length-1 cycles (self-loops)
/// yield a single node. Returns nullopt for acyclic graphs.
std::optional<std::vector<Node>> find_cycle(const DiGraph& g);

/// True iff the graph contains at least one cycle (self-loops included).
bool has_cycle(const DiGraph& g);

/// Result of Tarjan's algorithm: `component[v]` is the SCC index of node v
/// (indices are in reverse topological order); `count` is the number of SCCs.
struct SccResult {
  std::vector<Node> component;
  std::size_t count = 0;
};

SccResult strongly_connected_components(const DiGraph& g);

/// The members of every *cyclic* SCC: components with >= 2 nodes, plus
/// single nodes that carry a self-loop. Each inner vector is one component.
std::vector<std::vector<Node>> cyclic_components(const DiGraph& g);

}  // namespace armus::graph
