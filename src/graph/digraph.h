#pragma once

#include <cstdint>
#include <span>
#include <vector>

/// A compact directed graph over dense node ids [0, n).
///
/// The deadlock checker rebuilds a graph on every scan, so construction cost
/// dominates: nodes are plain indices, edges live in per-node vectors, and
/// payloads (task names, resources) are kept externally by the builders in
/// src/core/graph_builder.*.
namespace armus::graph {

using Node = std::int32_t;

class DiGraph {
 public:
  DiGraph() = default;
  explicit DiGraph(std::size_t num_nodes) : adjacency_(num_nodes) {}

  /// Appends `count` fresh nodes; returns the id of the first one.
  Node add_nodes(std::size_t count) {
    Node first = static_cast<Node>(adjacency_.size());
    adjacency_.resize(adjacency_.size() + count);
    return first;
  }

  /// Adds a directed edge u -> v. Parallel edges are permitted (builders
  /// de-duplicate when required); self-loops are meaningful (a length-1
  /// cycle, cf. Theorem 4.8 case 1).
  void add_edge(Node u, Node v) {
    adjacency_[static_cast<std::size_t>(u)].push_back(v);
    ++num_edges_;
  }

  [[nodiscard]] std::span<const Node> out(Node u) const {
    return adjacency_[static_cast<std::size_t>(u)];
  }

  [[nodiscard]] std::size_t num_nodes() const { return adjacency_.size(); }
  [[nodiscard]] std::size_t num_edges() const { return num_edges_; }

 private:
  std::vector<std::vector<Node>> adjacency_;
  std::size_t num_edges_ = 0;
};

}  // namespace armus::graph
