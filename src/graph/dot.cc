#include "graph/dot.h"

#include <sstream>

namespace armus::graph {

std::string to_dot(const DiGraph& g, const std::string& graph_name,
                   const std::function<std::string(Node)>& label) {
  std::ostringstream out;
  out << "digraph \"" << graph_name << "\" {\n";
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    out << "  n" << v << " [label=\"" << label(static_cast<Node>(v)) << "\"];\n";
  }
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    for (Node w : g.out(static_cast<Node>(v))) {
      out << "  n" << v << " -> n" << w << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace armus::graph
