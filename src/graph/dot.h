#pragma once

#include <functional>
#include <string>

#include "graph/digraph.h"

/// GraphViz DOT export, used by deadlock reports (`DeadlockReport::to_dot`)
/// and handy when debugging dependency states.
namespace armus::graph {

/// Renders `g` in DOT syntax. `label` supplies the display name per node.
std::string to_dot(const DiGraph& g, const std::string& graph_name,
                   const std::function<std::string(Node)>& label);

}  // namespace armus::graph
