#include "net/config.h"

#include <stdexcept>

#include "obs/env.h"
#include "util/env.h"

namespace armus::net {

Endpoint parse_tcp_endpoint(const std::string& url) {
  const std::string scheme = "tcp://";
  if (url.rfind(scheme, 0) != 0) {
    throw std::invalid_argument("ARMUS_STORE url must start with tcp://, got " +
                                url);
  }
  std::string rest = url.substr(scheme.size());
  std::size_t colon = rest.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == rest.size()) {
    throw std::invalid_argument("ARMUS_STORE url must be tcp://host:port, got " +
                                url);
  }
  Endpoint endpoint;
  endpoint.host = rest.substr(0, colon);
  std::string port_str = rest.substr(colon + 1);
  std::size_t consumed = 0;
  unsigned long port = 0;
  try {
    port = std::stoul(port_str, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (consumed != port_str.size() || port == 0 || port > 65535) {
    throw std::invalid_argument("ARMUS_STORE port must be 1..65535, got " +
                                port_str);
  }
  endpoint.port = static_cast<std::uint16_t>(port);
  return endpoint;
}

std::vector<Endpoint> parse_tcp_endpoints(const std::string& urls) {
  std::vector<Endpoint> endpoints;
  std::size_t start = 0;
  while (start <= urls.size()) {
    std::size_t comma = urls.find(',', start);
    std::string one = urls.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    endpoints.push_back(parse_tcp_endpoint(one));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (endpoints.empty()) {
    throw std::invalid_argument("ARMUS_STORE must name at least one endpoint");
  }
  return endpoints;
}

std::shared_ptr<RemoteStore> remote_store_from_url(const std::string& urls,
                                                   RemoteStore::Config base) {
  std::vector<Endpoint> endpoints = parse_tcp_endpoints(urls);
  base.host = endpoints.front().host;
  base.port = endpoints.front().port;
  base.endpoints = std::move(endpoints);
  if (base.auth_token.empty()) {
    if (auto token = util::env_str("ARMUS_AUTH_TOKEN")) {
      base.auth_token = *token;
    }
  }
  return std::make_shared<RemoteStore>(std::move(base));
}

std::shared_ptr<dist::SliceStore> slice_store_from_env() {
  auto url = util::env_str("ARMUS_STORE");
  if (!url) return nullptr;
  return remote_store_from_url(*url);
}

VerifierConfig verifier_config_from_env() {
  VerifierConfig config = VerifierConfig::from_env();
  std::shared_ptr<dist::SliceStore> backend = slice_store_from_env();
  if (backend) {
    auto site = static_cast<dist::SiteId>(util::env_int("ARMUS_SITE_ID", 0));
    config.store = std::make_shared<dist::SharedStore>(std::move(backend), site);
  }
  // ARMUS_TRACE=<path>: the run records itself (docs/TRACE_FORMAT.md);
  // ARMUS_EVENTS=<path|stderr>: the run streams JSONL events
  // (docs/OBSERVABILITY.md). Both set: one fan-out observer feeds both —
  // every env-configured verifier in the process shares the instances.
  config.observer = obs::observer_from_env();
  return config;
}

}  // namespace armus::net
