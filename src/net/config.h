#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/verifier.h"
#include "dist/store.h"
#include "net/remote_store.h"

/// Backend selection: the string/env surface that picks which SliceStore
/// a process publishes into. Lives in net/ (the top layer) so core/ and
/// dist/ never depend back on the network code.
///
///   ARMUS_STORE=tcp://host:port   slices go to an armus-kv server; a
///                                 comma-separated list (tcp://a:p,tcp://b:p)
///                                 names the whole primary+replica pair and
///                                 the client fails over between them
///   ARMUS_STORE unset             in-process store (single address space)
///   ARMUS_SITE_ID=N               this process's site id (default 0)
///   ARMUS_AUTH_TOKEN=secret       AUTH on every (re)connect (servers
///                                 configured with the same token require
///                                 it before mutating ops)
namespace armus::net {

/// Parses "tcp://host:port". Throws std::invalid_argument on any other
/// shape (unknown scheme, missing/bad port).
Endpoint parse_tcp_endpoint(const std::string& url);

/// Parses a comma-separated "tcp://host:port[,tcp://host:port…]" list
/// (the multi-endpoint ARMUS_STORE form). Throws std::invalid_argument
/// when any element — or the whole list — is malformed or empty.
std::vector<Endpoint> parse_tcp_endpoints(const std::string& urls);

/// A RemoteStore for `urls` ("tcp://host:port", or a comma-separated
/// list: the first entry is dialled first, the rest are failover
/// targets); `base` supplies the non-address knobs (timeouts, backoff).
std::shared_ptr<RemoteStore> remote_store_from_url(
    const std::string& urls, RemoteStore::Config base = {});

/// The backend named by ARMUS_STORE: a RemoteStore for "tcp://…", or
/// nullptr when the variable is unset (callers fall back to in-process).
/// Throws std::invalid_argument on a malformed value — a typo must not
/// silently demote a deployment to a process-local store.
std::shared_ptr<dist::SliceStore> slice_store_from_env();

/// VerifierConfig::from_env() plus backend selection: when ARMUS_STORE
/// names a server, the config's store becomes a dist::SharedStore slice
/// (site ARMUS_SITE_ID) over a RemoteStore — so a plain Verifier built
/// from this config publishes its blocked statuses into armus-kv and its
/// checker sees every process's statuses. When ARMUS_TRACE names a path,
/// the config's observer becomes the process's trace::Recorder, so the
/// run is captured for offline replay (`armus-trace verify`) with no
/// code changes.
VerifierConfig verifier_config_from_env();

}  // namespace armus::net
