#include "net/kv_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

#include "net/socket_io.h"

namespace armus::net {

using dist::append_varint;
using dist::CodecError;
using dist::read_varint;

namespace {

std::string status_only(WireStatus status) {
  std::string out;
  append_varint(out, static_cast<std::uint64_t>(status));
  return out;
}

}  // namespace

KvServer::KvServer() : KvServer(Config{}) {}

KvServer::KvServer(Config config, std::shared_ptr<dist::Store> backing)
    : config_(std::move(config)),
      backing_(backing ? std::move(backing)
                       : std::make_shared<dist::Store>()) {}

KvServer::~KvServer() { stop(); }

void KvServer::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (listen_fd_ >= 0) return;

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("armus-kv: socket() failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) {
    io::close_fd(fd);
    throw std::runtime_error("armus-kv: bad bind address " +
                             config_.bind_address);
  }
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    io::close_fd(fd);
    throw std::runtime_error("armus-kv: cannot bind " + config_.bind_address +
                             ":" + std::to_string(config_.port));
  }

  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) != 0) {
    io::close_fd(fd);
    throw std::runtime_error("armus-kv: getsockname() failed");
  }
  bound_port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  stopping_ = false;
  acceptor_ = std::thread([this] { accept_loop(); });
}

void KvServer::stop() {
  std::thread acceptor;
  std::vector<std::unique_ptr<Connection>> connections;
  int listen_fd = -1;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (listen_fd_ < 0 && !acceptor_.joinable()) return;
    stopping_ = true;
    listen_fd = listen_fd_;
    // shutdown() wakes the acceptor out of accept(2); the fd is closed
    // only *after* the join below, so its number cannot be reused by an
    // unrelated thread while the acceptor still references it.
    if (listen_fd >= 0) ::shutdown(listen_fd, SHUT_RDWR);
    // Same for the connection threads blocked in read.
    for (auto& conn : connections_) {
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
    acceptor = std::move(acceptor_);
    connections = std::move(connections_);
  }
  if (acceptor.joinable()) acceptor.join();
  for (auto& conn : connections) {
    if (conn->thread.joinable()) conn->thread.join();
    io::close_fd(conn->fd);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  io::close_fd(listen_fd);
  listen_fd_ = -1;
}

bool KvServer::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return listen_fd_ >= 0;
}

std::uint16_t KvServer::port() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bound_port_;
}

KvServer::Stats KvServer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void KvServer::reap_finished_locked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      io::close_fd((*it)->fd);
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void KvServer::accept_loop() {
  for (;;) {
    int listen_fd;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return;
      listen_fd = listen_fd_;
    }
    if (listen_fd < 0) return;
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return;
      continue;  // transient accept failure
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      io::close_fd(fd);
      return;
    }
    reap_finished_locked();
    ++stats_.connections;
    auto conn = std::make_unique<Connection>();
    Connection* raw = conn.get();
    raw->fd = fd;
    connections_.push_back(std::move(conn));
    raw->thread = std::thread([this, raw] {
      serve_connection(raw->fd);
      std::lock_guard<std::mutex> inner(mutex_);
      raw->done = true;
    });
  }
}

void KvServer::serve_connection(int fd) {
  for (;;) {
    std::optional<std::string> body = io::read_frame(fd, config_.max_frame);
    if (!body) return;  // EOF, error, or oversized frame: drop connection
    std::string response = handle_request(*body);
    if (!io::write_all(fd, frame(response))) return;
  }
}

std::string KvServer::handle_request(std::string_view body) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.requests;
  }
  WireStatus error = WireStatus::kBadRequest;
  try {
    std::size_t offset = 0;
    std::uint64_t proto = read_varint(body, &offset);
    std::uint64_t type = read_varint(body, &offset);
    if (proto != kProtocolVersion) {
      error = WireStatus::kBadVersion;
      throw CodecError("protocol revision " + std::to_string(proto));
    }
    switch (static_cast<MsgType>(type)) {
      case MsgType::kPutSlice: {
        auto site = static_cast<dist::SiteId>(read_varint(body, &offset));
        std::uint64_t version = read_varint(body, &offset);
        std::string payload(read_bytes(body, &offset));
        expect_end(body, offset);
        auto [accepted, current] =
            backing_->put_slice_if_newer(site, std::move(payload), version);
        std::string out;
        if (!accepted) {
          append_varint(out, static_cast<std::uint64_t>(WireStatus::kStaleVersion));
          append_varint(out, current);
          std::lock_guard<std::mutex> lock(mutex_);
          ++stats_.errors;
          return out;
        }
        append_varint(out, static_cast<std::uint64_t>(WireStatus::kOk));
        append_varint(out, current);
        return out;
      }
      case MsgType::kGetSlice: {
        auto site = static_cast<dist::SiteId>(read_varint(body, &offset));
        expect_end(body, offset);
        std::optional<dist::Slice> slice = backing_->get_slice(site);
        if (!slice) {
          error = WireStatus::kNotFound;
          throw CodecError("no slice for site " + std::to_string(site));
        }
        std::string out = status_only(WireStatus::kOk);
        append_slice(out, *slice);
        return out;
      }
      case MsgType::kListSlices: {
        expect_end(body, offset);
        std::vector<dist::Slice> slices = backing_->snapshot();
        std::string out = status_only(WireStatus::kOk);
        append_varint(out, slices.size());
        for (const dist::Slice& slice : slices) append_slice(out, slice);
        return out;
      }
      case MsgType::kHeartbeat: {
        expect_end(body, offset);
        std::string out = status_only(WireStatus::kOk);
        append_varint(out, kProtocolVersion);
        return out;
      }
      case MsgType::kClear: {
        auto site = static_cast<dist::SiteId>(read_varint(body, &offset));
        expect_end(body, offset);
        backing_->remove_slice(site);
        return status_only(WireStatus::kOk);
      }
      case MsgType::kPutSliceDelta: {
        auto site = static_cast<dist::SiteId>(read_varint(body, &offset));
        std::uint64_t base = read_varint(body, &offset);
        std::uint64_t version = read_varint(body, &offset);
        std::string delta(read_bytes(body, &offset));
        expect_end(body, offset);
        std::string out;
        try {
          auto [accepted, current] =
              backing_->put_slice_delta_if_newer(site, base, version, delta);
          append_varint(out, static_cast<std::uint64_t>(
                                 accepted ? WireStatus::kOk
                                          : WireStatus::kStaleVersion));
          append_varint(out, current);
          if (!accepted) {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.errors;
          }
          return out;
        } catch (const dist::SliceBaseMismatchError& e) {
          // The stored slice is not at the delta's base: the writer must
          // fall back to a full PUT_SLICE.
          append_varint(out,
                        static_cast<std::uint64_t>(WireStatus::kBaseMismatch));
          append_varint(out, e.current_version());
          std::lock_guard<std::mutex> lock(mutex_);
          ++stats_.errors;
          return out;
        }
      }
      case MsgType::kInspect: {
        expect_end(body, offset);
        InspectInfo info;
        info.sites = backing_->inspect();
        info.generation = backing_->generation();
        info.store_version = backing_->version();
        {
          std::lock_guard<std::mutex> lock(mutex_);
          info.connections = stats_.connections;
          info.requests = stats_.requests;  // includes this INSPECT
          info.errors = stats_.errors;
        }
        std::string out = status_only(WireStatus::kOk);
        append_inspect(out, info);
        return out;
      }
      case MsgType::kListSlicesSince: {
        std::uint64_t since = read_varint(body, &offset);
        expect_end(body, offset);
        dist::DeltaSnapshot delta = backing_->snapshot_since(since);
        std::string out = status_only(WireStatus::kOk);
        append_varint(out, delta.generation);
        append_varint(out, delta.version);
        append_varint(out, delta.changed.size());
        for (const dist::Slice& slice : delta.changed) append_slice(out, slice);
        append_varint(out, delta.live_sites.size());
        for (dist::SiteId site : delta.live_sites) append_varint(out, site);
        return out;
      }
      default:
        error = WireStatus::kUnknownType;
        throw CodecError("message type " + std::to_string(type));
    }
  } catch (const dist::StoreUnavailableError&) {
    error = WireStatus::kUnavailable;
  } catch (const CodecError&) {
    // `error` already names the failure class.
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.errors;
  return status_only(error);
}

}  // namespace armus::net
