#include "net/kv_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "net/replication.h"
#include "net/socket_io.h"
#include "obs/export.h"

namespace armus::net {

using dist::append_varint;
using dist::CodecError;
using dist::read_varint;

namespace {

std::string status_only(WireStatus status) {
  std::string out;
  append_varint(out, static_cast<std::uint64_t>(status));
  return out;
}

std::size_t default_io_threads() {
  unsigned cores = std::thread::hardware_concurrency();
  if (cores == 0) cores = 1;
  return std::min<std::size_t>(4, cores);
}

/// `OK generation version nchanged slice* nlive site*` — the
/// LIST_SLICES_SINCE answer, the REPLICATE answer, and every pushed
/// replication stream frame all share this shape.
std::string delta_body(const dist::DeltaSnapshot& delta) {
  std::string out = status_only(WireStatus::kOk);
  append_varint(out, delta.generation);
  append_varint(out, delta.version);
  append_varint(out, delta.changed.size());
  for (const dist::Slice& slice : delta.changed) append_slice(out, slice);
  append_varint(out, delta.live_sites.size());
  for (dist::SiteId site : delta.live_sites) append_varint(out, site);
  return out;
}

/// Best-effort request-type peek (0 when the header does not parse) so
/// the event loop can spot a REPLICATE subscription without re-parsing.
std::uint64_t peek_type(std::string_view body) {
  try {
    std::size_t offset = 0;
    (void)read_varint(body, &offset);  // proto
    return read_varint(body, &offset);
  } catch (const CodecError&) {
    return 0;
  }
}

/// "tcp://host:port" or "host:port" → "host:port".
std::string strip_scheme(const std::string& url) {
  const std::string scheme = "tcp://";
  return url.rfind(scheme, 0) == 0 ? url.substr(scheme.size()) : url;
}

/// How often an idle replication stream receives a keepalive frame (the
/// subscriber's io_timeout doubles as liveness detection against this).
constexpr std::chrono::milliseconds kReplicationKeepalive{500};

}  // namespace

/// One event-loop thread: an epoll fd over its share of the connections
/// plus an eventfd for shutdown/adoption wakeups. Loop 0 additionally
/// owns the listen socket and hands accepted fds round-robin to every
/// loop. All per-connection state lives here, touched only by this
/// thread; the only cross-thread entry points are adopt() and
/// request_stop(), both a mutex-guarded push (or an atomic flag) plus an
/// eventfd write.
class KvServer::EventLoop {
 public:
  EventLoop(KvServer& server, int listen_fd)
      : server_(server), listen_fd_(listen_fd) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (epoll_fd_ < 0 || wake_fd_ < 0) {
      io::close_fd(epoll_fd_);
      io::close_fd(wake_fd_);
      throw std::runtime_error("armus-kv: cannot create event loop");
    }
    watch(wake_fd_, EPOLLIN);
    if (listen_fd_ >= 0) watch(listen_fd_, EPOLLIN);
  }

  ~EventLoop() {
    for (auto& [fd, conn] : conns_) ::close(fd);
    io::close_fd(wake_fd_);
    io::close_fd(epoll_fd_);
  }

  void start() {
    thread_ = std::thread([this] { run(); });
  }

  void request_stop() {
    stop_.store(true, std::memory_order_release);
    wake();
  }

  void join() {
    if (thread_.joinable()) thread_.join();
  }

  /// Hands a freshly accepted (non-blocking) fd to this loop. Called from
  /// loop 0's thread; the fd is registered on this loop's next wakeup.
  void adopt(int fd) {
    {
      std::lock_guard<std::mutex> lock(pending_mutex_);
      pending_.push_back(fd);
    }
    wake();
  }

 private:
  struct Conn {
    std::string in;          ///< unparsed inbound bytes (partial frames)
    std::string out;         ///< queued response bytes
    std::size_t out_off = 0; ///< sent prefix of `out`
    bool authenticated = false;
    /// A replica's REPLICATE subscription: the loop pushes every store
    /// change (and ~500 ms keepalives) as extra frames on this conn.
    bool replicating = false;
    std::uint64_t streamed_version = 0;  ///< store version pushed so far
    std::chrono::steady_clock::time_point last_push;
    std::uint32_t events = EPOLLIN;  ///< current epoll interest mask
    std::chrono::steady_clock::time_point last_activity;
  };

  void wake() {
    std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }

  void watch(int fd, std::uint32_t events) {
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = events;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  }

  void run() {
    std::vector<struct epoll_event> events(128);
    const bool sweep = server_.config_.idle_timeout.count() > 0;
    for (;;) {
      // Periodic wakeups only when there is periodic work: an idle sweep,
      // or replication subscribers to feed (pushes + keepalives).
      int timeout = (sweep || replicating_ > 0) ? 50 : -1;
      int n = ::epoll_wait(epoll_fd_, events.data(),
                           static_cast<int>(events.size()), timeout);
      if (stop_.load(std::memory_order_acquire)) return;
      if (n < 0) {
        if (errno == EINTR) continue;
        return;  // epoll fd gone: shutting down
      }
      for (int i = 0; i < n; ++i) {
        int fd = events[i].data.fd;
        if (fd == wake_fd_) {
          drain_wake();
          adopt_pending();
        } else if (fd == listen_fd_) {
          accept_ready();
        } else {
          handle_io(fd, events[i].events);
        }
      }
      if (replicating_ > 0) push_replication();
      if (sweep) sweep_idle();
    }
  }

  void drain_wake() {
    std::uint64_t buf;
    while (::read(wake_fd_, &buf, sizeof(buf)) > 0) {
    }
  }

  void adopt_pending() {
    std::vector<int> pending;
    {
      std::lock_guard<std::mutex> lock(pending_mutex_);
      pending.swap(pending_);
    }
    auto now = std::chrono::steady_clock::now();
    for (int fd : pending) {
      Conn conn;
      conn.last_activity = now;
      conns_.emplace(fd, std::move(conn));
      watch(fd, EPOLLIN);
    }
  }

  void accept_ready() {
    for (;;) {
      int fd = ::accept4(listen_fd_, nullptr, nullptr,
                         SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // EAGAIN, or a transient error: retry on the next event
      }
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      server_.connections_.fetch_add(1, std::memory_order_relaxed);
      std::size_t target = server_.next_loop_.fetch_add(
                               1, std::memory_order_relaxed) %
                           server_.loops_.size();
      server_.loops_[target]->adopt(fd);
    }
  }

  void handle_io(int fd, std::uint32_t revents) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    Conn& conn = it->second;
    if (revents & (EPOLLERR | EPOLLHUP)) {
      close_conn(fd);
      return;
    }
    if (revents & EPOLLIN) {
      if (!read_input(fd, conn)) {
        close_conn(fd);
        return;
      }
    }
    if (conn.out_off < conn.out.size()) {
      if (!flush(fd, conn)) close_conn(fd);
    } else if (conn.events & EPOLLOUT) {
      set_interest(fd, conn, EPOLLIN);
    }
  }

  /// Reads until EAGAIN, then answers every complete frame in order
  /// (pipelining: many requests may complete in one read burst). Returns
  /// false when the connection must be dropped.
  bool read_input(int fd, Conn& conn) {
    char buf[65536];
    bool eof = false;
    bool any = false;
    for (;;) {
      ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n > 0) {
        conn.in.append(buf, static_cast<std::size_t>(n));
        any = true;
        continue;
      }
      if (n == 0) {
        eof = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;
    }
    if (any) conn.last_activity = std::chrono::steady_clock::now();

    std::size_t pos = 0;
    while (conn.in.size() - pos >= 4) {
      std::uint32_t length = 0;
      for (int i = 3; i >= 0; --i) {
        length = (length << 8) |
                 static_cast<std::uint8_t>(conn.in[pos + static_cast<std::size_t>(i)]);
      }
      if (length > server_.config_.max_frame) {
        // Oversized declared length: the stream is not trustworthy and
        // the body is never allocated.
        server_.dropped_protocol_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      if (conn.in.size() - pos - 4 < length) break;  // partial frame
      std::string_view body(conn.in.data() + pos + 4, length);
      std::uint64_t type = peek_type(body);
      std::string response = server_.handle_request(body, &conn.authenticated);
      if (type == static_cast<std::uint64_t>(MsgType::kReplicate) &&
          !conn.replicating) {
        mark_replicating(conn, response);
      }
      conn.out += frame(response);
      pos += 4 + length;
      // Don't let a request burst balloon the queue unchecked: once past
      // the cap, push bytes to the kernel now and drop the connection if
      // the peer isn't draining (flush counts it).
      if (conn.out.size() - conn.out_off > server_.config_.max_write_queue &&
          !flush(fd, conn)) {
        return false;
      }
    }
    if (pos > 0) conn.in.erase(0, pos);
    if (eof) {
      // Peer half-closed after (possibly) pipelined requests: best-effort
      // flush of the queued responses, then drop.
      if (conn.out_off < conn.out.size()) flush(fd, conn);
      return false;
    }
    return true;
  }

  /// Sends queued bytes until EAGAIN. False = drop the connection (send
  /// error, or the queue still exceeds the backpressure cap).
  bool flush(int fd, Conn& conn) {
    while (conn.out_off < conn.out.size()) {
      ssize_t n = ::send(fd, conn.out.data() + conn.out_off,
                         conn.out.size() - conn.out_off, MSG_NOSIGNAL);
      if (n > 0) {
        conn.out_off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      return false;
    }
    if (conn.out_off == conn.out.size()) {
      conn.out.clear();
      conn.out_off = 0;
      if (conn.events & EPOLLOUT) set_interest(fd, conn, EPOLLIN);
      return true;
    }
    if (conn.out.size() - conn.out_off > server_.config_.max_write_queue) {
      server_.dropped_backpressure_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (conn.out_off > 0) {
      conn.out.erase(0, conn.out_off);
      conn.out_off = 0;
    }
    set_interest(fd, conn, EPOLLIN | EPOLLOUT);
    return true;
  }

  /// Inspects the answer to a REPLICATE request: on OK the connection
  /// becomes a push subscription resuming from the version the answer
  /// itself carried (docs/WIRE_PROTOCOL.md §13).
  void mark_replicating(Conn& conn, std::string_view response) {
    try {
      std::size_t offset = 0;
      auto status = static_cast<WireStatus>(read_varint(response, &offset));
      if (status != WireStatus::kOk) return;
      (void)read_varint(response, &offset);  // generation
      conn.streamed_version = read_varint(response, &offset);
    } catch (const CodecError&) {
      return;
    }
    conn.replicating = true;
    conn.last_push = std::chrono::steady_clock::now();
    ++replicating_;
  }

  /// Feeds every replication subscription: a delta frame as soon as the
  /// store moved past what the conn has seen, a keepalive (empty change
  /// set) otherwise after kReplicationKeepalive of silence. Push errors
  /// drop the conn — the subscriber reconnects and resumes.
  void push_replication() {
    auto now = std::chrono::steady_clock::now();
    std::uint64_t version = server_.backing_->version();
    std::vector<int> dead;
    for (auto& [fd, conn] : conns_) {
      if (!conn.replicating) continue;
      bool moved = version != conn.streamed_version;
      if (!moved && now - conn.last_push < kReplicationKeepalive) continue;
      dist::DeltaSnapshot delta;
      try {
        delta = server_.backing_->snapshot_since(conn.streamed_version);
      } catch (const dist::StoreUnavailableError&) {
        continue;  // outage: the stream idles until the store is back
      }
      conn.out += frame(delta_body(delta));
      conn.streamed_version = delta.version;
      conn.last_push = now;
      if (!flush(fd, conn)) dead.push_back(fd);
    }
    for (int fd : dead) close_conn(fd);
  }

  void set_interest(int fd, Conn& conn, std::uint32_t events) {
    if (conn.events == events) return;
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = events;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0) {
      conn.events = events;
    }
  }

  void close_conn(int fd) {
    auto it = conns_.find(fd);
    if (it != conns_.end() && it->second.replicating) --replicating_;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    conns_.erase(fd);
  }

  void sweep_idle() {
    auto now = std::chrono::steady_clock::now();
    auto limit = server_.config_.idle_timeout;
    std::vector<int> expired;
    for (const auto& [fd, conn] : conns_) {
      // A replication subscription is all outbound after the subscribe;
      // inbound silence is its normal state, not idleness.
      if (conn.replicating) continue;
      if (now - conn.last_activity > limit) expired.push_back(fd);
    }
    for (int fd : expired) {
      server_.dropped_idle_.fetch_add(1, std::memory_order_relaxed);
      close_conn(fd);
    }
  }

  KvServer& server_;
  int listen_fd_;  ///< owned by KvServer; >= 0 only on loop 0
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::mutex pending_mutex_;
  std::vector<int> pending_;
  std::unordered_map<int, Conn> conns_;
  /// Live replication subscriptions on this loop (loop-thread only).
  std::size_t replicating_ = 0;
};

KvServer::KvServer() : KvServer(Config{}) {}

KvServer::KvServer(Config config, std::shared_ptr<dist::Store> backing)
    : config_(std::move(config)),
      backing_(backing ? std::move(backing)
                       : std::make_shared<dist::Store>()) {
  role_.store(static_cast<std::uint64_t>(config_.role),
              std::memory_order_release);
  primary_hostport_ = strip_scheme(config_.primary);
}

KvServer::~KvServer() { stop(); }

void KvServer::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (listen_fd_ >= 0) return;

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("armus-kv: socket() failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) {
    io::close_fd(fd);
    throw std::runtime_error("armus-kv: bad bind address " +
                             config_.bind_address);
  }
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 256) != 0) {
    io::close_fd(fd);
    throw std::runtime_error("armus-kv: cannot bind " + config_.bind_address +
                             ":" + std::to_string(config_.port));
  }

  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) != 0) {
    io::close_fd(fd);
    throw std::runtime_error("armus-kv: getsockname() failed");
  }
  io::set_nonblocking(fd);
  bound_port_ = ntohs(addr.sin_port);

  std::size_t threads = config_.io_threads != 0 ? config_.io_threads
                                                : default_io_threads();
  try {
    loops_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      loops_.push_back(
          std::make_unique<EventLoop>(*this, i == 0 ? fd : -1));
    }
  } catch (...) {
    loops_.clear();
    io::close_fd(fd);
    throw;
  }
  listen_fd_ = fd;
  for (auto& loop : loops_) loop->start();

  // A replica with a configured primary mirrors it from the moment the
  // server is up. (promote() may stop this subscription later.)
  if (config_.role == Role::kReplica && !primary_hostport_.empty() &&
      role() == Role::kReplica) {
    std::size_t colon = primary_hostport_.rfind(':');
    unsigned long port = 0;
    if (colon != std::string::npos) {
      try {
        port = std::stoul(primary_hostport_.substr(colon + 1));
      } catch (const std::exception&) {
        port = 0;
      }
    }
    if (port == 0 || port > 65535) {
      throw std::runtime_error("armus-kv: bad primary address " +
                               config_.primary);
    }
    std::lock_guard<std::mutex> promote_lock(promote_mutex_);
    if (!replication_) {
      ReplicationClient::Config rc;
      rc.host = primary_hostport_.substr(0, colon);
      rc.port = static_cast<std::uint16_t>(port);
      rc.auth_token = config_.auth_token;
      rc.max_frame = config_.max_frame;
      rc.backoff_seed = config_.replication_backoff_seed;
      replication_ = std::make_unique<ReplicationClient>(std::move(rc),
                                                         backing_);
    }
    replication_->start();
  }
}

void KvServer::stop() {
  {
    std::lock_guard<std::mutex> promote_lock(promote_mutex_);
    if (replication_) replication_->stop();
  }
  std::vector<std::unique_ptr<EventLoop>> loops;
  int listen_fd = -1;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (listen_fd_ < 0) return;
    listen_fd = listen_fd_;
    listen_fd_ = -1;
    loops = std::move(loops_);
    loops_.clear();
  }
  for (auto& loop : loops) loop->request_stop();
  for (auto& loop : loops) loop->join();
  loops.clear();  // destructors close the connection fds
  io::close_fd(listen_fd);
}

bool KvServer::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return listen_fd_ >= 0;
}

std::uint16_t KvServer::port() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bound_port_;
}

KvServer::Stats KvServer::stats() const {
  Stats stats;
  stats.connections = connections_.load(std::memory_order_relaxed);
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.errors = errors_.load(std::memory_order_relaxed);
  stats.dropped_backpressure =
      dropped_backpressure_.load(std::memory_order_relaxed);
  stats.dropped_idle = dropped_idle_.load(std::memory_order_relaxed);
  stats.dropped_protocol = dropped_protocol_.load(std::memory_order_relaxed);
  stats.auth_failures = auth_failures_.load(std::memory_order_relaxed);
  stats.not_primary = not_primary_.load(std::memory_order_relaxed);
  stats.role = role_.load(std::memory_order_acquire);
  if (stats.role == static_cast<std::uint64_t>(Role::kReplica)) {
    ReplicationClient::Stats replication;
    {
      std::lock_guard<std::mutex> lock(promote_mutex_);
      if (replication_) replication = replication_->stats();
    }
    stats.replication_frames = replication.frames;
    stats.replication_resyncs = replication.resyncs;
    stats.replication_lag_versions = replication.lag_versions;
    stats.replication_lag_ms = replication.lag_ms;
  }
  return stats;
}

KvServer::Role KvServer::role() const {
  return static_cast<Role>(role_.load(std::memory_order_acquire));
}

std::uint64_t KvServer::promote() {
  std::lock_guard<std::mutex> lock(promote_mutex_);
  if (role() == Role::kPrimary) return backing_->generation();
  // Order matters: first silence the old primary's feed, then fence
  // readers with a fresh generation, and only then start taking writes —
  // so no reader can ever carry version comparisons across the takeover.
  if (replication_) replication_->stop();
  backing_->bump_generation();
  role_.store(static_cast<std::uint64_t>(Role::kPrimary),
              std::memory_order_release);
  return backing_->generation();
}

std::string KvServer::stats_json() const {
  obs::Registry registry;
  obs::export_stats(registry, "kv", stats());
  registry.counter_set("kv.generation", backing_->generation());
  registry.counter_set("kv.store_version", backing_->version());
  registry.counter_set("kv.slices", backing_->slice_count());
  return registry.snapshot_json();
}

std::string KvServer::handle_request(std::string_view body) {
  return handle_request(body, nullptr);
}

std::string KvServer::handle_request(std::string_view body,
                                     bool* authenticated) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  WireStatus error = WireStatus::kBadRequest;
  try {
    std::size_t offset = 0;
    std::uint64_t proto = read_varint(body, &offset);
    std::uint64_t type = read_varint(body, &offset);
    if (proto != kProtocolVersion) {
      error = WireStatus::kBadVersion;
      throw CodecError("protocol revision " + std::to_string(proto));
    }
    // The role gate: a replica serves every read but answers mutating ops
    // — and REPLICATE, since a replica must not feed a subscriber — with
    // NOT_PRIMARY + the primary's address, before the auth gate (the
    // redirect is not a secret, and an unauthenticated client must still
    // learn where to go). PROMOTE is the exception: it is exactly the op
    // a replica must accept.
    if (role() == Role::kReplica &&
        (static_cast<MsgType>(type) == MsgType::kPutSlice ||
         static_cast<MsgType>(type) == MsgType::kClear ||
         static_cast<MsgType>(type) == MsgType::kPutSliceDelta ||
         static_cast<MsgType>(type) == MsgType::kReplicate)) {
      not_primary_.fetch_add(1, std::memory_order_relaxed);
      errors_.fetch_add(1, std::memory_order_relaxed);
      std::string out = status_only(WireStatus::kNotPrimary);
      append_bytes(out, primary_hostport_);
      return out;
    }
    // The auth gate: a token-configured server refuses mutating ops until
    // the connection has authenticated. Trusted embedded callers
    // (authenticated == nullptr) and read-only ops pass. Checked before
    // payload parsing so an unauthorised writer learns nothing from
    // parse-error distinctions.
    if (!config_.auth_token.empty() && authenticated != nullptr &&
        !*authenticated &&
        (static_cast<MsgType>(type) == MsgType::kPutSlice ||
         static_cast<MsgType>(type) == MsgType::kClear ||
         static_cast<MsgType>(type) == MsgType::kPutSliceDelta ||
         static_cast<MsgType>(type) == MsgType::kReplicate ||
         static_cast<MsgType>(type) == MsgType::kPromote)) {
      auth_failures_.fetch_add(1, std::memory_order_relaxed);
      error = WireStatus::kUnauthorized;
      throw CodecError("unauthenticated mutating request");
    }
    switch (static_cast<MsgType>(type)) {
      case MsgType::kPutSlice: {
        auto site = static_cast<dist::SiteId>(read_varint(body, &offset));
        std::uint64_t version = read_varint(body, &offset);
        std::string payload(read_bytes(body, &offset));
        expect_end(body, offset);
        auto [accepted, current] =
            backing_->put_slice_if_newer(site, std::move(payload), version);
        std::string out;
        if (!accepted) {
          append_varint(out, static_cast<std::uint64_t>(WireStatus::kStaleVersion));
          append_varint(out, current);
          errors_.fetch_add(1, std::memory_order_relaxed);
          return out;
        }
        append_varint(out, static_cast<std::uint64_t>(WireStatus::kOk));
        append_varint(out, current);
        return out;
      }
      case MsgType::kGetSlice: {
        auto site = static_cast<dist::SiteId>(read_varint(body, &offset));
        expect_end(body, offset);
        std::optional<dist::Slice> slice = backing_->get_slice(site);
        if (!slice) {
          error = WireStatus::kNotFound;
          throw CodecError("no slice for site " + std::to_string(site));
        }
        std::string out = status_only(WireStatus::kOk);
        append_slice(out, *slice);
        return out;
      }
      case MsgType::kListSlices: {
        expect_end(body, offset);
        std::vector<dist::Slice> slices = backing_->snapshot();
        std::string out = status_only(WireStatus::kOk);
        append_varint(out, slices.size());
        for (const dist::Slice& slice : slices) append_slice(out, slice);
        return out;
      }
      case MsgType::kHeartbeat: {
        expect_end(body, offset);
        std::string out = status_only(WireStatus::kOk);
        append_varint(out, kProtocolVersion);
        return out;
      }
      case MsgType::kClear: {
        auto site = static_cast<dist::SiteId>(read_varint(body, &offset));
        expect_end(body, offset);
        backing_->remove_slice(site);
        return status_only(WireStatus::kOk);
      }
      case MsgType::kPutSliceDelta: {
        auto site = static_cast<dist::SiteId>(read_varint(body, &offset));
        std::uint64_t base = read_varint(body, &offset);
        std::uint64_t version = read_varint(body, &offset);
        std::string delta(read_bytes(body, &offset));
        expect_end(body, offset);
        std::string out;
        try {
          auto [accepted, current] =
              backing_->put_slice_delta_if_newer(site, base, version, delta);
          append_varint(out, static_cast<std::uint64_t>(
                                 accepted ? WireStatus::kOk
                                          : WireStatus::kStaleVersion));
          append_varint(out, current);
          if (!accepted) errors_.fetch_add(1, std::memory_order_relaxed);
          return out;
        } catch (const dist::SliceBaseMismatchError& e) {
          // The stored slice is not at the delta's base: the writer must
          // fall back to a full PUT_SLICE.
          append_varint(out,
                        static_cast<std::uint64_t>(WireStatus::kBaseMismatch));
          append_varint(out, e.current_version());
          errors_.fetch_add(1, std::memory_order_relaxed);
          return out;
        }
      }
      case MsgType::kInspect: {
        expect_end(body, offset);
        InspectInfo info;
        info.sites = backing_->inspect();
        info.generation = backing_->generation();
        info.store_version = backing_->version();
        info.connections = connections_.load(std::memory_order_relaxed);
        info.requests = requests_.load(std::memory_order_relaxed);
        info.errors = errors_.load(std::memory_order_relaxed);
        info.role = role_.load(std::memory_order_acquire);
        if (static_cast<Role>(info.role) == Role::kReplica) {
          info.primary = primary_hostport_;
          ReplicationClient::Stats replication;
          {
            std::lock_guard<std::mutex> lock(promote_mutex_);
            if (replication_) replication = replication_->stats();
          }
          info.lag_versions = replication.lag_versions;
          info.lag_ms = replication.lag_ms;
          info.resync_age_ms = replication.resync_age_ms;
        }
        std::string out = status_only(WireStatus::kOk);
        append_inspect(out, info);
        return out;
      }
      case MsgType::kListSlicesSince: {
        std::uint64_t since = read_varint(body, &offset);
        expect_end(body, offset);
        return delta_body(backing_->snapshot_since(since));
      }
      case MsgType::kReplicate: {
        std::uint64_t since_generation = read_varint(body, &offset);
        std::uint64_t since_version = read_varint(body, &offset);
        expect_end(body, offset);
        // Resume where the subscriber left off only when its history is
        // ours: a different generation (or a version from the future)
        // means full resync from 0. The answer doubles as the first
        // stream frame; the event loop then marks the connection as a
        // push subscription.
        std::uint64_t since = since_generation == backing_->generation() &&
                                      since_version <= backing_->version()
                                  ? since_version
                                  : 0;
        return delta_body(backing_->snapshot_since(since));
      }
      case MsgType::kPromote: {
        expect_end(body, offset);
        std::string out = status_only(WireStatus::kOk);
        append_varint(out, promote());
        return out;
      }
      case MsgType::kStats: {
        expect_end(body, offset);
        std::string out = status_only(WireStatus::kOk);
        append_bytes(out, stats_json());
        return out;
      }
      case MsgType::kAuth: {
        std::string_view token = read_bytes(body, &offset);
        expect_end(body, offset);
        if (config_.auth_token.empty() || token == config_.auth_token) {
          // A tokenless server accepts any AUTH as a no-op, so a client
          // configured with a token still interoperates with it.
          if (authenticated != nullptr) *authenticated = true;
          return status_only(WireStatus::kOk);
        }
        auth_failures_.fetch_add(1, std::memory_order_relaxed);
        error = WireStatus::kUnauthorized;
        throw CodecError("bad auth token");
      }
      default:
        error = WireStatus::kUnknownType;
        throw CodecError("message type " + std::to_string(type));
    }
  } catch (const dist::StoreUnavailableError&) {
    error = WireStatus::kUnavailable;
  } catch (const CodecError&) {
    // `error` already names the failure class.
  }
  errors_.fetch_add(1, std::memory_order_relaxed);
  return status_only(error);
}

}  // namespace armus::net
