#include "net/kv_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "dist/codec.h"
#include "net/replication.h"
#include "net/socket_io.h"
#include "obs/export.h"

namespace armus::net {

using dist::append_varint;
using dist::CodecError;
using dist::read_varint;

namespace {

std::string status_only(WireStatus status) {
  std::string out;
  append_varint(out, static_cast<std::uint64_t>(status));
  return out;
}

std::size_t default_io_threads() {
  unsigned cores = std::thread::hardware_concurrency();
  if (cores == 0) cores = 1;
  return std::min<std::size_t>(4, cores);
}

/// `OK generation version nchanged slice* nlive site*` — the
/// LIST_SLICES_SINCE answer, the REPLICATE answer, and every pushed
/// replication stream frame all share this shape.
std::string delta_body(const dist::DeltaSnapshot& delta) {
  std::string out = status_only(WireStatus::kOk);
  append_varint(out, delta.generation);
  append_varint(out, delta.version);
  append_varint(out, delta.changed.size());
  for (const dist::Slice& slice : delta.changed) append_slice(out, slice);
  append_varint(out, delta.live_sites.size());
  for (dist::SiteId site : delta.live_sites) append_varint(out, site);
  return out;
}

/// Best-effort request-type peek (0 when the header does not parse) so
/// the event loop can spot a REPLICATE subscription without re-parsing.
std::uint64_t peek_type(std::string_view body) {
  try {
    std::size_t offset = 0;
    (void)read_varint(body, &offset);  // proto
    return read_varint(body, &offset);
  } catch (const CodecError&) {
    return 0;
  }
}

/// "tcp://host:port" or "host:port" → "host:port".
std::string strip_scheme(const std::string& url) {
  const std::string scheme = "tcp://";
  return url.rfind(scheme, 0) == 0 ? url.substr(scheme.size()) : url;
}

/// How often an idle replication stream receives a keepalive frame (the
/// subscriber's io_timeout doubles as liveness detection against this).
constexpr std::chrono::milliseconds kReplicationKeepalive{500};

/// Opcode spelling inside metric names (`op.<name>.latency_us`) and
/// `slow_request`/`store_outage` events.
const char* op_name(std::uint64_t type) {
  switch (static_cast<MsgType>(type)) {
    case MsgType::kPutSlice: return "put_slice";
    case MsgType::kGetSlice: return "get_slice";
    case MsgType::kListSlices: return "list_slices";
    case MsgType::kHeartbeat: return "heartbeat";
    case MsgType::kClear: return "clear";
    case MsgType::kPutSliceDelta: return "put_slice_delta";
    case MsgType::kListSlicesSince: return "list_slices_since";
    case MsgType::kInspect: return "inspect";
    case MsgType::kStats: return "stats";
    case MsgType::kAuth: return "auth";
    case MsgType::kReplicate: return "replicate";
    case MsgType::kPromote: return "promote";
    case MsgType::kWatchEvents: return "watch_events";
  }
  return "unknown";
}

/// Decoded status count of a slice payload — the `blocked` field of
/// slice_commit events. 0 for a corrupt payload, like INSPECT rows.
std::uint64_t count_blocked(std::string_view payload) {
  try {
    return dist::decode_statuses(payload).size();
  } catch (const CodecError&) {
    return 0;
  }
}

}  // namespace

/// The bounded event ring behind WATCH_EVENTS: publish sites append,
/// every subscriber drains from its own cursor, and when the ring has
/// already evicted what a cursor points at the drain reports how many
/// events were missed (surfaced as one watch_gap event) instead of ever
/// buffering per-subscriber. One mutex: events are rare next to requests.
class KvServer::EventHub {
 public:
  static constexpr std::size_t kCapacity = 1024;

  void publish(std::uint64_t category, std::string line) {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.push_back(Entry{next_seq_++, category, std::move(line)});
    if (entries_.size() > kCapacity) entries_.pop_front();
  }

  /// The next sequence number — where a fresh subscriber starts (it sees
  /// events published after its subscribe, never history).
  [[nodiscard]] std::uint64_t head() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return next_seq_;
  }

  /// Appends every line at or past `cursor` whose category intersects
  /// `mask`; adds evicted-before-read events to `*missed`. Returns the new
  /// cursor (the ring head).
  std::uint64_t drain(std::uint64_t cursor, std::uint64_t mask,
                      std::vector<std::string>* out,
                      std::uint64_t* missed) const {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!entries_.empty() && cursor < entries_.front().seq) {
      *missed += entries_.front().seq - cursor;
      cursor = entries_.front().seq;
    }
    for (const Entry& entry : entries_) {
      if (entry.seq < cursor) continue;
      if (entry.category & mask) out->push_back(entry.line);
    }
    return next_seq_;
  }

 private:
  struct Entry {
    std::uint64_t seq;
    std::uint64_t category;
    std::string line;
  };

  mutable std::mutex mutex_;
  std::deque<Entry> entries_;
  std::uint64_t next_seq_ = 0;
};

/// One event-loop thread: an epoll fd over its share of the connections
/// plus an eventfd for shutdown/adoption wakeups. Loop 0 additionally
/// owns the listen socket and hands accepted fds round-robin to every
/// loop. All per-connection state lives here, touched only by this
/// thread; the only cross-thread entry points are adopt() and
/// request_stop(), both a mutex-guarded push (or an atomic flag) plus an
/// eventfd write.
class KvServer::EventLoop {
 public:
  EventLoop(KvServer& server, int listen_fd)
      : server_(server), listen_fd_(listen_fd) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (epoll_fd_ < 0 || wake_fd_ < 0) {
      io::close_fd(epoll_fd_);
      io::close_fd(wake_fd_);
      throw std::runtime_error("armus-kv: cannot create event loop");
    }
    watch(wake_fd_, EPOLLIN);
    if (listen_fd_ >= 0) watch(listen_fd_, EPOLLIN);
  }

  ~EventLoop() {
    for (auto& [fd, conn] : conns_) ::close(fd);
    io::close_fd(wake_fd_);
    io::close_fd(epoll_fd_);
  }

  void start() {
    thread_ = std::thread([this] { run(); });
  }

  void request_stop() {
    stop_.store(true, std::memory_order_release);
    wake();
  }

  void join() {
    if (thread_.joinable()) thread_.join();
  }

  /// Hands a freshly accepted (non-blocking) fd to this loop. Called from
  /// loop 0's thread; the fd is registered on this loop's next wakeup.
  void adopt(int fd) {
    {
      std::lock_guard<std::mutex> lock(pending_mutex_);
      pending_.push_back(fd);
    }
    wake();
  }

 private:
  struct Conn {
    std::string in;          ///< unparsed inbound bytes (partial frames)
    std::string out;         ///< queued response bytes
    std::size_t out_off = 0; ///< sent prefix of `out`
    bool authenticated = false;
    /// A replica's REPLICATE subscription: the loop pushes every store
    /// change (and ~500 ms keepalives) as extra frames on this conn.
    bool replicating = false;
    std::uint64_t streamed_version = 0;  ///< store version pushed so far
    std::chrono::steady_clock::time_point last_push;
    /// A WATCH_EVENTS subscription: the loop drains the server's event
    /// hub past watch_cursor into push frames, filtered by watch_mask.
    bool watching = false;
    std::uint64_t watch_mask = 0;
    std::uint64_t watch_cursor = 0;
    /// What close_conn reports in the conn_drop event; set by whichever
    /// path decided to drop.
    const char* drop_reason = "error";
    std::uint32_t events = EPOLLIN;  ///< current epoll interest mask
    std::chrono::steady_clock::time_point last_activity;
  };

  void wake() {
    std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }

  void watch(int fd, std::uint32_t events) {
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = events;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  }

  void run() {
    std::vector<struct epoll_event> events(128);
    const bool sweep = server_.config_.idle_timeout.count() > 0;
    for (;;) {
      // Periodic wakeups only when there is periodic work: an idle sweep,
      // or replication/watch subscribers to feed.
      int timeout = (sweep || replicating_ > 0 || watching_ > 0) ? 50 : -1;
      int n = ::epoll_wait(epoll_fd_, events.data(),
                           static_cast<int>(events.size()), timeout);
      if (stop_.load(std::memory_order_acquire)) return;
      if (n < 0) {
        if (errno == EINTR) continue;
        return;  // epoll fd gone: shutting down
      }
      for (int i = 0; i < n; ++i) {
        int fd = events[i].data.fd;
        if (fd == wake_fd_) {
          drain_wake();
          adopt_pending();
        } else if (fd == listen_fd_) {
          accept_ready();
        } else {
          handle_io(fd, events[i].events);
        }
      }
      if (replicating_ > 0) push_replication();
      if (watching_ > 0) push_watch();
      if (sweep) sweep_idle();
    }
  }

  void drain_wake() {
    std::uint64_t buf;
    while (::read(wake_fd_, &buf, sizeof(buf)) > 0) {
    }
  }

  void adopt_pending() {
    std::vector<int> pending;
    {
      std::lock_guard<std::mutex> lock(pending_mutex_);
      pending.swap(pending_);
    }
    auto now = std::chrono::steady_clock::now();
    for (int fd : pending) {
      Conn conn;
      conn.last_activity = now;
      conns_.emplace(fd, std::move(conn));
      watch(fd, EPOLLIN);
    }
  }

  void accept_ready() {
    for (;;) {
      int fd = ::accept4(listen_fd_, nullptr, nullptr,
                         SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // EAGAIN, or a transient error: retry on the next event
      }
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      server_.connections_.fetch_add(1, std::memory_order_relaxed);
      server_.publish_conn_accept();
      std::size_t target = server_.next_loop_.fetch_add(
                               1, std::memory_order_relaxed) %
                           server_.loops_.size();
      server_.loops_[target]->adopt(fd);
    }
  }

  void handle_io(int fd, std::uint32_t revents) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    Conn& conn = it->second;
    if (revents & (EPOLLERR | EPOLLHUP)) {
      close_conn(fd);
      return;
    }
    if (revents & EPOLLIN) {
      if (!read_input(fd, conn)) {
        close_conn(fd);
        return;
      }
    }
    if (conn.out_off < conn.out.size()) {
      if (!flush(fd, conn)) close_conn(fd);
    } else if (conn.events & EPOLLOUT) {
      set_interest(fd, conn, EPOLLIN);
    }
  }

  /// Reads until EAGAIN, then answers every complete frame in order
  /// (pipelining: many requests may complete in one read burst). Returns
  /// false when the connection must be dropped.
  bool read_input(int fd, Conn& conn) {
    char buf[65536];
    bool eof = false;
    bool any = false;
    for (;;) {
      ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n > 0) {
        conn.in.append(buf, static_cast<std::size_t>(n));
        any = true;
        continue;
      }
      if (n == 0) {
        eof = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;
    }
    if (any) conn.last_activity = std::chrono::steady_clock::now();

    std::size_t pos = 0;
    while (conn.in.size() - pos >= 4) {
      std::uint32_t length = 0;
      for (int i = 3; i >= 0; --i) {
        length = (length << 8) |
                 static_cast<std::uint8_t>(conn.in[pos + static_cast<std::size_t>(i)]);
      }
      if (length > server_.config_.max_frame) {
        // Oversized declared length: the stream is not trustworthy and
        // the body is never allocated.
        server_.dropped_protocol_.fetch_add(1, std::memory_order_relaxed);
        conn.drop_reason = "protocol";
        return false;
      }
      if (conn.in.size() - pos - 4 < length) break;  // partial frame
      std::string_view body(conn.in.data() + pos + 4, length);
      std::uint64_t type = peek_type(body);
      auto started = std::chrono::steady_clock::now();
      std::uint64_t request_id = 0;
      std::string response =
          server_.handle_request(body, &conn.authenticated, &request_id);
      auto latency_us = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - started)
              .count());
      server_.note_op(type, latency_us, request_id);
      if (type == static_cast<std::uint64_t>(MsgType::kReplicate) &&
          !conn.replicating) {
        mark_replicating(conn, response);
      }
      if (type == static_cast<std::uint64_t>(MsgType::kWatchEvents)) {
        mark_watching(conn, response);
      }
      conn.out += frame(response);
      pos += 4 + length;
      // Don't let a request burst balloon the queue unchecked: once past
      // the cap, push bytes to the kernel now and drop the connection if
      // the peer isn't draining (flush counts it).
      if (conn.out.size() - conn.out_off > server_.config_.max_write_queue &&
          !flush(fd, conn)) {
        return false;
      }
    }
    if (pos > 0) conn.in.erase(0, pos);
    if (eof) {
      // Peer half-closed after (possibly) pipelined requests: best-effort
      // flush of the queued responses, then drop.
      if (conn.out_off < conn.out.size()) flush(fd, conn);
      conn.drop_reason = "eof";
      return false;
    }
    return true;
  }

  /// Sends queued bytes until EAGAIN. False = drop the connection (send
  /// error, or the queue still exceeds the backpressure cap).
  bool flush(int fd, Conn& conn) {
    while (conn.out_off < conn.out.size()) {
      ssize_t n = ::send(fd, conn.out.data() + conn.out_off,
                         conn.out.size() - conn.out_off, MSG_NOSIGNAL);
      if (n > 0) {
        conn.out_off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      return false;
    }
    if (conn.out_off == conn.out.size()) {
      conn.out.clear();
      conn.out_off = 0;
      if (conn.events & EPOLLOUT) set_interest(fd, conn, EPOLLIN);
      return true;
    }
    if (conn.out.size() - conn.out_off > server_.config_.max_write_queue) {
      server_.dropped_backpressure_.fetch_add(1, std::memory_order_relaxed);
      conn.drop_reason = "backpressure";
      return false;
    }
    if (conn.out_off > 0) {
      conn.out.erase(0, conn.out_off);
      conn.out_off = 0;
    }
    set_interest(fd, conn, EPOLLIN | EPOLLOUT);
    return true;
  }

  /// Inspects the answer to a REPLICATE request: on OK the connection
  /// becomes a push subscription resuming from the version the answer
  /// itself carried (docs/WIRE_PROTOCOL.md §13).
  void mark_replicating(Conn& conn, std::string_view response) {
    try {
      std::size_t offset = 0;
      auto status = static_cast<WireStatus>(read_varint(response, &offset));
      if (status != WireStatus::kOk) return;
      (void)read_varint(response, &offset);  // generation
      conn.streamed_version = read_varint(response, &offset);
    } catch (const CodecError&) {
      return;
    }
    conn.replicating = true;
    conn.last_push = std::chrono::steady_clock::now();
    ++replicating_;
  }

  /// Inspects the answer to a WATCH_EVENTS handshake: on OK the
  /// connection becomes an event subscription starting at the hub head
  /// (docs/WIRE_PROTOCOL.md §14). A repeat subscribe on a watching
  /// connection just updates the mask.
  void mark_watching(Conn& conn, std::string_view response) {
    std::uint64_t mask = 0;
    try {
      std::size_t offset = 0;
      auto status = static_cast<WireStatus>(read_varint(response, &offset));
      if (status != WireStatus::kOk) return;
      mask = read_varint(response, &offset);
    } catch (const CodecError&) {
      return;
    }
    conn.watch_mask = mask;
    if (conn.watching) return;
    conn.watching = true;
    conn.watch_cursor = server_.hub_->head();
    ++watching_;
    server_.watchers_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Feeds every replication subscription: a delta frame as soon as the
  /// store moved past what the conn has seen, a keepalive (empty change
  /// set) otherwise after kReplicationKeepalive of silence. Push errors
  /// drop the conn — the subscriber reconnects and resumes.
  void push_replication() {
    auto now = std::chrono::steady_clock::now();
    std::uint64_t version = server_.backing_->version();
    std::vector<int> dead;
    for (auto& [fd, conn] : conns_) {
      if (!conn.replicating) continue;
      bool moved = version != conn.streamed_version;
      if (!moved && now - conn.last_push < kReplicationKeepalive) continue;
      dist::DeltaSnapshot delta;
      try {
        delta = server_.backing_->snapshot_since(conn.streamed_version);
      } catch (const dist::StoreUnavailableError&) {
        continue;  // outage: the stream idles until the store is back
      }
      conn.out += frame(delta_body(delta));
      conn.streamed_version = delta.version;
      conn.last_push = now;
      if (!flush(fd, conn)) dead.push_back(fd);
    }
    for (int fd : dead) close_conn(fd);
  }

  /// Feeds every WATCH_EVENTS subscription from the server's event hub:
  /// each new matching event becomes one `OK nbytes json` push frame. A
  /// ring overrun (subscriber slower than the hub's eviction horizon)
  /// surfaces as one watch_gap event; a subscriber that cannot even drain
  /// its socket is dropped by the ordinary backpressure path in flush().
  void push_watch() {
    std::vector<int> dead;
    for (auto& [fd, conn] : conns_) {
      if (!conn.watching) continue;
      std::vector<std::string> lines;
      std::uint64_t missed = 0;
      conn.watch_cursor =
          server_.hub_->drain(conn.watch_cursor, conn.watch_mask, &lines,
                              &missed);
      if (missed > 0) {
        lines.insert(lines.begin(), server_.gap_event_line(missed));
      }
      if (lines.empty()) continue;
      for (const std::string& line : lines) {
        std::string body = status_only(WireStatus::kOk);
        append_bytes(body, line);
        conn.out += frame(body);
      }
      if (!flush(fd, conn)) dead.push_back(fd);
    }
    for (int fd : dead) close_conn(fd);
  }

  void set_interest(int fd, Conn& conn, std::uint32_t events) {
    if (conn.events == events) return;
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = events;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0) {
      conn.events = events;
    }
  }

  void close_conn(int fd) {
    auto it = conns_.find(fd);
    if (it != conns_.end()) {
      const Conn& conn = it->second;
      if (conn.replicating) --replicating_;
      if (conn.watching) {
        --watching_;
        server_.watchers_.fetch_sub(1, std::memory_order_relaxed);
        if (std::strcmp(conn.drop_reason, "backpressure") == 0) {
          server_.watch_dropped_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      server_.publish_conn_drop(conn.drop_reason);
    }
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    conns_.erase(fd);
  }

  void sweep_idle() {
    auto now = std::chrono::steady_clock::now();
    auto limit = server_.config_.idle_timeout;
    std::vector<int> expired;
    for (auto& [fd, conn] : conns_) {
      // A replication or watch subscription is all outbound after the
      // subscribe; inbound silence is its normal state, not idleness.
      if (conn.replicating || conn.watching) continue;
      if (now - conn.last_activity > limit) {
        conn.drop_reason = "idle";
        expired.push_back(fd);
      }
    }
    for (int fd : expired) {
      server_.dropped_idle_.fetch_add(1, std::memory_order_relaxed);
      close_conn(fd);
    }
  }

  KvServer& server_;
  int listen_fd_;  ///< owned by KvServer; >= 0 only on loop 0
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::mutex pending_mutex_;
  std::vector<int> pending_;
  std::unordered_map<int, Conn> conns_;
  /// Live replication subscriptions on this loop (loop-thread only).
  std::size_t replicating_ = 0;
  /// Live WATCH_EVENTS subscriptions on this loop (loop-thread only).
  std::size_t watching_ = 0;
};

KvServer::KvServer() : KvServer(Config{}) {}

KvServer::KvServer(Config config, std::shared_ptr<dist::Store> backing)
    : config_(std::move(config)),
      backing_(backing ? std::move(backing)
                       : std::make_shared<dist::Store>()),
      hub_(std::make_unique<EventHub>()) {
  role_.store(static_cast<std::uint64_t>(config_.role),
              std::memory_order_release);
  primary_hostport_ = strip_scheme(config_.primary);
}

KvServer::~KvServer() { stop(); }

void KvServer::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (listen_fd_ >= 0) return;

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("armus-kv: socket() failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) {
    io::close_fd(fd);
    throw std::runtime_error("armus-kv: bad bind address " +
                             config_.bind_address);
  }
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 256) != 0) {
    io::close_fd(fd);
    throw std::runtime_error("armus-kv: cannot bind " + config_.bind_address +
                             ":" + std::to_string(config_.port));
  }

  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) != 0) {
    io::close_fd(fd);
    throw std::runtime_error("armus-kv: getsockname() failed");
  }
  io::set_nonblocking(fd);
  bound_port_ = ntohs(addr.sin_port);

  std::size_t threads = config_.io_threads != 0 ? config_.io_threads
                                                : default_io_threads();
  try {
    loops_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      loops_.push_back(
          std::make_unique<EventLoop>(*this, i == 0 ? fd : -1));
    }
  } catch (...) {
    loops_.clear();
    io::close_fd(fd);
    throw;
  }
  listen_fd_ = fd;
  for (auto& loop : loops_) loop->start();

  // A replica with a configured primary mirrors it from the moment the
  // server is up. (promote() may stop this subscription later.)
  if (config_.role == Role::kReplica && !primary_hostport_.empty() &&
      role() == Role::kReplica) {
    std::size_t colon = primary_hostport_.rfind(':');
    unsigned long port = 0;
    if (colon != std::string::npos) {
      try {
        port = std::stoul(primary_hostport_.substr(colon + 1));
      } catch (const std::exception&) {
        port = 0;
      }
    }
    if (port == 0 || port > 65535) {
      throw std::runtime_error("armus-kv: bad primary address " +
                               config_.primary);
    }
    std::lock_guard<std::mutex> promote_lock(promote_mutex_);
    if (!replication_) {
      ReplicationClient::Config rc;
      rc.host = primary_hostport_.substr(0, colon);
      rc.port = static_cast<std::uint16_t>(port);
      rc.auth_token = config_.auth_token;
      rc.max_frame = config_.max_frame;
      rc.backoff_seed = config_.replication_backoff_seed;
      // Stream connect/loss transitions feed the WATCH health category.
      // Safe to capture `this`: stop() halts replication before teardown.
      rc.on_transition = [this](bool connected) {
        publish_replication_transition(connected);
      };
      replication_ = std::make_unique<ReplicationClient>(std::move(rc),
                                                         backing_);
    }
    replication_->start();
  }
}

void KvServer::stop() {
  {
    std::lock_guard<std::mutex> promote_lock(promote_mutex_);
    if (replication_) replication_->stop();
  }
  std::vector<std::unique_ptr<EventLoop>> loops;
  int listen_fd = -1;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (listen_fd_ < 0) return;
    listen_fd = listen_fd_;
    listen_fd_ = -1;
    loops = std::move(loops_);
    loops_.clear();
  }
  for (auto& loop : loops) loop->request_stop();
  for (auto& loop : loops) loop->join();
  loops.clear();  // destructors close the connection fds
  io::close_fd(listen_fd);
}

bool KvServer::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return listen_fd_ >= 0;
}

std::uint16_t KvServer::port() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bound_port_;
}

KvServer::Stats KvServer::stats() const {
  Stats stats;
  stats.connections = connections_.load(std::memory_order_relaxed);
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.errors = errors_.load(std::memory_order_relaxed);
  stats.dropped_backpressure =
      dropped_backpressure_.load(std::memory_order_relaxed);
  stats.dropped_idle = dropped_idle_.load(std::memory_order_relaxed);
  stats.dropped_protocol = dropped_protocol_.load(std::memory_order_relaxed);
  stats.auth_failures = auth_failures_.load(std::memory_order_relaxed);
  stats.not_primary = not_primary_.load(std::memory_order_relaxed);
  stats.watch_dropped = watch_dropped_.load(std::memory_order_relaxed);
  stats.role = role_.load(std::memory_order_acquire);
  if (stats.role == static_cast<std::uint64_t>(Role::kReplica)) {
    ReplicationClient::Stats replication;
    {
      std::lock_guard<std::mutex> lock(promote_mutex_);
      if (replication_) replication = replication_->stats();
    }
    stats.replication_frames = replication.frames;
    stats.replication_resyncs = replication.resyncs;
    stats.replication_lag_versions = replication.lag_versions;
    stats.replication_lag_ms = replication.lag_ms;
  }
  return stats;
}

KvServer::Role KvServer::role() const {
  return static_cast<Role>(role_.load(std::memory_order_acquire));
}

std::uint64_t KvServer::promote() {
  std::lock_guard<std::mutex> lock(promote_mutex_);
  if (role() == Role::kPrimary) return backing_->generation();
  // Order matters: first silence the old primary's feed, then fence
  // readers with a fresh generation, and only then start taking writes —
  // so no reader can ever carry version comparisons across the takeover.
  if (replication_) replication_->stop();
  backing_->bump_generation();
  role_.store(static_cast<std::uint64_t>(Role::kPrimary),
              std::memory_order_release);
  std::uint64_t generation = backing_->generation();
  publish_promoted(generation);
  return generation;
}

std::string KvServer::stats_json() const {
  obs::Registry registry;
  obs::export_stats(registry, "kv", stats());
  registry.counter_set("kv.generation", backing_->generation());
  registry.counter_set("kv.store_version", backing_->version());
  registry.counter_set("kv.slices", backing_->slice_count());
  // The event loops' per-opcode timing: kv.op.<name>.latency_us. Only
  // opcodes actually served over TCP appear (the embedded handle_request
  // path records nothing, so embedded snapshots stay histogram-free).
  registry.merge_histograms(op_registry_, "kv.");
  return registry.snapshot_json();
}

std::string KvServer::handle_request(std::string_view body) {
  return handle_request(body, nullptr);
}

std::string KvServer::handle_request(std::string_view body,
                                     bool* authenticated) {
  return handle_request(body, authenticated, nullptr);
}

std::string KvServer::handle_request(std::string_view body,
                                     bool* authenticated,
                                     std::uint64_t* request_id) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  WireStatus error = WireStatus::kBadRequest;
  std::uint64_t type = 0;
  // Where a pre-trailer server called expect_end: consumes the optional
  // request-id trailer (docs/WIRE_PROTOCOL.md §14), keeps the strictness.
  auto finish = [&](std::size_t offset) {
    std::uint64_t id = read_request_id(body, &offset);
    if (request_id != nullptr) *request_id = id;
  };
  try {
    std::size_t offset = 0;
    std::uint64_t proto = read_varint(body, &offset);
    type = read_varint(body, &offset);
    if (proto != kProtocolVersion) {
      error = WireStatus::kBadVersion;
      throw CodecError("protocol revision " + std::to_string(proto));
    }
    // The role gate: a replica serves every read but answers mutating ops
    // — and REPLICATE, since a replica must not feed a subscriber — with
    // NOT_PRIMARY + the primary's address, before the auth gate (the
    // redirect is not a secret, and an unauthenticated client must still
    // learn where to go). PROMOTE is the exception: it is exactly the op
    // a replica must accept.
    if (role() == Role::kReplica &&
        (static_cast<MsgType>(type) == MsgType::kPutSlice ||
         static_cast<MsgType>(type) == MsgType::kClear ||
         static_cast<MsgType>(type) == MsgType::kPutSliceDelta ||
         static_cast<MsgType>(type) == MsgType::kReplicate)) {
      not_primary_.fetch_add(1, std::memory_order_relaxed);
      errors_.fetch_add(1, std::memory_order_relaxed);
      std::string out = status_only(WireStatus::kNotPrimary);
      append_bytes(out, primary_hostport_);
      return out;
    }
    // The auth gate: a token-configured server refuses mutating ops until
    // the connection has authenticated. Trusted embedded callers
    // (authenticated == nullptr) and read-only ops pass. Checked before
    // payload parsing so an unauthorised writer learns nothing from
    // parse-error distinctions.
    if (!config_.auth_token.empty() && authenticated != nullptr &&
        !*authenticated &&
        (static_cast<MsgType>(type) == MsgType::kPutSlice ||
         static_cast<MsgType>(type) == MsgType::kClear ||
         static_cast<MsgType>(type) == MsgType::kPutSliceDelta ||
         static_cast<MsgType>(type) == MsgType::kReplicate ||
         static_cast<MsgType>(type) == MsgType::kPromote)) {
      auth_failures_.fetch_add(1, std::memory_order_relaxed);
      error = WireStatus::kUnauthorized;
      throw CodecError("unauthenticated mutating request");
    }
    switch (static_cast<MsgType>(type)) {
      case MsgType::kPutSlice: {
        auto site = static_cast<dist::SiteId>(read_varint(body, &offset));
        std::uint64_t version = read_varint(body, &offset);
        std::string payload(read_bytes(body, &offset));
        finish(offset);
        std::size_t nbytes = payload.size();
        std::uint64_t blocked = 0;
        if (watchers_.load(std::memory_order_relaxed) > 0) {
          blocked = count_blocked(payload);
        }
        auto [accepted, current] =
            backing_->put_slice_if_newer(site, std::move(payload), version);
        note_store_ok();
        std::string out;
        if (!accepted) {
          append_varint(out, static_cast<std::uint64_t>(WireStatus::kStaleVersion));
          append_varint(out, current);
          errors_.fetch_add(1, std::memory_order_relaxed);
          return out;
        }
        publish_slice_commit(site, current, blocked, nbytes);
        append_varint(out, static_cast<std::uint64_t>(WireStatus::kOk));
        append_varint(out, current);
        return out;
      }
      case MsgType::kGetSlice: {
        auto site = static_cast<dist::SiteId>(read_varint(body, &offset));
        finish(offset);
        std::optional<dist::Slice> slice = backing_->get_slice(site);
        note_store_ok();
        if (!slice) {
          error = WireStatus::kNotFound;
          throw CodecError("no slice for site " + std::to_string(site));
        }
        std::string out = status_only(WireStatus::kOk);
        append_slice(out, *slice);
        return out;
      }
      case MsgType::kListSlices: {
        finish(offset);
        std::vector<dist::Slice> slices = backing_->snapshot();
        note_store_ok();
        std::string out = status_only(WireStatus::kOk);
        append_varint(out, slices.size());
        for (const dist::Slice& slice : slices) append_slice(out, slice);
        return out;
      }
      case MsgType::kHeartbeat: {
        finish(offset);
        std::string out = status_only(WireStatus::kOk);
        append_varint(out, kProtocolVersion);
        return out;
      }
      case MsgType::kClear: {
        auto site = static_cast<dist::SiteId>(read_varint(body, &offset));
        finish(offset);
        backing_->remove_slice(site);
        note_store_ok();
        publish_slice_remove(site);
        return status_only(WireStatus::kOk);
      }
      case MsgType::kPutSliceDelta: {
        auto site = static_cast<dist::SiteId>(read_varint(body, &offset));
        std::uint64_t base = read_varint(body, &offset);
        std::uint64_t version = read_varint(body, &offset);
        std::string delta(read_bytes(body, &offset));
        finish(offset);
        std::string out;
        try {
          auto [accepted, current] =
              backing_->put_slice_delta_if_newer(site, base, version, delta);
          note_store_ok();
          if (accepted && watchers_.load(std::memory_order_relaxed) > 0) {
            // The committed payload is base + delta; re-read it for the
            // event's blocked count (watcher-gated, so the common path
            // never pays the fetch).
            try {
              if (std::optional<dist::Slice> s = backing_->get_slice(site)) {
                publish_slice_commit(site, current,
                                     count_blocked(s->payload),
                                     s->payload.size());
              }
            } catch (const dist::StoreUnavailableError&) {
            }
          }
          append_varint(out, static_cast<std::uint64_t>(
                                 accepted ? WireStatus::kOk
                                          : WireStatus::kStaleVersion));
          append_varint(out, current);
          if (!accepted) errors_.fetch_add(1, std::memory_order_relaxed);
          return out;
        } catch (const dist::SliceBaseMismatchError& e) {
          // The stored slice is not at the delta's base: the writer must
          // fall back to a full PUT_SLICE.
          append_varint(out,
                        static_cast<std::uint64_t>(WireStatus::kBaseMismatch));
          append_varint(out, e.current_version());
          errors_.fetch_add(1, std::memory_order_relaxed);
          return out;
        }
      }
      case MsgType::kInspect: {
        finish(offset);
        InspectInfo info;
        info.sites = backing_->inspect();
        note_store_ok();
        info.generation = backing_->generation();
        info.store_version = backing_->version();
        info.connections = connections_.load(std::memory_order_relaxed);
        info.requests = requests_.load(std::memory_order_relaxed);
        info.errors = errors_.load(std::memory_order_relaxed);
        info.role = role_.load(std::memory_order_acquire);
        if (static_cast<Role>(info.role) == Role::kReplica) {
          info.primary = primary_hostport_;
          ReplicationClient::Stats replication;
          {
            std::lock_guard<std::mutex> lock(promote_mutex_);
            if (replication_) replication = replication_->stats();
          }
          info.lag_versions = replication.lag_versions;
          info.lag_ms = replication.lag_ms;
          info.resync_age_ms = replication.resync_age_ms;
        }
        std::string out = status_only(WireStatus::kOk);
        append_inspect(out, info);
        return out;
      }
      case MsgType::kListSlicesSince: {
        std::uint64_t since = read_varint(body, &offset);
        finish(offset);
        std::string out = delta_body(backing_->snapshot_since(since));
        note_store_ok();
        return out;
      }
      case MsgType::kReplicate: {
        std::uint64_t since_generation = read_varint(body, &offset);
        std::uint64_t since_version = read_varint(body, &offset);
        finish(offset);
        // Resume where the subscriber left off only when its history is
        // ours: a different generation (or a version from the future)
        // means full resync from 0. The answer doubles as the first
        // stream frame; the event loop then marks the connection as a
        // push subscription.
        std::uint64_t since = since_generation == backing_->generation() &&
                                      since_version <= backing_->version()
                                  ? since_version
                                  : 0;
        std::string out = delta_body(backing_->snapshot_since(since));
        note_store_ok();
        return out;
      }
      case MsgType::kPromote: {
        finish(offset);
        std::string out = status_only(WireStatus::kOk);
        append_varint(out, promote());
        return out;
      }
      case MsgType::kStats: {
        finish(offset);
        std::string out = status_only(WireStatus::kOk);
        append_bytes(out, stats_json());
        return out;
      }
      case MsgType::kWatchEvents: {
        std::uint64_t mask = read_varint(body, &offset);
        finish(offset);
        mask &= kWatchAll;
        if (mask == 0) {
          throw CodecError("watch mask selects no category");
        }
        // The event loop turns this connection into a push subscription
        // on seeing the OK answer (mark_watching); an embedded caller
        // just gets the handshake. The answer echoes the effective mask.
        std::string out = status_only(WireStatus::kOk);
        append_varint(out, mask);
        return out;
      }
      case MsgType::kAuth: {
        std::string_view token = read_bytes(body, &offset);
        finish(offset);
        if (config_.auth_token.empty() || token == config_.auth_token) {
          // A tokenless server accepts any AUTH as a no-op, so a client
          // configured with a token still interoperates with it.
          if (authenticated != nullptr) *authenticated = true;
          return status_only(WireStatus::kOk);
        }
        auth_failures_.fetch_add(1, std::memory_order_relaxed);
        error = WireStatus::kUnauthorized;
        throw CodecError("bad auth token");
      }
      default:
        error = WireStatus::kUnknownType;
        throw CodecError("message type " + std::to_string(type));
    }
  } catch (const dist::StoreUnavailableError&) {
    error = WireStatus::kUnavailable;
    note_store_error(op_name(type));
  } catch (const CodecError&) {
    // `error` already names the failure class.
  }
  errors_.fetch_add(1, std::memory_order_relaxed);
  return status_only(error);
}

void KvServer::note_op(std::uint64_t type, std::uint64_t latency_us,
                       std::uint64_t request_id) {
  op_registry_.record(std::string("op.") + op_name(type) + ".latency_us",
                      latency_us);
  if (config_.slow_request_us > 0 && latency_us > config_.slow_request_us &&
      watchers_.load(std::memory_order_relaxed) > 0) {
    publish_event(kWatchHealth,
                  event_prefix("slow_request") + ",\"op\":\"" + op_name(type) +
                      "\",\"us\":" + std::to_string(latency_us) +
                      ",\"request_id\":" + std::to_string(request_id) + '}');
  }
}

void KvServer::publish_event(std::uint64_t category, std::string line) {
  hub_->publish(category, std::move(line));
}

std::uint64_t KvServer::event_ts_ns() const {
  if (config_.event_clock) return config_.event_clock();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string KvServer::event_prefix(const char* name) const {
  return std::string("{\"v\":1,\"event\":\"") + name +
         "\",\"ts_ns\":" + std::to_string(event_ts_ns());
}

void KvServer::publish_conn_accept() {
  if (watchers_.load(std::memory_order_relaxed) == 0) return;
  publish_event(kWatchLifecycle,
                event_prefix("conn_accept") + ",\"connections\":" +
                    std::to_string(
                        connections_.load(std::memory_order_relaxed)) +
                    '}');
}

void KvServer::publish_conn_drop(const char* reason) {
  if (watchers_.load(std::memory_order_relaxed) == 0) return;
  publish_event(kWatchLifecycle, event_prefix("conn_drop") +
                                     ",\"reason\":\"" + reason + "\"}");
}

void KvServer::publish_slice_commit(dist::SiteId site, std::uint64_t version,
                                    std::uint64_t blocked,
                                    std::size_t bytes) {
  if (watchers_.load(std::memory_order_relaxed) == 0) return;
  publish_event(kWatchSlices,
                event_prefix("slice_commit") +
                    ",\"site\":" + std::to_string(site) +
                    ",\"version\":" + std::to_string(version) +
                    ",\"blocked\":" + std::to_string(blocked) +
                    ",\"bytes\":" + std::to_string(bytes) + '}');
}

void KvServer::publish_slice_remove(dist::SiteId site) {
  if (watchers_.load(std::memory_order_relaxed) == 0) return;
  publish_event(kWatchSlices, event_prefix("slice_remove") +
                                  ",\"site\":" + std::to_string(site) + '}');
}

void KvServer::publish_promoted(std::uint64_t generation) {
  if (watchers_.load(std::memory_order_relaxed) == 0) return;
  publish_event(kWatchHealth,
                event_prefix("promoted") +
                    ",\"generation\":" + std::to_string(generation) + '}');
}

void KvServer::publish_replication_transition(bool connected) {
  if (watchers_.load(std::memory_order_relaxed) == 0) return;
  publish_event(kWatchHealth,
                event_prefix("replication") + ",\"connected\":" +
                    (connected ? "true" : "false") + '}');
}

std::string KvServer::gap_event_line(std::uint64_t missed) const {
  return event_prefix("watch_gap") +
         ",\"missed\":" + std::to_string(missed) + '}';
}

void KvServer::note_store_error(const char* op) {
  // Transition gating, exactly like obs' store_outage: one event per
  // outage however many requests fail inside it.
  if (store_down_.exchange(true, std::memory_order_acq_rel)) return;
  if (watchers_.load(std::memory_order_relaxed) == 0) return;
  publish_event(kWatchHealth, event_prefix("store_outage") +
                                  ",\"down\":true,\"op\":\"" + op + "\"}");
}

void KvServer::note_store_ok() {
  if (!store_down_.load(std::memory_order_acquire)) return;
  if (!store_down_.exchange(false, std::memory_order_acq_rel)) return;
  if (watchers_.load(std::memory_order_relaxed) == 0) return;
  publish_event(kWatchHealth,
                event_prefix("store_outage") + ",\"down\":false}");
}

}  // namespace armus::net
