#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "dist/store.h"
#include "net/protocol.h"

/// armus-kv: the networked slice store. A deliberately tiny TCP server —
/// a protocol shim over the in-process dist::Store — that lets sites in
/// *separate OS processes* publish their blocked-status slices and read
/// the global snapshot (the role Redis plays in the paper's §5.2 setup).
///
/// Concurrency model: one accept thread plus one thread per connection.
/// Slice traffic is a few small frames per site per period (200 ms in the
/// paper), so connection counts stay in the tens; the shared dist::Store
/// provides the single point of synchronisation.
namespace armus::net {

class KvServer {
 public:
  struct Config {
    /// Listen address. Default loopback: armus-kv has no auth; exposing
    /// it beyond the host is an explicit operator decision.
    std::string bind_address = "127.0.0.1";

    /// 0 = ephemeral; read the chosen port via port() after start().
    std::uint16_t port = 0;

    /// Frames with a larger declared body are a protocol violation; the
    /// connection is dropped without allocating.
    std::size_t max_frame = kDefaultMaxFrame;
  };

  struct Stats {
    std::uint64_t connections = 0;  ///< accepted so far
    std::uint64_t requests = 0;     ///< well-framed requests handled
    std::uint64_t errors = 0;       ///< non-OK responses sent
  };

  /// `backing` defaults to a fresh in-process Store. Passing one in lets a
  /// test (or an embedding process) inject outages with set_available or
  /// inspect slices directly.
  KvServer();
  explicit KvServer(Config config,
                    std::shared_ptr<dist::Store> backing = nullptr);
  ~KvServer();
  KvServer(const KvServer&) = delete;
  KvServer& operator=(const KvServer&) = delete;

  /// Binds and starts the accept loop. Throws std::runtime_error when the
  /// address cannot be bound (port in use, bad address).
  void start();

  /// Closes the listen socket and every live connection, then joins all
  /// threads. Safe to call repeatedly; the destructor calls it.
  void stop();

  [[nodiscard]] bool running() const;

  /// The bound port (after start(); the ephemeral choice when port 0 was
  /// configured).
  [[nodiscard]] std::uint16_t port() const;

  [[nodiscard]] const std::shared_ptr<dist::Store>& backing() const {
    return backing_;
  }

  [[nodiscard]] Stats stats() const;

  /// Handles one decoded request body, returning the response body. Pure
  /// protocol logic (no sockets) — exercised directly by the unit tests.
  std::string handle_request(std::string_view body);

 private:
  void accept_loop();
  void serve_connection(int fd);
  void reap_finished_locked();

  Config config_;
  std::shared_ptr<dist::Store> backing_;

  mutable std::mutex mutex_;  // guards fds/threads/stats below
  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  bool stopping_ = false;
  std::thread acceptor_;
  struct Connection {
    int fd = -1;
    std::thread thread;
    bool done = false;
  };
  std::vector<std::unique_ptr<Connection>> connections_;
  Stats stats_;
};

}  // namespace armus::net
