#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/registry.h"

#include "dist/store.h"
#include "net/protocol.h"

/// armus-kv: the networked slice store. A protocol shim over the
/// in-process dist::Store that lets sites in *separate OS processes*
/// publish their blocked-status slices and read the global snapshot (the
/// role Redis plays in the paper's §5.2 setup).
///
/// Concurrency model: a small pool of non-blocking epoll event loops
/// (Config::io_threads, O(cores)) serves every connection; connections
/// are assigned round-robin at accept and never migrate. Each connection
/// carries its own read buffer (partial frames accumulate until a whole
/// one arrives) and write queue (responses to pipelined requests are
/// written in receive order). A slow reader's queue is bounded by
/// Config::max_write_queue: when it overflows the connection is dropped,
/// so one stalled armus-top can never stall publishers. The sharded
/// dist::Store (Config::shards) is the only cross-loop synchronisation.
namespace armus::net {

class ReplicationClient;

class KvServer {
 public:
  /// Primary-backup role (docs/HA.md). A replica serves every read,
  /// mirrors the primary over a REPLICATE subscription, and answers
  /// mutating ops with NOT_PRIMARY + the primary's address; PROMOTE (or
  /// a restart with ARMUS_ROLE=primary) turns it into a primary under a
  /// fresh boot generation.
  enum class Role : std::uint64_t { kPrimary = 0, kReplica = 1 };

  struct Config {
    /// Listen address. Default loopback: exposing armus-kv beyond the
    /// host is an explicit operator decision (see auth_token).
    std::string bind_address = "127.0.0.1";

    /// 0 = ephemeral; read the chosen port via port() after start().
    std::uint16_t port = 0;

    /// Frames with a larger declared body are a protocol violation; the
    /// connection is dropped without allocating.
    std::size_t max_frame = kDefaultMaxFrame;

    /// Event-loop threads. 0 = one per available core, capped at 4.
    /// Thread count is O(cores) regardless of connection count.
    std::size_t io_threads = 0;

    /// Bound on one connection's queued-but-unsent response bytes. A
    /// connection whose peer reads slower than it issues requests is
    /// dropped when its queue would exceed this (counted in
    /// Stats::dropped_backpressure) — backpressure by disconnect, never
    /// by blocking the loop.
    std::size_t max_write_queue = 4 * 1024 * 1024;

    /// Connections with no inbound traffic for this long are dropped
    /// (Stats::dropped_idle). 0 (default) disables the sweep.
    std::chrono::milliseconds idle_timeout{0};

    /// Non-empty: PUT_SLICE / PUT_SLICE_DELTA / CLEAR require a
    /// successful AUTH on the connection first; everything else (reads,
    /// HEARTBEAT, INSPECT, STATS) stays open. Empty (default): AUTH is an
    /// accepted no-op and the server behaves exactly as an
    /// unauthenticated one. Wired from $ARMUS_AUTH_TOKEN by the CLI
    /// entrypoints.
    std::string auth_token;

    /// kReplica: serve reads, reject mutations with NOT_PRIMARY, mirror
    /// the primary via a REPLICATE subscription into the backing store.
    /// Wired from $ARMUS_ROLE ("primary"/"replica") by the CLI
    /// entrypoints.
    Role role = Role::kPrimary;

    /// Replica: the primary's address, "host:port" (a "tcp://" prefix is
    /// accepted and stripped). Dialled by the replication subscription
    /// and carried verbatim in NOT_PRIMARY redirects; empty = redirect
    /// with an empty payload and do not replicate (ARMUS_PRIMARY).
    std::string primary;

    /// Replica: seed for the replication reconnect jitter; 0 (default)
    /// draws a random one. Tests pin it.
    std::uint64_t replication_backoff_seed = 0;

    /// Requests whose handling exceeds this many µs emit a `slow_request`
    /// event on the WATCH_EVENTS stream, carrying the request's
    /// correlation id. 0 (default) disables. Wired from
    /// $ARMUS_SLOW_REQUEST_US by the CLI entrypoints.
    std::uint64_t slow_request_us = 0;

    /// Clock behind the `ts_ns` field of pushed events; default
    /// steady-clock nanoseconds (same timebase as the JSONL stream).
    /// Tests pinning event bytes inject a fixed one.
    std::function<std::uint64_t()> event_clock;
  };

  struct Stats {
    std::uint64_t connections = 0;  ///< accepted so far
    std::uint64_t requests = 0;     ///< well-framed requests handled
    std::uint64_t errors = 0;       ///< non-OK responses sent
    std::uint64_t dropped_backpressure = 0;  ///< write queue overflowed
    std::uint64_t dropped_idle = 0;          ///< idle_timeout expired
    std::uint64_t dropped_protocol = 0;      ///< oversized frame length
    std::uint64_t auth_failures = 0;  ///< bad AUTH or unauthenticated write
    std::uint64_t not_primary = 0;    ///< mutating ops redirected off a replica
    std::uint64_t watch_dropped = 0;  ///< WATCH_EVENTS subscribers dropped
                                      ///< by write-queue backpressure
    std::uint64_t role = 0;           ///< 0 = primary, 1 = replica
    std::uint64_t replication_frames = 0;    ///< stream frames applied
    std::uint64_t replication_resyncs = 0;   ///< full resyncs performed
    std::uint64_t replication_lag_versions = 0;  ///< versions behind primary
    std::uint64_t replication_lag_ms = 0;        ///< ms since last frame
  };

  /// `backing` defaults to a fresh in-process Store. Passing one in lets a
  /// test (or an embedding process) inject outages with set_available or
  /// inspect slices directly.
  KvServer();
  explicit KvServer(Config config,
                    std::shared_ptr<dist::Store> backing = nullptr);
  ~KvServer();
  KvServer(const KvServer&) = delete;
  KvServer& operator=(const KvServer&) = delete;

  /// Binds, then starts the event-loop threads. Throws std::runtime_error
  /// when the address cannot be bound (port in use, bad address).
  void start();

  /// Closes the listen socket and every live connection, then joins the
  /// loop threads. Safe to call repeatedly; the destructor calls it.
  void stop();

  [[nodiscard]] bool running() const;

  /// The bound port (after start(); the ephemeral choice when port 0 was
  /// configured).
  [[nodiscard]] std::uint16_t port() const;

  [[nodiscard]] const std::shared_ptr<dist::Store>& backing() const {
    return backing_;
  }

  [[nodiscard]] Stats stats() const;

  /// The server's current role (a replica becomes primary via promote()).
  [[nodiscard]] Role role() const;

  /// Makes a replica the primary: stops the replication subscription,
  /// bumps the backing store's boot generation (fencing: readers refetch
  /// from scratch, slice versions can never appear to roll back even if
  /// the old primary accepted unreplicated writes), then starts accepting
  /// mutations. Returns the store generation now in force. Idempotent on
  /// a primary. Served by the PROMOTE opcode.
  std::uint64_t promote();

  /// Handles one decoded request body, returning the response body. Pure
  /// protocol logic (no sockets) — exercised directly by the unit tests.
  /// This entry point is a *trusted* caller (same process as the store):
  /// the auth gate does not apply.
  std::string handle_request(std::string_view body);

  /// The event-loop entry point: `authenticated` is the connection's AUTH
  /// state, flipped by a successful AUTH and consulted before mutating
  /// ops. nullptr = trusted embedded caller (the overload above).
  std::string handle_request(std::string_view body, bool* authenticated);

  /// As above, additionally reporting the request's correlation id (the
  /// optional varint trailer, docs/WIRE_PROTOCOL.md §14; 0 when absent)
  /// so the event loop can stamp `slow_request` events.
  std::string handle_request(std::string_view body, bool* authenticated,
                             std::uint64_t* request_id);

  /// The STATS payload: an obs::Registry snapshot of the server counters
  /// plus store identity, as deterministic JSON
  /// (armus.obs.registry.v1 — see docs/OBSERVABILITY.md).
  [[nodiscard]] std::string stats_json() const;

 private:
  class EventLoop;
  class EventHub;

  /// Records one handled request into the per-opcode latency histograms
  /// (`op.<name>.latency_us` in op_registry_) and, past
  /// Config::slow_request_us, publishes a `slow_request` event. Called by
  /// the event loop only — embedded handle_request callers stay out of
  /// the histograms, which keeps the documented STATS golden stable.
  void note_op(std::uint64_t type, std::uint64_t latency_us,
               std::uint64_t request_id);

  /// Appends one armus.kv.event.v1 line to the hub when any WATCH_EVENTS
  /// subscriber is live (watchers_ gates the JSON building cost).
  void publish_event(std::uint64_t category, std::string line);

  [[nodiscard]] std::uint64_t event_ts_ns() const;
  [[nodiscard]] std::string event_prefix(const char* name) const;

  // Event builders for each publish site (no-ops without watchers).
  void publish_conn_accept();
  void publish_conn_drop(const char* reason);
  void publish_slice_commit(dist::SiteId site, std::uint64_t version,
                            std::uint64_t blocked, std::size_t bytes);
  void publish_slice_remove(dist::SiteId site);
  void publish_promoted(std::uint64_t generation);
  void publish_replication_transition(bool connected);
  /// A watch_gap line (built per-subscriber in the loop, never ringed).
  [[nodiscard]] std::string gap_event_line(std::uint64_t missed) const;

  /// store_outage transitions (down on the first StoreUnavailableError
  /// after a healthy stretch, up on the first success after an outage) —
  /// the same gating as obs' JSONL store_outage event.
  void note_store_error(const char* op);
  void note_store_ok();

  Config config_;
  std::shared_ptr<dist::Store> backing_;

  /// Role, readable lock-free from every loop thread; flipped by
  /// promote() under promote_mutex_.
  std::atomic<std::uint64_t> role_{0};
  mutable std::mutex promote_mutex_;
  /// The primary's "host:port" (scheme stripped); constant after
  /// construction — the role gate decides whether it is advertised.
  std::string primary_hostport_;
  std::unique_ptr<ReplicationClient> replication_;

  mutable std::mutex mutex_;  ///< lifecycle (start/stop) only
  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::atomic<std::size_t> next_loop_{0};

  // Counters are atomics: they are bumped from every loop thread and read
  // lock-free by INSPECT/STATS.
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> dropped_backpressure_{0};
  std::atomic<std::uint64_t> dropped_idle_{0};
  std::atomic<std::uint64_t> dropped_protocol_{0};
  std::atomic<std::uint64_t> auth_failures_{0};
  std::atomic<std::uint64_t> not_primary_{0};
  std::atomic<std::uint64_t> watch_dropped_{0};

  /// Live WATCH_EVENTS subscribers across every loop; publish sites skip
  /// all JSON building while this is 0.
  std::atomic<std::uint64_t> watchers_{0};
  /// store_outage transition state (see note_store_error/note_store_ok).
  std::atomic<bool> store_down_{false};

  /// The event ring every WATCH_EVENTS subscriber drains (cursor-based,
  /// bounded; an overrun surfaces as a watch_gap event, never a stall).
  std::unique_ptr<EventHub> hub_;

  /// Per-opcode latency histograms (`op.<name>.latency_us`), recorded by
  /// the event loops and merged into stats_json() under "kv.".
  obs::Registry op_registry_;
};

}  // namespace armus::net
