#include "net/protocol.h"

namespace armus::net {

using dist::append_varint;
using dist::CodecError;
using dist::read_varint;

std::string to_string(WireStatus status) {
  switch (status) {
    case WireStatus::kOk: return "OK";
    case WireStatus::kBadRequest: return "BAD_REQUEST";
    case WireStatus::kUnknownType: return "UNKNOWN_TYPE";
    case WireStatus::kBadVersion: return "BAD_VERSION";
    case WireStatus::kNotFound: return "NOT_FOUND";
    case WireStatus::kUnavailable: return "UNAVAILABLE";
    case WireStatus::kStaleVersion: return "STALE_VERSION";
    case WireStatus::kBaseMismatch: return "BASE_MISMATCH";
    case WireStatus::kUnauthorized: return "UNAUTHORIZED";
    case WireStatus::kNotPrimary: return "NOT_PRIMARY";
  }
  return "status " + std::to_string(static_cast<std::uint64_t>(status));
}

std::string frame(std::string_view body) {
  std::string out;
  out.reserve(4 + body.size());
  std::uint32_t length = static_cast<std::uint32_t>(body.size());
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((length >> shift) & 0xff));
  }
  out.append(body);
  return out;
}

std::string request_header(MsgType type) {
  std::string out;
  append_varint(out, kProtocolVersion);
  append_varint(out, static_cast<std::uint64_t>(type));
  return out;
}

void append_bytes(std::string& out, std::string_view bytes) {
  append_varint(out, bytes.size());
  out.append(bytes);
}

std::string_view read_bytes(std::string_view body, std::size_t* offset) {
  std::uint64_t length = read_varint(body, offset);
  if (length > body.size() - *offset) {
    throw CodecError("byte string of " + std::to_string(length) +
                     " bytes with " + std::to_string(body.size() - *offset) +
                     " remaining");
  }
  std::string_view bytes = body.substr(*offset, length);
  *offset += length;
  return bytes;
}

void append_slice(std::string& out, const dist::Slice& slice) {
  append_varint(out, slice.site);
  append_varint(out, slice.version);
  append_bytes(out, slice.payload);
}

dist::Slice read_slice(std::string_view body, std::size_t* offset) {
  dist::Slice slice;
  slice.site = static_cast<dist::SiteId>(read_varint(body, offset));
  slice.version = read_varint(body, offset);
  slice.payload = std::string(read_bytes(body, offset));
  return slice;
}

void expect_end(std::string_view body, std::size_t offset) {
  if (offset != body.size()) {
    throw CodecError("trailing garbage: " +
                     std::to_string(body.size() - offset) + " bytes");
  }
}

std::uint64_t read_request_id(std::string_view body, std::size_t* offset) {
  if (*offset == body.size()) return 0;
  std::uint64_t id = read_varint(body, offset);
  expect_end(body, *offset);
  return id;
}

void append_inspect(std::string& out, const InspectInfo& info) {
  append_varint(out, info.generation);
  append_varint(out, info.store_version);
  append_varint(out, info.connections);
  append_varint(out, info.requests);
  append_varint(out, info.errors);
  append_varint(out, info.role);
  append_bytes(out, info.primary);
  append_varint(out, info.lag_versions);
  append_varint(out, info.lag_ms);
  append_varint(out, info.resync_age_ms);
  append_varint(out, info.sites.size());
  for (const dist::SliceInspect& row : info.sites) {
    append_varint(out, row.site);
    append_varint(out, row.version);
    append_varint(out, row.blocked);
    append_varint(out, row.age_ms);
    append_varint(out, row.payload_bytes);
  }
}

InspectInfo read_inspect(std::string_view body, std::size_t* offset) {
  InspectInfo info;
  info.generation = read_varint(body, offset);
  info.store_version = read_varint(body, offset);
  info.connections = read_varint(body, offset);
  info.requests = read_varint(body, offset);
  info.errors = read_varint(body, offset);
  info.role = read_varint(body, offset);
  info.primary = std::string(read_bytes(body, offset));
  info.lag_versions = read_varint(body, offset);
  info.lag_ms = read_varint(body, offset);
  info.resync_age_ms = read_varint(body, offset);
  std::uint64_t nsites = util::read_count(body, offset, "inspect row");
  info.sites.reserve(nsites);
  for (std::uint64_t i = 0; i < nsites; ++i) {
    dist::SliceInspect row;
    row.site = static_cast<dist::SiteId>(read_varint(body, offset));
    row.version = read_varint(body, offset);
    row.blocked = read_varint(body, offset);
    row.age_ms = read_varint(body, offset);
    row.payload_bytes = read_varint(body, offset);
    info.sites.push_back(row);
  }
  return info;
}

}  // namespace armus::net
