#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "dist/codec.h"
#include "dist/store.h"

/// The armus-kv wire protocol: how a net::RemoteStore client and the
/// armus-kv server exchange slice operations over TCP. Normative spec with
/// byte-level examples: docs/WIRE_PROTOCOL.md.
///
/// Every message travels in a length-prefixed frame:
///
///   frame    := length:u32le body(length bytes)
///
/// and every body is built from the same unsigned LEB128 varints as the
/// slice codec (dist/codec.h):
///
///   request  := proto:varint type:varint payload
///   response := status:varint payload
///   slice    := site:varint version:varint nbytes:varint bytes[nbytes]
///
/// A peer that cannot parse a *frame* (oversized length, torn prefix)
/// closes the connection — the stream is no longer trustworthy. A server
/// that can frame but not parse the *body* answers with an error status
/// and keeps the connection.
namespace armus::net {

/// Protocol revision carried in every request; bumped on incompatible
/// changes. A server answers requests carrying an unknown revision with
/// WireStatus::kBadVersion.
inline constexpr std::uint64_t kProtocolVersion = 1;

/// Upper bound on a frame body; a length prefix above this is treated as
/// a protocol violation (connection close), never allocated.
inline constexpr std::size_t kDefaultMaxFrame = 16 * 1024 * 1024;

enum class MsgType : std::uint64_t {
  kPutSlice = 1,         ///< site version nbytes bytes → OK(version)
  kGetSlice = 2,         ///< site                      → OK(slice) | kNotFound
  kListSlices = 3,       ///< (empty)                   → OK(count slice*)
  kHeartbeat = 4,        ///< (empty)                   → OK(proto)
  kClear = 5,            ///< site                      → OK()
  kPutSliceDelta = 6,    ///< site base version bytes   → OK(version) |
                         ///<   kBaseMismatch(current) | kStaleVersion(current)
  kListSlicesSince = 7,  ///< since → OK(generation version
                         ///<              nchanged slice* nlive site*)
  kInspect = 8,          ///< (empty) → OK(inspect_info) — see InspectInfo
  kStats = 9,            ///< (empty) → OK(nbytes json) — the server's
                         ///<   obs::Registry::snapshot_json()
  kAuth = 10,            ///< token:bytes → OK() | kUnauthorized
  kReplicate = 11,       ///< since_generation since_version → OK(generation
                         ///<   version nchanged slice* nlive site*); over TCP
                         ///<   the connection then becomes a server-push
                         ///<   stream of further frames of the same shape
                         ///<   (docs/WIRE_PROTOCOL.md §13)
  kPromote = 12,         ///< (empty) → OK(generation) — a replica becomes
                         ///<   the primary under a *fresh* boot generation;
                         ///<   idempotent on a primary (current generation)
  kWatchEvents = 13,     ///< mask → OK(mask); the connection then becomes a
                         ///<   server-push stream of event frames, each
                         ///<   `OK nbytes json` carrying one
                         ///<   armus.kv.event.v1 line (docs/WIRE_PROTOCOL.md
                         ///<   §14). Read-only and auth-exempt.
};

/// WATCH_EVENTS category bitmask (docs/WIRE_PROTOCOL.md §14).
inline constexpr std::uint64_t kWatchLifecycle = 1;  ///< conn accept/drop
inline constexpr std::uint64_t kWatchSlices = 2;     ///< slice commit/remove
inline constexpr std::uint64_t kWatchHealth = 4;     ///< outage/recovery,
                                                     ///< replication,
                                                     ///< promotion,
                                                     ///< slow_request
inline constexpr std::uint64_t kWatchAll =
    kWatchLifecycle | kWatchSlices | kWatchHealth;

enum class WireStatus : std::uint64_t {
  kOk = 0,
  kBadRequest = 1,    ///< well-framed but unparseable body
  kUnknownType = 2,   ///< unrecognised MsgType
  kBadVersion = 3,    ///< unsupported protocol revision
  kNotFound = 4,      ///< GET_SLICE for a site with no slice
  kUnavailable = 5,   ///< backing store outage; retry later
  kStaleVersion = 6,  ///< PUT_SLICE version not newer; payload = current
  kBaseMismatch = 7,  ///< PUT_SLICE_DELTA base != stored; payload = current
  kUnauthorized = 8,  ///< mutating op before a successful AUTH, or a wrong
                      ///< token, on a server configured with an auth token
  kNotPrimary = 9,    ///< mutating op on a replica; payload = the primary's
                      ///< "host:port" (empty when unknown) — redirect there
};

[[nodiscard]] std::string to_string(WireStatus status);

/// Wraps `body` in a frame: 4-byte little-endian length prefix + body.
[[nodiscard]] std::string frame(std::string_view body);

/// `proto type` — the prefix of every request body.
[[nodiscard]] std::string request_header(MsgType type);

/// `nbytes:varint bytes` (length-delimited byte string).
void append_bytes(std::string& out, std::string_view bytes);

/// Reads a length-delimited byte string; throws dist::CodecError when the
/// declared length exceeds the remaining input.
[[nodiscard]] std::string_view read_bytes(std::string_view body,
                                          std::size_t* offset);

/// `site version nbytes bytes`.
void append_slice(std::string& out, const dist::Slice& slice);
[[nodiscard]] dist::Slice read_slice(std::string_view body,
                                     std::size_t* offset);

/// Throws dist::CodecError unless exactly `offset == body.size()` — the
/// same trailing-garbage strictness as the slice codec.
void expect_end(std::string_view body, std::size_t offset);

/// Optional request-id trailer (docs/WIRE_PROTOCOL.md §14): a request body
/// may end with exactly one extra varint, the client's per-connection
/// correlation id. Call where a pre-trailer server called expect_end —
/// end-of-body yields 0 (byte-identical interop with old clients), one
/// complete varint then end-of-body yields that id, anything else throws
/// dist::CodecError like trailing garbage always has.
[[nodiscard]] std::uint64_t read_request_id(std::string_view body,
                                            std::size_t* offset);

/// The INSPECT answer (docs/WIRE_PROTOCOL.md §10): store identity, the
/// server's request counters, and one dist::SliceInspect row per live
/// slice — the live-cluster view armus-top renders. `requests` includes
/// the INSPECT being answered.
struct InspectInfo {
  std::uint64_t generation = 0;     ///< store boot generation
  std::uint64_t store_version = 0;  ///< store-wide change version
  std::uint64_t connections = 0;    ///< accepted so far
  std::uint64_t requests = 0;       ///< handled, this one included
  std::uint64_t errors = 0;         ///< non-OK responses sent
  std::uint64_t role = 0;           ///< 0 = primary, 1 = replica
  std::string primary;              ///< replica: the primary's "host:port"
  std::uint64_t lag_versions = 0;   ///< replica: primary versions not applied
  std::uint64_t lag_ms = 0;         ///< replica: ms since last stream frame
  std::uint64_t resync_age_ms = 0;  ///< replica: ms since last full resync
                                    ///< (0 = never synced, or a primary)
  std::vector<dist::SliceInspect> sites;  ///< sorted by site id
};

/// `generation version connections requests errors
///  role primary:bytes lag_versions lag_ms resync_age_ms
///  nsites (site version blocked age_ms payload_bytes)*` — the OK
/// payload of INSPECT.
void append_inspect(std::string& out, const InspectInfo& info);
[[nodiscard]] InspectInfo read_inspect(std::string_view body,
                                       std::size_t* offset);

}  // namespace armus::net
