#include "net/remote_store.h"

#include <algorithm>

#include "net/socket_io.h"

namespace armus::net {

using dist::append_varint;
using dist::CodecError;
using dist::read_varint;
using dist::StoreUnavailableError;

RemoteStore::RemoteStore(Config config) : config_(std::move(config)) {}

RemoteStore::~RemoteStore() {
  std::lock_guard<std::mutex> lock(mutex_);
  io::close_fd(fd_);
  fd_ = -1;
}

void RemoteStore::disconnect_locked(const char* reason) const {
  (void)reason;
  io::close_fd(fd_);
  fd_ = -1;
  ++stats_.failures;
  backoff_ = backoff_.count() == 0
                 ? config_.backoff_initial
                 : std::min(backoff_ * 2, config_.backoff_max);
  retry_after_ = std::chrono::steady_clock::now() + backoff_;
}

void RemoteStore::ensure_connected_locked() const {
  if (fd_ >= 0) return;
  if (std::chrono::steady_clock::now() < retry_after_) {
    ++stats_.fast_failures;
    throw StoreUnavailableError("armus-kv: backing off after failure");
  }
  int fd = io::connect_to(
      config_.host, config_.port,
      static_cast<int>(config_.connect_timeout.count()));
  if (fd < 0) {
    disconnect_locked("connect failed");
    throw StoreUnavailableError("armus-kv: cannot connect to " + config_.host +
                                ":" + std::to_string(config_.port));
  }
  io::set_io_timeout(fd, static_cast<int>(config_.io_timeout.count()));
  fd_ = fd;
  if (!config_.auth_token.empty()) {
    // Authenticate before anything else travels on the connection. A
    // failure here is handled like any connect failure: backoff window,
    // StoreUnavailableError, retry next period.
    std::string body = request_header(MsgType::kAuth);
    append_bytes(body, config_.auth_token);
    std::optional<std::string> response;
    if (io::write_all(fd_, frame(body))) {
      response = io::read_frame(fd_, config_.max_frame);
    }
    if (!response) {
      disconnect_locked("auth exchange failed");
      throw StoreUnavailableError("armus-kv: AUTH exchange failed");
    }
    std::size_t offset = 0;
    WireStatus status = read_status(*response, &offset);
    if (status != WireStatus::kOk) {
      disconnect_locked("auth rejected");
      throw StoreUnavailableError("armus-kv: AUTH failed: " +
                                  to_string(status));
    }
  }
  backoff_ = std::chrono::milliseconds{0};
  retry_after_ = {};
  ++stats_.connects;
}

std::string RemoteStore::roundtrip(std::string_view body) const {
  if (body.size() > config_.max_frame) {
    // A permanent condition, not an outage: retrying the same payload can
    // never succeed, so name the real cause instead of backing off.
    throw StoreUnavailableError(
        "armus-kv: request of " + std::to_string(body.size()) +
        " bytes exceeds max_frame " + std::to_string(config_.max_frame) +
        " (slice too large; raise max_frame on both ends)");
  }
  ensure_connected_locked();
  if (!io::write_all(fd_, frame(body))) {
    disconnect_locked("send failed");
    throw StoreUnavailableError("armus-kv: send failed");
  }
  std::optional<std::string> response = io::read_frame(fd_, config_.max_frame);
  if (!response) {
    disconnect_locked("recv failed");
    throw StoreUnavailableError("armus-kv: connection lost awaiting response");
  }
  return std::move(*response);
}

WireStatus RemoteStore::read_status(std::string_view response,
                                    std::size_t* offset) {
  WireStatus status;
  try {
    status = static_cast<WireStatus>(read_varint(response, offset));
  } catch (const CodecError&) {
    throw StoreUnavailableError("armus-kv: malformed response");
  }
  if (status == WireStatus::kUnavailable) {
    throw StoreUnavailableError("armus-kv: server-side store unavailable");
  }
  return status;
}

std::uint64_t RemoteStore::put_slice(dist::SiteId site, std::string payload) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t proposed = versions_[site] + 1;
  for (int attempt = 0;; ++attempt) {
    std::string body = request_header(MsgType::kPutSlice);
    append_varint(body, site);
    append_varint(body, proposed);
    append_bytes(body, payload);
    std::string response = roundtrip(body);
    std::size_t offset = 0;
    WireStatus status = read_status(response, &offset);
    try {
      if (status == WireStatus::kOk) {
        std::uint64_t stored = read_varint(response, &offset);
        expect_end(response, offset);
        versions_[site] = stored;
        return stored;
      }
      if (status == WireStatus::kStaleVersion) {
        std::uint64_t current = read_varint(response, &offset);
        expect_end(response, offset);
        if (attempt == 0) {
          // Another writer (or an earlier life of this client) owns a
          // higher version; jump past it and retry once.
          proposed = current + 1;
          ++stats_.stale_retries;
          continue;
        }
        throw StoreUnavailableError(
            "armus-kv: PUT_SLICE still stale after re-sequencing (current " +
            std::to_string(current) + ", proposed " +
            std::to_string(proposed) + ")");
      }
    } catch (const CodecError&) {
      disconnect_locked("malformed response");
      throw StoreUnavailableError("armus-kv: malformed PUT_SLICE response");
    }
    throw StoreUnavailableError("armus-kv: PUT_SLICE failed: " +
                                to_string(status));
  }
}

std::uint64_t RemoteStore::put_slice_delta(dist::SiteId site,
                                           std::uint64_t base_version,
                                           const std::string& delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t proposed = versions_[site] + 1;
  for (int attempt = 0;; ++attempt) {
    std::string body = request_header(MsgType::kPutSliceDelta);
    append_varint(body, site);
    append_varint(body, base_version);
    append_varint(body, proposed);
    append_bytes(body, delta);
    std::string response = roundtrip(body);
    std::size_t offset = 0;
    WireStatus status = read_status(response, &offset);
    try {
      if (status == WireStatus::kOk) {
        std::uint64_t stored = read_varint(response, &offset);
        expect_end(response, offset);
        versions_[site] = stored;
        return stored;
      }
      if (status == WireStatus::kBaseMismatch) {
        std::uint64_t current = read_varint(response, &offset);
        expect_end(response, offset);
        // Remember the server's version so the fallback full put proposes
        // past it on the first attempt.
        versions_[site] = std::max(versions_[site], current);
        throw dist::SliceBaseMismatchError(current);
      }
      if (status == WireStatus::kStaleVersion) {
        std::uint64_t current = read_varint(response, &offset);
        expect_end(response, offset);
        if (attempt == 0) {
          proposed = current + 1;
          ++stats_.stale_retries;
          continue;
        }
        throw StoreUnavailableError(
            "armus-kv: PUT_SLICE_DELTA still stale after re-sequencing "
            "(current " + std::to_string(current) + ", proposed " +
            std::to_string(proposed) + ")");
      }
    } catch (const CodecError&) {
      disconnect_locked("malformed response");
      throw StoreUnavailableError("armus-kv: malformed PUT_SLICE_DELTA response");
    }
    throw StoreUnavailableError("armus-kv: PUT_SLICE_DELTA failed: " +
                                to_string(status));
  }
}

void RemoteStore::remove_slice(dist::SiteId site) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string body = request_header(MsgType::kClear);
  append_varint(body, site);
  std::string response = roundtrip(body);
  std::size_t offset = 0;
  WireStatus status = read_status(response, &offset);
  if (status != WireStatus::kOk) {
    throw StoreUnavailableError("armus-kv: CLEAR failed: " + to_string(status));
  }
}

std::vector<dist::Slice> RemoteStore::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string response = roundtrip(request_header(MsgType::kListSlices));
  std::size_t offset = 0;
  WireStatus status = read_status(response, &offset);
  if (status != WireStatus::kOk) {
    throw StoreUnavailableError("armus-kv: LIST_SLICES failed: " +
                                to_string(status));
  }
  try {
    std::uint64_t count = read_varint(response, &offset);
    std::vector<dist::Slice> slices;
    slices.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      slices.push_back(read_slice(response, &offset));
    }
    expect_end(response, offset);
    return slices;
  } catch (const CodecError&) {
    disconnect_locked("malformed response");
    throw StoreUnavailableError("armus-kv: malformed LIST_SLICES response");
  }
}

dist::DeltaSnapshot RemoteStore::snapshot_since(std::uint64_t since) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string body = request_header(MsgType::kListSlicesSince);
  append_varint(body, since);
  std::string response = roundtrip(body);
  std::size_t offset = 0;
  WireStatus status = read_status(response, &offset);
  if (status != WireStatus::kOk) {
    throw StoreUnavailableError("armus-kv: LIST_SLICES_SINCE failed: " +
                                to_string(status));
  }
  try {
    dist::DeltaSnapshot delta;
    delta.generation = read_varint(response, &offset);
    delta.version = read_varint(response, &offset);
    std::uint64_t nchanged = read_varint(response, &offset);
    delta.changed.reserve(nchanged);
    for (std::uint64_t i = 0; i < nchanged; ++i) {
      delta.changed.push_back(read_slice(response, &offset));
    }
    std::uint64_t nlive = read_varint(response, &offset);
    delta.live_sites.reserve(nlive);
    for (std::uint64_t i = 0; i < nlive; ++i) {
      delta.live_sites.push_back(
          static_cast<dist::SiteId>(read_varint(response, &offset)));
    }
    expect_end(response, offset);
    return delta;
  } catch (const CodecError&) {
    disconnect_locked("malformed response");
    throw StoreUnavailableError(
        "armus-kv: malformed LIST_SLICES_SINCE response");
  }
}

std::optional<dist::Slice> RemoteStore::get_slice(dist::SiteId site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string body = request_header(MsgType::kGetSlice);
  append_varint(body, site);
  std::string response = roundtrip(body);
  std::size_t offset = 0;
  WireStatus status = read_status(response, &offset);
  if (status == WireStatus::kNotFound) return std::nullopt;
  if (status != WireStatus::kOk) {
    throw StoreUnavailableError("armus-kv: GET_SLICE failed: " +
                                to_string(status));
  }
  try {
    dist::Slice slice = read_slice(response, &offset);
    expect_end(response, offset);
    return slice;
  } catch (const CodecError&) {
    disconnect_locked("malformed response");
    throw StoreUnavailableError("armus-kv: malformed GET_SLICE response");
  }
}

InspectInfo RemoteStore::inspect() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string response = roundtrip(request_header(MsgType::kInspect));
  std::size_t offset = 0;
  WireStatus status = read_status(response, &offset);
  if (status != WireStatus::kOk) {
    throw StoreUnavailableError("armus-kv: INSPECT failed: " +
                                to_string(status));
  }
  try {
    InspectInfo info = read_inspect(response, &offset);
    expect_end(response, offset);
    return info;
  } catch (const CodecError&) {
    disconnect_locked("malformed response");
    throw StoreUnavailableError("armus-kv: malformed INSPECT response");
  }
}

std::string RemoteStore::stats_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string response = roundtrip(request_header(MsgType::kStats));
  std::size_t offset = 0;
  WireStatus status = read_status(response, &offset);
  if (status != WireStatus::kOk) {
    throw StoreUnavailableError("armus-kv: STATS failed: " +
                                to_string(status));
  }
  try {
    std::string json(read_bytes(response, &offset));
    expect_end(response, offset);
    return json;
  } catch (const CodecError&) {
    disconnect_locked("malformed response");
    throw StoreUnavailableError("armus-kv: malformed STATS response");
  }
}

bool RemoteStore::heartbeat() {
  std::lock_guard<std::mutex> lock(mutex_);
  try {
    std::string response = roundtrip(request_header(MsgType::kHeartbeat));
    std::size_t offset = 0;
    if (read_status(response, &offset) != WireStatus::kOk) return false;
    std::uint64_t proto = read_varint(response, &offset);
    expect_end(response, offset);
    return proto == kProtocolVersion;
  } catch (const StoreUnavailableError&) {
    return false;
  } catch (const CodecError&) {
    disconnect_locked("malformed response");
    return false;
  }
}

bool RemoteStore::connected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fd_ >= 0;
}

RemoteStore::Stats RemoteStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace armus::net
