#include "net/remote_store.h"

#include <algorithm>
#include <random>

#include "net/socket_io.h"

namespace armus::net {

using dist::append_varint;
using dist::CodecError;
using dist::read_varint;
using dist::StoreUnavailableError;

namespace {

std::uint64_t seed_or_random(std::uint64_t seed) {
  if (seed != 0) return seed;
  std::random_device rd;
  return (static_cast<std::uint64_t>(rd()) << 32) | rd();
}

/// "host:port" → Endpoint; nullopt on any other shape.
std::optional<Endpoint> parse_hostport(std::string_view hostport) {
  std::size_t colon = hostport.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 == hostport.size()) {
    return std::nullopt;
  }
  unsigned long port = 0;
  std::size_t consumed = 0;
  std::string port_str(hostport.substr(colon + 1));
  try {
    port = std::stoul(port_str, &consumed);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (consumed != port_str.size() || port == 0 || port > 65535) {
    return std::nullopt;
  }
  Endpoint endpoint;
  endpoint.host = std::string(hostport.substr(0, colon));
  endpoint.port = static_cast<std::uint16_t>(port);
  return endpoint;
}

}  // namespace

RemoteStore::RemoteStore(Config config)
    : config_(std::move(config)), rng_(seed_or_random(config_.backoff_seed)) {
  endpoints_ = config_.endpoints;
  if (endpoints_.empty()) {
    endpoints_.push_back(Endpoint{config_.host, config_.port});
  }
}

RemoteStore::~RemoteStore() {
  std::lock_guard<std::mutex> lock(mutex_);
  io::close_fd(fd_);
  fd_ = -1;
}

void RemoteStore::disconnect_locked(const char* reason) const {
  (void)reason;
  io::close_fd(fd_);
  fd_ = -1;
  ++stats_.failures;
  // Decorrelated jitter: uniform in [initial, 3 × previous], capped.
  // Grows like doubling but no two clients share a schedule, so a fleet
  // reconnecting after a failover trickles onto the promoted replica
  // instead of stampeding it.
  std::uint64_t low =
      static_cast<std::uint64_t>(config_.backoff_initial.count());
  std::uint64_t prev = backoff_.count() == 0
                           ? low
                           : static_cast<std::uint64_t>(backoff_.count());
  std::uint64_t high = std::max(low, prev * 3);
  backoff_ = std::min(config_.backoff_max,
                      std::chrono::milliseconds(low + rng_.below(high - low + 1)));
  stats_.next_backoff_ms = static_cast<std::uint64_t>(backoff_.count());
  retry_after_ = std::chrono::steady_clock::now() + backoff_;
}

void RemoteStore::prefer_locked(std::string_view hostport) const {
  std::optional<Endpoint> target = parse_hostport(hostport);
  if (!target) {
    // No usable address in the redirect: try the next known endpoint.
    if (endpoints_.size() > 1) {
      preferred_ = (preferred_ + 1) % endpoints_.size();
      ++stats_.failovers;
    }
    return;
  }
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    if (endpoints_[i].host == target->host &&
        endpoints_[i].port == target->port) {
      if (preferred_ != i) {
        preferred_ = i;
        ++stats_.failovers;
      }
      return;
    }
  }
  endpoints_.push_back(*target);
  preferred_ = endpoints_.size() - 1;
  ++stats_.failovers;
}

void RemoteStore::ensure_connected_locked() const {
  if (fd_ >= 0) return;
  if (std::chrono::steady_clock::now() < retry_after_) {
    ++stats_.fast_failures;
    throw StoreUnavailableError("armus-kv: backing off after failure");
  }
  ++stats_.reconnect_attempts;
  // Walk the endpoint list from the last known-good entry; any server
  // that accepts the connection (reads are served cluster-wide, and a
  // mutation sent to a replica redirects) beats reporting an outage.
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    std::size_t index = (preferred_ + i) % endpoints_.size();
    const Endpoint& endpoint = endpoints_[index];
    int fd = io::connect_to(endpoint.host, endpoint.port,
                            static_cast<int>(config_.connect_timeout.count()));
    if (fd < 0) continue;
    io::set_io_timeout(fd, static_cast<int>(config_.io_timeout.count()));
    fd_ = fd;
    if (!config_.auth_token.empty()) {
      // Authenticate before anything else travels on the connection.
      std::string body = request_header(MsgType::kAuth);
      append_bytes(body, config_.auth_token);
      std::optional<std::string> response;
      if (io::write_all(fd_, frame(body))) {
        response = io::read_frame(fd_, config_.max_frame);
      }
      if (!response) {
        // The exchange died — an endpoint failure; try the next one.
        io::close_fd(fd_);
        fd_ = -1;
        continue;
      }
      std::size_t offset = 0;
      WireStatus status = read_status(*response, &offset);
      if (status != WireStatus::kOk) {
        // A *rejected* token is a configuration error, not an endpoint
        // outage: the same token would be refused everywhere.
        disconnect_locked("auth rejected");
        throw StoreUnavailableError("armus-kv: AUTH failed: " +
                                    to_string(status));
      }
    }
    if (preferred_ != index) {
      preferred_ = index;
      ++stats_.failovers;
    }
    backoff_ = std::chrono::milliseconds{0};
    stats_.next_backoff_ms = 0;
    retry_after_ = {};
    ++stats_.connects;
    return;
  }
  disconnect_locked("connect failed");
  throw StoreUnavailableError(
      "armus-kv: cannot connect to any of " +
      std::to_string(endpoints_.size()) + " endpoint(s), first " +
      endpoints_.front().host + ":" + std::to_string(endpoints_.front().port));
}

std::string RemoteStore::exchange_locked(std::string_view body) const {
  ensure_connected_locked();
  if (!io::write_all(fd_, frame(body))) {
    disconnect_locked("send failed");
    throw StoreUnavailableError("armus-kv: send failed");
  }
  std::optional<std::string> response = io::read_frame(fd_, config_.max_frame);
  if (!response) {
    disconnect_locked("recv failed");
    throw StoreUnavailableError("armus-kv: connection lost awaiting response");
  }
  return std::move(*response);
}

std::string RemoteStore::roundtrip(std::string_view body) const {
  if (body.size() > config_.max_frame) {
    // A permanent condition, not an outage: retrying the same payload can
    // never succeed, so name the real cause instead of backing off.
    throw StoreUnavailableError(
        "armus-kv: request of " + std::to_string(body.size()) +
        " bytes exceeds max_frame " + std::to_string(config_.max_frame) +
        " (slice too large; raise max_frame on both ends)");
  }
  for (int redirects = 0;; ++redirects) {
    std::string response = exchange_locked(body);
    // Peek the status: every op handles its own, except NOT_PRIMARY,
    // which is connection routing and belongs here — re-point at the
    // primary the reply names and resend once.
    std::size_t offset = 0;
    std::uint64_t status;
    try {
      status = read_varint(response, &offset);
    } catch (const CodecError&) {
      disconnect_locked("malformed response");
      throw StoreUnavailableError("armus-kv: malformed response");
    }
    if (static_cast<WireStatus>(status) != WireStatus::kNotPrimary) {
      return response;
    }
    std::string redirect;
    try {
      redirect = std::string(read_bytes(response, &offset));
      expect_end(response, offset);
    } catch (const CodecError&) {
      disconnect_locked("malformed redirect");
      throw StoreUnavailableError("armus-kv: malformed NOT_PRIMARY response");
    }
    ++stats_.redirects;
    // Leave this (healthy, read-serving) replica without opening a
    // backoff window; the follow-up connect decides whether the named
    // primary is actually reachable.
    io::close_fd(fd_);
    fd_ = -1;
    if (redirects >= 1) {
      // Two redirects in a row: the failover has not settled (e.g. the
      // named primary is dead and its replica still points at it). Let
      // the caller retry through the ordinary outage path.
      disconnect_locked("redirect loop");
      throw StoreUnavailableError(
          "armus-kv: NOT_PRIMARY redirect loop (failover in progress)");
    }
    prefer_locked(redirect);
  }
}

std::string RemoteStore::timed_exchange(const char* op, std::string body,
                                        bool redirectable) const {
  if (config_.request_ids) {
    append_varint(body, ++next_request_id_);
  }
  auto started = std::chrono::steady_clock::now();
  std::string response = redirectable ? roundtrip(body) : exchange_locked(body);
  auto latency_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - started)
          .count());
  op_registry_.record(std::string("op.") + op + ".latency_us", latency_us);
  return response;
}

WireStatus RemoteStore::read_status(std::string_view response,
                                    std::size_t* offset) {
  WireStatus status;
  try {
    status = static_cast<WireStatus>(read_varint(response, offset));
  } catch (const CodecError&) {
    throw StoreUnavailableError("armus-kv: malformed response");
  }
  if (status == WireStatus::kUnavailable) {
    throw StoreUnavailableError("armus-kv: server-side store unavailable");
  }
  return status;
}

std::uint64_t RemoteStore::put_slice(dist::SiteId site, std::string payload) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t proposed = versions_[site] + 1;
  for (int attempt = 0;; ++attempt) {
    std::string body = request_header(MsgType::kPutSlice);
    append_varint(body, site);
    append_varint(body, proposed);
    append_bytes(body, payload);
    std::string response = timed_exchange("put_slice", std::move(body));
    std::size_t offset = 0;
    WireStatus status = read_status(response, &offset);
    try {
      if (status == WireStatus::kOk) {
        std::uint64_t stored = read_varint(response, &offset);
        expect_end(response, offset);
        versions_[site] = stored;
        return stored;
      }
      if (status == WireStatus::kStaleVersion) {
        std::uint64_t current = read_varint(response, &offset);
        expect_end(response, offset);
        if (attempt == 0) {
          // Another writer (or an earlier life of this client) owns a
          // higher version; jump past it and retry once.
          proposed = current + 1;
          ++stats_.stale_retries;
          continue;
        }
        throw StoreUnavailableError(
            "armus-kv: PUT_SLICE still stale after re-sequencing (current " +
            std::to_string(current) + ", proposed " +
            std::to_string(proposed) + ")");
      }
    } catch (const CodecError&) {
      disconnect_locked("malformed response");
      throw StoreUnavailableError("armus-kv: malformed PUT_SLICE response");
    }
    throw StoreUnavailableError("armus-kv: PUT_SLICE failed: " +
                                to_string(status));
  }
}

std::uint64_t RemoteStore::put_slice_delta(dist::SiteId site,
                                           std::uint64_t base_version,
                                           const std::string& delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t proposed = versions_[site] + 1;
  for (int attempt = 0;; ++attempt) {
    std::string body = request_header(MsgType::kPutSliceDelta);
    append_varint(body, site);
    append_varint(body, base_version);
    append_varint(body, proposed);
    append_bytes(body, delta);
    std::string response = timed_exchange("put_slice_delta", std::move(body));
    std::size_t offset = 0;
    WireStatus status = read_status(response, &offset);
    try {
      if (status == WireStatus::kOk) {
        std::uint64_t stored = read_varint(response, &offset);
        expect_end(response, offset);
        versions_[site] = stored;
        return stored;
      }
      if (status == WireStatus::kBaseMismatch) {
        std::uint64_t current = read_varint(response, &offset);
        expect_end(response, offset);
        // Remember the server's version so the fallback full put proposes
        // past it on the first attempt.
        versions_[site] = std::max(versions_[site], current);
        throw dist::SliceBaseMismatchError(current);
      }
      if (status == WireStatus::kStaleVersion) {
        std::uint64_t current = read_varint(response, &offset);
        expect_end(response, offset);
        if (attempt == 0) {
          proposed = current + 1;
          ++stats_.stale_retries;
          continue;
        }
        throw StoreUnavailableError(
            "armus-kv: PUT_SLICE_DELTA still stale after re-sequencing "
            "(current " + std::to_string(current) + ", proposed " +
            std::to_string(proposed) + ")");
      }
    } catch (const CodecError&) {
      disconnect_locked("malformed response");
      throw StoreUnavailableError("armus-kv: malformed PUT_SLICE_DELTA response");
    }
    throw StoreUnavailableError("armus-kv: PUT_SLICE_DELTA failed: " +
                                to_string(status));
  }
}

void RemoteStore::remove_slice(dist::SiteId site) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string body = request_header(MsgType::kClear);
  append_varint(body, site);
  std::string response = timed_exchange("clear", std::move(body));
  std::size_t offset = 0;
  WireStatus status = read_status(response, &offset);
  if (status != WireStatus::kOk) {
    throw StoreUnavailableError("armus-kv: CLEAR failed: " + to_string(status));
  }
}

std::vector<dist::Slice> RemoteStore::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string response =
      timed_exchange("list_slices", request_header(MsgType::kListSlices));
  std::size_t offset = 0;
  WireStatus status = read_status(response, &offset);
  if (status != WireStatus::kOk) {
    throw StoreUnavailableError("armus-kv: LIST_SLICES failed: " +
                                to_string(status));
  }
  try {
    std::uint64_t count = read_varint(response, &offset);
    std::vector<dist::Slice> slices;
    slices.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      slices.push_back(read_slice(response, &offset));
    }
    expect_end(response, offset);
    return slices;
  } catch (const CodecError&) {
    disconnect_locked("malformed response");
    throw StoreUnavailableError("armus-kv: malformed LIST_SLICES response");
  }
}

dist::DeltaSnapshot RemoteStore::snapshot_since(std::uint64_t since) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string body = request_header(MsgType::kListSlicesSince);
  append_varint(body, since);
  std::string response =
      timed_exchange("list_slices_since", std::move(body));
  std::size_t offset = 0;
  WireStatus status = read_status(response, &offset);
  if (status != WireStatus::kOk) {
    throw StoreUnavailableError("armus-kv: LIST_SLICES_SINCE failed: " +
                                to_string(status));
  }
  try {
    dist::DeltaSnapshot delta;
    delta.generation = read_varint(response, &offset);
    delta.version = read_varint(response, &offset);
    std::uint64_t nchanged = read_varint(response, &offset);
    delta.changed.reserve(nchanged);
    for (std::uint64_t i = 0; i < nchanged; ++i) {
      delta.changed.push_back(read_slice(response, &offset));
    }
    std::uint64_t nlive = read_varint(response, &offset);
    delta.live_sites.reserve(nlive);
    for (std::uint64_t i = 0; i < nlive; ++i) {
      delta.live_sites.push_back(
          static_cast<dist::SiteId>(read_varint(response, &offset)));
    }
    expect_end(response, offset);
    return delta;
  } catch (const CodecError&) {
    disconnect_locked("malformed response");
    throw StoreUnavailableError(
        "armus-kv: malformed LIST_SLICES_SINCE response");
  }
}

std::optional<dist::Slice> RemoteStore::get_slice(dist::SiteId site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string body = request_header(MsgType::kGetSlice);
  append_varint(body, site);
  std::string response = timed_exchange("get_slice", std::move(body));
  std::size_t offset = 0;
  WireStatus status = read_status(response, &offset);
  if (status == WireStatus::kNotFound) return std::nullopt;
  if (status != WireStatus::kOk) {
    throw StoreUnavailableError("armus-kv: GET_SLICE failed: " +
                                to_string(status));
  }
  try {
    dist::Slice slice = read_slice(response, &offset);
    expect_end(response, offset);
    return slice;
  } catch (const CodecError&) {
    disconnect_locked("malformed response");
    throw StoreUnavailableError("armus-kv: malformed GET_SLICE response");
  }
}

InspectInfo RemoteStore::inspect() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string response =
      timed_exchange("inspect", request_header(MsgType::kInspect));
  std::size_t offset = 0;
  WireStatus status = read_status(response, &offset);
  if (status != WireStatus::kOk) {
    throw StoreUnavailableError("armus-kv: INSPECT failed: " +
                                to_string(status));
  }
  try {
    InspectInfo info = read_inspect(response, &offset);
    expect_end(response, offset);
    return info;
  } catch (const CodecError&) {
    disconnect_locked("malformed response");
    throw StoreUnavailableError("armus-kv: malformed INSPECT response");
  }
}

std::string RemoteStore::stats_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string response =
      timed_exchange("stats", request_header(MsgType::kStats));
  std::size_t offset = 0;
  WireStatus status = read_status(response, &offset);
  if (status != WireStatus::kOk) {
    throw StoreUnavailableError("armus-kv: STATS failed: " +
                                to_string(status));
  }
  try {
    std::string json(read_bytes(response, &offset));
    expect_end(response, offset);
    return json;
  } catch (const CodecError&) {
    disconnect_locked("malformed response");
    throw StoreUnavailableError("armus-kv: malformed STATS response");
  }
}

bool RemoteStore::heartbeat() {
  std::lock_guard<std::mutex> lock(mutex_);
  try {
    std::string response =
        timed_exchange("heartbeat", request_header(MsgType::kHeartbeat));
    std::size_t offset = 0;
    if (read_status(response, &offset) != WireStatus::kOk) return false;
    std::uint64_t proto = read_varint(response, &offset);
    expect_end(response, offset);
    return proto == kProtocolVersion;
  } catch (const StoreUnavailableError&) {
    return false;
  } catch (const CodecError&) {
    disconnect_locked("malformed response");
    return false;
  }
}

std::uint64_t RemoteStore::promote() {
  std::lock_guard<std::mutex> lock(mutex_);
  // Deliberately exchange_locked, not roundtrip: PROMOTE must reach the
  // endpoint this client is pointed at, never follow a redirect (the
  // whole point is to promote a replica that still calls another server
  // its primary).
  std::string response = timed_exchange(
      "promote", request_header(MsgType::kPromote), /*redirectable=*/false);
  std::size_t offset = 0;
  WireStatus status = read_status(response, &offset);
  if (status != WireStatus::kOk) {
    throw StoreUnavailableError("armus-kv: PROMOTE failed: " +
                                to_string(status));
  }
  try {
    std::uint64_t generation = read_varint(response, &offset);
    expect_end(response, offset);
    return generation;
  } catch (const CodecError&) {
    disconnect_locked("malformed response");
    throw StoreUnavailableError("armus-kv: malformed PROMOTE response");
  }
}

bool RemoteStore::connected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fd_ >= 0;
}

RemoteStore::Stats RemoteStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::uint64_t RemoteStore::last_request_id() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_request_id_;
}

std::vector<Endpoint> RemoteStore::endpoints() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return endpoints_;
}

std::size_t RemoteStore::preferred_endpoint() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return preferred_;
}

}  // namespace armus::net
