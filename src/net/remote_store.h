#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "dist/store.h"
#include "net/protocol.h"
#include "obs/registry.h"
#include "util/rng.h"

/// The client side of armus-kv: a dist::SliceStore whose operations are
/// request/response exchanges with a KvServer over TCP. dist::Site,
/// Cluster and SharedStore run unchanged over one of these — that is the
/// whole point of the SliceStore seam.
///
/// Failure model: any network failure (connect refused, peer reset, torn
/// or malformed response, server-side outage) closes the connection and
/// surfaces as dist::StoreUnavailableError — the same exception the
/// in-process store throws during an injected outage — so a Site absorbs
/// it through its existing outage path and simply retries next period.
/// Reconnection is lazy with decorrelated-jitter exponential backoff:
/// while the backoff window is open, operations fail fast without
/// touching the network (and a 10k-site fleet reconnecting after a
/// failover never stampedes the promoted replica in lockstep).
///
/// High availability (docs/HA.md): Config::endpoints may list several
/// servers (ARMUS_STORE=tcp://a:p,tcp://b:p). Connects walk the list
/// from the last known-good entry, and a NOT_PRIMARY answer — a mutation
/// sent to a replica — redirects to the address the reply carries and
/// resends once. A failover window where no endpoint accepts writes
/// surfaces as the ordinary StoreUnavailableError outage path.
namespace armus::net {

/// One armus-kv server address.
struct Endpoint {
  std::string host;
  std::uint16_t port = 0;
};

class RemoteStore final : public dist::SliceStore {
 public:
  struct Config {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;

    /// Every known server (primary + replicas), tried in order from the
    /// last endpoint that worked. Empty: {host, port} above is the one
    /// endpoint. A NOT_PRIMARY redirect naming an address outside this
    /// list appends it.
    std::vector<Endpoint> endpoints;

    /// Bound on one connect(2) attempt.
    std::chrono::milliseconds connect_timeout{500};

    /// Bound on each send/recv on an established connection (SO_SNDTIMEO
    /// / SO_RCVTIMEO): a stalled-but-open server (stopped process,
    /// blackholed route) must surface as StoreUnavailableError, never
    /// block a site thread forever.
    std::chrono::milliseconds io_timeout{2000};

    /// Retry-delay bounds after a failure. The delay is decorrelated
    /// jitter: uniform in [backoff_initial, 3 × previous delay], capped
    /// at backoff_max, reset on success — growth like doubling, but no
    /// two clients reconnect on the same schedule.
    std::chrono::milliseconds backoff_initial{25};
    std::chrono::milliseconds backoff_max{1000};

    /// Seed for the backoff jitter; 0 (default) draws a random one so
    /// fleet members decorrelate. Tests pin it for reproducibility.
    std::uint64_t backoff_seed = 0;

    std::size_t max_frame = kDefaultMaxFrame;

    /// Non-empty: an AUTH request carrying this token is sent on every
    /// (re)connect before any other request; an unauthorised reply fails
    /// the connect. Against a tokenless server AUTH is an accepted no-op,
    /// so a token-configured client interoperates either way. Wired from
    /// $ARMUS_AUTH_TOKEN by remote_store_from_url.
    std::string auth_token;

    /// Stamp every request with a varint request-id trailer
    /// (docs/WIRE_PROTOCOL.md §14): ids count up from 1 per store, so a
    /// server-side `slow_request` event or log line joins back to this
    /// client's own per-op latency histograms. Pre-trailer servers reject
    /// the extra varint as trailing garbage — set false to speak the
    /// byte-identical old dialect to them.
    bool request_ids = true;
  };

  struct Stats {
    std::uint64_t connects = 0;       ///< successful (re)connects
    std::uint64_t failures = 0;       ///< operations failed on the network
    std::uint64_t fast_failures = 0;  ///< failed inside the backoff window
    std::uint64_t stale_retries = 0;  ///< puts re-sequenced after kStaleVersion
    std::uint64_t reconnect_attempts = 0;  ///< connect walks started
    std::uint64_t redirects = 0;      ///< NOT_PRIMARY answers followed
    std::uint64_t failovers = 0;      ///< preferred endpoint changes
    std::uint64_t next_backoff_ms = 0;  ///< current jittered retry delay
  };

  explicit RemoteStore(Config config);
  ~RemoteStore() override;
  RemoteStore(const RemoteStore&) = delete;
  RemoteStore& operator=(const RemoteStore&) = delete;

  // --- SliceStore ----------------------------------------------------------

  /// PUT_SLICE with the next per-site sequence number as the proposed
  /// version. On kStaleVersion (another writer — or an earlier life of
  /// this one — got there first) jumps past the server's version and
  /// retries once. Throws dist::StoreUnavailableError on network failure.
  std::uint64_t put_slice(dist::SiteId site, std::string payload) override;

  /// PUT_SLICE_DELTA: ships a codec delta frame instead of the full
  /// payload; the server applies it to the slice it holds at exactly
  /// `base_version`. Throws dist::SliceBaseMismatchError when the server's
  /// slice is not at that base (the caller then re-publishes in full) and
  /// dist::StoreUnavailableError on network failure.
  std::uint64_t put_slice_delta(dist::SiteId site, std::uint64_t base_version,
                                const std::string& delta) override;

  void remove_slice(dist::SiteId site) override;

  [[nodiscard]] std::vector<dist::Slice> snapshot() const override;

  /// LIST_SLICES_SINCE: only the slices changed after store version
  /// `since` travel — the read-narrowing that keeps an N-site reader's
  /// per-check traffic proportional to what actually changed.
  [[nodiscard]] dist::DeltaSnapshot snapshot_since(
      std::uint64_t since) const override;

  // --- armus-kv extras -----------------------------------------------------

  /// GET_SLICE: one site's slice, nullopt when the server has none.
  std::optional<dist::Slice> get_slice(dist::SiteId site) const;

  /// HEARTBEAT round trip; false (instead of throwing) when the server is
  /// unreachable. Also the cheap way to force a reconnect attempt.
  bool heartbeat();

  /// INSPECT round trip: store identity, server counters, and one row per
  /// live slice (no payloads travel). Throws dist::StoreUnavailableError
  /// on network failure or a server-side outage.
  [[nodiscard]] InspectInfo inspect() const;

  /// STATS round trip: the server's obs::Registry snapshot as JSON
  /// (armus.obs.registry.v1). Throws dist::StoreUnavailableError on
  /// network failure.
  [[nodiscard]] std::string stats_json() const;

  /// PROMOTE round trip against the *preferred* endpoint: makes a replica
  /// the primary (under a fresh boot generation) and returns the
  /// generation now in force. Point a dedicated RemoteStore at the
  /// replica to promote a specific server. Throws
  /// dist::StoreUnavailableError on network failure.
  std::uint64_t promote();

  [[nodiscard]] bool connected() const;
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const Config& config() const { return config_; }

  /// Client-observed per-op latency histograms (`op.<name>.latency_us`,
  /// one sample per completed exchange) — the client half of the
  /// request-id join against the server's `kv.op.<name>.latency_us`.
  [[nodiscard]] const obs::Registry& op_registry() const {
    return op_registry_;
  }

  /// The last request id stamped on the wire (0 before the first, or
  /// with Config::request_ids off).
  [[nodiscard]] std::uint64_t last_request_id() const;

  /// The endpoint list in use (config plus redirect-learned entries) and
  /// the index currently preferred — observability for tests/armus-top.
  [[nodiscard]] std::vector<Endpoint> endpoints() const;
  [[nodiscard]] std::size_t preferred_endpoint() const;

 private:
  /// Sends `body` and returns the response body. Connects first if
  /// needed. A NOT_PRIMARY answer is followed once: re-point at the
  /// address it names (or the next endpoint) and resend; a second one is
  /// an unsettled failover window → StoreUnavailableError. Any network
  /// failure closes the socket, opens/extends the backoff window, and
  /// throws dist::StoreUnavailableError.
  std::string roundtrip(std::string_view body) const;
  /// One send/recv exchange on the current connection (no redirect
  /// handling). Caller holds mutex_.
  std::string exchange_locked(std::string_view body) const;

  /// roundtrip (or, for PROMOTE, exchange_locked) plus the telemetry
  /// wrapper: stamps the request-id trailer and records the exchange into
  /// op_registry_ as `op.<name>.latency_us`. Caller holds mutex_.
  std::string timed_exchange(const char* op, std::string body,
                             bool redirectable = true) const;

  /// Ensures fd_ holds a live connection, walking the endpoint list from
  /// preferred_; throws on failure (fast while the backoff window is
  /// open). Caller holds mutex_.
  void ensure_connected_locked() const;
  void disconnect_locked(const char* reason) const;
  /// Points preferred_ at `hostport` ("host:port"), learning it if new;
  /// an unparseable address just advances to the next endpoint. Caller
  /// holds mutex_.
  void prefer_locked(std::string_view hostport) const;

  /// Parses `status payload`; returns the offset just past the status.
  /// Maps kUnavailable onto StoreUnavailableError.
  static WireStatus read_status(std::string_view response,
                                std::size_t* offset);

  Config config_;

  mutable std::mutex mutex_;
  mutable int fd_ = -1;
  /// The servers to try (config endpoints, or {host, port}, plus any
  /// redirect-learned addresses) and the index connects start from.
  mutable std::vector<Endpoint> endpoints_;
  mutable std::size_t preferred_ = 0;
  mutable util::Xoshiro256 rng_;
  mutable std::chrono::milliseconds backoff_{0};
  mutable std::chrono::steady_clock::time_point retry_after_{};
  mutable Stats stats_;
  /// Highest version this client has stored per site; the next put
  /// proposes +1. See docs/WIRE_PROTOCOL.md on stale-version rejection.
  std::map<dist::SiteId, std::uint64_t> versions_;
  /// Correlation ids stamped so far (monotonic; guarded by mutex_).
  mutable std::uint64_t next_request_id_ = 0;
  /// Client-observed per-op latency (internally synchronised).
  mutable obs::Registry op_registry_;
};

}  // namespace armus::net
