#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "dist/store.h"
#include "net/protocol.h"

/// The client side of armus-kv: a dist::SliceStore whose operations are
/// request/response exchanges with a KvServer over TCP. dist::Site,
/// Cluster and SharedStore run unchanged over one of these — that is the
/// whole point of the SliceStore seam.
///
/// Failure model: any network failure (connect refused, peer reset, torn
/// or malformed response, server-side outage) closes the connection and
/// surfaces as dist::StoreUnavailableError — the same exception the
/// in-process store throws during an injected outage — so a Site absorbs
/// it through its existing outage path and simply retries next period.
/// Reconnection is lazy with exponential backoff: while the backoff
/// window is open, operations fail fast without touching the network.
namespace armus::net {

class RemoteStore final : public dist::SliceStore {
 public:
  struct Config {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;

    /// Bound on one connect(2) attempt.
    std::chrono::milliseconds connect_timeout{500};

    /// Bound on each send/recv on an established connection (SO_SNDTIMEO
    /// / SO_RCVTIMEO): a stalled-but-open server (stopped process,
    /// blackholed route) must surface as StoreUnavailableError, never
    /// block a site thread forever.
    std::chrono::milliseconds io_timeout{2000};

    /// First retry delay after a failure; doubles per consecutive failure
    /// up to backoff_max, resets on success.
    std::chrono::milliseconds backoff_initial{25};
    std::chrono::milliseconds backoff_max{1000};

    std::size_t max_frame = kDefaultMaxFrame;

    /// Non-empty: an AUTH request carrying this token is sent on every
    /// (re)connect before any other request; an unauthorised reply fails
    /// the connect. Against a tokenless server AUTH is an accepted no-op,
    /// so a token-configured client interoperates either way. Wired from
    /// $ARMUS_AUTH_TOKEN by remote_store_from_url.
    std::string auth_token;
  };

  struct Stats {
    std::uint64_t connects = 0;       ///< successful (re)connects
    std::uint64_t failures = 0;       ///< operations failed on the network
    std::uint64_t fast_failures = 0;  ///< failed inside the backoff window
    std::uint64_t stale_retries = 0;  ///< puts re-sequenced after kStaleVersion
  };

  explicit RemoteStore(Config config);
  ~RemoteStore() override;
  RemoteStore(const RemoteStore&) = delete;
  RemoteStore& operator=(const RemoteStore&) = delete;

  // --- SliceStore ----------------------------------------------------------

  /// PUT_SLICE with the next per-site sequence number as the proposed
  /// version. On kStaleVersion (another writer — or an earlier life of
  /// this one — got there first) jumps past the server's version and
  /// retries once. Throws dist::StoreUnavailableError on network failure.
  std::uint64_t put_slice(dist::SiteId site, std::string payload) override;

  /// PUT_SLICE_DELTA: ships a codec delta frame instead of the full
  /// payload; the server applies it to the slice it holds at exactly
  /// `base_version`. Throws dist::SliceBaseMismatchError when the server's
  /// slice is not at that base (the caller then re-publishes in full) and
  /// dist::StoreUnavailableError on network failure.
  std::uint64_t put_slice_delta(dist::SiteId site, std::uint64_t base_version,
                                const std::string& delta) override;

  void remove_slice(dist::SiteId site) override;

  [[nodiscard]] std::vector<dist::Slice> snapshot() const override;

  /// LIST_SLICES_SINCE: only the slices changed after store version
  /// `since` travel — the read-narrowing that keeps an N-site reader's
  /// per-check traffic proportional to what actually changed.
  [[nodiscard]] dist::DeltaSnapshot snapshot_since(
      std::uint64_t since) const override;

  // --- armus-kv extras -----------------------------------------------------

  /// GET_SLICE: one site's slice, nullopt when the server has none.
  std::optional<dist::Slice> get_slice(dist::SiteId site) const;

  /// HEARTBEAT round trip; false (instead of throwing) when the server is
  /// unreachable. Also the cheap way to force a reconnect attempt.
  bool heartbeat();

  /// INSPECT round trip: store identity, server counters, and one row per
  /// live slice (no payloads travel). Throws dist::StoreUnavailableError
  /// on network failure or a server-side outage.
  [[nodiscard]] InspectInfo inspect() const;

  /// STATS round trip: the server's obs::Registry snapshot as JSON
  /// (armus.obs.registry.v1). Throws dist::StoreUnavailableError on
  /// network failure.
  [[nodiscard]] std::string stats_json() const;

  [[nodiscard]] bool connected() const;
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  /// Sends `body` and returns the response body. Connects first if
  /// needed. Any failure closes the socket, opens/extends the backoff
  /// window, and throws dist::StoreUnavailableError.
  std::string roundtrip(std::string_view body) const;

  /// Ensures fd_ holds a live connection; throws on failure (fast while
  /// the backoff window is open). Caller holds mutex_.
  void ensure_connected_locked() const;
  void disconnect_locked(const char* reason) const;

  /// Parses `status payload`; returns the offset just past the status.
  /// Maps kUnavailable onto StoreUnavailableError.
  static WireStatus read_status(std::string_view response,
                                std::size_t* offset);

  Config config_;

  mutable std::mutex mutex_;
  mutable int fd_ = -1;
  mutable std::chrono::milliseconds backoff_{0};
  mutable std::chrono::steady_clock::time_point retry_after_{};
  mutable Stats stats_;
  /// Highest version this client has stored per site; the next put
  /// proposes +1. See docs/WIRE_PROTOCOL.md on stale-version rejection.
  std::map<dist::SiteId, std::uint64_t> versions_;
};

}  // namespace armus::net
