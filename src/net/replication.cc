#include "net/replication.h"

#include <sys/socket.h>

#include <algorithm>
#include <random>

#include "net/socket_io.h"

namespace armus::net {

using dist::append_varint;
using dist::CodecError;
using dist::read_varint;

namespace {

std::uint64_t seed_or_random(std::uint64_t seed) {
  if (seed != 0) return seed;
  std::random_device rd;
  return (static_cast<std::uint64_t>(rd()) << 32) | rd();
}

/// Parses one `generation version nchanged slice* nlive site*` frame —
/// the REPLICATE answer and every pushed stream frame share the shape.
dist::DeltaSnapshot read_delta(std::string_view body, std::size_t* offset) {
  dist::DeltaSnapshot delta;
  delta.generation = read_varint(body, offset);
  delta.version = read_varint(body, offset);
  std::uint64_t nchanged = read_varint(body, offset);
  delta.changed.reserve(nchanged);
  for (std::uint64_t i = 0; i < nchanged; ++i) {
    delta.changed.push_back(read_slice(body, offset));
  }
  std::uint64_t nlive = read_varint(body, offset);
  delta.live_sites.reserve(nlive);
  for (std::uint64_t i = 0; i < nlive; ++i) {
    delta.live_sites.push_back(
        static_cast<dist::SiteId>(read_varint(body, offset)));
  }
  expect_end(body, *offset);
  return delta;
}

}  // namespace

ReplicationClient::ReplicationClient(Config config,
                                     std::shared_ptr<dist::Store> store)
    : config_(std::move(config)),
      store_(std::move(store)),
      rng_(seed_or_random(config_.backoff_seed)) {}

ReplicationClient::~ReplicationClient() { stop(); }

void ReplicationClient::start() {
  if (started_.exchange(true)) return;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { run(); });
}

void ReplicationClient::stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Interrupt a blocked stream read so stop() is prompt (promotion runs
    // on a request-handling thread). The fd itself is closed by session().
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  }
  if (thread_.joinable()) thread_.join();
  started_.store(false, std::memory_order_release);
}

void ReplicationClient::run() {
  while (!stop_.load(std::memory_order_acquire)) {
    session();
    if (stop_.load(std::memory_order_acquire)) return;
    // Decorrelated jitter: sleep uniform(initial, 3·previous), capped.
    // Thundering-herd protection for the primary the same way
    // RemoteStore's reconnects protect a freshly promoted replica.
    std::chrono::milliseconds delay;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      std::uint64_t low =
          static_cast<std::uint64_t>(config_.backoff_initial.count());
      std::uint64_t prev = backoff_.count() == 0
                               ? low
                               : static_cast<std::uint64_t>(backoff_.count());
      std::uint64_t high = std::max(low, prev * 3);
      backoff_ = std::min(
          config_.backoff_max,
          std::chrono::milliseconds(low + rng_.below(high - low + 1)));
      delay = backoff_;
    }
    // Sleep in short hops so stop() stays prompt mid-backoff.
    auto deadline = std::chrono::steady_clock::now() + delay;
    while (!stop_.load(std::memory_order_acquire) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
}

void ReplicationClient::session() {
  int fd = io::connect_to(config_.host, config_.port,
                          static_cast<int>(config_.connect_timeout.count()));
  if (fd < 0) return;
  io::set_io_timeout(fd, static_cast<int>(config_.io_timeout.count()));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_.load(std::memory_order_acquire)) {
      io::close_fd(fd);
      return;
    }
    fd_ = fd;
  }

  auto teardown = [&] {
    bool was_connected;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      io::close_fd(fd_);
      fd_ = -1;
      was_connected = stats_.connected;
      stats_.connected = false;
    }
    // Transition-gated: only a session that actually came up reports
    // going down (failed connect attempts stay silent).
    if (was_connected && config_.on_transition) config_.on_transition(false);
  };

  try {
    if (!config_.auth_token.empty()) {
      std::string body = request_header(MsgType::kAuth);
      append_bytes(body, config_.auth_token);
      if (!io::write_all(fd, frame(body))) throw CodecError("auth send");
      std::optional<std::string> response =
          io::read_frame(fd, config_.max_frame);
      if (!response) throw CodecError("auth recv");
      std::size_t offset = 0;
      if (static_cast<WireStatus>(read_varint(*response, &offset)) !=
          WireStatus::kOk) {
        throw CodecError("auth rejected");
      }
    }

    std::string subscribe = request_header(MsgType::kReplicate);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      append_varint(subscribe, primed_ ? seen_generation_ : 0);
      append_varint(subscribe, primed_ ? seen_version_ : 0);
    }
    if (!io::write_all(fd, frame(subscribe))) throw CodecError("subscribe");

    // The REPLICATE answer and every pushed frame look alike: `OK delta`.
    bool first = true;
    while (!stop_.load(std::memory_order_acquire)) {
      std::optional<std::string> response =
          io::read_frame(fd, config_.max_frame);
      if (!response) break;  // stream dead (or keepalives stopped)
      std::size_t offset = 0;
      auto status = static_cast<WireStatus>(read_varint(*response, &offset));
      if (status != WireStatus::kOk) break;  // e.g. NOT_PRIMARY: re-resolve
      dist::DeltaSnapshot delta = read_delta(*response, &offset);
      apply(delta);
      if (first) {
        first = false;
        {
          std::lock_guard<std::mutex> lock(mutex_);
          ++stats_.connects;
          stats_.connected = true;
          backoff_ = std::chrono::milliseconds{0};
        }
        if (config_.on_transition) config_.on_transition(true);
      }
    }
  } catch (const CodecError&) {
    // Malformed stream or failed handshake: drop the session and let the
    // backoff-reconnect loop resubscribe from the last applied point.
  } catch (const dist::StoreUnavailableError&) {
    // Local store outage mid-apply; resubscribe picks up from the last
    // fully applied frame.
  }
  teardown();
}

void ReplicationClient::apply(const dist::DeltaSnapshot& delta) {
  bool resync;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    resync = !primed_ || delta.generation != seen_generation_;
    primary_version_ = delta.version;
  }
  if (resync && primed_) {
    // A different primary lifetime: its version history — and everything
    // this replica mirrors — is void. Clear first (still under the old
    // local generation, so nothing ever regresses), then fence readers
    // with a fresh generation, then apply the full frame under it.
    store_->retain_only({});
    store_->bump_generation();
  }
  for (const dist::Slice& slice : delta.changed) {
    store_->put_slice_if_newer(slice.site, slice.payload, slice.version);
  }
  store_->retain_only(delta.live_sites);

  std::lock_guard<std::mutex> lock(mutex_);
  auto now = std::chrono::steady_clock::now();
  seen_generation_ = delta.generation;
  seen_version_ = delta.version;
  primed_ = true;
  last_frame_ = now;
  if (resync) {
    last_resync_ = now;
    ++stats_.resyncs;
  }
  ++stats_.frames;
  stats_.slices += delta.changed.size();
}

ReplicationClient::Stats ReplicationClient::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats out = stats_;
  auto now = std::chrono::steady_clock::now();
  out.lag_versions = primary_version_ - seen_version_;
  if (last_frame_ != std::chrono::steady_clock::time_point{}) {
    out.lag_ms = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(now - last_frame_)
            .count());
  }
  if (last_resync_ != std::chrono::steady_clock::time_point{}) {
    out.resync_age_ms = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(now -
                                                              last_resync_)
            .count());
  }
  return out;
}

}  // namespace armus::net
