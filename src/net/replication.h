#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "dist/store.h"
#include "net/protocol.h"
#include "util/rng.h"

/// The replica half of armus-kv primary-backup replication (docs/HA.md).
///
/// A ReplicationClient is a long-lived subscriber the replica server runs
/// against its primary: it connects as an ordinary client, authenticates,
/// sends one REPLICATE request carrying the (generation, version) it has
/// applied so far, and then consumes the server-push stream of delta
/// frames — each the same `generation version nchanged slice* nlive
/// site*` shape as a LIST_SLICES_SINCE answer — applying every committed
/// slice write into the replica's own dist::Store.
///
/// Fencing invariant: within one boot generation the replica exposes, a
/// slice version never goes backwards. A stream frame carrying a *new*
/// primary generation (the primary restarted, or the replica subscribed
/// to a different primary) means the version history the replica mirrors
/// is void: the client clears its slices, bumps the replica store's own
/// generation (dist::Store::bump_generation), and reapplies from the full
/// frame — so local readers experience exactly the restart case
/// CachedSliceReader already handles, never a rollback.
///
/// The primary pushes a keepalive frame (empty change set) at least every
/// ~500 ms, so a read timeout on the stream doubles as liveness
/// detection; a dead stream reconnects under decorrelated-jitter backoff.
namespace armus::net {

class ReplicationClient {
 public:
  struct Config {
    /// The primary's address.
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;

    /// Bound on one connect(2) attempt.
    std::chrono::milliseconds connect_timeout{500};

    /// Bound on each stream read. The primary keepalives every ~500 ms,
    /// so a read that hits this timeout means the stream (or the
    /// primary) is dead and the client reconnects.
    std::chrono::milliseconds io_timeout{2000};

    /// Reconnect backoff bounds (decorrelated jitter between them).
    std::chrono::milliseconds backoff_initial{25};
    std::chrono::milliseconds backoff_max{1000};

    std::size_t max_frame = kDefaultMaxFrame;

    /// Sent as AUTH before REPLICATE when non-empty (REPLICATE is a
    /// gated op on a token-configured primary).
    std::string auth_token;

    /// Seed for the jittered backoff; 0 (default) draws a random one.
    /// Tests pin it for reproducible reconnect schedules.
    std::uint64_t backoff_seed = 0;

    /// Transition hook: called with true when a subscription comes up
    /// (first stream frame applied), false when that subscription dies —
    /// once per transition, never per retry, the same gating as the
    /// store_outage event. Runs on the subscriber thread; the replica
    /// server feeds its WATCH_EVENTS health stream from it.
    std::function<void(bool connected)> on_transition;
  };

  struct Stats {
    std::uint64_t connects = 0;      ///< successful subscriptions
    std::uint64_t frames = 0;        ///< stream frames applied (keepalives too)
    std::uint64_t slices = 0;        ///< slice writes applied
    std::uint64_t resyncs = 0;       ///< full resyncs (first sync, or a
                                     ///< primary generation change)
    std::uint64_t lag_versions = 0;  ///< primary versions seen but not applied
    std::uint64_t lag_ms = 0;        ///< ms since the last stream frame
                                     ///< (0 before the first)
    std::uint64_t resync_age_ms = 0; ///< ms since the last full resync
                                     ///< (0 = never)
    bool connected = false;          ///< a live subscription exists
  };

  /// Writes stream into `store` — the replica server's backing store.
  ReplicationClient(Config config, std::shared_ptr<dist::Store> store);
  ~ReplicationClient();
  ReplicationClient(const ReplicationClient&) = delete;
  ReplicationClient& operator=(const ReplicationClient&) = delete;

  /// Starts the subscriber thread. Idempotent.
  void start();

  /// Stops and joins the subscriber thread; the in-flight stream read is
  /// interrupted (socket shutdown), so this returns promptly — promotion
  /// calls it from a request handler. Idempotent.
  void stop();

  [[nodiscard]] Stats stats() const;

 private:
  void run();
  /// One connect → AUTH → REPLICATE → apply-frames session. Returns when
  /// the stream dies or stop() is requested.
  void session();
  /// Applies one stream frame, enforcing the fencing invariant.
  void apply(const dist::DeltaSnapshot& delta);

  Config config_;
  std::shared_ptr<dist::Store> store_;

  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> started_{false};

  mutable std::mutex mutex_;
  int fd_ = -1;  ///< live session socket (for stop()'s shutdown)
  util::Xoshiro256 rng_;
  std::chrono::milliseconds backoff_{0};
  /// What this replica has applied; the next REPLICATE resumes from here.
  std::uint64_t seen_generation_ = 0;
  std::uint64_t seen_version_ = 0;
  std::uint64_t primary_version_ = 0;  ///< last version the stream reported
  bool primed_ = false;
  std::chrono::steady_clock::time_point last_frame_{};
  std::chrono::steady_clock::time_point last_resync_{};
  Stats stats_;
};

}  // namespace armus::net
