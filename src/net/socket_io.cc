#include "net/socket_io.h"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace armus::net::io {

namespace {

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Completes a non-blocking connect within `timeout_ms`; returns false on
/// timeout or socket error.
bool await_connect(int fd, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = POLLOUT;
  int rc = ::poll(&pfd, 1, timeout_ms);
  if (rc <= 0) return false;
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) return false;
  return err == 0;
}

}  // namespace

bool write_all(int fd, std::string_view data) {
  while (!data.empty()) {
    ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

bool read_exact(int fd, std::size_t length, std::string* out) {
  std::size_t start = out->size();
  out->resize(start + length);
  std::size_t got = 0;
  while (got < length) {
    ssize_t n = ::recv(fd, out->data() + start + got, length - got, 0);
    if (n == 0) return false;  // EOF mid-message
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<std::string> read_frame(int fd, std::size_t max_frame) {
  std::string prefix;
  if (!read_exact(fd, 4, &prefix)) return std::nullopt;
  std::uint32_t length = 0;
  for (int i = 3; i >= 0; --i) {
    length = (length << 8) | static_cast<std::uint8_t>(prefix[i]);
  }
  if (length > max_frame) return std::nullopt;
  std::string body;
  if (!read_exact(fd, length, &body)) return std::nullopt;
  return body;
}

void set_io_timeout(int fd, int timeout_ms) {
  if (timeout_ms <= 0) return;
  struct timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

int connect_to(const std::string& host, std::uint16_t port, int timeout_ms) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* result = nullptr;
  std::string service = std::to_string(port);
  if (::getaddrinfo(host.c_str(), service.c_str(), &hints, &result) != 0) {
    return -1;
  }
  int fd = -1;
  for (struct addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_NONBLOCK,
                  ai->ai_protocol);
    if (fd < 0) continue;
    int rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    if (rc == 0 || (rc < 0 && errno == EINPROGRESS &&
                    await_connect(fd, timeout_ms))) {
      break;  // connected
    }
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(result);
  if (fd < 0) return -1;
  // Back to blocking mode for the simple request/response exchanges.
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
  set_nodelay(fd);
  return fd;
}

bool set_nonblocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void close_fd(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace armus::net::io
