#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

/// Internal POSIX socket plumbing shared by the armus-kv server and the
/// RemoteStore client: exact-length reads/writes and framed message I/O.
/// Nothing here knows the protocol beyond the 4-byte length prefix.
namespace armus::net::io {

/// Writes all of `data`, retrying short writes. MSG_NOSIGNAL — a closed
/// peer yields false, never SIGPIPE. Returns false on any error.
bool write_all(int fd, std::string_view data);

/// Reads exactly `length` bytes into `out` (appended). Returns false on
/// EOF or error.
bool read_exact(int fd, std::size_t length, std::string* out);

/// Reads one length-prefixed frame body. nullopt on clean EOF before the
/// prefix, on any I/O error or timeout, or on a length above `max_frame`
/// (protocol violation — the caller must drop the connection).
std::optional<std::string> read_frame(int fd, std::size_t max_frame);

/// Bounds every subsequent send/recv on `fd` (SO_SNDTIMEO/SO_RCVTIMEO);
/// a timed-out operation fails like any other I/O error. <= 0 leaves the
/// socket unbounded.
void set_io_timeout(int fd, int timeout_ms);

/// Connects to host:port with a bounded connect(2). Returns the connected
/// fd (TCP_NODELAY set) or -1. `host` may be a numeric address or a name.
int connect_to(const std::string& host, std::uint16_t port,
               int timeout_ms);

/// Puts `fd` into non-blocking mode (the armus-kv event loop's sockets).
/// Returns false when fcntl fails.
bool set_nonblocking(int fd);

/// close(2) that tolerates fd < 0.
void close_fd(int fd);

}  // namespace armus::net::io
