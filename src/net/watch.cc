#include "net/watch.h"

#include "net/socket_io.h"

namespace armus::net {

using dist::append_varint;
using dist::CodecError;
using dist::read_varint;
using dist::StoreUnavailableError;

WatchClient::WatchClient(Config config) : config_(std::move(config)) {
  fd_ = io::connect_to(config_.host, config_.port,
                       static_cast<int>(config_.connect_timeout.count()));
  if (fd_ < 0) {
    throw StoreUnavailableError("watch: connect to " + config_.host + ":" +
                                std::to_string(config_.port) + " failed");
  }
  io::set_io_timeout(fd_, static_cast<int>(config_.io_timeout.count()));

  auto exchange = [&](const std::string& body,
                      const char* what) -> std::string {
    if (!io::write_all(fd_, frame(body))) {
      close();
      throw StoreUnavailableError(std::string("watch: ") + what + " send");
    }
    std::optional<std::string> response = io::read_frame(fd_, config_.max_frame);
    if (!response) {
      close();
      throw StoreUnavailableError(std::string("watch: ") + what + " recv");
    }
    return *std::move(response);
  };

  try {
    if (!config_.auth_token.empty()) {
      std::string body = request_header(MsgType::kAuth);
      append_bytes(body, config_.auth_token);
      std::string response = exchange(body, "auth");
      std::size_t offset = 0;
      if (static_cast<WireStatus>(read_varint(response, &offset)) !=
          WireStatus::kOk) {
        close();
        throw StoreUnavailableError("watch: auth rejected");
      }
    }

    std::string subscribe = request_header(MsgType::kWatchEvents);
    append_varint(subscribe, config_.mask);
    std::string response = exchange(subscribe, "subscribe");
    std::size_t offset = 0;
    auto status = static_cast<WireStatus>(read_varint(response, &offset));
    if (status != WireStatus::kOk) {
      close();
      throw StoreUnavailableError("watch: subscribe rejected: " +
                                  to_string(status));
    }
    mask_ = read_varint(response, &offset);
    expect_end(response, offset);
  } catch (const CodecError& err) {
    close();
    throw StoreUnavailableError(std::string("watch: bad handshake: ") +
                                err.what());
  }
}

WatchClient::~WatchClient() { close(); }

std::optional<std::string> WatchClient::next() {
  if (fd_ < 0) return std::nullopt;
  std::optional<std::string> response = io::read_frame(fd_, config_.max_frame);
  if (!response) {
    // Clean end of stream: server closed, or Config::io_timeout elapsed.
    close();
    return std::nullopt;
  }
  try {
    std::size_t offset = 0;
    auto status = static_cast<WireStatus>(read_varint(*response, &offset));
    if (status != WireStatus::kOk) {
      throw CodecError("push frame status " +
                       std::to_string(static_cast<std::uint64_t>(status)));
    }
    std::string line(read_bytes(*response, &offset));
    expect_end(*response, offset);
    return line;
  } catch (const CodecError& err) {
    // A frame we framed but cannot parse: the stream can no longer be
    // trusted to stay in sync, so surface the standard outage error and
    // force a resubscribe rather than guessing at a resync point.
    close();
    throw StoreUnavailableError(std::string("watch: malformed push frame: ") +
                                err.what());
  }
}

void WatchClient::close() {
  if (fd_ >= 0) {
    io::close_fd(fd_);
    fd_ = -1;
  }
}

}  // namespace armus::net
