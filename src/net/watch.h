#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "dist/store.h"
#include "net/protocol.h"

/// The consumer side of WATCH_EVENTS (docs/WIRE_PROTOCOL.md §14): a
/// blocking subscriber that performs the one-frame handshake and then
/// yields one armus.kv.event.v1 line per pushed frame. `armus-top
/// --follow` renders these; the wire fuzzer drives one against mutated
/// push streams to pin that a malformed frame surfaces as a clean error,
/// never a mis-synced parse.
namespace armus::net {

class WatchClient {
 public:
  struct Config {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;

    /// Requested category bitmask (kWatchLifecycle | kWatchSlices |
    /// kWatchHealth); the server echoes the effective mask back.
    std::uint64_t mask = kWatchAll;

    /// Bound on one connect(2) attempt.
    std::chrono::milliseconds connect_timeout{500};

    /// Bound on each stream read. 0 (default) = unbounded: unlike the
    /// replication stream there are no keepalives, so a healthy but
    /// quiet store legitimately pushes nothing for minutes. Tests and
    /// the fuzzer set a bound and treat the timeout as end-of-stream.
    std::chrono::milliseconds io_timeout{0};

    std::size_t max_frame = kDefaultMaxFrame;

    /// Sent as AUTH before subscribing when non-empty. WATCH_EVENTS
    /// itself is auth-exempt; this only matters for symmetry with
    /// clients that reuse one token everywhere.
    std::string auth_token;
  };

  /// Connects and subscribes; throws dist::StoreUnavailableError when the
  /// server is unreachable or rejects the handshake.
  explicit WatchClient(Config config);
  ~WatchClient();
  WatchClient(const WatchClient&) = delete;
  WatchClient& operator=(const WatchClient&) = delete;

  /// Blocks for the next pushed event line. nullopt = the stream ended
  /// (server closed, or Config::io_timeout elapsed). Throws
  /// dist::StoreUnavailableError on a malformed frame — the stream is no
  /// longer trustworthy and the connection is closed; reconnect to
  /// resubscribe.
  std::optional<std::string> next();

  /// The effective category mask the server echoed at subscribe.
  [[nodiscard]] std::uint64_t mask() const { return mask_; }

  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  void close();

 private:
  Config config_;
  int fd_ = -1;
  std::uint64_t mask_ = 0;
};

}  // namespace armus::net
