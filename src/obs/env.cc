#include "obs/env.h"

#include "obs/jsonl_reporter.h"
#include "obs/multi_observer.h"
#include "trace/recorder.h"

namespace armus::obs {

std::shared_ptr<EventObserver> observer_from_env() {
  return combine({trace::recorder_from_env(), reporter_from_env()});
}

}  // namespace armus::obs
