#pragma once

#include <memory>

#include "core/observer.h"

/// The env spelling of observer attachment, in one place: everything that
/// used to attach only the ARMUS_TRACE recorder (verifier_config_from_env,
/// dist::Site's observer default) now goes through observer_from_env(),
/// which composes every env-enabled listener. Lives in obs/ because it
/// depends on trace/ (the recorder) — obs' reporter/registry parts depend
/// only on core/.
namespace armus::obs {

/// The process's env-configured observer stack: the ARMUS_TRACE recorder
/// and/or the ARMUS_EVENTS JSONL reporter, combined (obs::combine) when
/// both are set, nullptr when neither is. Both underlying instances are
/// process-wide singletons, so however many verifiers/sites attach, one
/// process writes one trace and one event stream.
std::shared_ptr<EventObserver> observer_from_env();

}  // namespace armus::obs
