#include "obs/export.h"

namespace armus::obs {

void export_stats(Registry& registry, const std::string& prefix,
                  const Verifier::Stats& stats) {
  registry.counter_set(prefix + ".checks", stats.checks);
  registry.counter_set(prefix + ".deadlocks_found", stats.deadlocks_found);
  registry.counter_set(prefix + ".avoidance_interrupts",
                       stats.avoidance_interrupts);
  registry.counter_set(prefix + ".scans_skipped", stats.scans_skipped);
  registry.counter_set(prefix + ".graphs_built", stats.graphs_built);
  registry.counter_set(prefix + ".incremental_applies",
                       stats.incremental_applies);
  registry.counter_set(prefix + ".full_rebuilds", stats.full_rebuilds);
  registry.counter_set(prefix + ".total_edges", stats.total_edges);
  registry.counter_set(prefix + ".max_edges", stats.max_edges);
  registry.gauge_set(prefix + ".mean_edges", stats.mean_edges());
}

void export_stats(Registry& registry, const std::string& prefix,
                  const dist::Site::Stats& stats) {
  registry.counter_set(prefix + ".publishes", stats.publishes);
  registry.counter_set(prefix + ".publishes_skipped", stats.publishes_skipped);
  registry.counter_set(prefix + ".delta_publishes", stats.delta_publishes);
  registry.counter_set(prefix + ".checks", stats.checks);
  registry.counter_set(prefix + ".checks_skipped", stats.checks_skipped);
  registry.counter_set(prefix + ".slices_fetched", stats.slices_fetched);
  registry.counter_set(prefix + ".deadlocks_found", stats.deadlocks_found);
  registry.counter_set(prefix + ".store_failures", stats.store_failures);
}

void export_stats(Registry& registry, const std::string& prefix,
                  const net::KvServer::Stats& stats) {
  registry.counter_set(prefix + ".connections", stats.connections);
  registry.counter_set(prefix + ".requests", stats.requests);
  registry.counter_set(prefix + ".errors", stats.errors);
  registry.counter_set(prefix + ".dropped_backpressure",
                       stats.dropped_backpressure);
  registry.counter_set(prefix + ".dropped_idle", stats.dropped_idle);
  registry.counter_set(prefix + ".dropped_protocol", stats.dropped_protocol);
  registry.counter_set(prefix + ".auth_failures", stats.auth_failures);
  registry.counter_set(prefix + ".not_primary", stats.not_primary);
  registry.counter_set(prefix + ".role", stats.role);
  registry.counter_set(prefix + ".replication_frames",
                       stats.replication_frames);
  registry.counter_set(prefix + ".replication_resyncs",
                       stats.replication_resyncs);
  registry.counter_set(prefix + ".replication_lag_versions",
                       stats.replication_lag_versions);
  registry.counter_set(prefix + ".replication_lag_ms",
                       stats.replication_lag_ms);
  registry.counter_set(prefix + ".watch_dropped", stats.watch_dropped);
}

void export_stats(Registry& registry, const std::string& prefix,
                  const net::RemoteStore::Stats& stats) {
  registry.counter_set(prefix + ".connects", stats.connects);
  registry.counter_set(prefix + ".failures", stats.failures);
  registry.counter_set(prefix + ".fast_failures", stats.fast_failures);
  registry.counter_set(prefix + ".stale_retries", stats.stale_retries);
  registry.counter_set(prefix + ".reconnect_attempts",
                       stats.reconnect_attempts);
  registry.counter_set(prefix + ".redirects", stats.redirects);
  registry.counter_set(prefix + ".failovers", stats.failovers);
  registry.counter_set(prefix + ".next_backoff_ms", stats.next_backoff_ms);
}

void export_stats(Registry& registry, const std::string& prefix,
                  const dist::SharedStore& store) {
  registry.counter_set(prefix + ".decodes", store.decode_count());
}

}  // namespace armus::obs
