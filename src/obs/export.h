#pragma once

#include <string>

#include "core/verifier.h"
#include "dist/site.h"
#include "dist/store.h"
#include "net/kv_server.h"
#include "net/remote_store.h"
#include "obs/registry.h"

/// Exporters from the existing Stats structs into an obs::Registry. The
/// structs stay the source of truth (their counters are maintained under
/// the owning component's locks); exporting copies a consistent snapshot
/// under `prefix` ("verifier", "site1", …), overwriting previous values —
/// call again whenever a fresh snapshot_json() is wanted. The metric
/// names below are the catalogue docs/OBSERVABILITY.md documents.
namespace armus::obs {

/// verifier: checks, deadlocks_found, avoidance_interrupts, scans_skipped,
/// graphs_built, incremental_applies, full_rebuilds, total_edges,
/// max_edges (counters) + mean_edges (gauge).
void export_stats(Registry& registry, const std::string& prefix,
                  const Verifier::Stats& stats);

/// site: publishes, publishes_skipped, delta_publishes, checks,
/// checks_skipped, slices_fetched, deadlocks_found, store_failures.
void export_stats(Registry& registry, const std::string& prefix,
                  const dist::Site::Stats& stats);

/// kv server: connections, requests, errors, dropped_backpressure,
/// dropped_idle, dropped_protocol, auth_failures, not_primary, role,
/// replication_frames, replication_resyncs, replication_lag_versions,
/// replication_lag_ms, watch_dropped.
void export_stats(Registry& registry, const std::string& prefix,
                  const net::KvServer::Stats& stats);

/// kv client: connects, failures, fast_failures, stale_retries,
/// reconnect_attempts, redirects, failovers, next_backoff_ms.
void export_stats(Registry& registry, const std::string& prefix,
                  const net::RemoteStore::Stats& stats);

/// shared store: decodes (cumulative payload decodes — flat across
/// unchanged reads, the O(changed) evidence).
void export_stats(Registry& registry, const std::string& prefix,
                  const dist::SharedStore& store);

}  // namespace armus::obs
