#include "obs/jsonl_reporter.h"

#include <unistd.h>

#include <chrono>
#include <stdexcept>

#include "util/env.h"
#include "util/log.h"

namespace armus::obs {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// `[[p,n],[p,n],...]` — the pair-array rendering waits/regs/resources
/// share (docs/OBSERVABILITY.md).
void append_pairs(std::string& out, const auto& entries, auto first,
                  auto second) {
  out += '[';
  bool comma = false;
  for (const auto& e : entries) {
    if (comma) out += ',';
    comma = true;
    out += '[' + std::to_string(first(e)) + ',' + std::to_string(second(e)) +
           ']';
  }
  out += ']';
}

}  // namespace

JsonlReporter::JsonlReporter(Options options)
    : path_(std::move(options.path)), clock_(std::move(options.clock)) {
  if (!clock_) clock_ = steady_now_ns;
  if (path_ == "stderr") {
    file_ = stderr;
  } else {
    file_ = std::fopen(path_.c_str(), "w");
    if (!file_) {
      throw std::runtime_error("cannot open ARMUS_EVENTS sink " + path_);
    }
    owns_file_ = true;
  }
}

JsonlReporter::~JsonlReporter() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ && !failed_) std::fflush(file_);
  if (owns_file_ && file_) std::fclose(file_);
  file_ = nullptr;
}

std::uint64_t JsonlReporter::lines_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lines_;
}

bool JsonlReporter::failed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return failed_;
}

void JsonlReporter::write_line_locked(const std::string& line) {
  // Observer callbacks run on the application's blocking path, so a sink
  // failure must not take the observed program down: scream once, stop.
  if (failed_ || !file_) return;
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fputc('\n', file_) == EOF || std::fflush(file_) != 0) {
    failed_ = true;
    util::log_error("event stream to " + path_ + " stopped: write failed");
    return;
  }
  ++lines_;
}

std::string JsonlReporter::line_head(const char* event) {
  return std::string("{\"v\":1,\"event\":\"") + event +
         "\",\"ts_ns\":" + std::to_string(clock_()) + ',';
}

void JsonlReporter::on_task_registered(TaskId task, PhaserUid phaser,
                                       Phase local_phase) {
  std::string line = line_head("register") +
                     "\"task\":" + std::to_string(task) +
                     ",\"phaser\":" + std::to_string(phaser) +
                     ",\"phase\":" + std::to_string(local_phase) + '}';
  std::lock_guard<std::mutex> lock(mutex_);
  write_line_locked(line);
}

void JsonlReporter::on_task_deregistered(TaskId task, PhaserUid phaser) {
  std::string line = line_head("deregister") +
                     "\"task\":" + std::to_string(task) +
                     ",\"phaser\":" + std::to_string(phaser) + '}';
  std::lock_guard<std::mutex> lock(mutex_);
  write_line_locked(line);
}

void JsonlReporter::on_blocked(const BlockedStatus& status) {
  std::string line = line_head("block") +
                     "\"task\":" + std::to_string(status.task) + ",\"waits\":";
  append_pairs(line, status.waits,
               [](const Resource& r) { return r.phaser; },
               [](const Resource& r) { return r.phase; });
  line += ",\"regs\":";
  append_pairs(line, status.registered,
               [](const RegEntry& r) { return r.phaser; },
               [](const RegEntry& r) { return r.local_phase; });
  line += '}';

  std::lock_guard<std::mutex> lock(mutex_);
  auto it = live_.find(status.task);
  if (it != live_.end() && it->second == status) return;  // recheck re-publish
  if (it != live_.end()) {
    previous_[status.task] = it->second;
    it->second = status;
  } else {
    previous_[status.task] = std::nullopt;
    live_.emplace(status.task, status);
  }
  write_line_locked(line);
}

void JsonlReporter::on_block_rollback(TaskId task) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = previous_.find(task);
  if (it == previous_.end()) return;  // the failed publish was dedup-dropped
  if (it->second.has_value()) {
    live_[task] = std::move(*it->second);
  } else {
    live_.erase(task);
  }
  previous_.erase(it);
  write_line_locked(line_head("block_rollback") +
                    "\"task\":" + std::to_string(task) + '}');
}

void JsonlReporter::on_unblocked(TaskId task) {
  std::lock_guard<std::mutex> lock(mutex_);
  previous_.erase(task);
  if (live_.erase(task) == 0) return;  // was never blocked: store no-op
  write_line_locked(line_head("unblock") + "\"task\":" + std::to_string(task) +
                    '}');
}

void JsonlReporter::on_scan(const ScanInfo& info) {
  std::string line = line_head("scan") +
                     "\"blocked\":" + std::to_string(info.blocked) +
                     ",\"nodes\":" + std::to_string(info.nodes) +
                     ",\"edges\":" + std::to_string(info.edges) +
                     ",\"model\":\"" + to_string(info.model_used) +
                     "\",\"reports\":" + std::to_string(info.reports) + '}';
  std::lock_guard<std::mutex> lock(mutex_);
  write_line_locked(line);
}

void JsonlReporter::on_report(const DeadlockReport& report) {
  std::string line =
      line_head("report") + "\"model\":\"" + to_string(report.model) +
      "\",\"tasks\":[";
  bool comma = false;
  for (TaskId task : report.tasks) {
    if (comma) line += ',';
    comma = true;
    line += std::to_string(task);
  }
  line += "],\"resources\":";
  append_pairs(line, report.resources,
               [](const Resource& r) { return r.phaser; },
               [](const Resource& r) { return r.phase; });
  line += '}';
  std::lock_guard<std::mutex> lock(mutex_);
  write_line_locked(line);
}

void JsonlReporter::on_store_outage(std::uint32_t site, bool down,
                                    std::string_view op) {
  std::string line = line_head("store_outage") +
                     "\"site\":" + std::to_string(site) +
                     ",\"down\":" + (down ? "true" : "false") + ",\"op\":\"" +
                     std::string(op) + "\"}";
  std::lock_guard<std::mutex> lock(mutex_);
  write_line_locked(line);
}

std::shared_ptr<JsonlReporter> reporter_from_env() {
  static std::mutex mutex;
  static std::shared_ptr<JsonlReporter> instance;
  static bool resolved = false;
  std::lock_guard<std::mutex> lock(mutex);
  if (!resolved) {
    if (auto path = util::env_str("ARMUS_EVENTS")) {
      JsonlReporter::Options options;
      options.path = *path;
      std::size_t token = options.path.find("%p");
      if (token != std::string::npos) {
        options.path.replace(token, 2, std::to_string(::getpid()));
      }
      instance = std::make_shared<JsonlReporter>(std::move(options));
    }
    resolved = true;
  }
  return instance;
}

}  // namespace armus::obs
