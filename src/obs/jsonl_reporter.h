#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/observer.h"

/// The event half of the observability layer: an EventObserver that
/// streams one JSON line per event to a sink — the live, human-greppable
/// and machine-parseable counterpart of the binary trace. Enabled at the
/// env boundary with ARMUS_EVENTS=<path|stderr> and composed with the
/// ARMUS_TRACE recorder through obs::combine, so one run can feed both.
/// The line schema is normative in docs/OBSERVABILITY.md and pinned by
/// golden tests; version bumps the "v" field.
namespace armus::obs {

class JsonlReporter final : public EventObserver {
 public:
  struct Options {
    /// File path, or the literal "stderr" for the process's stderr.
    std::string path;

    /// Timestamp source in nanoseconds for the ts_ns field; defaults to
    /// the monotonic clock (same timebase as trace records, so event and
    /// trace timelines from one host correlate). Tests inject a fixed
    /// sequence to pin golden lines.
    std::function<std::uint64_t()> clock;
  };

  /// Creates (truncates) the sink. Throws std::runtime_error when the
  /// path cannot be opened — a requested event stream that silently goes
  /// nowhere would be worse than a loud failure.
  explicit JsonlReporter(Options options);
  ~JsonlReporter() override;

  JsonlReporter(const JsonlReporter&) = delete;
  JsonlReporter& operator=(const JsonlReporter&) = delete;

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint64_t lines_written() const;

  /// True once a write failed (disk full, EIO). Logged loudly exactly
  /// once; reporting stops, the observed program keeps running.
  [[nodiscard]] bool failed() const;

  // --- EventObserver (thread-safe; lines serialise on one mutex) ---------
  // Every line is flushed as it is written, so `tail -f` and a consuming
  // pipeline see events as they happen. Avoidance rechecks re-publish an
  // unchanged status every poll period; identical re-publishes are
  // dropped, as is an unblock for a task that never blocked — the same
  // dedup rules as trace::Recorder, so both outputs of one run agree.
  void on_task_registered(TaskId task, PhaserUid phaser,
                          Phase local_phase) override;
  void on_task_deregistered(TaskId task, PhaserUid phaser) override;
  void on_blocked(const BlockedStatus& status) override;
  void on_block_rollback(TaskId task) override;
  void on_unblocked(TaskId task) override;
  void on_scan(const ScanInfo& info) override;
  void on_report(const DeadlockReport& report) override;
  void on_store_outage(std::uint32_t site, bool down,
                       std::string_view op) override;

 private:
  void write_line_locked(const std::string& line);
  [[nodiscard]] std::string line_head(const char* event);

  std::string path_;
  std::function<std::uint64_t()> clock_;
  mutable std::mutex mutex_;
  std::FILE* file_ = nullptr;
  bool owns_file_ = false;
  bool failed_ = false;
  std::uint64_t lines_ = 0;

  /// Last status reported per live task (dedup of recheck re-publishes)
  /// and the status each task held before its latest block line (what a
  /// rollback restores). Mirrors trace::Recorder.
  std::unordered_map<TaskId, BlockedStatus> live_;
  std::unordered_map<TaskId, std::optional<BlockedStatus>> previous_;
};

/// The process-wide reporter named by ARMUS_EVENTS, created lazily on
/// first use and shared by every verifier/site that attaches through an
/// env path (nullptr when the variable is unset). "%p" in the path
/// expands to the pid. Throws on an unopenable path.
std::shared_ptr<JsonlReporter> reporter_from_env();

}  // namespace armus::obs
