#include "obs/multi_observer.h"

#include <algorithm>

namespace armus::obs {

MultiObserver::MultiObserver(
    std::vector<std::shared_ptr<EventObserver>> targets)
    : targets_(std::move(targets)) {
  targets_.erase(std::remove(targets_.begin(), targets_.end(), nullptr),
                 targets_.end());
}

void MultiObserver::on_task_registered(TaskId task, PhaserUid phaser,
                                       Phase local_phase) {
  for (auto& t : targets_) t->on_task_registered(task, phaser, local_phase);
}

void MultiObserver::on_task_deregistered(TaskId task, PhaserUid phaser) {
  for (auto& t : targets_) t->on_task_deregistered(task, phaser);
}

void MultiObserver::on_blocked(const BlockedStatus& status) {
  for (auto& t : targets_) t->on_blocked(status);
}

void MultiObserver::on_block_rollback(TaskId task) {
  for (auto& t : targets_) t->on_block_rollback(task);
}

void MultiObserver::on_unblocked(TaskId task) {
  for (auto& t : targets_) t->on_unblocked(task);
}

void MultiObserver::on_scan(const ScanInfo& info) {
  for (auto& t : targets_) t->on_scan(info);
}

void MultiObserver::on_report(const DeadlockReport& report) {
  for (auto& t : targets_) t->on_report(report);
}

void MultiObserver::on_store_outage(std::uint32_t site, bool down,
                                    std::string_view op) {
  for (auto& t : targets_) t->on_store_outage(site, down, op);
}

std::shared_ptr<EventObserver> combine(
    std::vector<std::shared_ptr<EventObserver>> targets) {
  targets.erase(std::remove(targets.begin(), targets.end(), nullptr),
                targets.end());
  if (targets.empty()) return nullptr;
  if (targets.size() == 1) return targets.front();
  return std::make_shared<MultiObserver>(std::move(targets));
}

}  // namespace armus::obs
