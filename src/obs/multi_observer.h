#pragma once

#include <memory>
#include <vector>

#include "core/observer.h"

/// Fan-out for the single observer slot: VerifierConfig::observer and
/// Site::Config::observer hold exactly one EventObserver, and before this
/// layer existed attaching a second listener (trace recorder + JSONL
/// reporter) meant choosing. A MultiObserver forwards every callback to
/// each target in order, on the caller's thread — targets do their own
/// synchronisation, exactly as they would attached directly.
namespace armus::obs {

class MultiObserver final : public EventObserver {
 public:
  /// Null targets are dropped; the order of the rest is the delivery
  /// order.
  explicit MultiObserver(std::vector<std::shared_ptr<EventObserver>> targets);

  [[nodiscard]] const std::vector<std::shared_ptr<EventObserver>>& targets()
      const {
    return targets_;
  }

  void on_task_registered(TaskId task, PhaserUid phaser,
                          Phase local_phase) override;
  void on_task_deregistered(TaskId task, PhaserUid phaser) override;
  void on_blocked(const BlockedStatus& status) override;
  void on_block_rollback(TaskId task) override;
  void on_unblocked(TaskId task) override;
  void on_scan(const ScanInfo& info) override;
  void on_report(const DeadlockReport& report) override;
  void on_store_outage(std::uint32_t site, bool down,
                       std::string_view op) override;

 private:
  std::vector<std::shared_ptr<EventObserver>> targets_;
};

/// The composition rule every env/config site uses: drop nulls, then
/// return nullptr for zero targets (no observer — the hot path keeps its
/// "observer absent" fast path), the target itself for one (no forwarding
/// hop), and a MultiObserver for several.
std::shared_ptr<EventObserver> combine(
    std::vector<std::shared_ptr<EventObserver>> targets);

}  // namespace armus::obs
