#include "obs/registry.h"

#include <bit>
#include <cmath>
#include <cstdio>

namespace armus::obs {

namespace {

/// Deterministic double rendering for snapshot_json: integral values
/// print without a fractional part, everything else as %g (6 significant
/// digits — gauges are ratios and means, not identifiers).
std::string format_double(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 1e15) {
    return std::to_string(static_cast<long long>(value));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

void append_json_string(std::string& out, const std::string& text) {
  out += '"';
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::size_t Histogram::bucket_index(std::uint64_t value) {
  // 0 → bucket 0; otherwise 1 + floor(log2(value)), i.e. bit_width,
  // clamped into the top bucket.
  std::size_t index = static_cast<std::size_t>(std::bit_width(value));
  return index < kBuckets ? index : kBuckets - 1;
}

std::uint64_t Histogram::bucket_upper(std::size_t index) {
  if (index == 0) return 0;
  if (index >= kBuckets - 1) return ~std::uint64_t{0};
  return (std::uint64_t{1} << index) - 1;
}

void Histogram::record(std::uint64_t value) {
  ++buckets_[bucket_index(value)];
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  sum_ += value;
  ++count_;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  sum_ += other.sum_;
  count_ += other.count_;
}

std::uint64_t Histogram::percentile(double p) const {
  if (count_ == 0) return 0;
  if (p <= 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  auto rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  if (rank == 0) rank = 1;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cumulative += buckets_[i];
    if (cumulative >= rank) {
      std::uint64_t upper = bucket_upper(i);
      return upper < max_ ? upper : max_;
    }
  }
  return max_;
}

void Registry::counter_set(const std::string& name, std::uint64_t value) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_[name] = value;
}

void Registry::counter_add(const std::string& name, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_[name] += delta;
}

void Registry::gauge_set(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  gauges_[name] = value;
}

void Registry::record(const std::string& name, std::uint64_t value) {
  std::lock_guard<std::mutex> lock(mutex_);
  histograms_[name].record(value);
}

std::uint64_t Registry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double Registry::gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

Histogram Registry::histogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? Histogram{} : it->second;
}

void Registry::merge_histograms(const Registry& other,
                                const std::string& prefix) {
  // Copy out first: `this` and `other` may be distinct locks taken in any
  // order elsewhere, so never hold both at once.
  std::map<std::string, Histogram> theirs;
  {
    std::lock_guard<std::mutex> lock(other.mutex_);
    theirs = other.histograms_;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, h] : theirs) histograms_[prefix + name] = h;
}

std::string Registry::snapshot_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"schema\":\"armus.obs.registry.v1\",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':' + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':' + format_double(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ":{\"count\":" + std::to_string(h.count()) +
           ",\"min\":" + std::to_string(h.min()) +
           ",\"max\":" + std::to_string(h.max()) +
           ",\"mean\":" + format_double(h.mean()) +
           ",\"p50\":" + std::to_string(h.percentile(50)) +
           ",\"p99\":" + std::to_string(h.percentile(99)) +
           ",\"p999\":" + std::to_string(h.percentile(99.9)) + '}';
  }
  out += "}}";
  return out;
}

}  // namespace armus::obs
