#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

/// The metrics half of the observability layer (docs/OBSERVABILITY.md):
/// a process-local registry of named counters, gauges, and fixed-bucket
/// latency histograms, plus a deterministic JSON snapshot. The existing
/// Stats structs (Verifier, dist::Site, net::KvServer, …) stay the
/// source of truth — obs/export.h copies them in under a prefix — so the
/// registry is a read-out surface, never a second bookkeeping path.
namespace armus::obs {

/// A fixed-bucket histogram over non-negative integer samples (latencies
/// in µs/ns, sizes in bytes). Buckets are powers of two: bucket 0 holds
/// the value 0, bucket i >= 1 holds [2^(i-1), 2^i - 1], so 64 buckets
/// cover the whole uint64 range with bounded error — a percentile
/// estimate lands in the same bucket as the true rank-order statistic
/// (within 2x), which is the property the tests pin. Not internally
/// synchronised: Registry serialises access under its own mutex, and the
/// bench harness records from one thread.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  /// The bucket index `value` falls into.
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t value);

  /// The largest value bucket `index` holds (0 for bucket 0, 2^i - 1
  /// otherwise, saturating at the top bucket).
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t index);

  void record(std::uint64_t value);

  /// Folds `other` in bucket-wise — the fan-in for multi-process benches
  /// (Histogram is trivially copyable, so a child can pipe one back as
  /// raw bytes and the parent merges). Percentiles of the merge carry the
  /// same within-bucket error bound as single-histogram ones.
  void merge(const Histogram& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] std::uint64_t max() const { return max_; }

  /// Exact arithmetic mean of the recorded samples (0 when empty) — the
  /// running sum is exact, unlike the bucketed percentiles.
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// The estimated p-th percentile (p in (0, 100]): the upper bound of the
  /// bucket holding the sample of rank ceil(p/100 * count), clamped to the
  /// observed max so p100 is exact at the top. 0 on an empty histogram.
  [[nodiscard]] std::uint64_t percentile(double p) const;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  std::uint64_t sum_ = 0;
};

/// Named counters/gauges/histograms behind one mutex. Names are flat
/// dotted strings ("site.publishes", "kv.requests"); snapshot_json()
/// renders them in lexicographic order, so its output is deterministic
/// for a given state — goldens can pin it.
class Registry {
 public:
  /// Sets counter `name` to `value` (the export path: Stats structs hold
  /// absolutes, so exporting is an overwrite, not an increment).
  void counter_set(const std::string& name, std::uint64_t value);

  /// Adds `delta` to counter `name` (creating it at 0).
  void counter_add(const std::string& name, std::uint64_t delta);

  void gauge_set(const std::string& name, double value);

  /// Records `value` into histogram `name` (creating it empty).
  void record(const std::string& name, std::uint64_t value);

  [[nodiscard]] std::uint64_t counter(const std::string& name) const;
  [[nodiscard]] double gauge(const std::string& name) const;

  /// A copy of histogram `name` (empty when absent).
  [[nodiscard]] Histogram histogram(const std::string& name) const;

  /// Copies every histogram of `other` into this registry under
  /// `prefix + name`, overwriting like the exporters do — the merge path
  /// that folds a component-owned registry (e.g. the server's per-opcode
  /// latency registry) into a snapshot being assembled.
  void merge_histograms(const Registry& other, const std::string& prefix);

  /// One JSON document of everything:
  ///   {"schema":"armus.obs.registry.v1","counters":{...},
  ///    "gauges":{...},"histograms":{"name":{"count":..,"min":..,
  ///    "max":..,"mean":..,"p50":..,"p99":..,"p999":..},...}}
  /// Keys sorted, no whitespace — docs/OBSERVABILITY.md is normative.
  [[nodiscard]] std::string snapshot_json() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace armus::obs
