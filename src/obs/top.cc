#include "obs/top.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "graph/dot.h"

namespace armus::obs {

namespace {

void append_pairs(std::string& out, const std::vector<Resource>& entries) {
  out += '[';
  bool comma = false;
  for (const Resource& r : entries) {
    if (comma) out += ',';
    comma = true;
    out += '[' + std::to_string(r.phaser) + ',' + std::to_string(r.phase) +
           ']';
  }
  out += ']';
}

}  // namespace

TopView build_top_view(const net::RemoteStore& store, GraphModel model) {
  TopView view;
  view.info = store.inspect();
  std::vector<dist::Slice> slices = store.snapshot();
  view.merged = dist::merge_slices(
      slices, [&view](dist::SiteId, const dist::CodecError&) {
        ++view.corrupt_slices;
      });
  view.check = check_deadlocks(view.merged, model);
  return view;
}

std::string render_top_json(const TopView& view) {
  std::string out = "{\"schema\":\"armus.top.v1\",\"store\":{";
  out += "\"generation\":" + std::to_string(view.info.generation) +
         ",\"version\":" + std::to_string(view.info.store_version) +
         ",\"connections\":" + std::to_string(view.info.connections) +
         ",\"requests\":" + std::to_string(view.info.requests) +
         ",\"errors\":" + std::to_string(view.info.errors) +
         ",\"role\":\"" +
         (view.info.role == 0 ? std::string("primary")
                              : std::string("replica")) +
         "\"";
  if (view.info.role != 0) {
    std::string primary;
    for (char c : view.info.primary) {  // minimal JSON string escaping
      if (c == '"' || c == '\\') primary += '\\';
      primary += c;
    }
    out += ",\"primary\":\"" + primary +
           "\",\"lag_versions\":" + std::to_string(view.info.lag_versions) +
           ",\"lag_ms\":" + std::to_string(view.info.lag_ms) +
           ",\"resync_age_ms\":" + std::to_string(view.info.resync_age_ms);
  }
  out += "},\"sites\":[";
  bool comma = false;
  for (const dist::SliceInspect& row : view.info.sites) {
    if (comma) out += ',';
    comma = true;
    out += "{\"site\":" + std::to_string(row.site) +
           ",\"version\":" + std::to_string(row.version) +
           ",\"blocked\":" + std::to_string(row.blocked) +
           ",\"age_ms\":" + std::to_string(row.age_ms) +
           ",\"payload_bytes\":" + std::to_string(row.payload_bytes) + '}';
  }
  out += "],\"blocked_total\":" + std::to_string(view.merged.size()) +
         ",\"corrupt_slices\":" + std::to_string(view.corrupt_slices) +
         ",\"deadlocks\":[";
  comma = false;
  for (const DeadlockReport& report : view.check.reports) {
    if (comma) out += ',';
    comma = true;
    out += "{\"model\":\"" + to_string(report.model) + "\",\"tasks\":[";
    bool inner = false;
    for (TaskId task : report.tasks) {
      if (inner) out += ',';
      inner = true;
      out += std::to_string(task);
    }
    out += "],\"resources\":";
    append_pairs(out, report.resources);
    out += '}';
  }
  out += "]}";
  return out;
}

std::string render_top_table(const TopView& view, const std::string& url) {
  char buf[160];
  std::string out = "armus-kv " + url +
                    "  role " +
                    (view.info.role == 0 ? std::string("primary")
                                         : std::string("replica")) +
                    "  generation " + std::to_string(view.info.generation) +
                    "  store-version " + std::to_string(view.info.store_version) +
                    "\nserver: connections " +
                    std::to_string(view.info.connections) + "  requests " +
                    std::to_string(view.info.requests) + "  errors " +
                    std::to_string(view.info.errors) + '\n';
  if (view.info.role != 0) {
    out += "replica of " +
           (view.info.primary.empty() ? std::string("(unknown)")
                                      : view.info.primary) +
           ": lag " + std::to_string(view.info.lag_versions) + " versions / " +
           std::to_string(view.info.lag_ms) + " ms, last resync " +
           (view.info.resync_age_ms == 0
                ? std::string("never")
                : std::to_string(view.info.resync_age_ms) + " ms ago") +
           '\n';
  }
  std::snprintf(buf, sizeof(buf), "%6s %9s %8s %8s %8s\n", "SITE", "VERSION",
                "BLOCKED", "AGE_MS", "BYTES");
  out += buf;
  for (const dist::SliceInspect& row : view.info.sites) {
    std::snprintf(buf, sizeof(buf), "%6u %9llu %8llu %8llu %8llu\n", row.site,
                  static_cast<unsigned long long>(row.version),
                  static_cast<unsigned long long>(row.blocked),
                  static_cast<unsigned long long>(row.age_ms),
                  static_cast<unsigned long long>(row.payload_bytes));
    out += buf;
  }
  out += "blocked total: " + std::to_string(view.merged.size());
  if (view.corrupt_slices > 0) {
    out += "  (corrupt slices skipped: " +
           std::to_string(view.corrupt_slices) + ')';
  }
  out += '\n';
  if (view.check.reports.empty()) {
    out += "no deadlock in merged snapshot (model " +
           to_string(view.check.model_used) + ")\n";
  } else {
    for (const DeadlockReport& report : view.check.reports) {
      out += "DEADLOCK: " + report.to_string() + '\n';
    }
  }
  return out;
}

std::string render_top_dot(const TopView& view) {
  BuiltGraph built = build_graph(view.merged, GraphModel::kWfg);
  return graph::to_dot(built.graph, "armus_top",
                       [&built](graph::Node v) { return built.label(v); });
}

std::uint64_t parse_event_filter(const std::string& spec) {
  std::uint64_t mask = 0;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t comma = spec.find(',', start);
    std::string name = spec.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (name == "lifecycle") {
      mask |= net::kWatchLifecycle;
    } else if (name == "slices") {
      mask |= net::kWatchSlices;
    } else if (name == "health") {
      mask |= net::kWatchHealth;
    } else if (name == "all") {
      mask |= net::kWatchAll;
    } else {
      throw std::invalid_argument(
          "--events categories are lifecycle|slices|health|all, got \"" +
          name + '"');
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return mask;
}

std::string render_event_line(const std::string& json_line) {
  // Event lines are flat objects of string/number values by schema
  // (armus.kv.event.v1 — docs/OBSERVABILITY.md), so a full JSON parser
  // would be dead weight here; anything that does not scan cleanly is
  // passed through untouched.
  std::vector<std::pair<std::string, std::string>> pairs;
  std::size_t i = 0;
  auto skip_ws = [&] {
    while (i < json_line.size() &&
           (json_line[i] == ' ' || json_line[i] == '\t')) {
      ++i;
    }
  };
  skip_ws();
  if (i >= json_line.size() || json_line[i] != '{') return json_line;
  ++i;
  for (;;) {
    skip_ws();
    if (i < json_line.size() && json_line[i] == '}') break;
    if (i >= json_line.size() || json_line[i] != '"') return json_line;
    std::size_t key_end = json_line.find('"', i + 1);
    if (key_end == std::string::npos) return json_line;
    std::string key = json_line.substr(i + 1, key_end - i - 1);
    i = key_end + 1;
    skip_ws();
    if (i >= json_line.size() || json_line[i] != ':') return json_line;
    ++i;
    skip_ws();
    std::string value;
    if (i < json_line.size() && json_line[i] == '"') {
      std::size_t value_end = json_line.find('"', i + 1);
      if (value_end == std::string::npos) return json_line;
      value = json_line.substr(i + 1, value_end - i - 1);
      i = value_end + 1;
    } else {
      std::size_t value_end = json_line.find_first_of(",}", i);
      if (value_end == std::string::npos) return json_line;
      value = json_line.substr(i, value_end - i);
      i = value_end;
    }
    pairs.emplace_back(std::move(key), std::move(value));
    skip_ws();
    if (i < json_line.size() && json_line[i] == ',') ++i;
  }

  std::string event = "?";
  double ts_s = 0.0;
  for (const auto& [key, value] : pairs) {
    if (key == "event") event = value;
    if (key == "ts_ns") ts_s = std::strtod(value.c_str(), nullptr) / 1e9;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%14.3f %-16s", ts_s, event.c_str());
  std::string out = buf;
  for (const auto& [key, value] : pairs) {
    if (key == "v" || key == "ts_ns" || key == "event") continue;
    out += ' ' + key + '=' + value;
  }
  return out;
}

}  // namespace armus::obs
