#include "obs/top.h"

#include <cstdio>

#include "graph/dot.h"

namespace armus::obs {

namespace {

void append_pairs(std::string& out, const std::vector<Resource>& entries) {
  out += '[';
  bool comma = false;
  for (const Resource& r : entries) {
    if (comma) out += ',';
    comma = true;
    out += '[' + std::to_string(r.phaser) + ',' + std::to_string(r.phase) +
           ']';
  }
  out += ']';
}

}  // namespace

TopView build_top_view(const net::RemoteStore& store, GraphModel model) {
  TopView view;
  view.info = store.inspect();
  std::vector<dist::Slice> slices = store.snapshot();
  view.merged = dist::merge_slices(
      slices, [&view](dist::SiteId, const dist::CodecError&) {
        ++view.corrupt_slices;
      });
  view.check = check_deadlocks(view.merged, model);
  return view;
}

std::string render_top_json(const TopView& view) {
  std::string out = "{\"schema\":\"armus.top.v1\",\"store\":{";
  out += "\"generation\":" + std::to_string(view.info.generation) +
         ",\"version\":" + std::to_string(view.info.store_version) +
         ",\"connections\":" + std::to_string(view.info.connections) +
         ",\"requests\":" + std::to_string(view.info.requests) +
         ",\"errors\":" + std::to_string(view.info.errors) +
         ",\"role\":\"" +
         (view.info.role == 0 ? std::string("primary")
                              : std::string("replica")) +
         "\"";
  if (view.info.role != 0) {
    std::string primary;
    for (char c : view.info.primary) {  // minimal JSON string escaping
      if (c == '"' || c == '\\') primary += '\\';
      primary += c;
    }
    out += ",\"primary\":\"" + primary +
           "\",\"lag_versions\":" + std::to_string(view.info.lag_versions) +
           ",\"lag_ms\":" + std::to_string(view.info.lag_ms) +
           ",\"resync_age_ms\":" + std::to_string(view.info.resync_age_ms);
  }
  out += "},\"sites\":[";
  bool comma = false;
  for (const dist::SliceInspect& row : view.info.sites) {
    if (comma) out += ',';
    comma = true;
    out += "{\"site\":" + std::to_string(row.site) +
           ",\"version\":" + std::to_string(row.version) +
           ",\"blocked\":" + std::to_string(row.blocked) +
           ",\"age_ms\":" + std::to_string(row.age_ms) +
           ",\"payload_bytes\":" + std::to_string(row.payload_bytes) + '}';
  }
  out += "],\"blocked_total\":" + std::to_string(view.merged.size()) +
         ",\"corrupt_slices\":" + std::to_string(view.corrupt_slices) +
         ",\"deadlocks\":[";
  comma = false;
  for (const DeadlockReport& report : view.check.reports) {
    if (comma) out += ',';
    comma = true;
    out += "{\"model\":\"" + to_string(report.model) + "\",\"tasks\":[";
    bool inner = false;
    for (TaskId task : report.tasks) {
      if (inner) out += ',';
      inner = true;
      out += std::to_string(task);
    }
    out += "],\"resources\":";
    append_pairs(out, report.resources);
    out += '}';
  }
  out += "]}";
  return out;
}

std::string render_top_table(const TopView& view, const std::string& url) {
  char buf[160];
  std::string out = "armus-kv " + url +
                    "  role " +
                    (view.info.role == 0 ? std::string("primary")
                                         : std::string("replica")) +
                    "  generation " + std::to_string(view.info.generation) +
                    "  store-version " + std::to_string(view.info.store_version) +
                    "\nserver: connections " +
                    std::to_string(view.info.connections) + "  requests " +
                    std::to_string(view.info.requests) + "  errors " +
                    std::to_string(view.info.errors) + '\n';
  if (view.info.role != 0) {
    out += "replica of " +
           (view.info.primary.empty() ? std::string("(unknown)")
                                      : view.info.primary) +
           ": lag " + std::to_string(view.info.lag_versions) + " versions / " +
           std::to_string(view.info.lag_ms) + " ms, last resync " +
           (view.info.resync_age_ms == 0
                ? std::string("never")
                : std::to_string(view.info.resync_age_ms) + " ms ago") +
           '\n';
  }
  std::snprintf(buf, sizeof(buf), "%6s %9s %8s %8s %8s\n", "SITE", "VERSION",
                "BLOCKED", "AGE_MS", "BYTES");
  out += buf;
  for (const dist::SliceInspect& row : view.info.sites) {
    std::snprintf(buf, sizeof(buf), "%6u %9llu %8llu %8llu %8llu\n", row.site,
                  static_cast<unsigned long long>(row.version),
                  static_cast<unsigned long long>(row.blocked),
                  static_cast<unsigned long long>(row.age_ms),
                  static_cast<unsigned long long>(row.payload_bytes));
    out += buf;
  }
  out += "blocked total: " + std::to_string(view.merged.size());
  if (view.corrupt_slices > 0) {
    out += "  (corrupt slices skipped: " +
           std::to_string(view.corrupt_slices) + ')';
  }
  out += '\n';
  if (view.check.reports.empty()) {
    out += "no deadlock in merged snapshot (model " +
           to_string(view.check.model_used) + ")\n";
  } else {
    for (const DeadlockReport& report : view.check.reports) {
      out += "DEADLOCK: " + report.to_string() + '\n';
    }
  }
  return out;
}

std::string render_top_dot(const TopView& view) {
  BuiltGraph built = build_graph(view.merged, GraphModel::kWfg);
  return graph::to_dot(built.graph, "armus_top",
                       [&built](graph::Node v) { return built.label(v); });
}

}  // namespace armus::obs
