#pragma once

#include <string>
#include <vector>

#include "core/checker.h"
#include "net/remote_store.h"

/// The view-building half of armus-top (tools/armus_top.cc is a thin
/// flag-parsing shell around these): one INSPECT round trip for the
/// per-site table plus one LIST_SLICES for the merged global snapshot,
/// analysed with the same checker a site runs — so what the tool shows is
/// exactly what a checking site would conclude at that instant.
namespace armus::obs {

struct TopView {
  net::InspectInfo info;               ///< per-site rows + server counters
  std::vector<BlockedStatus> merged;   ///< decoded global snapshot
  CheckResult check;                   ///< deadlock analysis of `merged`
  std::size_t corrupt_slices = 0;      ///< slices skipped as undecodable
};

/// Two round trips against the server; throws dist::StoreUnavailableError
/// when it is unreachable. Corrupt slices are skipped (and counted), not
/// fatal — an operator tool must render the healthy part of a sick
/// cluster.
TopView build_top_view(const net::RemoteStore& store, GraphModel model);

/// One-line JSON document (schema "armus.top.v1", normative in
/// docs/OBSERVABILITY.md) — the `--once --json` output CI scripts parse:
///   {"schema":"armus.top.v1","store":{generation,version,connections,
///    requests,errors},"sites":[{site,version,blocked,age_ms,
///    payload_bytes}...],"blocked_total":N,"corrupt_slices":N,
///    "deadlocks":[{model,tasks,resources}...]}
std::string render_top_json(const TopView& view);

/// The refreshing human view: store header, per-site table, deadlock
/// summary lines.
std::string render_top_table(const TopView& view, const std::string& url);

/// The merged wait-for graph in GraphViz DOT. Always the WFG, whatever
/// model the analysis used: an operator asking for the graph wants to see
/// *tasks* waiting on tasks — cross-process cycles included — and the SG
/// the checker may have preferred for speed shows phasers instead.
std::string render_top_dot(const TopView& view);

}  // namespace armus::obs
