#pragma once

#include <string>
#include <vector>

#include "core/checker.h"
#include "net/remote_store.h"

/// The view-building half of armus-top (tools/armus_top.cc is a thin
/// flag-parsing shell around these): one INSPECT round trip for the
/// per-site table plus one LIST_SLICES for the merged global snapshot,
/// analysed with the same checker a site runs — so what the tool shows is
/// exactly what a checking site would conclude at that instant.
namespace armus::obs {

struct TopView {
  net::InspectInfo info;               ///< per-site rows + server counters
  std::vector<BlockedStatus> merged;   ///< decoded global snapshot
  CheckResult check;                   ///< deadlock analysis of `merged`
  std::size_t corrupt_slices = 0;      ///< slices skipped as undecodable
};

/// Two round trips against the server; throws dist::StoreUnavailableError
/// when it is unreachable. Corrupt slices are skipped (and counted), not
/// fatal — an operator tool must render the healthy part of a sick
/// cluster.
TopView build_top_view(const net::RemoteStore& store, GraphModel model);

/// One-line JSON document (schema "armus.top.v1", normative in
/// docs/OBSERVABILITY.md) — the `--once --json` output CI scripts parse:
///   {"schema":"armus.top.v1","store":{generation,version,connections,
///    requests,errors},"sites":[{site,version,blocked,age_ms,
///    payload_bytes}...],"blocked_total":N,"corrupt_slices":N,
///    "deadlocks":[{model,tasks,resources}...]}
std::string render_top_json(const TopView& view);

/// The refreshing human view: store header, per-site table, deadlock
/// summary lines.
std::string render_top_table(const TopView& view, const std::string& url);

/// The merged wait-for graph in GraphViz DOT. Always the WFG, whatever
/// model the analysis used: an operator asking for the graph wants to see
/// *tasks* waiting on tasks — cross-process cycles included — and the SG
/// the checker may have preferred for speed shows phasers instead.
std::string render_top_dot(const TopView& view);

/// Parses an `--events` filter — a comma-separated subset of
/// "lifecycle", "slices", "health" (or "all") — into the WATCH_EVENTS
/// category bitmask. Throws std::invalid_argument on an unknown name.
std::uint64_t parse_event_filter(const std::string& spec);

/// Formats one armus.kv.event.v1 line for the scrolling `--follow` log:
/// `<ts_s> <event> key=value …` with the schema fields (v, ts_ns) folded
/// into the prefix. A line that is not a flat JSON object passes through
/// verbatim — an operator tool must show what it got, not hide it.
std::string render_event_line(const std::string& json_line);

}  // namespace armus::obs
