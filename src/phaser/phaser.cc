#include "phaser/phaser.h"

namespace armus::ph {

std::shared_ptr<Phaser> Phaser::create(Verifier* verifier) {
  return std::shared_ptr<Phaser>(new Phaser(verifier));
}

Phaser::Phaser(Verifier* verifier)
    : uid_(fresh_phaser_uid()), verifier_(verifier) {}

Phaser::~Phaser() {
  // Members that never deregistered must not leave dangling registry entries.
  if (verifier_ == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [task, member] : members_) {
    if (signal_capable(member.mode)) {
      if (Verifier* v = effective_verifier(task)) {
        v->registry().remove_entry(task, uid_);
      }
    }
  }
}

void Phaser::sig_phase_add(Phase phase) { ++sig_phases_[phase]; }

void Phaser::sig_phase_remove(Phase phase) {
  auto it = sig_phases_.find(phase);
  if (it == sig_phases_.end()) throw PhaserError("phase multiset corrupted");
  if (--it->second == 0) sig_phases_.erase(it);
}

void Phaser::register_task(TaskId task, Phase phase, RegMode mode) {
  bool advanced = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (members_.count(task) != 0) {
      throw PhaserError("task t" + std::to_string(task) +
                        " is already registered with phaser p" +
                        std::to_string(uid_));
    }
    // [reg] precondition: some existing member must have a phase <= the new
    // one, otherwise the registration would rewind the observed clock.
    if (!members_.empty() && signal_capable(mode) && phase < observed_locked() &&
        !sig_phases_.empty()) {
      throw PhaserError("registration at phase " + std::to_string(phase) +
                        " would rewind phaser p" + std::to_string(uid_) +
                        " (observed phase " + std::to_string(observed_locked()) +
                        ")");
    }
    members_.emplace(task, Member{phase, mode});
    if (signal_capable(mode)) {
      Phase before = observed_locked();
      sig_phase_add(phase);
      advanced = observed_locked() > before;  // only when sig_phases_ was empty
      if (Verifier* v = effective_verifier(task)) {
        v->registry().set_entry(task, uid_, phase);
      }
    }
  }
  if (advanced) cv_.notify_all();
}

void Phaser::register_task_at_observed(TaskId task, RegMode mode) {
  Phase phase = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Phase observed = observed_locked();
    if (observed != kPhaseInfinity) phase = observed;
  }
  register_task(task, phase, mode);
}

void Phaser::deregister(TaskId task) {
  bool may_release = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = members_.find(task);
    if (it == members_.end()) {
      throw PhaserError("task t" + std::to_string(task) +
                        " is not registered with phaser p" + std::to_string(uid_));
    }
    if (signal_capable(it->second.mode)) {
      Phase before = observed_locked();
      sig_phase_remove(it->second.phase);
      may_release = observed_locked() > before;
      if (Verifier* v = effective_verifier(task)) {
        v->registry().remove_entry(task, uid_);
      }
    }
    members_.erase(it);
  }
  if (may_release) cv_.notify_all();
}

bool Phaser::is_registered(TaskId task) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return members_.count(task) != 0;
}

Phase Phaser::arrive(TaskId task) {
  Phase new_phase = 0;
  bool advanced = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = members_.find(task);
    if (it == members_.end()) {
      throw PhaserError("arrive: task t" + std::to_string(task) +
                        " is not registered with phaser p" + std::to_string(uid_));
    }
    Member& member = it->second;
    new_phase = member.phase + 1;
    if (signal_capable(member.mode)) {
      Phase before = observed_locked();
      sig_phase_remove(member.phase);
      sig_phase_add(new_phase);
      advanced = observed_locked() > before;
      if (Verifier* v = effective_verifier(task)) {
        v->registry().set_entry(task, uid_, new_phase);
      }
    }
    member.phase = new_phase;
  }
  if (advanced) cv_.notify_all();
  return new_phase;
}

BlockedStatus Phaser::blocked_status(TaskId task, Phase n) const {
  BlockedStatus status;
  status.task = task;
  status.waits.push_back(Resource{uid_, n});
  // `registered` is resolved by the verifier from its task registry at
  // analysis time (Verifier::current_snapshot), so it stays fresh even if a
  // parent registers this task on further phasers while it sleeps.
  return status;
}

bool Phaser::await_impl(TaskId task, Phase n,
                        const std::chrono::milliseconds* timeout) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (observed_locked() >= n) return true;
  }

  Verifier* verifier = effective_verifier(task);
  const bool verified = verifier != nullptr && verifier->mode() != VerifyMode::kOff;
  const bool avoidance = verified && verifier->mode() == VerifyMode::kAvoidance;
  BlockedStatus status;
  if (verified) {
    status = blocked_status(task, n);
    // May throw DeadlockAvoidedError (avoidance mode); in that case the
    // status has already been withdrawn and we never block.
    verifier->before_block(status);
  }

  bool satisfied = true;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    auto ready = [&] { return observed_locked() >= n; };
    if (avoidance) {
      // A cycle may close *after* this task went to sleep (it is then not
      // the cycle's last blocker). Poll the doom check so every stuck task
      // raises, as §2.1 describes. recheck_blocked throws once doomed.
      const auto recheck = verifier->config().avoidance_recheck;
      const auto deadline = timeout == nullptr
                                ? std::chrono::steady_clock::time_point::max()
                                : std::chrono::steady_clock::now() + *timeout;
      while (!ready()) {
        auto next_wake = std::chrono::steady_clock::now() + recheck;
        if (next_wake > deadline) next_wake = deadline;
        cv_.wait_until(lock, next_wake, ready);
        if (ready()) break;
        if (std::chrono::steady_clock::now() >= deadline) {
          satisfied = false;
          break;
        }
        lock.unlock();
        verifier->recheck_blocked(status);  // may throw, status withdrawn
        lock.lock();
      }
    } else if (timeout == nullptr) {
      cv_.wait(lock, ready);
    } else {
      satisfied = cv_.wait_for(lock, *timeout, ready);
    }
  }
  if (verified) verifier->after_unblock(task);
  return satisfied;
}

void Phaser::await(TaskId task, Phase n) { await_impl(task, n, nullptr); }

bool Phaser::try_await(Phase n) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return observed_locked() >= n;
}

bool Phaser::await_for(TaskId task, Phase n, std::chrono::milliseconds timeout) {
  return await_impl(task, n, &timeout);
}

Phase Phaser::advance(TaskId task) {
  Phase target = arrive(task);
  await(task, target);
  return target;
}

Phase Phaser::arrive_and_deregister(TaskId task) {
  Phase arrived = arrive(task);
  deregister(task);
  return arrived;
}

Phase Phaser::local_phase(TaskId task) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = members_.find(task);
  if (it == members_.end()) {
    throw PhaserError("local_phase: task t" + std::to_string(task) +
                      " is not registered with phaser p" + std::to_string(uid_));
  }
  return it->second.phase;
}

RegMode Phaser::mode_of(TaskId task) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = members_.find(task);
  if (it == members_.end()) {
    throw PhaserError("mode_of: task t" + std::to_string(task) +
                      " is not registered with phaser p" + std::to_string(uid_));
  }
  return it->second.mode;
}

Phase Phaser::observed_phase() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return observed_locked();
}

std::size_t Phaser::member_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return members_.size();
}

}  // namespace armus::ph
