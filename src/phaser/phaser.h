#pragma once

#include <chrono>
#include <condition_variable>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include "core/verifier.h"

/// The phaser primitive — the paper's unifying barrier abstraction (§2.2),
/// implemented directly from the operational semantics of Figure 4 on top of
/// std::mutex / std::condition_variable (our stand-in for the X10/HJ/Java
/// runtimes, built atop std::thread).
///
/// A phaser P maps member tasks to local phases. The observable phase is
/// the minimum local phase over signal-capable members (an empty phaser
/// observes every phase, matching PL's vacuous `await`). The operations are
/// the paper's [reg], [dereg], [adv] and the blocking [sync]:
///
///   * `register_task(t, phase, mode)`  — [reg]; requires phase >= current
///     minimum so the logical clock never rewinds.
///   * `deregister(t)`                  — [dereg].
///   * `arrive(t)`                      — [adv]; non-blocking, returns the
///     new local phase (the split-phase "signal" half).
///   * `await(t, n)`                    — [sync]; blocks until the phase n
///     event is observed. This is where Armus hooks in: the blocked status
///     is published before sleeping and withdrawn after waking, and in
///     avoidance mode the call throws DeadlockAvoidedError instead of
///     entering a deadlock.
///   * `advance(t)`                     — arrive + await: the classic
///     barrier step (X10 `Clock.advance`, Java `arriveAndAwaitAdvance`).
///
/// Supported synchronisation patterns (§1): group synchronisation (any
/// member set), split-phase / fuzzy barriers (arrive now, await later),
/// awaiting arbitrary future phases (producer-consumer), and dynamic
/// membership (register/deregister at any time).
namespace armus::ph {

/// Registration mode, after HJ phaser capabilities.
enum class RegMode {
  kSigWait,  ///< Full barrier member: impedes others, may wait.
  kSig,      ///< Producer: impedes others, never waits on this phaser.
  kWait,     ///< Consumer: never impedes others, may wait.
};

/// Observed phase of a phaser with no signal-capable members: every await
/// is satisfied (PL's `await(P, n)` over an empty domain holds vacuously).
inline constexpr Phase kPhaseInfinity = std::numeric_limits<Phase>::max();

/// Raised on misuse of the phaser API (double registration, arriving while
/// not registered, rewinding the clock, ...).
class PhaserError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

class Phaser : public std::enable_shared_from_this<Phaser> {
 public:
  /// Creates a phaser with no members. `verifier` may be nullptr (unchecked).
  static std::shared_ptr<Phaser> create(Verifier* verifier = default_verifier());

  ~Phaser();
  Phaser(const Phaser&) = delete;
  Phaser& operator=(const Phaser&) = delete;

  [[nodiscard]] PhaserUid uid() const { return uid_; }
  [[nodiscard]] Verifier* verifier() const { return verifier_; }

  /// The verifier used for `task`'s bookkeeping: the task's own binding
  /// (multi-site runs, see VerifierRegistry / dist::Cluster::bind_task)
  /// when present, else the phaser's. An unchecked phaser (nullptr) stays
  /// unchecked — benchmark baselines must not become verified through task
  /// bindings.
  [[nodiscard]] Verifier* effective_verifier(TaskId task) const {
    if (verifier_ == nullptr) return nullptr;
    Verifier* bound = task_verifier(task);
    return bound != nullptr ? bound : verifier_;
  }

  // --- Membership ([reg] / [dereg]) ---------------------------------------

  /// Registers `task` at `phase`. Per [reg], requires that some member has a
  /// local phase <= `phase` (always true for the first member): the observed
  /// clock can never move backwards. Throws PhaserError on double
  /// registration or a rewinding phase.
  void register_task(TaskId task, Phase phase, RegMode mode = RegMode::kSigWait);

  /// Registers `task` at the current observed phase (or 0 when empty) — the
  /// Java-style self-registration where no inheriting registrar exists.
  void register_task_at_observed(TaskId task, RegMode mode = RegMode::kSigWait);

  /// Deregisters `task`; may release waiters ([dereg] can advance the
  /// observed phase). Throws PhaserError if not a member.
  void deregister(TaskId task);

  /// True iff `task` is currently a member.
  [[nodiscard]] bool is_registered(TaskId task) const;

  // --- Synchronisation ([adv] / [sync]) ------------------------------------

  /// [adv]: increments `task`'s local phase; never blocks. Returns the new
  /// local phase — the event to `await` for completing the barrier step
  /// (split-phase synchronisation).
  Phase arrive(TaskId task);

  /// [sync]: blocks `task` until the phase-`n` event is observed (i.e. every
  /// signal-capable member reached local phase >= n). `task` need not be a
  /// member (Java `awaitAdvance` semantics). In avoidance mode throws
  /// DeadlockAvoidedError instead of blocking into a deadlock.
  void await(TaskId task, Phase n);

  /// Non-blocking probe: true iff the phase-`n` event has been observed.
  [[nodiscard]] bool try_await(Phase n) const;

  /// Bounded await, for tests and timeout-based recovery. Returns false on
  /// timeout. Runs the same verification hooks as `await`.
  bool await_for(TaskId task, Phase n, std::chrono::milliseconds timeout);

  /// arrive + await(new phase): one full barrier step. Returns the phase
  /// that was observed.
  Phase advance(TaskId task);

  /// arrive + deregister, releasing this task's hold on future events (the
  /// Java `arriveAndDeregister`). Never blocks. Returns the arrival phase.
  Phase arrive_and_deregister(TaskId task);

  // --- Introspection -------------------------------------------------------

  /// The task's local phase. Throws PhaserError if not a member.
  [[nodiscard]] Phase local_phase(TaskId task) const;

  /// The registration mode of `task`. Throws PhaserError if not a member.
  [[nodiscard]] RegMode mode_of(TaskId task) const;

  /// Minimum local phase over signal-capable members (kPhaseInfinity when
  /// there are none).
  [[nodiscard]] Phase observed_phase() const;

  [[nodiscard]] std::size_t member_count() const;

 private:
  explicit Phaser(Verifier* verifier);

  struct Member {
    Phase phase = 0;
    RegMode mode = RegMode::kSigWait;
  };

  [[nodiscard]] bool signal_capable(RegMode mode) const {
    return mode != RegMode::kWait;
  }

  /// Observed phase; caller holds mutex_.
  [[nodiscard]] Phase observed_locked() const {
    return sig_phases_.empty() ? kPhaseInfinity : sig_phases_.begin()->first;
  }

  void sig_phase_add(Phase phase);
  void sig_phase_remove(Phase phase);

  /// Builds the blocked status for `task` awaiting event (uid_, n).
  [[nodiscard]] BlockedStatus blocked_status(TaskId task, Phase n) const;

  /// Common blocking path for await / await_for.
  bool await_impl(TaskId task, Phase n,
                  const std::chrono::milliseconds* timeout);

  const PhaserUid uid_;
  Verifier* const verifier_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::unordered_map<TaskId, Member> members_;
  /// Multiset of signal-capable phases: phase -> member count. Ordered so
  /// the minimum (observed phase) is O(1) at the first element.
  std::map<Phase, std::size_t> sig_phases_;
};

}  // namespace armus::ph
