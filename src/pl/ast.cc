#include "pl/ast.h"

#include <sstream>

namespace armus::pl {

namespace {

void print_seq(std::ostream& out, const Seq& seq, int indent);

void print_instr(std::ostream& out, const Instr& instr, int indent) {
  std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  switch (instr.op) {
    case Op::kNewTid:
      out << pad << instr.var << " = newTid();\n";
      break;
    case Op::kFork:
      out << pad << "fork(" << instr.var << ")\n";
      print_seq(out, *instr.body, indent + 1);
      out << pad << "end;\n";
      break;
    case Op::kNewPhaser:
      out << pad << instr.var << " = newPhaser();\n";
      break;
    case Op::kReg:
      out << pad << "reg(" << instr.var2 << ", " << instr.var << ");\n";
      break;
    case Op::kDereg:
      out << pad << "dereg(" << instr.var << ");\n";
      break;
    case Op::kAdv:
      out << pad << "adv(" << instr.var << ");\n";
      break;
    case Op::kAwait:
      out << pad << "await(" << instr.var << ");\n";
      break;
    case Op::kLoop:
      out << pad << "loop\n";
      print_seq(out, *instr.body, indent + 1);
      out << pad << "end;\n";
      break;
    case Op::kSkip:
      out << pad << "skip;\n";
      break;
  }
}

void print_seq(std::ostream& out, const Seq& seq, int indent) {
  for (const Instr& instr : seq) print_instr(out, instr, indent);
}

}  // namespace

std::string to_string(const Instr& instr) {
  std::ostringstream out;
  print_instr(out, instr, 0);
  std::string s = out.str();
  // Single-line form: strip the trailing newline.
  while (!s.empty() && s.back() == '\n') s.pop_back();
  return s;
}

std::string to_string(const Seq& seq, int indent) {
  std::ostringstream out;
  print_seq(out, seq, indent);
  return out.str();
}

}  // namespace armus::pl
