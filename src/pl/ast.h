#pragma once

#include <memory>
#include <string>
#include <vector>

/// Abstract syntax of PL, the core phaser language of §3:
///
///   s ::= c; s | end
///   c ::= t = newTid() | fork(t) s | p = newPhaser() | reg(t, p)
///       | dereg(p) | adv(p) | await(p) | loop s | skip
///
/// Programs reference tasks and phasers through variables; the interpreter
/// binds variables to runtime names in per-task environments (operationally
/// equivalent to the paper's substitution s[q/p]).
namespace armus::pl {

enum class Op {
  kNewTid,     ///< var = newTid()
  kFork,       ///< fork(var) body
  kNewPhaser,  ///< var = newPhaser()
  kReg,        ///< reg(var /*task*/, var2 /*phaser*/)
  kDereg,      ///< dereg(var)
  kAdv,        ///< adv(var)
  kAwait,      ///< await(var)
  kLoop,       ///< loop body
  kSkip,       ///< skip
};

struct Instr;
using Seq = std::vector<Instr>;

struct Instr {
  Op op = Op::kSkip;
  std::string var;   ///< task var (newTid/fork/reg) or phaser var (others)
  std::string var2;  ///< phaser var for reg
  std::shared_ptr<const Seq> body;  ///< fork / loop body

  friend bool operator==(const Instr& a, const Instr& b) {
    if (a.op != b.op || a.var != b.var || a.var2 != b.var2) return false;
    if ((a.body == nullptr) != (b.body == nullptr)) return false;
    return a.body == nullptr || *a.body == *b.body;
  }
};

// --- Builders: pl::seq({pl::new_tid("t"), pl::fork("t", {...}), ...}) ----

inline Instr new_tid(std::string var) {
  return Instr{Op::kNewTid, std::move(var), {}, nullptr};
}
inline Instr fork(std::string var, Seq body) {
  return Instr{Op::kFork, std::move(var), {},
               std::make_shared<const Seq>(std::move(body))};
}
inline Instr new_phaser(std::string var) {
  return Instr{Op::kNewPhaser, std::move(var), {}, nullptr};
}
inline Instr reg(std::string task_var, std::string phaser_var) {
  return Instr{Op::kReg, std::move(task_var), std::move(phaser_var), nullptr};
}
inline Instr dereg(std::string var) {
  return Instr{Op::kDereg, std::move(var), {}, nullptr};
}
inline Instr adv(std::string var) {
  return Instr{Op::kAdv, std::move(var), {}, nullptr};
}
inline Instr await(std::string var) {
  return Instr{Op::kAwait, std::move(var), {}, nullptr};
}
inline Instr loop(Seq body) {
  return Instr{Op::kLoop, {}, {}, std::make_shared<const Seq>(std::move(body))};
}
inline Instr skip() { return Instr{Op::kSkip, {}, {}, nullptr}; }

/// The common `adv(p); await(p)` barrier step.
inline Seq barrier_step(const std::string& var) { return {adv(var), await(var)}; }

/// Pretty-prints one instruction (single line).
std::string to_string(const Instr& instr);

/// Pretty-prints a sequence with indentation.
std::string to_string(const Seq& seq, int indent = 0);

}  // namespace armus::pl
