#include "pl/deadlock.h"

#include <algorithm>
#include <set>

namespace armus::pl {

namespace {

/// The awaited (phaser, phase) of a blocked task.
struct Wait {
  TaskName task;
  PhaserName phaser;
  PhaseNum phase;
};

std::vector<Wait> blocked_waits(const State& state) {
  std::vector<Wait> waits;
  for (const auto& [name, task] : state.tasks) {
    if (task_status(state, name) != TaskStatus::kBlocked) continue;
    const Instr& instr = task.remaining.front();
    PhaserName phaser = task.env.at(instr.var);
    PhaseNum phase = state.phasers.at(phaser).at(name);
    waits.push_back({name, phaser, phase});
  }
  return waits;
}

}  // namespace

bool is_totally_deadlocked(const State& state) {
  if (state.tasks.empty()) return false;
  std::set<TaskName> names;
  for (const auto& [name, task] : state.tasks) names.insert(name);
  for (const auto& [name, task] : state.tasks) {
    if (task_status(state, name) != TaskStatus::kBlocked) return false;
    const Instr& instr = task.remaining.front();
    PhaserName phaser = task.env.at(instr.var);
    PhaseNum n = state.phasers.at(phaser).at(name);
    // ∃ t' ∈ dom(T): M(p)(t') < n.
    bool impeded = false;
    for (const auto& [member, phase] : state.phasers.at(phaser)) {
      if (phase < n && names.count(member) != 0) {
        impeded = true;
        break;
      }
    }
    if (!impeded) return false;
  }
  return true;
}

std::vector<TaskName> deadlocked_tasks(const State& state) {
  std::vector<Wait> waits = blocked_waits(state);
  std::set<TaskName> candidate;
  for (const Wait& w : waits) candidate.insert(w.task);

  // Greatest fixpoint: discard tasks whose awaited event is not impeded by
  // any remaining candidate. What survives is the largest T' for which
  // (M, T') is totally deadlocked.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Wait& w : waits) {
      if (candidate.count(w.task) == 0) continue;
      bool impeded = false;
      for (const auto& [member, phase] : state.phasers.at(w.phaser)) {
        if (phase < w.phase && candidate.count(member) != 0) {
          impeded = true;
          break;
        }
      }
      if (!impeded) {
        candidate.erase(w.task);
        changed = true;
      }
    }
  }
  return {candidate.begin(), candidate.end()};
}

bool is_deadlocked(const State& state) { return !deadlocked_tasks(state).empty(); }

std::vector<BlockedStatus> phi(const State& state) {
  std::vector<BlockedStatus> statuses;
  for (const auto& [name, task] : state.tasks) {
    if (task_status(state, name) != TaskStatus::kBlocked) continue;
    const Instr& instr = task.remaining.front();
    PhaserName phaser = task.env.at(instr.var);
    PhaseNum n = state.phasers.at(phaser).at(name);

    BlockedStatus status;
    status.task = name;
    status.waits.push_back(Resource{phaser, n});
    for (const auto& [pname, members] : state.phasers) {
      auto it = members.find(name);
      if (it != members.end()) {
        status.registered.push_back(RegEntry{pname, it->second});
      }
    }
    statuses.push_back(std::move(status));
  }
  return statuses;
}

}  // namespace armus::pl
