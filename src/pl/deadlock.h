#pragma once

#include <vector>

#include "core/blocked_status.h"
#include "pl/semantics.h"

/// Ground-truth deadlock characterisation (Definitions 3.1 / 3.2) and the
/// resource-dependency abstraction ϕ (Definition 4.1).
///
/// `is_deadlocked` is computed directly from the definitions — by a fixpoint
/// over blocked tasks, with *no* graph machinery — so the property tests can
/// check the paper's soundness/completeness theorems by comparing this
/// verdict against the core library's cycle detection on ϕ(S).
namespace armus::pl {

/// Definition 3.1: T is nonempty; every task's head is await(p) with
/// M(p)(t) = n and some task *of this state* has M(p)(t') < n.
[[nodiscard]] bool is_totally_deadlocked(const State& state);

/// Definition 3.2: some nonempty sub-map T' of the tasks forms a totally
/// deadlocked state (M, T'). Computed as the greatest fixpoint: start from
/// all blocked tasks and repeatedly discard any task whose awaited phase is
/// not impeded by a *remaining* task; deadlocked iff the fixpoint is
/// nonempty.
[[nodiscard]] bool is_deadlocked(const State& state);

/// The task names of the greatest deadlocked sub-map (empty when the state
/// is not deadlocked).
[[nodiscard]] std::vector<TaskName> deadlocked_tasks(const State& state);

/// Definition 4.1, in the core library's publication format: one
/// BlockedStatus per blocked task, with W(t) = {res(p, n)} and the task's
/// registrations (every phaser q with t ∈ dom(M(q)), at phase M(q)(t)).
/// PL task/phaser names are used verbatim as TaskId/PhaserUid.
[[nodiscard]] std::vector<BlockedStatus> phi(const State& state);

}  // namespace armus::pl
