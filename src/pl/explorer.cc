#include "pl/explorer.h"

#include <deque>
#include <unordered_set>

#include "pl/deadlock.h"

namespace armus::pl {

ExploreResult explore(const Seq& program, const ExploreConfig& config,
                      const std::function<void(const State&)>& on_state) {
  ExploreResult result;
  std::unordered_set<std::string> seen;
  std::deque<std::pair<State, std::size_t>> queue;

  State initial = initial_state(program);
  seen.insert(initial.key());
  queue.emplace_back(std::move(initial), 0);

  while (!queue.empty()) {
    auto [state, depth] = std::move(queue.front());
    queue.pop_front();
    ++result.states_visited;

    if (on_state) on_state(state);

    if (is_deadlocked(state)) {
      ++result.deadlocked_states;
      if (result.deadlock_examples.size() < ExploreResult::kMaxExamples) {
        result.deadlock_examples.push_back(state);
      }
    }

    std::vector<Step> steps = enabled_steps(state);
    if (steps.empty()) {
      ++result.terminal_states;
      continue;
    }
    if (depth >= config.max_depth) {
      result.truncated = true;
      continue;
    }
    for (const Step& step : steps) {
      State next = apply_step(state, step);
      ++result.transitions;
      if (result.states_visited + queue.size() >= config.max_states) {
        result.truncated = true;
        break;
      }
      if (seen.insert(next.key()).second) {
        queue.emplace_back(std::move(next), depth + 1);
      }
    }
    if (result.truncated && result.states_visited + queue.size() >= config.max_states) {
      // Bound reached: finish processing what is queued but add no more.
      continue;
    }
  }
  return result;
}

}  // namespace armus::pl
