#pragma once

#include <functional>

#include "pl/semantics.h"

/// Bounded exhaustive exploration of a PL program's interleaving space.
///
/// Used by the property-test suites: every reachable state is handed to a
/// callback which cross-checks the ground-truth deadlock verdict
/// (Definitions 3.1/3.2) against the graph analysis on ϕ(S) — i.e. it
/// *executes* the paper's soundness, completeness and WFG/SG-equivalence
/// theorems over concrete state spaces.
namespace armus::pl {

struct ExploreConfig {
  /// Stop after visiting this many distinct states.
  std::size_t max_states = 50000;

  /// Stop expanding paths longer than this many steps.
  std::size_t max_depth = 128;
};

struct ExploreResult {
  std::size_t states_visited = 0;
  std::size_t transitions = 0;
  std::size_t deadlocked_states = 0;   ///< per Definition 3.2
  std::size_t terminal_states = 0;     ///< no enabled step
  bool truncated = false;              ///< a bound was hit

  /// Up to `kMaxExamples` deadlocked states, for diagnostics.
  static constexpr std::size_t kMaxExamples = 4;
  std::vector<State> deadlock_examples;
};

/// Breadth-first exploration from `initial_state(program)`. `on_state`, when
/// provided, is invoked once per distinct reachable state.
ExploreResult explore(const Seq& program, const ExploreConfig& config = {},
                      const std::function<void(const State&)>& on_state = nullptr);

}  // namespace armus::pl
