#include "pl/generator.h"

#include <set>

namespace armus::pl {

namespace {

/// Emits a random body for a task registered on `registered` (phaser vars).
/// Ops only reference phasers the task is still registered with, so the
/// program stays well-formed (no stuck configurations, only running,
/// blocked or terminated tasks).
Seq random_body(util::Xoshiro256& rng, const GenConfig& config,
                std::set<std::string> registered) {
  Seq body;
  int ops = static_cast<int>(rng.range(0, config.max_body_ops));
  for (int i = 0; i < ops && !registered.empty(); ++i) {
    // Pick a phaser uniformly from the still-registered set.
    auto it = registered.begin();
    std::advance(it, static_cast<long>(rng.below(registered.size())));
    const std::string phaser = *it;

    double roll = rng.uniform();
    if (roll < config.barrier_step_probability) {
      body.push_back(adv(phaser));
      body.push_back(await(phaser));
    } else if (roll < config.barrier_step_probability + 0.2) {
      body.push_back(adv(phaser));  // split-phase signal without wait
    } else if (roll < config.barrier_step_probability + 0.35) {
      // Await without a fresh advance: waits on the current phase, which is
      // already satisfied unless someone lags — a cheap source of
      // asymmetric waits.
      body.push_back(await(phaser));
    } else if (roll < config.barrier_step_probability + 0.5) {
      body.push_back(dereg(phaser));
      registered.erase(phaser);
    } else {
      body.push_back(skip());
    }
  }
  // Anything still registered is deliberately left registered: missing
  // deregistrations are the paper's canonical deadlock source (§2.1).
  return body;
}

}  // namespace

Seq random_program(util::Xoshiro256& rng, const GenConfig& config) {
  Seq program;

  int num_phasers =
      static_cast<int>(rng.range(config.min_phasers, config.max_phasers));
  std::vector<std::string> phasers;
  for (int p = 0; p < num_phasers; ++p) {
    std::string var = "p" + std::to_string(p);
    program.push_back(new_phaser(var));
    phasers.push_back(var);
  }

  int num_children =
      static_cast<int>(rng.range(config.min_children, config.max_children));
  for (int c = 0; c < num_children; ++c) {
    std::string tid = "t" + std::to_string(c);
    program.push_back(new_tid(tid));
    std::set<std::string> registered;
    for (const std::string& phaser : phasers) {
      if (rng.chance(config.register_probability)) {
        program.push_back(reg(tid, phaser));
        registered.insert(phaser);
      }
    }
    program.push_back(fork(tid, random_body(rng, config, registered)));
  }

  // Driver tail: the driver is registered with every phaser it created.
  std::set<std::string> driver_regs(phasers.begin(), phasers.end());
  Seq tail = random_body(rng, config, std::move(driver_regs));
  // Bound the tail length separately.
  if (static_cast<int>(tail.size()) > config.max_driver_ops) {
    tail.resize(static_cast<std::size_t>(config.max_driver_ops));
  }
  program.insert(program.end(), tail.begin(), tail.end());
  return program;
}

}  // namespace armus::pl
