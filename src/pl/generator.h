#pragma once

#include "pl/ast.h"
#include "util/rng.h"

/// Random well-formed PL programs for property testing.
///
/// The generator produces the shape that matters for barrier verification —
/// a driver that creates phasers, registers children on subsets of them and
/// forks them ([new-t]; [reg]; [fork] chains, as in Figure 3) — with bodies
/// that advance, await, deregister and skip in random orders. Mismatched
/// advances arise naturally, so a healthy fraction of generated programs
/// reach deadlocked states while the rest terminate; both classes exercise
/// the soundness/completeness properties.
namespace armus::pl {

struct GenConfig {
  int min_phasers = 1;
  int max_phasers = 2;
  int min_children = 1;
  int max_children = 3;
  int max_body_ops = 4;     ///< per child body
  int max_driver_ops = 3;   ///< driver tail after forking
  /// Probability a child is registered with each phaser.
  double register_probability = 0.8;
  /// Probability a body op is a full adv+await step (vs a lone adv, a lone
  /// await, a dereg or a skip).
  double barrier_step_probability = 0.45;
};

/// Generates one program from `rng` (deterministic per seed).
Seq random_program(util::Xoshiro256& rng, const GenConfig& config = {});

}  // namespace armus::pl
