#include "pl/parser.h"

#include <cctype>
#include <vector>

namespace armus::pl {

namespace {

enum class Tok {
  kIdent,    // identifiers and keywords
  kEquals,   // =
  kLParen,   // (
  kRParen,   // )
  kComma,    // ,
  kSemi,     // ;
  kEnd,      // end of input
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;
  std::size_t line = 1;
};

class Lexer {
 public:
  explicit Lexer(const std::string& source) : source_(source) { advance(); }

  [[nodiscard]] const Token& peek() const { return current_; }

  Token take() {
    Token token = current_;
    advance();
    return token;
  }

 private:
  void advance() {
    skip_trivia();
    current_.line = line_;
    if (pos_ >= source_.size()) {
      current_ = {Tok::kEnd, "", line_};
      return;
    }
    char c = source_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < source_.size() &&
             (std::isalnum(static_cast<unsigned char>(source_[pos_])) ||
              source_[pos_] == '_')) {
        ++pos_;
      }
      current_ = {Tok::kIdent, source_.substr(start, pos_ - start), line_};
      return;
    }
    ++pos_;
    switch (c) {
      case '=': current_ = {Tok::kEquals, "=", line_}; return;
      case '(': current_ = {Tok::kLParen, "(", line_}; return;
      case ')': current_ = {Tok::kRParen, ")", line_}; return;
      case ',': current_ = {Tok::kComma, ",", line_}; return;
      case ';': current_ = {Tok::kSemi, ";", line_}; return;
      default:
        throw ParseError(line_, std::string("unexpected character '") + c + "'");
    }
  }

  void skip_trivia() {
    for (;;) {
      while (pos_ < source_.size() &&
             std::isspace(static_cast<unsigned char>(source_[pos_]))) {
        if (source_[pos_] == '\n') ++line_;
        ++pos_;
      }
      if (pos_ + 1 < source_.size() && source_[pos_] == '/' &&
          source_[pos_ + 1] == '/') {
        while (pos_ < source_.size() && source_[pos_] != '\n') ++pos_;
        continue;
      }
      return;
    }
  }

  const std::string& source_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  Token current_;
};

class Parser {
 public:
  explicit Parser(const std::string& source) : lexer_(source) {}

  Seq parse() {
    Seq seq = parse_sequence();
    if (lexer_.peek().kind != Tok::kEnd) {
      throw ParseError(lexer_.peek().line,
                       "trailing input after program (unexpected '" +
                           lexer_.peek().text + "')");
    }
    return seq;
  }

 private:
  /// Parses instructions until `end`, `kEnd`, or another block closer.
  Seq parse_sequence() {
    Seq seq;
    while (lexer_.peek().kind == Tok::kIdent && lexer_.peek().text != "end") {
      seq.push_back(parse_instr());
    }
    return seq;
  }

  Token expect(Tok kind, const std::string& what) {
    if (lexer_.peek().kind != kind) {
      throw ParseError(lexer_.peek().line, "expected " + what + ", got '" +
                                               lexer_.peek().text + "'");
    }
    return lexer_.take();
  }

  Token expect_ident(const std::string& what) { return expect(Tok::kIdent, what); }

  void expect_semi() { expect(Tok::kSemi, "';'"); }

  Instr parse_instr() {
    Token head = expect_ident("an instruction");

    if (head.text == "skip") {
      expect_semi();
      return skip();
    }
    if (head.text == "loop") {
      Seq body = parse_sequence();
      Token closer = expect_ident("'end'");
      if (closer.text != "end") {
        throw ParseError(closer.line, "expected 'end' closing loop");
      }
      expect_semi();
      return loop(std::move(body));
    }
    if (head.text == "fork") {
      expect(Tok::kLParen, "'('");
      Token task = expect_ident("a task variable");
      expect(Tok::kRParen, "')'");
      Seq body = parse_sequence();
      Token closer = expect_ident("'end'");
      if (closer.text != "end") {
        throw ParseError(closer.line, "expected 'end' closing fork");
      }
      expect_semi();
      return fork(task.text, std::move(body));
    }
    if (head.text == "reg") {
      // Paper order: reg(p, t) — phaser first (cf. Figure 3).
      expect(Tok::kLParen, "'('");
      Token phaser = expect_ident("a phaser variable");
      expect(Tok::kComma, "','");
      Token task = expect_ident("a task variable");
      expect(Tok::kRParen, "')'");
      expect_semi();
      return reg(task.text, phaser.text);
    }
    if (head.text == "dereg" || head.text == "adv" || head.text == "await") {
      expect(Tok::kLParen, "'('");
      Token phaser = expect_ident("a phaser variable");
      expect(Tok::kRParen, "')'");
      expect_semi();
      if (head.text == "dereg") return dereg(phaser.text);
      if (head.text == "adv") return adv(phaser.text);
      return await(phaser.text);
    }

    // Assignment forms: var = newTid(); var = newPhaser();
    Token eq = lexer_.take();
    if (eq.kind != Tok::kEquals) {
      throw ParseError(head.line, "unknown instruction '" + head.text + "'");
    }
    Token callee = expect_ident("newTid or newPhaser");
    expect(Tok::kLParen, "'('");
    expect(Tok::kRParen, "')'");
    expect_semi();
    if (callee.text == "newTid") return new_tid(head.text);
    if (callee.text == "newPhaser") return new_phaser(head.text);
    throw ParseError(callee.line,
                     "expected newTid or newPhaser, got '" + callee.text + "'");
  }

  Lexer lexer_;
};

}  // namespace

Seq parse_program(const std::string& source) { return Parser(source).parse(); }

}  // namespace armus::pl
