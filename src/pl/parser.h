#pragma once

#include <stdexcept>
#include <string>

#include "pl/ast.h"

/// A concrete syntax for PL programs, matching the paper's Figure 3 layout:
///
///   pc = newPhaser();
///   pb = newPhaser();
///   t = newTid();
///   reg(pc, t);                 // paper order: reg(phaser, task)
///   reg(pb, t);
///   fork(t)
///     loop
///       skip;
///       adv(pc); await(pc);
///     end;
///     dereg(pc);
///     dereg(pb);
///   end;
///   adv(pb); await(pb);
///
/// `//` starts a line comment. `parse_program` accepts exactly what
/// `to_string(Seq)` prints, so parse/print round-trips.
namespace armus::pl {

class ParseError : public std::runtime_error {
 public:
  ParseError(std::size_t line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}

  [[nodiscard]] std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// Parses a PL program. Throws ParseError with a line number on bad input.
Seq parse_program(const std::string& source);

}  // namespace armus::pl
