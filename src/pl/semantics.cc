#include "pl/semantics.h"

#include <stdexcept>

namespace armus::pl {

namespace {

/// Looks up `var` in the env; returns nullptr when unbound.
const std::uint32_t* lookup(const Env& env, const std::string& var) {
  auto it = env.find(var);
  return it == env.end() ? nullptr : &it->second;
}

/// Can the head instruction of `task` take a step (ignoring loops, which
/// are always enabled with two outcomes)?
bool head_enabled(const State& state, const TaskState& task) {
  const Instr& instr = task.remaining.front();
  switch (instr.op) {
    case Op::kSkip:
    case Op::kNewTid:
    case Op::kNewPhaser:
    case Op::kLoop:
      return true;
    case Op::kFork: {
      const std::uint32_t* target = lookup(task.env, instr.var);
      if (target == nullptr) return false;
      auto it = state.tasks.find(*target);
      // [fork]: the target must exist with body `end`.
      return it != state.tasks.end() && it->second.remaining.empty();
    }
    case Op::kReg: {
      const std::uint32_t* phaser = lookup(task.env, instr.var2);
      const std::uint32_t* target = lookup(task.env, instr.var);
      if (phaser == nullptr || target == nullptr) return false;
      auto it = state.phasers.find(*phaser);
      if (it == state.phasers.end()) return false;
      // [reg]: the current task reads its own phase; the target must not be
      // a member yet (the rule produces P ⊎ {t : n}).
      // Find the executing task's name: handled by caller passing state +
      // task; we need the name — resolved in task_status/apply via capture.
      return true;  // refined by callers that know the executing task name
    }
    case Op::kDereg:
    case Op::kAdv:
    case Op::kAwait: {
      const std::uint32_t* phaser = lookup(task.env, instr.var);
      if (phaser == nullptr) return false;
      return state.phasers.count(*phaser) != 0;
    }
  }
  return false;
}

}  // namespace

TaskStatus task_status(const State& state, TaskName name) {
  auto it = state.tasks.find(name);
  if (it == state.tasks.end()) {
    throw std::logic_error("task_status: unknown task t" + std::to_string(name));
  }
  const TaskState& task = it->second;
  if (task.remaining.empty()) return TaskStatus::kTerminated;

  const Instr& instr = task.remaining.front();
  switch (instr.op) {
    case Op::kSkip:
    case Op::kNewTid:
    case Op::kNewPhaser:
    case Op::kLoop:
      return TaskStatus::kRunnable;
    case Op::kFork:
      return head_enabled(state, task) ? TaskStatus::kRunnable : TaskStatus::kStuck;
    case Op::kReg: {
      const std::uint32_t* phaser = lookup(task.env, instr.var2);
      const std::uint32_t* target = lookup(task.env, instr.var);
      if (phaser == nullptr || target == nullptr) return TaskStatus::kStuck;
      auto pit = state.phasers.find(*phaser);
      if (pit == state.phasers.end()) return TaskStatus::kStuck;
      if (pit->second.count(name) == 0) return TaskStatus::kStuck;      // M(p)(t)=n
      if (pit->second.count(*target) != 0) return TaskStatus::kStuck;   // t' fresh
      return TaskStatus::kRunnable;
    }
    case Op::kDereg:
    case Op::kAdv: {
      const std::uint32_t* phaser = lookup(task.env, instr.var);
      if (phaser == nullptr) return TaskStatus::kStuck;
      auto pit = state.phasers.find(*phaser);
      if (pit == state.phasers.end() || pit->second.count(name) == 0) {
        return TaskStatus::kStuck;
      }
      return TaskStatus::kRunnable;
    }
    case Op::kAwait: {
      const std::uint32_t* phaser = lookup(task.env, instr.var);
      if (phaser == nullptr) return TaskStatus::kStuck;
      auto pit = state.phasers.find(*phaser);
      if (pit == state.phasers.end()) return TaskStatus::kStuck;
      auto member = pit->second.find(name);
      if (member == pit->second.end()) return TaskStatus::kStuck;  // M(p)(t) req.
      return phaser_await_holds(pit->second, member->second)
                 ? TaskStatus::kRunnable
                 : TaskStatus::kBlocked;
    }
  }
  return TaskStatus::kStuck;
}

std::vector<Step> enabled_steps(const State& state) {
  std::vector<Step> steps;
  for (const auto& [name, task] : state.tasks) {
    if (task_status(state, name) != TaskStatus::kRunnable) continue;
    if (!task.remaining.empty() && task.remaining.front().op == Op::kLoop) {
      steps.push_back({name, Step::Kind::kLoopIter});
      steps.push_back({name, Step::Kind::kLoopExit});
    } else {
      steps.push_back({name, Step::Kind::kPlain});
    }
  }
  return steps;
}

State apply_step(const State& state, const Step& step) {
  if (task_status(state, step.task) != TaskStatus::kRunnable) {
    throw std::logic_error("apply_step: task t" + std::to_string(step.task) +
                           " has no enabled step");
  }
  State next = state;
  TaskState& task = next.tasks.at(step.task);
  Instr instr = task.remaining.front();

  // Pops the head instruction ([c-flow] threading).
  auto pop_head = [&task] { task.remaining.erase(task.remaining.begin()); };

  switch (instr.op) {
    case Op::kSkip:  // [skip]
      pop_head();
      break;

    case Op::kNewTid: {  // [new-t]: fresh name bound to a task with body end
      TaskName fresh = next.next_task++;
      task.env[instr.var] = fresh;
      next.tasks.emplace(fresh, TaskState{{}, {}});
      pop_head();
      break;
    }

    case Op::kFork: {  // [fork]: install the body; child captures the env
      TaskName target = task.env.at(instr.var);
      TaskState& child = next.tasks.at(target);
      child.remaining = *instr.body;
      child.env = task.env;  // operational analogue of the substitution
      pop_head();
      break;
    }

    case Op::kNewPhaser: {  // [new-ph]: P = {t : 0}
      PhaserName fresh = next.next_phaser++;
      next.phasers[fresh] = PhaserState{{step.task, 0}};
      task.env[instr.var] = fresh;
      pop_head();
      break;
    }

    case Op::kReg: {  // [reg]: the target inherits the registrar's phase
      PhaserName phaser = task.env.at(instr.var2);
      TaskName target = task.env.at(instr.var);
      PhaserState& p = next.phasers.at(phaser);
      p[target] = p.at(step.task);
      pop_head();
      break;
    }

    case Op::kDereg: {  // [dereg]
      PhaserName phaser = task.env.at(instr.var);
      next.phasers.at(phaser).erase(step.task);
      pop_head();
      break;
    }

    case Op::kAdv: {  // [adv]
      PhaserName phaser = task.env.at(instr.var);
      ++next.phasers.at(phaser).at(step.task);
      pop_head();
      break;
    }

    case Op::kAwait:  // [sync]: enabledness already checked the predicate
      pop_head();
      break;

    case Op::kLoop: {
      if (step.kind == Step::Kind::kLoopExit) {  // [e-loop]
        pop_head();
      } else {  // [i-loop]: body ++ loop body ++ rest
        Seq unfolded = *instr.body;
        unfolded.reserve(unfolded.size() + task.remaining.size());
        unfolded.insert(unfolded.end(), task.remaining.begin(),
                        task.remaining.end());
        task.remaining = std::move(unfolded);
      }
      break;
    }
  }
  return next;
}

State run(State state, std::size_t max_steps,
          const std::function<std::size_t(const State&, const std::vector<Step>&)>&
              pick) {
  for (std::size_t i = 0; i < max_steps; ++i) {
    std::vector<Step> steps = enabled_steps(state);
    if (steps.empty()) return state;
    std::size_t choice = pick(state, steps);
    state = apply_step(state, steps[choice % steps.size()]);
  }
  return state;
}

}  // namespace armus::pl
