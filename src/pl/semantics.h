#pragma once

#include <functional>
#include <string>
#include <vector>

#include "pl/state.h"

/// Small-step operational semantics of PL — a direct transcription of the
/// Figure 4 rules. The explorer enumerates `enabled_steps` to build the
/// interleaving space; `apply_step` is a pure function producing the
/// successor state.
namespace armus::pl {

/// One enabled transition. Loops contribute two (the nondeterministic
/// [i-loop] unfold and [e-loop] exit); every other rule contributes one.
struct Step {
  TaskName task = 0;
  enum class Kind { kPlain, kLoopIter, kLoopExit } kind = Kind::kPlain;

  friend bool operator==(const Step&, const Step&) = default;
};

/// Classification of a task in a state.
enum class TaskStatus {
  kTerminated,  ///< remaining sequence is `end`
  kRunnable,    ///< some rule applies
  kBlocked,     ///< head is await(p), task is a member, predicate unsatisfied
  kStuck,       ///< no rule applies and not blocked (ill-formed program)
};

[[nodiscard]] TaskStatus task_status(const State& state, TaskName task);

/// All enabled transitions of `state`, ordered deterministically (by task
/// name, loop-iterate before loop-exit).
[[nodiscard]] std::vector<Step> enabled_steps(const State& state);

/// Applies `step` (which must be enabled) and returns the successor.
/// Throws std::logic_error when the step is not enabled.
[[nodiscard]] State apply_step(const State& state, const Step& step);

/// Runs `state` under a deterministic scheduler driven by `pick`, which
/// receives the enabled steps and returns an index into them. Stops when no
/// step is enabled or after `max_steps`. Returns the final state.
State run(State state, std::size_t max_steps,
          const std::function<std::size_t(const State&, const std::vector<Step>&)>&
              pick);

}  // namespace armus::pl
