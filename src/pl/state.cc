#include "pl/state.h"

#include <sstream>

namespace armus::pl {

namespace {

/// Structural serialisation of a sequence into `out`. Variable names and
/// bodies are included verbatim; combined with the environment this
/// uniquely identifies the task's continuation.
void key_seq(std::ostringstream& out, const Seq& seq) {
  for (const Instr& instr : seq) {
    out << static_cast<int>(instr.op) << ':' << instr.var << ':' << instr.var2;
    if (instr.body) {
      out << '[';
      key_seq(out, *instr.body);
      out << ']';
    }
    out << ';';
  }
}

}  // namespace

bool phaser_await_holds(const PhaserState& phaser, PhaseNum n) {
  for (const auto& [task, phase] : phaser) {
    if (phase < n) return false;
  }
  return true;
}

std::string State::key() const {
  std::ostringstream out;
  out << "M{";
  for (const auto& [name, phaser] : phasers) {
    out << name << ":(";
    for (const auto& [task, phase] : phaser) out << task << '=' << phase << ',';
    out << ')';
  }
  out << "}T{";
  for (const auto& [name, task] : tasks) {
    out << name << ":(";
    key_seq(out, task.remaining);
    out << '|';
    for (const auto& [var, value] : task.env) out << var << '=' << value << ',';
    out << ')';
  }
  out << "}#" << next_task << '/' << next_phaser;
  return out.str();
}

std::string State::to_string() const {
  std::ostringstream out;
  out << "M = {\n";
  for (const auto& [name, phaser] : phasers) {
    out << "  p" << name << ": {";
    bool first = true;
    for (const auto& [task, phase] : phaser) {
      if (!first) out << ", ";
      first = false;
      out << 't' << task << ": " << phase;
    }
    out << "}\n";
  }
  out << "}\nT = {\n";
  for (const auto& [name, task] : tasks) {
    out << "  t" << name << ":\n"
        << armus::pl::to_string(task.remaining, 2);
  }
  out << "}\n";
  return out.str();
}

State initial_state(const Seq& program) {
  State state;
  TaskName root = 1;
  state.tasks.emplace(root, TaskState{program, {}});
  return state;
}

}  // namespace armus::pl
