#pragma once

#include <map>
#include <optional>
#include <string>

#include "pl/ast.h"

/// Run-time state of a PL program: S ::= (M, T) per §3.
///
/// * `M` — the phaser map: phaser name -> (task name -> local phase).
/// * `tasks` (T) — task name -> task state (remaining instructions + the
///   task's variable environment, our operational stand-in for the paper's
///   name substitution).
///
/// Everything uses ordered maps so states compare, hash and print
/// deterministically — the explorer memoises on the canonical key.
namespace armus::pl {

using TaskName = std::uint32_t;
using PhaserName = std::uint32_t;
using PhaseNum = std::uint64_t;

/// A phaser P: task -> local phase.
using PhaserState = std::map<TaskName, PhaseNum>;

/// The paper's await(P, n) predicate: every member's phase is >= n
/// (vacuously true for an empty phaser).
bool phaser_await_holds(const PhaserState& phaser, PhaseNum n);

/// A variable environment: program variables to runtime names. Task and
/// phaser variables share one namespace (programs keep them apart by
/// convention, as the paper's examples do).
using Env = std::map<std::string, std::uint32_t>;

struct TaskState {
  /// Remaining instructions; empty = `end` (terminated).
  Seq remaining;
  Env env;

  friend bool operator==(const TaskState&, const TaskState&) = default;
};

struct State {
  std::map<PhaserName, PhaserState> phasers;  // M
  std::map<TaskName, TaskState> tasks;        // T
  // Fresh-name counters ([new-t]/[new-ph] side conditions t'' ∉ fv(s)).
  // Names start at 1 (the root task is 1) so PL names can double as core
  // TaskId/PhaserUid values, whose 0 is the invalid sentinel.
  TaskName next_task = 2;
  PhaserName next_phaser = 1;

  friend bool operator==(const State&, const State&) = default;

  /// Canonical serialisation; equal states produce equal keys. Used by the
  /// explorer for memoisation.
  [[nodiscard]] std::string key() const;

  /// Human-readable dump for diagnostics.
  [[nodiscard]] std::string to_string() const;
};

/// The initial state: one root task (name 0) running `program`.
State initial_state(const Seq& program);

}  // namespace armus::pl
