#include "predict/causal.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace armus::predict {

namespace {

/// The last event that changed a task's local phase on one phaser — the
/// candidate cause of a wait on that phaser completing.
struct RegState {
  Phase phase = 0;
  std::uint32_t event = 0;
};

}  // namespace

CausalModel::CausalModel(const trace::MergedTrace& trace) {
  std::vector<trace::Record> records;
  records.reserve(trace.records().size());
  for (const trace::TimedRecord& timed : trace.records()) {
    records.push_back(timed.record);
  }
  build(std::move(records));
}

CausalModel::CausalModel(std::vector<trace::Record> records) {
  build(std::move(records));
}

void CausalModel::build(std::vector<trace::Record> records) {
  // Registration state per phaser, mirrored forward through the stream.
  // Both the explicit TASK_REGISTERED records and the self-reported
  // `registered` lists inside BLOCKED statuses feed it — a status publish
  // proves the task's local phase at that moment just as well.
  std::unordered_map<PhaserUid, std::unordered_map<TaskId, RegState>> regs;
  // Tasks gone from a phaser: their deregistration event stands in for
  // whatever phase advance preceded it (conservative — program order puts
  // the advance before the deregistration).
  std::unordered_map<PhaserUid, std::unordered_map<TaskId, std::uint32_t>>
      dereg;
  std::unordered_map<TaskId, std::unordered_set<PhaserUid>> task_phasers;
  std::unordered_map<TaskId, std::uint32_t> last_of_task;
  std::unordered_map<TaskId, std::size_t> open;  // task -> intervals_ index

  auto close_interval = [&](TaskId task, std::uint32_t at) {
    auto it = open.find(task);
    if (it == open.end()) return static_cast<std::size_t>(-1);
    std::size_t index = it->second;
    intervals_[index].end = at;
    open.erase(it);
    return index;
  };

  for (std::size_t ti = 0; ti < records.size(); ++ti) {
    trace::Record& record = records[ti];
    if (record.type == trace::RecordType::kScan ||
        record.type == trace::RecordType::kReport) {
      continue;  // no state, no event
    }
    TaskId task = record.type == trace::RecordType::kBlocked
                      ? record.status.task
                      : record.task;
    const auto ei = static_cast<std::uint32_t>(events_.size());
    Event event;
    event.trace_index = ti;
    event.task = task;
    if (auto it = last_of_task.find(task); it != last_of_task.end()) {
      event.preds.push_back(it->second);
    }
    last_of_task[task] = ei;

    switch (record.type) {
      case trace::RecordType::kTaskRegistered:
        regs[record.phaser][task] = RegState{record.phase, ei};
        dereg[record.phaser].erase(task);
        task_phasers[task].insert(record.phaser);
        break;

      case trace::RecordType::kTaskDeregistered:
        if (record.phaser == kAllPhasers) {
          for (PhaserUid phaser : task_phasers[task]) {
            regs[phaser].erase(task);
            dereg[phaser][task] = ei;
          }
          task_phasers.erase(task);
        } else {
          regs[record.phaser].erase(task);
          dereg[record.phaser][task] = ei;
          task_phasers[task].erase(record.phaser);
        }
        break;

      case trace::RecordType::kBlocked:
        close_interval(task, ei);  // a changed re-publish supersedes
        open[task] = intervals_.size();
        intervals_.push_back(BlockedInterval{task, ei, std::nullopt});
        for (const RegEntry& entry : record.status.registered) {
          regs[entry.phaser][task] = RegState{entry.local_phase, ei};
          dereg[entry.phaser].erase(task);
          task_phasers[task].insert(entry.phaser);
        }
        break;

      case trace::RecordType::kUnblocked: {
        std::size_t interval = close_interval(task, ei);
        if (interval == static_cast<std::size_t>(-1)) break;
        const BlockedStatus& status =
            events_[intervals_[interval].blocked].record.status;
        for (const Resource& wait : status.waits) {
          auto reg_it = regs.find(wait.phaser);
          if (reg_it != regs.end()) {
            for (const auto& [other, state] : reg_it->second) {
              if (other == task) continue;
              if (state.phase < wait.phase) {
                // Still an impeder when the wait completed: the release
                // has a cause outside the trace (avoidance interrupt,
                // cancellation) — pin it to its observed position.
                event.pinned = true;
              } else {
                event.preds.push_back(state.event);
                ++release_edges_;
              }
            }
          }
          if (auto de_it = dereg.find(wait.phaser); de_it != dereg.end()) {
            for (const auto& [other, at] : de_it->second) {
              if (other == task) continue;
              event.preds.push_back(at);
              ++release_edges_;
            }
          }
        }
        if (event.pinned) ++pinned_;
        break;
      }

      case trace::RecordType::kScan:
      case trace::RecordType::kReport:
        break;  // unreachable (filtered above)
    }

    std::sort(event.preds.begin(), event.preds.end());
    event.preds.erase(std::unique(event.preds.begin(), event.preds.end()),
                      event.preds.end());
    event.record = std::move(record);
    events_.push_back(std::move(event));
  }

  succs_.resize(events_.size());
  for (std::uint32_t e = 0; e < events_.size(); ++e) {
    for (std::uint32_t p : events_[e].preds) succs_[p].push_back(e);
  }
}

void CausalModel::add_downset(std::uint32_t event,
                              std::vector<bool>& cut) const {
  std::vector<std::uint32_t> stack{event};
  std::uint32_t prefix = 0;  // every event below this index joins the cut
  while (!stack.empty()) {
    std::uint32_t e = stack.back();
    stack.pop_back();
    if (cut[e]) continue;
    cut[e] = true;
    if (events_[e].pinned && e > prefix) prefix = e;
    for (std::uint32_t p : events_[e].preds) {
      if (!cut[p]) stack.push_back(p);
    }
  }
  // Pinned closure. The prefix is itself downward-closed (edges only point
  // from smaller to larger indices) and subsumes any pinned event inside it.
  for (std::uint32_t e = 0; e < prefix; ++e) cut[e] = true;
}

std::vector<bool> CausalModel::downset(std::uint32_t event) const {
  std::vector<bool> cut(events_.size(), false);
  add_downset(event, cut);
  return cut;
}

bool CausalModel::in_downset(std::uint32_t event, std::uint32_t of) const {
  if (event > of) return false;  // edges respect trace order
  return downset(of)[event];
}

std::pair<std::uint32_t, std::uint32_t> CausalModel::slack(
    std::uint32_t event) const {
  const auto n = static_cast<std::uint32_t>(events_.size());
  std::uint32_t lo = 0;
  std::uint32_t hi = n == 0 ? 0 : n - 1;
  if (events_[event].pinned) {
    lo = event;  // everything earlier precedes it
  } else {
    for (std::uint32_t p : events_[event].preds) lo = std::max(lo, p + 1);
  }
  for (std::uint32_t s : succs_[event]) hi = std::min(hi, s - 1);
  // A later pinned event has this one among its (implicit) predecessors.
  for (std::uint32_t e = event + 1; e < n; ++e) {
    if (events_[e].pinned) {
      hi = std::min(hi, e - 1);
      break;
    }
  }
  return {lo, std::max(lo, hi)};
}

}  // namespace armus::predict
