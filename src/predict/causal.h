#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "trace/replayer.h"

/// The causal model behind predictive offline verification (and the
/// fuzzer's slack-respecting reorder mutation): a partial order over the
/// state records of a recorded trace that every *feasible* alternate
/// schedule of the same run must respect. Two ingredients, in the spirit
/// of sound dynamic prediction (Tunç et al. 2023, PAPERS.md):
///
/// * **Program order** — the records of one task happen in the order the
///   task produced them; an alternate schedule may stop a task early
///   (run a prefix) but never permute or skip its events.
/// * **Release order** — an UNBLOCKED is *caused* by the events that
///   removed the waited events' impeders: for each resource (p, n) the
///   task waited on, every other task registered on p with local phase
///   < n had to advance to >= n or deregister before the wait could
///   complete. Those phase-advance / deregistration records are the
///   unblock's causal predecessors. A release that happened while
///   impeders were still live is *unexplained* (an avoidance interrupt,
///   a rescue, a cancellation — causes the trace cannot see); it is
///   conservatively pinned to its observed position (every earlier
///   record precedes it), so it can never be reordered earlier.
///
/// A *consistent cut* — a record subset downward-closed under this order
/// — is a reachable state of some causally-equivalent schedule: every
/// task has executed a prefix of its recorded events and every executed
/// unblock has its causes. trace order is a linear extension, so
/// replaying a cut's records in trace order reproduces that state.
/// predict::Predictor searches cuts in which blocked statuses form a
/// cycle the observed schedule never exhibited.
namespace armus::predict {

/// One state record of the trace, annotated with its causal context.
/// SCAN and REPORT records carry no state and are not events.
struct Event {
  trace::Record record;
  std::size_t trace_index = 0;  ///< position in the source record stream
  TaskId task = kInvalidTask;   ///< owning task

  /// Causal predecessors (event indices, always smaller than this
  /// event's). Program order contributes at most one; release
  /// dependencies the rest.
  std::vector<std::uint32_t> preds;

  /// Unexplained release: every earlier event is a predecessor (stored
  /// implicitly — downset() closes over the whole prefix).
  bool pinned = false;
};

/// One maximal stretch during which a task held a single blocked status:
/// opened by a BLOCKED record, closed by the record that replaced
/// (re-publish with a different status) or withdrew it (UNBLOCKED), or
/// still open at end of trace.
struct BlockedInterval {
  TaskId task = kInvalidTask;
  std::uint32_t blocked = 0;            ///< event index of the BLOCKED
  std::optional<std::uint32_t> end;     ///< closing event; nullopt = open
};

class CausalModel {
 public:
  /// Builds the model over `records` in stream order (the merged-trace
  /// timeline).
  explicit CausalModel(std::vector<trace::Record> records);
  explicit CausalModel(const trace::MergedTrace& trace);

  [[nodiscard]] const std::vector<Event>& events() const { return events_; }

  /// Blocked intervals in order of their BLOCKED event.
  [[nodiscard]] const std::vector<BlockedInterval>& intervals() const {
    return intervals_;
  }

  /// Marks the downward closure of `event` (itself included) in `cut`,
  /// a bitset of events().size() entries. Closes over pinned events: if
  /// the closure contains a pinned event, the entire prefix before it is
  /// included too.
  void add_downset(std::uint32_t event, std::vector<bool>& cut) const;

  /// Convenience single-event closure.
  [[nodiscard]] std::vector<bool> downset(std::uint32_t event) const;

  /// True iff `event` is in the downward closure of `of`.
  [[nodiscard]] bool in_downset(std::uint32_t event, std::uint32_t of) const;

  /// Movable range of `event` under the causal order, as *event* indices:
  /// the earliest and latest position it could occupy among the events
  /// with every predecessor still before it and every successor still
  /// after (the fuzzer's reorder slack). Pinned events are immovable.
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> slack(
      std::uint32_t event) const;

  [[nodiscard]] std::uint64_t release_edges() const { return release_edges_; }
  [[nodiscard]] std::uint64_t pinned_events() const { return pinned_; }

 private:
  void build(std::vector<trace::Record> records);

  std::vector<Event> events_;
  std::vector<BlockedInterval> intervals_;
  /// Successor adjacency mirrored from preds (for slack()).
  std::vector<std::vector<std::uint32_t>> succs_;
  std::uint64_t release_edges_ = 0;
  std::uint64_t pinned_ = 0;
};

}  // namespace armus::predict
