#include "predict/predictor.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "core/checker.h"
#include "core/dependency_state.h"
#include "core/task_registry.h"

namespace armus::predict {

namespace {

/// Downset cache: anchors re-test the same candidate intervals, so each
/// BLOCKED event's closure is computed once per run.
class DownsetCache {
 public:
  explicit DownsetCache(const CausalModel& model) : model_(model) {}

  const std::vector<bool>& of(std::uint32_t event) {
    auto [it, inserted] = cache_.try_emplace(event);
    if (inserted) it->second = model_.downset(event);
    return it->second;
  }

 private:
  const CausalModel& model_;
  std::unordered_map<std::uint32_t, std::vector<bool>> cache_;
};

/// A stable key for a chosen interval combination, so two anchors that
/// greedily arrive at the same cut replay it once.
std::string cut_signature(const std::vector<const BlockedInterval*>& chosen) {
  std::vector<std::uint32_t> blocked;
  blocked.reserve(chosen.size());
  for (const BlockedInterval* interval : chosen) {
    blocked.push_back(interval->blocked);
  }
  std::sort(blocked.begin(), blocked.end());
  std::string key;
  for (std::uint32_t b : blocked) {
    key += std::to_string(b);
    key += ',';
  }
  return key;
}

}  // namespace

std::size_t Predictor::Result::novel_count() const {
  std::size_t count = 0;
  for (const Prediction& prediction : predictions) {
    if (prediction.novel) ++count;
  }
  return count;
}

Predictor::Result Predictor::run(const trace::MergedTrace& trace) const {
  Result result;

  // Baseline: what the live run saw, and what a plain replay at the
  // recorded scan points re-finds. Everything beyond these is a
  // prediction.
  {
    trace::OfflineVerifier::Options vopts;
    vopts.model = options_.model;
    trace::OfflineVerifier verifier(vopts);
    trace::OfflineVerifier::Result baseline = verifier.run(trace);
    result.observed = std::move(baseline.recorded);
    result.replayed = std::move(baseline.replayed);
  }

  std::unordered_set<std::uint64_t> known;
  for (const DeadlockReport& report : result.observed) {
    known.insert(report.fingerprint());
  }
  for (const DeadlockReport& report : result.replayed) {
    known.insert(report.fingerprint());
  }

  CausalModel model(trace);
  const std::vector<Event>& events = model.events();
  DownsetCache downsets(model);

  // Intervals per task, in blocked order (std::map: anchors extend over
  // the other tasks in deterministic ascending order).
  std::map<TaskId, std::vector<const BlockedInterval*>> by_task;
  for (const BlockedInterval& interval : model.intervals()) {
    by_task[interval.task].push_back(&interval);
  }

  std::unordered_set<std::string> replayed_cuts;
  std::unordered_set<std::uint64_t> found;

  for (const BlockedInterval& anchor : model.intervals()) {
    if (options_.max_anchors > 0 &&
        result.anchors_tried >= options_.max_anchors) {
      result.anchors_capped = true;
      break;
    }
    ++result.anchors_tried;

    // The candidate cut: the anchor's causal past, then per other task
    // (greedily, latest interval first) the newest blocked status that
    // can still be live — i.e. whose closing record neither the current
    // cut nor the candidate's own past forces in, and whose past does
    // not force in the closing record of anything already chosen.
    std::vector<bool> cut(events.size(), false);
    model.add_downset(anchor.blocked, cut);
    std::vector<const BlockedInterval*> chosen{&anchor};

    for (const auto& [task, intervals] : by_task) {
      if (task == anchor.task) continue;
      for (auto it = intervals.rbegin(); it != intervals.rend(); ++it) {
        const BlockedInterval* candidate = *it;
        if (candidate->end && cut[*candidate->end]) continue;
        const std::vector<bool>& past = downsets.of(candidate->blocked);
        bool compatible = true;
        for (const BlockedInterval* held : chosen) {
          if (held->end && past[*held->end]) {
            compatible = false;
            break;
          }
        }
        if (!compatible) continue;
        for (std::size_t e = 0; e < past.size(); ++e) {
          if (past[e]) cut[e] = true;
        }
        chosen.push_back(candidate);
        break;
      }
    }

    if (!replayed_cuts.insert(cut_signature(chosen)).second) continue;

    // Replay the cut in trace order (a linear extension of the causal
    // order) through the ordinary replayer, then check it with the
    // ordinary checker — the same code path a live run trusts.
    DependencyState store;
    TaskRegistry registry;
    trace::Replayer replayer(&store, &registry);
    for (std::size_t e = 0; e < events.size(); ++e) {
      if (cut[e]) replayer.apply(events[e].record);
    }
    std::vector<BlockedStatus> snapshot =
        trace::merged_snapshot(store, registry);
    CheckResult check = check_deadlocks(snapshot, options_.model);
    ++result.cuts_checked;

    for (DeadlockReport& report : check.reports) {
      if (!found.insert(report.fingerprint()).second) continue;
      Prediction prediction;
      prediction.novel = !known.contains(report.fingerprint());
      prediction.report = std::move(report);
      prediction.witness.reserve(events.size() + 1);
      std::uint64_t at_ns = 0;
      for (std::size_t e = 0; e < events.size(); ++e) {
        if (!cut[e]) continue;
        trace::Record record = events[e].record;
        record.at_ns = (at_ns += 1000);
        prediction.witness.push_back(std::move(record));
      }
      trace::Record scan;
      scan.type = trace::RecordType::kScan;
      scan.at_ns = (at_ns += 1000);
      scan.scan = scan_info(snapshot.size(), check);
      prediction.witness.push_back(std::move(scan));
      result.predictions.push_back(std::move(prediction));
    }
  }

  return result;
}

void write_witness(const std::string& path, const Prediction& prediction) {
  trace::TraceHeader header;
  header.start_ns = 1;  // synthetic schedule: timestamps are ordinals
  header.meta.emplace_back("mode", "predict-witness");
  std::string tasks;
  for (TaskId task : prediction.report.tasks) {
    if (!tasks.empty()) tasks += ',';
    tasks += std::to_string(task);
  }
  header.meta.emplace_back("cycle-tasks", tasks);
  header.meta.emplace_back("model", to_string(prediction.report.model));
  trace::TraceWriter writer(path, std::move(header));
  for (const trace::Record& record : prediction.witness) {
    writer.append(record);
  }
  writer.flush();
}

}  // namespace armus::predict
