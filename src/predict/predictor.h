#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/report.h"
#include "predict/causal.h"
#include "trace/replayer.h"

/// Predictive offline verification: search the recorded run's *causally
/// equivalent* schedules (predict::CausalModel) for reachable states whose
/// blocked statuses form a cycle — deadlocks the program could have hit
/// under a different interleaving, even when the observed schedule (and
/// hence plain `armus-trace verify`) reports none.
///
/// The search is anchored and greedy: every BLOCKED record in the trace
/// anchors one candidate cut — the anchor's causal past, extended per
/// other task with the latest blocked interval that can still be open in
/// a consistent cut (its closing record is not forced in by anything
/// already chosen). Each candidate cut is *replayed through the ordinary
/// trace::Replayer* and checked with the ordinary checker, so a predicted
/// cycle is exactly as trustworthy as a live finding over that state; the
/// cut's records (plus a closing SCAN) are emitted as a witness trace any
/// `armus-trace verify` reproduces. docs/PREDICT.md states the soundness
/// claim and its boundaries; tests/predict_test.cc pins both directions.
///
/// Sound, deliberately incomplete: greedy per-task choice explores one
/// compatible combination per anchor, so an exotic cycle needing a
/// non-latest interval combination can be missed — never invented.
namespace armus::predict {

/// One deadlock found in a reordered (not observed) state, with the
/// evidence to reproduce it.
struct Prediction {
  DeadlockReport report;

  /// Not among the observed (recorded REPORT) or replayed (re-check at
  /// recorded SCANs) cycles — a finding only reordering exposes.
  bool novel = false;

  /// The cut's state records in replay order plus one closing SCAN: a
  /// standalone schedule reaching the predicted state. write_witness()
  /// persists it as a regular trace file.
  std::vector<trace::Record> witness;
};

class Predictor {
 public:
  struct Options {
    /// Model for both the baseline replay and the cut checks.
    GraphModel model = GraphModel::kAuto;

    /// Cap on anchors explored (0 = unbounded). Each BLOCKED record is
    /// one anchor; the cap bounds work on adversarial traces.
    std::uint64_t max_anchors = 0;
  };

  struct Result {
    /// Cycles the live run reported (REPORT records), deduplicated.
    std::vector<DeadlockReport> observed;

    /// Cycles the baseline replay finds at the recorded SCAN points —
    /// what plain `armus-trace verify` would say.
    std::vector<DeadlockReport> replayed;

    /// Cut-search findings, deduplicated by fingerprint, in discovery
    /// order. Includes re-findings of observed cycles (novel == false) —
    /// corroboration that the search reaches the real ones.
    std::vector<Prediction> predictions;

    std::uint64_t anchors_tried = 0;
    std::uint64_t cuts_checked = 0;
    bool anchors_capped = false;

    [[nodiscard]] std::size_t novel_count() const;
  };

  explicit Predictor(Options options) : options_(options) {}

  [[nodiscard]] Result run(const trace::MergedTrace& trace) const;

 private:
  Options options_;
};

/// Writes a prediction's witness as a replayable trace file. Header meta
/// carries mode=predict-witness plus the cycle's task set.
void write_witness(const std::string& path, const Prediction& prediction);

}  // namespace armus::predict
