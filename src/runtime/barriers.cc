#include "runtime/barriers.h"

namespace armus::rt {

CyclicBarrier::CyclicBarrier(std::size_t parties, Verifier* verifier)
    : parties_(parties),
      phaser_(ph::Phaser::create(verifier != nullptr ? verifier
                                                     : ambient_verifier())) {
  if (parties == 0) throw ph::PhaserError("CyclicBarrier needs at least 1 party");
  for (std::size_t p = 0; p < parties; ++p) {
    TaskId guard = fresh_task_id();
    phaser_->register_task(guard, 0, ph::RegMode::kSig);
    if (Verifier* v = phaser_->verifier()) {
      v->set_task_name(guard, "barrier-party-p" + std::to_string(phaser_->uid()));
    }
    guards_.push_back(guard);
  }
}

CyclicBarrier::~CyclicBarrier() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (TaskId guard : guards_) {
    if (phaser_->is_registered(guard)) phaser_->deregister(guard);
  }
}

void CyclicBarrier::register_task(TaskId task) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (guards_.empty()) {
    throw ph::PhaserError("CyclicBarrier: all " + std::to_string(parties_) +
                          " parties already registered");
  }
  // Real member first so the phaser never transiently frees its waiters.
  phaser_->register_task_at_observed(task, ph::RegMode::kSigWait);
  TaskId guard = guards_.back();
  guards_.pop_back();
  phaser_->deregister(guard);
}

void CyclicBarrier::register_current() { register_task(current_task()); }

void CyclicBarrier::deregister_current() {
  std::lock_guard<std::mutex> lock(mutex_);
  // Keep the party count constant (Java barriers have a fixed strength):
  // the leaver's slot is re-guarded at the current observed phase.
  TaskId guard = fresh_task_id();
  Phase observed = phaser_->observed_phase();
  phaser_->register_task(guard, observed == ph::kPhaseInfinity ? 0 : observed,
                         ph::RegMode::kSig);
  guards_.push_back(guard);
  phaser_->deregister(current_task());
}

void CyclicBarrier::await() {
  TaskId task = current_task();
  if (!phaser_->is_registered(task)) {
    throw ph::PhaserError(
        "CyclicBarrier::await by unregistered task — call register_current() "
        "first (the JArmus.register annotation)");
  }
  phaser_->advance(task);
}

std::size_t CyclicBarrier::registered() const {
  // Guards occupy the unclaimed slots; real registrations are the rest.
  std::lock_guard<std::mutex> lock(mutex_);
  return parties_ - guards_.size();
}

CountDownLatch::CountDownLatch(std::size_t count, Verifier* verifier)
    : count_(count),
      phaser_(ph::Phaser::create(verifier != nullptr ? verifier
                                                     : ambient_verifier())),
      guard_(fresh_task_id()) {
  if (count == 0) throw ph::PhaserError("CountDownLatch needs a positive count");
  phaser_->register_task(guard_, 0, ph::RegMode::kSig);
  if (Verifier* v = phaser_->verifier()) {
    v->set_task_name(guard_, "latch-guard-p" + std::to_string(phaser_->uid()));
  }
}

void CountDownLatch::register_current() {
  std::lock_guard<std::mutex> lock(mutex_);
  // The guard occupies one slot; contributors may take `count_` more.
  if (phaser_->member_count() >= count_ + 1) {
    throw ph::PhaserError("CountDownLatch: all " + std::to_string(count_) +
                          " contributors already registered");
  }
  // Contributors are signal-only: they never wait at the latch themselves.
  phaser_->register_task(current_task(), 0, ph::RegMode::kSig);
}

void CountDownLatch::count_down() {
  phaser_->arrive_and_deregister(current_task());
  std::lock_guard<std::mutex> lock(mutex_);
  if (++counted_ == count_) phaser_->arrive_and_deregister(guard_);
}

void CountDownLatch::wait() {
  // Released once every contributor has arrived at phase 1 (or deregistered
  // after arriving). Waiters need no registration: they never impede.
  phaser_->await(current_task(), 1);
}

bool CountDownLatch::ready() const { return phaser_->try_await(1); }

}  // namespace armus::rt
