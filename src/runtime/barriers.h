#pragma once

#include <memory>

#include "runtime/task.h"

/// Java-style barrier abstractions (java.util.concurrent analogues) built
/// on the phaser substrate, with the JArmus twist (§5.3): Java's APIs keep
/// the participant/task relationship implicit, so verified programs must
/// have each participating task call `register_current()` — exactly the
/// `JArmus.register(b)` annotation the paper requires. Unlike X10 clocks,
/// these do NOT auto-deregister on task termination: a dead registered
/// party keeps impeding, which is faithful Java behaviour and precisely the
/// kind of deadlock the detector must expose.
namespace armus::rt {

/// java.util.concurrent.CyclicBarrier: `parties` tasks repeatedly meet at
/// `await()`.
///
/// Java semantics require that *no* await completes before all `parties`
/// arrive — including parties whose threads have not registered yet. Each
/// unclaimed party is therefore backed by a signal-only guard member pinned
/// at phase 0; registering swaps a guard for the real task. Without this,
/// an early starter could race through the barrier alone while its peers
/// were still being registered.
class CyclicBarrier {
 public:
  /// `verifier` nullptr inherits the caller's ambient verifier.
  explicit CyclicBarrier(std::size_t parties, Verifier* verifier = nullptr);
  ~CyclicBarrier();

  CyclicBarrier(const CyclicBarrier&) = delete;
  CyclicBarrier& operator=(const CyclicBarrier&) = delete;

  /// Claims one party for `task` — typically called by the parent before
  /// the party's thread starts, so no thread can race through the barrier
  /// while others are still registering (the PL reg-before-fork pattern).
  /// Throws PhaserError when all parties are already claimed or the task
  /// claimed before.
  void register_task(TaskId task);

  /// Claims one party for the calling task (the JArmus.register analogue).
  void register_current();

  /// Releases the calling task's party (e.g. before it terminates).
  void deregister_current();

  /// One barrier step; the calling task must have registered.
  void await();

  [[nodiscard]] std::size_t parties() const { return parties_; }

  /// Parties claimed by real tasks so far.
  [[nodiscard]] std::size_t registered() const;
  [[nodiscard]] std::shared_ptr<ph::Phaser> underlying() const { return phaser_; }

 private:
  std::size_t parties_;
  std::shared_ptr<ph::Phaser> phaser_;
  mutable std::mutex mutex_;
  std::vector<TaskId> guards_;  // one per unclaimed party
};

/// java.util.concurrent.CountDownLatch with task identities: `count`
/// contributors each register and count down exactly once; waiters block
/// until all contributions arrive. (Java's latch allows one thread to count
/// several times; the verified latch needs one registration per counting
/// task — see DESIGN.md substitutions.)
///
/// An internal signal-only *guard* member keeps the latch closed until all
/// `count` contributions have arrived, so contributors may register lazily
/// without waiters slipping through an empty phaser.
class CountDownLatch {
 public:
  explicit CountDownLatch(std::size_t count, Verifier* verifier = nullptr);

  /// Declares the calling task as one of the contributors.
  void register_current();

  /// Contributes the calling task's count (non-blocking; deregisters).
  void count_down();

  /// Blocks until every contributor has counted down.
  void wait();

  /// True iff the latch has released.
  [[nodiscard]] bool ready() const;

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] std::shared_ptr<ph::Phaser> underlying() const { return phaser_; }

 private:
  std::size_t count_;
  std::shared_ptr<ph::Phaser> phaser_;
  TaskId guard_;
  std::mutex mutex_;
  std::size_t counted_ = 0;
};

}  // namespace armus::rt
