#pragma once

#include <vector>

#include "runtime/task.h"

/// Bounded producer-consumer over phasers — the HJ pattern the paper names
/// as future work ("this language features abstractions with complex
/// synchronisation patterns, such as the bounded producer-consumer", §8).
///
/// Two phasers express the flow control, using awaits on *arbitrary future
/// phases* (§2.2):
///
///   * `produced` — the producer signals item n by arriving at phase n;
///     the consumer awaits phase n before taking item n.
///   * `consumed` — the consumer signals the consumption of item n; a
///     producer about to publish item n (> capacity) first awaits
///     `consumed` phase n - capacity, so at most `capacity` items are ever
///     in flight.
///
/// Both waits run through Armus: a misuse that cycles (e.g. two buffers
/// exchanged by two tasks in opposite order, each blocked on the other's
/// backpressure) is detected/avoided like any barrier deadlock.
namespace armus::rt {

template <typename T>
class BoundedBuffer {
 public:
  /// `verifier` nullptr inherits the creator's ambient verifier.
  /// Until the producer/consumer roles are claimed, synthetic signal-only
  /// guards hold both phasers at phase 0: an early consumer cannot observe
  /// a vacuously-advanced empty phaser, and an early producer cannot
  /// outrun the (future) consumer's backpressure.
  explicit BoundedBuffer(std::size_t capacity, Verifier* verifier = nullptr)
      : capacity_(capacity),
        slots_(capacity),
        produced_(ph::Phaser::create(verifier != nullptr ? verifier
                                                         : ambient_verifier())),
        consumed_(ph::Phaser::create(produced_->verifier())),
        producer_guard_(fresh_task_id()),
        consumer_guard_(fresh_task_id()) {
    if (capacity == 0) {
      throw ph::PhaserError("BoundedBuffer needs a positive capacity");
    }
    produced_->register_task(producer_guard_, 0, ph::RegMode::kSig);
    consumed_->register_task(consumer_guard_, 0, ph::RegMode::kSig);
  }

  ~BoundedBuffer() {
    if (produced_->is_registered(producer_guard_)) {
      produced_->deregister(producer_guard_);
    }
    if (consumed_->is_registered(consumer_guard_)) {
      consumed_->deregister(consumer_guard_);
    }
  }

  /// Declares `task` the producer (call before its thread starts when the
  /// consumer may race ahead; the producer may also self-register first).
  void register_producer(TaskId task) {
    produced_->register_task(task, 0, ph::RegMode::kSig);
    produced_->deregister(producer_guard_);
  }
  void register_producer() { register_producer(current_task()); }

  /// Declares `task` the consumer.
  void register_consumer(TaskId task) {
    consumed_->register_task(task, 0, ph::RegMode::kSig);
    consumed_->deregister(consumer_guard_);
  }
  void register_consumer() { register_consumer(current_task()); }

  /// Publishes the next item; blocks (verified) while the buffer is full.
  void put(T value) {
    TaskId self = current_task();
    Phase next = produced_->local_phase(self) + 1;
    if (next > capacity_) {
      // Backpressure: wait for the consumption of item next - capacity.
      consumed_->await(self, next - capacity_);
    }
    slots_[static_cast<std::size_t>((next - 1) % capacity_)] = std::move(value);
    produced_->arrive(self);
  }

  /// Takes the next item; blocks (verified) while the buffer is empty.
  T take() {
    TaskId self = current_task();
    Phase next = consumed_->local_phase(self) + 1;
    produced_->await(self, next);  // wait for item `next` to exist
    T value = std::move(slots_[static_cast<std::size_t>((next - 1) % capacity_)]);
    consumed_->arrive(self);
    return value;
  }

  /// The producer retires; a consumer awaiting beyond the last item then
  /// unblocks vacuously (empty signal set), mirroring PL's await semantics.
  void close() { produced_->deregister(current_task()); }

  /// True iff item `n` (1-based) has been produced.
  [[nodiscard]] bool produced_at_least(Phase n) const {
    return produced_->try_await(n);
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::shared_ptr<ph::Phaser> produced_phaser() const {
    return produced_;
  }
  [[nodiscard]] std::shared_ptr<ph::Phaser> consumed_phaser() const {
    return consumed_;
  }

 private:
  std::size_t capacity_;
  std::vector<T> slots_;
  std::shared_ptr<ph::Phaser> produced_;
  std::shared_ptr<ph::Phaser> consumed_;
  TaskId producer_guard_;
  TaskId consumer_guard_;
};

}  // namespace armus::rt
