#include "runtime/clock.h"

namespace armus::rt {

Clock Clock::make(Verifier* verifier) {
  if (verifier == nullptr) verifier = ambient_verifier();
  Clock clock;
  clock.impl_ = std::make_shared<Impl>();
  clock.impl_->phaser = ph::Phaser::create(verifier);
  TaskId creator = current_task();
  clock.impl_->phaser->register_task(creator, 0, ph::RegMode::kSigWait);
  current_context().add_termination_drop(clock.impl_->phaser);
  return clock;
}

void Clock::advance() {
  TaskId task = current_task();
  bool already_resumed = false;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto it = impl_->resumed.find(task);
    if (it != impl_->resumed.end() && it->second) {
      already_resumed = true;
      it->second = false;
    }
  }
  try {
    if (already_resumed) {
      impl_->phaser->await(task, impl_->phaser->local_phase(task));
    } else {
      impl_->phaser->advance(task);
    }
  } catch (const DeadlockAvoidedError&) {
    // §2.1: on avoidance "the tasks become deregistered from clock c", which
    // lets the surviving members advance past the broken step.
    if (impl_->phaser->is_registered(task)) impl_->phaser->deregister(task);
    throw;
  }
}

void Clock::resume() {
  TaskId task = current_task();
  std::lock_guard<std::mutex> lock(impl_->mutex);
  bool& resumed = impl_->resumed[task];
  if (resumed) return;
  impl_->phaser->arrive(task);
  resumed = true;
}

void Clock::drop() {
  TaskId task = current_task();
  if (!impl_->phaser->is_registered(task)) return;
  impl_->phaser->deregister(task);
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->resumed.erase(task);
}

bool Clock::is_registered() const {
  return impl_->phaser->is_registered(current_task());
}

Phase Clock::phase() const { return impl_->phaser->local_phase(current_task()); }

std::shared_ptr<ph::Phaser> Clock::underlying() const { return impl_->phaser; }

void register_clocked(const Clock& clock, TaskId child, Phase phase) {
  clock.impl_->phaser->register_task(child, phase, ph::RegMode::kSigWait);
}

void async_clocked(Finish& finish, const std::vector<Clock>& clocks,
                   std::function<void()> body, const std::string& name) {
  TaskId parent = current_task();
  // Capture the parent's phases outside pre_start: pre_start runs on the
  // parent anyway, but local_phase must be read before any concurrent
  // parent arrival.
  std::vector<Phase> phases;
  phases.reserve(clocks.size());
  for (const Clock& clock : clocks) {
    phases.push_back(clock.underlying()->local_phase(parent));
  }
  finish.spawn_with(
      [&](TaskId child) {
        for (std::size_t i = 0; i < clocks.size(); ++i) {
          register_clocked(clocks[i], child, phases[i]);
        }
      },
      [clocks, body = std::move(body)] {
        // X10 tasks deregister from their clocks on termination.
        for (const Clock& clock : clocks) {
          current_context().add_termination_drop(clock.underlying());
        }
        body();
      },
      name);
}

}  // namespace armus::rt
