#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "runtime/finish.h"

/// X10 clocks (§2.1) — cyclic barriers with dynamic membership — as a thin
/// value-semantics wrapper over the phaser substrate:
///
///   * `Clock::make()`      creates the clock, registering the creator
///                          (X10 registers the parent implicitly);
///   * `advance()`          one barrier step ([adv] + [sync]);
///   * `resume()/advance()` split-phase: resume signals the arrival, a later
///                          advance only waits (X10's fuzzy barriers);
///   * `drop()`             deregisters the calling task;
///   * `async_clocked(...)` spawns a task registered with the given clocks,
///                          inheriting the spawner's phases (X10's
///                          `async clocked(c)`).
///
/// Avoidance-mode behaviour matches §2.1: when `advance()` would deadlock,
/// the task is *deregistered from the clock* and DeadlockAvoidedError
/// propagates, so the remaining members can make progress.
namespace armus::rt {

class Clock {
 public:
  /// Creates a clock registered to the calling task at phase 0 and arranges
  /// for runtime-spawned tasks to drop it automatically on termination.
  static Clock make(Verifier* verifier = nullptr);

  Clock() = default;

  /// One barrier step: signal arrival (unless already resumed) and wait for
  /// the phase to be observed. On DeadlockAvoidedError the calling task is
  /// deregistered before the exception propagates.
  void advance();

  /// Split-phase signal: non-blocking arrival. Idempotent until the next
  /// advance().
  void resume();

  /// Deregisters the calling task. No-op if not registered.
  void drop();

  [[nodiscard]] bool is_registered() const;

  /// The calling task's local phase.
  [[nodiscard]] Phase phase() const;

  [[nodiscard]] std::shared_ptr<ph::Phaser> underlying() const;

  [[nodiscard]] bool valid() const { return impl_ != nullptr; }

 private:
  struct Impl {
    std::shared_ptr<ph::Phaser> phaser;
    std::mutex mutex;
    std::unordered_map<TaskId, bool> resumed;  // split-phase bookkeeping
  };

  friend void register_clocked(const Clock& clock, TaskId child, Phase phase);

  std::shared_ptr<Impl> impl_;
};

/// Spawns a child inside `finish`, registered with each clock at the
/// spawner's current phase (X10: `async clocked(c1, c2) { ... }`). The child
/// drops any still-held clocks on termination, as X10/HJ tasks do.
void async_clocked(Finish& finish, const std::vector<Clock>& clocks,
                   std::function<void()> body, const std::string& name = {});

}  // namespace armus::rt
