#pragma once

#include <map>
#include <memory>
#include <mutex>

#include "runtime/task.h"

/// Clocked variables after Atkins et al. [ACSC'13] (§2.2): a memory cell
/// whose accesses are mediated by barrier synchronisation. The paper
/// benchmarks three X10 algorithms built on them (SE, FI, FR — §6.3); we
/// use this implementation for the same workloads.
///
/// Model: the variable pairs a value stream with a phaser. A *writer* is a
/// signal-capable member; `put(v)` publishes the value for its next phase
/// and arrives (so the value for phase n becomes readable exactly when the
/// phase-n event is observed). A *reader* either joins wait-only (never
/// impeding anyone) or simply awaits the phase it needs: `get(n)` blocks
/// until phase n is observed and returns the value written for it. A
/// single-write clocked variable is a future — which is how the recursive
/// Fibonacci workload (FR) uses it.
namespace armus::rt {

template <typename T>
class ClockedVar {
 public:
  /// `verifier` nullptr inherits the caller's ambient verifier.
  explicit ClockedVar(Verifier* verifier = nullptr)
      : phaser_(ph::Phaser::create(verifier != nullptr ? verifier
                                                       : ambient_verifier())) {}

  /// Joins `task` as a writer (signal-capable, at the observed phase so
  /// late joiners cannot rewind the stream). Typically called by the parent
  /// *before* forking the writer, so readers can never observe a phase the
  /// writer has not joined yet.
  void register_writer(TaskId task) {
    phaser_->register_task_at_observed(task, ph::RegMode::kSig);
  }

  /// Joins the calling task as a writer.
  void register_writer() { register_writer(current_task()); }

  /// Joins the calling task as a wait-only reader. Optional: unregistered
  /// tasks may also call get(); registering documents membership and allows
  /// the runtime to reason about the reader's lifetime.
  void register_reader() {
    phaser_->register_task_at_observed(current_task(), ph::RegMode::kWait);
  }

  /// Leaves the variable (writers should retire once done so readers of
  /// future phases are not impeded forever).
  void deregister() { phaser_->deregister(current_task()); }

  /// Publishes `value` for the writer's next phase and arrives at it.
  /// Returns the phase the value belongs to.
  Phase put(T value) {
    TaskId task = current_task();
    Phase next = phaser_->local_phase(task) + 1;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      values_[next] = std::move(value);
    }
    phaser_->arrive(task);
    return next;
  }

  /// Blocks until the phase-`n` event is observed, then returns the value
  /// published for phase n. Throws std::out_of_range if the phase was
  /// observed but no writer published a value for it.
  T get(Phase n) {
    phaser_->await(current_task(), n);
    return peek(n);
  }

  /// Returns the phase-`n` value without synchronising (the caller has
  /// already observed the phase, e.g. through a member-mode barrier step).
  /// Throws std::out_of_range when no value was published for `n`.
  T peek(Phase n) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = values_.find(n);
    if (it == values_.end()) {
      throw std::out_of_range("ClockedVar: no value published for phase " +
                              std::to_string(n));
    }
    return it->second;
  }

  /// Drops values for phases <= `watermark` (streaming workloads keep the
  /// footprint bounded by pruning phases every reader has passed).
  void prune(Phase watermark) {
    std::lock_guard<std::mutex> lock(mutex_);
    values_.erase(values_.begin(), values_.upper_bound(watermark));
  }

  [[nodiscard]] std::shared_ptr<ph::Phaser> underlying() const { return phaser_; }

 private:
  std::shared_ptr<ph::Phaser> phaser_;
  std::mutex mutex_;
  std::map<Phase, T> values_;
};

}  // namespace armus::rt
