#include "runtime/finish.h"

#include "util/log.h"

namespace armus::rt {

Finish::Finish(Verifier* verifier)
    : verifier_(verifier != nullptr ? verifier : ambient_verifier()),
      parent_(current_task()),
      join_(ph::Phaser::create(verifier_)) {
  join_->register_task(parent_, 0, ph::RegMode::kSigWait);
}

Finish::~Finish() {
  if (!waited_) {
    try {
      wait();
    } catch (...) {
      // Destructors must not throw. wait() was not called explicitly, so
      // the caller has no way to handle this; surface it loudly instead of
      // losing it.
      util::log_error("exception escaped ~Finish(); call wait() explicitly ",
                      "to handle child errors");
    }
  }
}

void Finish::spawn(std::function<void()> body, const std::string& name) {
  spawn_with(nullptr, std::move(body), name);
}

void Finish::spawn_with(const std::function<void(TaskId)>& pre_start,
                        std::function<void()> body, const std::string& name) {
  auto join = join_;
  // [reg]: the child inherits the *registrar's* phase on the join phaser.
  // The registrar is whoever calls spawn: the finish parent (phase 0, or 1
  // once it arrived in wait()), or — for nested spawns à la the sieve
  // pipeline — a child of this finish, which is always at phase 0. Using
  // the registrar's own phase keeps grandchildren holding the join barrier
  // back even when the parent has already arrived.
  TaskId registrar = current_task();
  Phase inherited = join_->is_registered(registrar)
                        ? join_->local_phase(registrar)
                        : join_->local_phase(parent_);
  Task child = rt::spawn_with(
      [&](TaskId child_id) {
        // The child never advances the join phaser — termination
        // deregisters, which is the PL encoding's "notify finish".
        join->register_task(child_id, inherited, ph::RegMode::kSigWait);
        if (pre_start) pre_start(child_id);
      },
      [join, body = std::move(body)] {
        try {
          body();
        } catch (...) {
          if (join->is_registered(current_task())) join->deregister(current_task());
          throw;
        }
        if (join->is_registered(current_task())) join->deregister(current_task());
      },
      verifier_, name);
  std::lock_guard<std::mutex> lock(mutex_);
  children_.push_back(std::move(child));
}

void Finish::wait() {
  if (waited_) return;
  // adv(pb); await(pb): completes when every child deregistered (their
  // local phases leave the phaser, so the observed phase rises to ours).
  // May throw DeadlockAvoidedError in avoidance mode; in that case we are
  // *not* done — the caller must resolve the cycle and call wait() again
  // (or accept that children are stuck). The arrive happens only once so a
  // retry does not double-advance the parent.
  if (!arrived_) {
    target_ = join_->arrive(parent_);
    arrived_ = true;
  }
  join_->await(parent_, target_);
  waited_ = true;
  join_->deregister(parent_);

  // All children have deregistered; join the threads and surface errors.
  std::vector<Task> children;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    children.swap(children_);
  }
  std::exception_ptr first;
  for (Task& child : children) {
    try {
      child.join();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace armus::rt
