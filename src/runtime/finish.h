#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/task.h"

/// The X10 `finish` construct: a join barrier over the tasks spawned inside
/// the block, encoded exactly as Figure 3 encodes Figure 1 in PL:
///
///   * the parent creates a join phaser `pb` registered at phase 0;
///   * each spawned child is registered with `pb` before it starts and
///     deregisters on termination ("notify finish");
///   * `wait()` performs `adv(pb); await(pb)` — it completes once every
///     child has deregistered, and it is exactly the blocking operation
///     where the Figure 1 deadlock manifests (and where detection/avoidance
///     observe it).
namespace armus::rt {

class Finish {
 public:
  /// `verifier` nullptr inherits the caller's ambient verifier.
  explicit Finish(Verifier* verifier = nullptr);

  Finish(const Finish&) = delete;
  Finish& operator=(const Finish&) = delete;

  /// Joins all children (calling wait() if it has not run) — but see wait()
  /// for the verified path; prefer calling it explicitly so exceptions
  /// (including DeadlockAvoidedError) surface at a useful place.
  ~Finish();

  /// Spawns a child governed by this finish.
  void spawn(std::function<void()> body, const std::string& name = {});

  /// Spawns a child with extra parent-side registrations (used by
  /// async_clocked to register the child on clocks with inherited phases).
  void spawn_with(const std::function<void(TaskId)>& pre_start,
                  std::function<void()> body, const std::string& name = {});

  /// Blocks until every spawned child has terminated; rethrows the first
  /// child exception. In avoidance mode may throw DeadlockAvoidedError
  /// *before* blocking (the finish would never complete).
  void wait();

  [[nodiscard]] Verifier* verifier() const { return verifier_; }

  /// The underlying join phaser (exposed for tests and diagnostics).
  [[nodiscard]] const std::shared_ptr<ph::Phaser>& join_phaser() const {
    return join_;
  }

 private:
  Verifier* verifier_;
  TaskId parent_;
  std::shared_ptr<ph::Phaser> join_;
  std::mutex mutex_;
  std::vector<Task> children_;
  /// Set once the parent has arrived at the join phaser, so a wait() retry
  /// after DeadlockAvoidedError does not advance the parent a second time.
  bool arrived_ = false;
  Phase target_ = 0;
  bool waited_ = false;
};

}  // namespace armus::rt
