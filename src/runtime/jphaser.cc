#include "runtime/jphaser.h"

namespace armus::rt {

JPhaser::JPhaser(std::size_t initial_parties, Verifier* verifier)
    : phaser_(ph::Phaser::create(verifier != nullptr ? verifier
                                                     : ambient_verifier())) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < initial_parties; ++i) add_guard();
}

JPhaser::~JPhaser() {
  // Unbound parties die with the phaser object.
  std::lock_guard<std::mutex> lock(mutex_);
  for (TaskId guard : guards_) {
    if (phaser_->is_registered(guard)) phaser_->deregister(guard);
  }
}

void JPhaser::add_guard() {
  TaskId guard = fresh_task_id();
  phaser_->register_task_at_observed(guard, ph::RegMode::kSig);
  if (Verifier* v = phaser_->verifier()) {
    v->set_task_name(guard, "unbound-party-p" + std::to_string(phaser_->uid()));
  }
  guards_.push_back(guard);
}

void JPhaser::register_party() {
  std::lock_guard<std::mutex> lock(mutex_);
  add_guard();
}

void JPhaser::bind_current() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (guards_.empty()) {
    throw ph::PhaserError(
        "JPhaser::bind_current: no unbound parties (book one with "
        "register_party() or the constructor count)");
  }
  // Register the real task first so the phaser never transiently empties.
  phaser_->register_task_at_observed(current_task(), ph::RegMode::kSigWait);
  TaskId guard = guards_.back();
  guards_.pop_back();
  phaser_->deregister(guard);
}

Phase JPhaser::arrive() { return phaser_->arrive(current_task()) - 1; }

void JPhaser::arrive_and_await_advance() { phaser_->advance(current_task()); }

void JPhaser::arrive_and_deregister() {
  phaser_->arrive_and_deregister(current_task());
}

void JPhaser::await_advance(Phase phase) {
  phaser_->await(current_task(), phase + 1);
}

Phase JPhaser::phase() const {
  Phase observed = phaser_->observed_phase();
  return observed == ph::kPhaseInfinity ? 0 : observed;
}

std::size_t JPhaser::unbound_parties() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return guards_.size();
}

}  // namespace armus::rt
