#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "runtime/task.h"

/// A facade after java.util.concurrent.Phaser (Java 7), the API used in the
/// paper's Figure 2. Java separates *party counts* from *task identity* —
/// which is exactly the information gap JArmus fills with explicit
/// registration (§5.3). This facade mirrors that workflow:
///
///   * `JPhaser(initial_parties)` — books parties (Figure 2 line 1:
///     `new Phaser(1)` books one for the parent);
///   * `register_party()`         — books one more party (Figure 2 line 4);
///   * `bind_current()`           — the JArmus.register analogue: the
///     calling task claims one booked party and becomes a verified member.
///
/// Java semantics demand that an unarrived party hold the phase back, so
/// every booked-but-unbound party is backed by a synthetic signal-only
/// *guard* member pinned at the booking phase; binding swaps the guard for
/// the real task. A party that is never bound therefore blocks the barrier
/// exactly as an unarrived Java party would.
///
/// Arrival methods follow Java naming. A task must bind before arriving —
/// the facade refuses to run unverifiable programs, making the paper's
/// annotation requirement explicit.
namespace armus::rt {

class JPhaser {
 public:
  explicit JPhaser(std::size_t initial_parties = 0, Verifier* verifier = nullptr);
  ~JPhaser();

  JPhaser(const JPhaser&) = delete;
  JPhaser& operator=(const JPhaser&) = delete;

  /// Books one more party (Java's `register()`; renamed — `register` is a
  /// C++ keyword).
  void register_party();

  /// Claims a booked party for the calling task. Thereafter the task is a
  /// full signal+wait member at the current phase.
  void bind_current();

  /// Java `arrive()`: signal this phase, do not wait. Returns the phase
  /// number the task arrived at (its new local phase - 1 in PL terms).
  Phase arrive();

  /// Java `arriveAndAwaitAdvance()`: one full barrier step.
  void arrive_and_await_advance();

  /// Java `arriveAndDeregister()`: signal and leave; never blocks.
  void arrive_and_deregister();

  /// Java `awaitAdvance(phase)`: wait until the phaser's phase exceeds
  /// `phase` (no membership required).
  void await_advance(Phase phase);

  /// Java `getPhase()`: the current (observed) phase; 0 while nobody moved.
  [[nodiscard]] Phase phase() const;

  /// Booked parties not yet bound to a task.
  [[nodiscard]] std::size_t unbound_parties() const;

  [[nodiscard]] std::shared_ptr<ph::Phaser> underlying() const { return phaser_; }

 private:
  void add_guard();

  std::shared_ptr<ph::Phaser> phaser_;
  mutable std::mutex mutex_;
  std::vector<TaskId> guards_;  // one synthetic member per unbound party
};

}  // namespace armus::rt
