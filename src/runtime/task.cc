#include "runtime/task.h"

#include "util/log.h"

namespace armus::rt {

namespace {
thread_local std::unique_ptr<TaskContext> t_context;
}  // namespace

void TaskContext::add_termination_drop(std::shared_ptr<ph::Phaser> phaser) {
  std::lock_guard<std::mutex> lock(mutex_);
  drops_.push_back(std::move(phaser));
}

void TaskContext::run_termination_drops() {
  std::vector<std::shared_ptr<ph::Phaser>> drops;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    drops.swap(drops_);
  }
  for (auto& phaser : drops) {
    if (phaser->is_registered(id_)) phaser->deregister(id_);
  }
}

TaskContext& current_context() {
  if (!t_context) {
    t_context = std::make_unique<TaskContext>(fresh_task_id(), default_verifier());
  }
  return *t_context;
}

TaskId current_task() { return current_context().id(); }

Verifier* ambient_verifier() {
  Verifier* v = current_context().verifier();
  return v != nullptr ? v : default_verifier();
}

Task::~Task() {
  if (thread_.joinable()) thread_.join();
}

void Task::join() {
  if (thread_.joinable()) thread_.join();
  if (shared_ && shared_->error) {
    std::exception_ptr error = shared_->error;
    shared_->error = nullptr;
    std::rethrow_exception(error);
  }
}

Task spawn_as(TaskId child, std::function<void()> body, Verifier* verifier,
              const std::string& name) {
  if (verifier == nullptr) verifier = ambient_verifier();
  if (verifier != nullptr && !name.empty()) verifier->set_task_name(child, name);
  bind_task_verifier(child, verifier);

  Task task;
  task.id_ = child;
  task.shared_ = std::make_shared<Task::Shared>();
  auto shared = task.shared_;
  task.thread_ = std::thread([child, verifier, shared, body = std::move(body)] {
    t_context = std::make_unique<TaskContext>(child, verifier);
    try {
      body();
    } catch (...) {
      shared->error = std::current_exception();
    }
    // X10/HJ-style cleanup for runtime-managed barriers (clocks, finish).
    t_context->run_termination_drops();
    unbind_task_verifier(child);
  });
  return task;
}

Task spawn_with(const std::function<void(TaskId)>& pre_start,
                std::function<void()> body, Verifier* verifier,
                const std::string& name) {
  if (verifier == nullptr) verifier = ambient_verifier();
  TaskId child = fresh_task_id();
  // Bind before pre_start so parent-side registrations route the child's
  // bookkeeping to the child's verifier (site) from the start.
  bind_task_verifier(child, verifier);
  if (pre_start) pre_start(child);
  return spawn_as(child, std::move(body), verifier, name);
}

Task spawn(std::function<void()> body, Verifier* verifier, const std::string& name) {
  return spawn_with(nullptr, std::move(body), verifier, name);
}

}  // namespace armus::rt
