#pragma once

#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "phaser/phaser.h"

/// The task layer: our stand-in for the X10/Java runtimes, built on
/// std::thread. Every task has a TaskId and an ambient Verifier; both are
/// carried in a thread-local TaskContext so runtime objects (clocks,
/// barriers, finish blocks) can attribute blocking events to the right task
/// without threading ids through every call (the "task observer" of §5.3).
namespace armus::rt {

/// Per-task state. Foreign threads (e.g. `main`) get a context lazily on
/// first use, so examples can use the runtime without ceremony.
class TaskContext {
 public:
  TaskContext(TaskId id, Verifier* verifier) : id_(id), verifier_(verifier) {}

  [[nodiscard]] TaskId id() const { return id_; }
  [[nodiscard]] Verifier* verifier() const { return verifier_; }
  void set_verifier(Verifier* verifier) { verifier_ = verifier; }

  /// Schedules `phaser` to be dropped when the task terminates, mirroring
  /// the X10/HJ rule that "tasks deregister from all barriers upon
  /// termination" (§7, Deadlock avoidance). Java-style phasers do *not*
  /// use this — a dead registered party keeps impeding, which is the real
  /// (and detectable) Java behaviour.
  void add_termination_drop(std::shared_ptr<ph::Phaser> phaser);

  /// Runs the termination drops; idempotent.
  void run_termination_drops();

 private:
  TaskId id_;
  Verifier* verifier_;
  std::mutex mutex_;
  std::vector<std::shared_ptr<ph::Phaser>> drops_;
};

/// The calling thread's context (created on demand for foreign threads).
TaskContext& current_context();

/// The calling thread's task id.
TaskId current_task();

/// The calling thread's verifier: the context's if set, else the process
/// default. May be nullptr (verification off).
Verifier* ambient_verifier();

/// Join handle for a spawned task. Joining rethrows the task's exception,
/// if any. The destructor joins (never detaches) — a deliberate choice: a
/// silently detached deadlocked task would defeat the purpose of this
/// library.
class Task {
 public:
  Task() = default;
  Task(Task&&) = default;
  Task& operator=(Task&&) = default;
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task();

  [[nodiscard]] bool joinable() const { return thread_.joinable(); }
  [[nodiscard]] TaskId id() const { return id_; }

  /// Waits for completion and rethrows the task's exception, if any.
  void join();

 private:
  friend Task spawn_as(TaskId child, std::function<void()> body,
                       Verifier* verifier, const std::string& name);

  struct Shared {
    std::exception_ptr error;
  };

  TaskId id_ = kInvalidTask;
  std::thread thread_;
  std::shared_ptr<Shared> shared_;
};

/// Spawns a task running `body`.
///
/// `pre_start(child_id)` runs on the *parent*, before the thread launches —
/// this is where clocks/finish phasers register the child with its inherited
/// phase (PL's `t = newTid(); reg(p, t); fork(t)` sequence). `verifier`
/// nullptr inherits the parent's ambient verifier. `name` labels the task in
/// deadlock reports.
Task spawn_with(const std::function<void(TaskId)>& pre_start,
                std::function<void()> body, Verifier* verifier = nullptr,
                const std::string& name = {});

/// Spawns a task under a caller-allocated id (from fresh_task_id()). This
/// is the fully explicit PL pattern — newTid, *all* registrations, then
/// fork — for launching whole gangs: allocate every id, register every
/// task on the shared barriers, and only then start any thread, so no
/// early starter can race the clock ahead of an unregistered sibling.
/// The caller must bind_task_verifier first (or pass the same verifier
/// here) when registrations must route to a specific site.
Task spawn_as(TaskId child, std::function<void()> body,
              Verifier* verifier = nullptr, const std::string& name = {});

/// Spawns a plain task (no registrations).
Task spawn(std::function<void()> body, Verifier* verifier = nullptr,
           const std::string& name = {});

}  // namespace armus::rt
