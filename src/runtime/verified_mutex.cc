#include "runtime/verified_mutex.h"

namespace armus::rt {

VerifiedMutex::VerifiedMutex(Verifier* verifier)
    : uid_(fresh_phaser_uid()),
      verifier_(verifier != nullptr ? verifier : ambient_verifier()) {}

void VerifiedMutex::lock() {
  TaskId task = current_task();
  const bool verified =
      verifier_ != nullptr && verifier_->mode() != VerifyMode::kOff;

  std::unique_lock<std::mutex> lock(state_mutex_);
  if (owner_ == task) {  // reentrant acquire
    ++depth_;
    return;
  }
  const bool avoidance =
      verified && verifier_->mode() == VerifyMode::kAvoidance;
  while (owner_ != kInvalidTask) {
    // Publish: waiting for the next release event at the current generation.
    // If ownership changes hands while we sleep, the loop republishes with
    // the fresh generation so the holder edge is never stale.
    Phase waited = generation_ + 1;
    BlockedStatus status;
    if (verified) {
      status.task = task;
      status.waits.push_back(Resource{uid_, waited});
      lock.unlock();
      verifier_->before_block(status);  // may throw DeadlockAvoidedError
      lock.lock();
      // State may have moved while unlocked; re-evaluate from scratch.
      if (owner_ == kInvalidTask || generation_ + 1 != waited) {
        verifier_->after_unblock(task);
        continue;
      }
    }
    auto moved = [&] { return owner_ == kInvalidTask || generation_ + 1 != waited; };
    if (avoidance) {
      // Poll the doom check while asleep so a cycle closed by a later
      // blocker also interrupts this task (§2.1 behaviour).
      const auto recheck = verifier_->config().avoidance_recheck;
      while (!moved()) {
        cv_.wait_for(lock, recheck, moved);
        if (moved()) break;
        lock.unlock();
        verifier_->recheck_blocked(status);  // may throw, status withdrawn
        lock.lock();
      }
    } else {
      cv_.wait(lock, moved);
    }
    if (verified) verifier_->after_unblock(task);
  }
  owner_ = task;
  depth_ = 1;
  // The holder impedes (uid, generation_ + 1) — published as a registry
  // entry with "local phase" = current generation (Definition 4.1 rule).
  if (verified) verifier_->registry().set_entry(task, uid_, generation_);
}

bool VerifiedMutex::try_lock() {
  TaskId task = current_task();
  std::lock_guard<std::mutex> lock(state_mutex_);
  if (owner_ == task) {
    ++depth_;
    return true;
  }
  if (owner_ != kInvalidTask) return false;
  owner_ = task;
  depth_ = 1;
  if (verifier_ != nullptr && verifier_->mode() != VerifyMode::kOff) {
    verifier_->registry().set_entry(task, uid_, generation_);
  }
  return true;
}

void VerifiedMutex::unlock() {
  TaskId task = current_task();
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (owner_ != task) {
      throw std::logic_error("VerifiedMutex::unlock by non-owner task t" +
                             std::to_string(task));
    }
    if (--depth_ > 0) return;
    owner_ = kInvalidTask;
    ++generation_;  // the release event: (uid, generation_) has now occurred
    if (verifier_ != nullptr && verifier_->mode() != VerifyMode::kOff) {
      verifier_->registry().remove_entry(task, uid_);
    }
  }
  cv_.notify_all();
}

bool VerifiedMutex::held_by_current() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return owner_ == current_task();
}

}  // namespace armus::rt
