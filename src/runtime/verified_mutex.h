#pragma once

#include <condition_variable>
#include <mutex>

#include "runtime/task.h"

/// A reentrant lock with Armus verification — the ReentrantLock support of
/// JArmus (§5.3), folded into the same event-based dependency model as
/// barriers:
///
///   * the lock carries a monotonic *release generation* g (a logical
///     clock): acquiring the free lock at generation g and releasing it
///     produces generation g+1;
///   * a task blocked acquiring the lock waits for event (lock, g+1);
///   * the holder impedes that event, published as the registry entry
///     (lock, g) — exactly the `local phase < waited phase` rule used for
///     phasers (Definition 4.1), so lock/lock, lock/barrier and
///     barrier/barrier cycles all surface in one graph analysis.
namespace armus::rt {

class VerifiedMutex {
 public:
  explicit VerifiedMutex(Verifier* verifier = nullptr);

  VerifiedMutex(const VerifiedMutex&) = delete;
  VerifiedMutex& operator=(const VerifiedMutex&) = delete;

  /// Acquires the lock (reentrant). In avoidance mode throws
  /// DeadlockAvoidedError instead of blocking into a cycle.
  void lock();

  /// Non-blocking acquire attempt.
  bool try_lock();

  /// Releases one level of ownership; fully releasing advances the release
  /// generation and wakes waiters. Throws if the caller is not the owner.
  void unlock();

  [[nodiscard]] bool held_by_current() const;

  /// The lock's uid in deadlock reports (it shares the phaser id space).
  [[nodiscard]] PhaserUid uid() const { return uid_; }

  /// RAII guard.
  class Guard {
   public:
    explicit Guard(VerifiedMutex& mutex) : mutex_(mutex) { mutex_.lock(); }
    ~Guard() { mutex_.unlock(); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    VerifiedMutex& mutex_;
  };

 private:
  const PhaserUid uid_;
  Verifier* const verifier_;

  mutable std::mutex state_mutex_;
  std::condition_variable cv_;
  TaskId owner_ = kInvalidTask;
  std::size_t depth_ = 0;
  Phase generation_ = 0;  // release generation (logical clock)
};

}  // namespace armus::rt
