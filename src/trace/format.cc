#include "trace/format.h"

#include <chrono>
#include <sstream>

#include "core/status_codec.h"

namespace armus::trace {

using util::append_bytes;
using util::append_varint;
using util::read_bytes;
using util::read_count;
using util::read_varint;

std::string to_string(RecordType type) {
  switch (type) {
    case RecordType::kTaskRegistered: return "TASK_REGISTERED";
    case RecordType::kBlocked: return "BLOCKED";
    case RecordType::kUnblocked: return "UNBLOCKED";
    case RecordType::kTaskDeregistered: return "TASK_DEREGISTERED";
    case RecordType::kScan: return "SCAN";
    case RecordType::kReport: return "REPORT";
  }
  return "?";
}

std::string TraceHeader::meta_value(std::string_view key) const {
  for (const auto& [k, v] : meta) {
    if (k == key) return v;
  }
  return {};
}

namespace {

GraphModel model_from_wire(std::uint64_t value) {
  if (value > static_cast<std::uint64_t>(GraphModel::kAuto)) {
    throw TraceError("graph model " + std::to_string(value) +
                     " out of range (0..3)");
  }
  return static_cast<GraphModel>(value);
}

}  // namespace

void append_record(std::string& out, const Record& record,
                   std::uint64_t dt_ns) {
  append_varint(out, static_cast<std::uint64_t>(record.type));
  append_varint(out, dt_ns);
  switch (record.type) {
    case RecordType::kTaskRegistered:
      append_varint(out, record.task);
      append_varint(out, record.phaser);
      append_varint(out, record.phase);
      break;
    case RecordType::kBlocked:
      append_status(out, record.status);
      break;
    case RecordType::kUnblocked:
      append_varint(out, record.task);
      break;
    case RecordType::kTaskDeregistered:
      append_varint(out, record.task);
      append_varint(out, record.phaser);
      break;
    case RecordType::kScan:
      append_varint(out, record.scan.blocked);
      append_varint(out, record.scan.nodes);
      append_varint(out, record.scan.edges);
      append_varint(out, static_cast<std::uint64_t>(record.scan.model_used));
      append_varint(out, record.scan.reports);
      break;
    case RecordType::kReport:
      append_varint(out, static_cast<std::uint64_t>(record.report.model));
      append_varint(out, record.report.tasks.size());
      for (TaskId task : record.report.tasks) append_varint(out, task);
      append_varint(out, record.report.resources.size());
      for (const Resource& res : record.report.resources) {
        append_varint(out, res.phaser);
        append_varint(out, res.phase);
      }
      break;
  }
}

Record read_record(std::string_view bytes, std::size_t* offset) {
  Record record;
  std::uint64_t type = read_varint(bytes, offset);
  record.at_ns = read_varint(bytes, offset);  // raw dt; caller accumulates
  switch (type) {
    case static_cast<std::uint64_t>(RecordType::kTaskRegistered):
      record.type = RecordType::kTaskRegistered;
      record.task = read_varint(bytes, offset);
      record.phaser = read_varint(bytes, offset);
      record.phase = read_varint(bytes, offset);
      break;
    case static_cast<std::uint64_t>(RecordType::kBlocked):
      record.type = RecordType::kBlocked;
      record.status = read_status(bytes, offset);
      break;
    case static_cast<std::uint64_t>(RecordType::kUnblocked):
      record.type = RecordType::kUnblocked;
      record.task = read_varint(bytes, offset);
      break;
    case static_cast<std::uint64_t>(RecordType::kTaskDeregistered):
      record.type = RecordType::kTaskDeregistered;
      record.task = read_varint(bytes, offset);
      record.phaser = read_varint(bytes, offset);
      break;
    case static_cast<std::uint64_t>(RecordType::kScan): {
      record.type = RecordType::kScan;
      record.scan.blocked = read_varint(bytes, offset);
      record.scan.nodes = read_varint(bytes, offset);
      record.scan.edges = read_varint(bytes, offset);
      record.scan.model_used = model_from_wire(read_varint(bytes, offset));
      record.scan.reports = read_varint(bytes, offset);
      break;
    }
    case static_cast<std::uint64_t>(RecordType::kReport): {
      record.type = RecordType::kReport;
      record.report.model = model_from_wire(read_varint(bytes, offset));
      std::uint64_t ntasks = read_count(bytes, offset, "report task");
      record.report.tasks.reserve(ntasks);
      for (std::uint64_t i = 0; i < ntasks; ++i) {
        record.report.tasks.push_back(read_varint(bytes, offset));
      }
      std::uint64_t nres = read_count(bytes, offset, "report resource");
      record.report.resources.reserve(nres);
      for (std::uint64_t i = 0; i < nres; ++i) {
        Resource res;
        res.phaser = read_varint(bytes, offset);
        res.phase = read_varint(bytes, offset);
        record.report.resources.push_back(res);
      }
      break;
    }
    default:
      throw TraceError("unknown trace record type " + std::to_string(type));
  }
  return record;
}

std::string encode_header(const TraceHeader& header) {
  std::string out(kMagic);
  append_varint(out, header.version);
  append_varint(out, header.start_ns);
  append_varint(out, header.meta.size());
  for (const auto& [key, value] : header.meta) {
    append_bytes(out, key);
    append_bytes(out, value);
  }
  return out;
}

TraceHeader read_header(std::string_view bytes, std::size_t* offset) {
  if (bytes.size() - *offset < kMagic.size() ||
      bytes.substr(*offset, kMagic.size()) != kMagic) {
    throw TraceError("not an armus trace: missing ARMUSTRC magic");
  }
  *offset += kMagic.size();
  TraceHeader header;
  header.version = read_varint(bytes, offset);
  if (header.version != kFormatVersion) {
    throw TraceError("unsupported trace format version " +
                     std::to_string(header.version));
  }
  header.start_ns = read_varint(bytes, offset);
  std::uint64_t nmeta = read_count(bytes, offset, "meta");
  header.meta.reserve(nmeta);
  for (std::uint64_t i = 0; i < nmeta; ++i) {
    std::string key = read_bytes(bytes, offset);
    std::string value = read_bytes(bytes, offset);
    header.meta.emplace_back(std::move(key), std::move(value));
  }
  return header;
}

// --- TraceWriter ---------------------------------------------------------

TraceWriter::TraceWriter(const std::string& path, TraceHeader header)
    : header_(std::move(header)) {
  if (header_.start_ns == 0) {
    header_.start_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
  out_.open(path, std::ios::binary | std::ios::trunc);
  if (!out_) {
    throw TraceError("cannot create trace file " + path);
  }
  std::string encoded = encode_header(header_);
  out_.write(encoded.data(), static_cast<std::streamsize>(encoded.size()));
  bytes_ = encoded.size();
  last_ns_ = header_.start_ns;
}

void TraceWriter::append(const Record& record) {
  std::uint64_t dt =
      record.at_ns > last_ns_ ? record.at_ns - last_ns_ : 0;
  last_ns_ += dt;
  std::string frame;
  append_record(frame, record, dt);
  out_.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  if (!out_) {
    // Disk full / EIO: a trace that silently stops recording would replay
    // as a clean shorter run — fail loudly instead (the Recorder turns
    // this into one logged error and stops capturing).
    throw TraceError("trace write failed after " + std::to_string(records_) +
                     " records");
  }
  bytes_ += frame.size();
  ++records_;
}

void TraceWriter::flush() {
  out_.flush();
  if (!out_) {
    throw TraceError("trace flush failed after " + std::to_string(records_) +
                     " records");
  }
}

// --- TraceReader ---------------------------------------------------------

TraceReader::TraceReader(std::string bytes) : bytes_(std::move(bytes)) {
  header_ = read_header(bytes_, &offset_);
  clock_ns_ = header_.start_ns;
}

TraceReader TraceReader::open(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw TraceError("cannot open trace file " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return TraceReader(std::move(buffer).str());
}

bool TraceReader::next(Record* out) {
  if (offset_ == bytes_.size()) return false;
  *out = read_record(bytes_, &offset_);
  clock_ns_ += out->at_ns;  // the frame carries the delta
  out->at_ns = clock_ns_;
  return true;
}

}  // namespace armus::trace
