#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/blocked_status.h"
#include "core/observer.h"
#include "core/report.h"
#include "util/varint.h"

/// The armus trace format: an event-sourced record of everything a
/// verifier (or site) saw during one run — registrations, blocked-status
/// publishes, analyses, and deadlock reports — persisted as varint frames
/// in the style of the slice codec. One live run becomes unlimited offline
/// runs: `trace::Replayer` feeds the stream back into any StateStore and
/// the `armus-trace` CLI re-verifies it under different graph models and
/// policies than the live run used.
///
/// docs/TRACE_FORMAT.md is the normative spec (byte examples asserted by
/// tests/trace_test.cc). Layout, all integers unsigned LEB128:
///
///   file    := magic[8] header record*
///   magic   := "ARMUSTRC"
///   header  := version:varint start_ns:varint
///              nmeta:varint (key:bytes value:bytes)*
///   record  := type:varint dt_ns:varint payload
///
/// `start_ns` is the writer's steady clock (CLOCK_MONOTONIC) at creation;
/// `dt_ns` is the delta since the previous record (the first record's is
/// since `start_ns`). Monotonic timestamps are system-wide on one host, so
/// traces recorded by different processes of one run merge into a single
/// well-ordered timeline. Decoding is strict: truncation mid-record, an
/// unknown record type, and an out-of-range graph model all raise
/// TraceError — a replayed verdict is only as trustworthy as its trace.
namespace armus::trace {

/// Same strict error as every armus binary decoder (util::CodecError).
using TraceError = util::CodecError;

inline constexpr std::string_view kMagic = "ARMUSTRC";
inline constexpr std::uint64_t kFormatVersion = 1;

/// Record payloads (after `type:varint dt_ns:varint`):
///
///   TASK_REGISTERED   task:varint phaser:varint phase:varint
///   BLOCKED           status            (status codec, WIRE_PROTOCOL §1)
///   UNBLOCKED         task:varint
///   TASK_DEREGISTERED task:varint phaser:varint   (phaser 0 = all)
///   SCAN              blocked:varint nodes:varint edges:varint
///                     model:varint reports:varint
///   REPORT            model:varint ntasks:varint task:varint*
///                     nres:varint (phaser:varint phase:varint)*
///
/// `model` encodes GraphModel: 0 = wfg, 1 = sg, 2 = grg, 3 = auto.
enum class RecordType : std::uint8_t {
  kTaskRegistered = 1,
  kBlocked = 2,
  kUnblocked = 3,
  kTaskDeregistered = 4,
  kScan = 5,
  kReport = 6,
};

std::string to_string(RecordType type);

/// One decoded trace record. `at_ns` is the absolute steady-clock
/// timestamp (header start_ns plus the accumulated deltas); which payload
/// fields are meaningful depends on `type`.
struct Record {
  RecordType type = RecordType::kScan;
  std::uint64_t at_ns = 0;

  TaskId task = kInvalidTask;   ///< kTaskRegistered/kTaskDeregistered/kUnblocked
  PhaserUid phaser = 0;         ///< kTaskRegistered/kTaskDeregistered
  Phase phase = 0;              ///< kTaskRegistered
  BlockedStatus status;         ///< kBlocked
  ScanInfo scan;                ///< kScan
  DeadlockReport report;        ///< kReport
};

struct TraceHeader {
  std::uint64_t version = kFormatVersion;
  std::uint64_t start_ns = 0;
  std::vector<std::pair<std::string, std::string>> meta;

  /// First value stored under `key`, empty when absent.
  [[nodiscard]] std::string meta_value(std::string_view key) const;
};

// --- Frame codec (exposed for tests and the stats tooling) ---------------

/// Appends the `record := type dt_ns payload` frame for `record` (its
/// `at_ns` is ignored; `dt_ns` is supplied by the writer).
void append_record(std::string& out, const Record& record, std::uint64_t dt_ns);

/// Reads one record frame, returning the decoded record with `at_ns` left
/// at the raw dt (the caller accumulates). Throws TraceError on anything
/// malformed.
Record read_record(std::string_view bytes, std::size_t* offset);

std::string encode_header(const TraceHeader& header);  ///< magic included
TraceHeader read_header(std::string_view bytes, std::size_t* offset);

// --- File access ---------------------------------------------------------

/// Streams records to a trace file. Not internally synchronised — the
/// Recorder serialises access; single-threaded tools use it directly.
class TraceWriter {
 public:
  /// Opens (truncates) `path` and writes magic + header. Throws TraceError
  /// when the file cannot be created. A zero `header.start_ns` is replaced
  /// by the current steady clock.
  TraceWriter(const std::string& path, TraceHeader header);

  /// Appends one record; `record.at_ns` is absolute and must not precede
  /// the previous record's (clamped to a zero delta if it does — callers
  /// racing on the steady clock can be off by the lock handover).
  void append(const Record& record);

  void flush();
  [[nodiscard]] std::uint64_t records_written() const { return records_; }

  /// Bytes emitted so far (header included). The Recorder's size-based
  /// segment rotation triggers on this, so a segment can only ever exceed
  /// its budget by the one record that crossed it — never mid-record.
  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_; }
  [[nodiscard]] const TraceHeader& header() const { return header_; }

 private:
  std::ofstream out_;
  TraceHeader header_;
  std::uint64_t last_ns_ = 0;
  std::uint64_t records_ = 0;
  std::uint64_t bytes_ = 0;
};

/// Decodes a trace held in memory; `TraceReader::open` loads a file.
class TraceReader {
 public:
  /// Parses magic + header immediately (throws TraceError on mismatch).
  explicit TraceReader(std::string bytes);

  /// Loads `path` fully into memory. Throws TraceError when unreadable.
  static TraceReader open(const std::string& path);

  [[nodiscard]] const TraceHeader& header() const { return header_; }

  /// Decodes the next record into *out with `at_ns` made absolute.
  /// Returns false at clean end-of-trace; throws TraceError on a record
  /// cut short or otherwise malformed.
  bool next(Record* out);

 private:
  std::string bytes_;
  std::size_t offset_ = 0;
  TraceHeader header_;
  std::uint64_t clock_ns_ = 0;
};

}  // namespace armus::trace
