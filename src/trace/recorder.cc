#include "trace/recorder.h"

#include <unistd.h>

#include <chrono>

#include "util/env.h"
#include "util/log.h"

namespace armus::trace {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

TraceHeader header_from_options(const Recorder::Options& options) {
  TraceHeader header;
  header.meta = options.meta;
  return header;
}

}  // namespace

Recorder::Recorder(Options options)
    : path_(options.path), writer_(options.path, header_from_options(options)) {}

Recorder::~Recorder() { flush(); }

void Recorder::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (failed_) return;
  try {
    writer_.flush();
  } catch (const TraceError& e) {
    failed_ = true;
    util::log_error(std::string("trace capture to ") + path_ +
                    " stopped: " + e.what());
  }
}

std::uint64_t Recorder::records_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return writer_.records_written();
}

bool Recorder::failed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return failed_;
}

void Recorder::append_locked(Record record) {
  // Observer callbacks run on the application's blocking path (and under
  // registry shard locks), so a write failure must not take the traced
  // program down: scream once, then stop capturing.
  if (failed_) return;
  record.at_ns = steady_now_ns();
  try {
    writer_.append(record);
  } catch (const TraceError& e) {
    failed_ = true;
    util::log_error(std::string("trace capture to ") + path_ +
                    " stopped: " + e.what());
  }
}

void Recorder::on_task_registered(TaskId task, PhaserUid phaser,
                                  Phase local_phase) {
  Record record;
  record.type = RecordType::kTaskRegistered;
  record.task = task;
  record.phaser = phaser;
  record.phase = local_phase;
  std::lock_guard<std::mutex> lock(mutex_);
  append_locked(std::move(record));
}

void Recorder::on_task_deregistered(TaskId task, PhaserUid phaser) {
  Record record;
  record.type = RecordType::kTaskDeregistered;
  record.task = task;
  record.phaser = phaser;
  std::lock_guard<std::mutex> lock(mutex_);
  append_locked(std::move(record));
}

void Recorder::on_blocked(const BlockedStatus& status) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = live_.find(status.task);
  if (it != live_.end() && it->second == status) return;  // recheck re-publish
  if (it != live_.end()) {
    previous_[status.task] = it->second;
    it->second = status;
  } else {
    previous_[status.task] = std::nullopt;
    live_.emplace(status.task, status);
  }
  Record record;
  record.type = RecordType::kBlocked;
  record.status = status;
  append_locked(std::move(record));
}

void Recorder::on_block_rollback(TaskId task) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = previous_.find(task);
  if (it == previous_.end()) return;  // the failed publish was dedup-dropped
  std::optional<BlockedStatus> previous = std::move(it->second);
  previous_.erase(it);
  Record record;
  if (previous.has_value()) {
    // The store still holds (and checkers still see) the old status.
    live_[task] = *previous;
    record.type = RecordType::kBlocked;
    record.status = std::move(*previous);
  } else {
    live_.erase(task);
    record.type = RecordType::kUnblocked;
    record.task = task;
  }
  append_locked(std::move(record));
}

void Recorder::on_unblocked(TaskId task) {
  std::lock_guard<std::mutex> lock(mutex_);
  previous_.erase(task);
  if (live_.erase(task) == 0) return;  // was never blocked: store no-op
  Record record;
  record.type = RecordType::kUnblocked;
  record.task = task;
  append_locked(std::move(record));
}

void Recorder::on_scan(const ScanInfo& info) {
  Record record;
  record.type = RecordType::kScan;
  record.scan = info;
  std::lock_guard<std::mutex> lock(mutex_);
  append_locked(std::move(record));
}

void Recorder::on_report(const DeadlockReport& report) {
  Record record;
  record.type = RecordType::kReport;
  record.report = report;
  std::lock_guard<std::mutex> lock(mutex_);
  append_locked(std::move(record));
  // A found deadlock is the evidence the trace exists for; make sure it
  // reaches disk even if the process is killed before a clean shutdown.
  if (failed_) return;
  try {
    writer_.flush();
  } catch (const TraceError& e) {
    failed_ = true;
    util::log_error(std::string("trace capture to ") + path_ +
                    " stopped: " + e.what());
  }
}

std::shared_ptr<Recorder> recorder_from_env() {
  static std::mutex mutex;
  static std::shared_ptr<Recorder> instance;
  static bool resolved = false;
  std::lock_guard<std::mutex> lock(mutex);
  if (!resolved) {
    if (auto path = util::env_str("ARMUS_TRACE")) {
      Recorder::Options options;
      options.path = *path;
      std::size_t token = options.path.find("%p");
      if (token != std::string::npos) {
        options.path.replace(token, 2, std::to_string(::getpid()));
      }
      for (const char* key : {"ARMUS_MODE", "ARMUS_GRAPH_MODEL",
                              "ARMUS_STORE", "ARMUS_SITE_ID"}) {
        if (auto value = util::env_str(key)) {
          options.meta.emplace_back(key, *value);
        }
      }
      options.meta.emplace_back("pid", std::to_string(::getpid()));
      instance = std::make_shared<Recorder>(std::move(options));
    }
    resolved = true;
  }
  return instance;
}

}  // namespace armus::trace
