#include "trace/recorder.h"

#include <unistd.h>

#include <chrono>
#include <fstream>

#include "util/env.h"
#include "util/log.h"

namespace armus::trace {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

TraceHeader header_for_segment(const Recorder::Options& options,
                               std::uint64_t segment) {
  TraceHeader header;
  header.meta = options.meta;
  if (segment > 0) {
    header.meta.emplace_back("segment", std::to_string(segment));
  }
  return header;
}

}  // namespace

Recorder::Recorder(Options options)
    : path_(options.path),
      options_(std::move(options)),
      writer_(std::make_unique<TraceWriter>(path_,
                                            header_for_segment(options_, 0))) {
  segment_opened_ns_ = writer_->header().start_ns;
}

Recorder::~Recorder() { flush(); }

void Recorder::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  flush_locked();
}

void Recorder::flush_locked() {
  if (failed_) return;
  try {
    writer_->flush();
  } catch (const TraceError& e) {
    failed_ = true;
    util::log_error(std::string("trace capture to ") + path_ +
                    " stopped: " + e.what());
  }
}

std::uint64_t Recorder::records_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_total_;
}

std::uint64_t Recorder::segments() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return segment_ + 1;
}

bool Recorder::failed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return failed_;
}

bool Recorder::rotation_due_locked(std::uint64_t now_ns) const {
  if (segment_records_ == 0) return false;
  if (options_.max_segment_bytes > 0 &&
      writer_->bytes_written() >= options_.max_segment_bytes) {
    return true;
  }
  if (options_.max_segment_seconds > 0 &&
      now_ns - segment_opened_ns_ >= options_.max_segment_seconds * 1'000'000'000ULL) {
    return true;
  }
  return false;
}

void Recorder::rotate_locked(std::uint64_t now_ns) {
  // The completed segment must be durable and end on a record boundary
  // before the next segment opens: a crash mid-rotation then loses at most
  // the new segment, never a flushed record (in particular a REPORT is
  // flushed whole into exactly one segment).
  writer_->flush();
  ++segment_;
  TraceHeader header = header_for_segment(options_, segment_);
  header.start_ns = now_ns;
  writer_ = std::make_unique<TraceWriter>(segment_path(path_, segment_),
                                          std::move(header));
  segment_opened_ns_ = now_ns;
  segment_records_ = 0;

  // Checkpoint: re-emit the live state so the segment replays standalone.
  // Registrations first (the replay-side registry overlay), then the
  // blocked statuses, both in deterministic (sorted) order. Re-applying
  // them during a multi-segment merge is idempotent — same status, same
  // phase — so the merged timeline is unchanged.
  for (const auto& [task, phasers] : regs_) {
    for (const auto& [phaser, phase] : phasers) {
      Record record;
      record.type = RecordType::kTaskRegistered;
      record.task = task;
      record.phaser = phaser;
      record.phase = phase;
      record.at_ns = now_ns;
      writer_->append(record);
      ++records_total_;
    }
  }
  for (const auto& [task, status] : std::map<TaskId, BlockedStatus>(
           live_.begin(), live_.end())) {
    Record record;
    record.type = RecordType::kBlocked;
    record.status = status;
    record.at_ns = now_ns;
    writer_->append(record);
    ++records_total_;
  }
}

void Recorder::append_locked(Record record) {
  // Observer callbacks run on the application's blocking path (and under
  // registry shard locks), so a write failure must not take the traced
  // program down: scream once, then stop capturing.
  if (failed_) return;
  record.at_ns = steady_now_ns();
  try {
    if (rotation_due_locked(record.at_ns)) rotate_locked(record.at_ns);
    writer_->append(record);
    ++records_total_;
    ++segment_records_;
  } catch (const TraceError& e) {
    failed_ = true;
    util::log_error(std::string("trace capture to ") + path_ +
                    " stopped: " + e.what());
  }
}

void Recorder::on_task_registered(TaskId task, PhaserUid phaser,
                                  Phase local_phase) {
  Record record;
  record.type = RecordType::kTaskRegistered;
  record.task = task;
  record.phaser = phaser;
  record.phase = local_phase;
  std::lock_guard<std::mutex> lock(mutex_);
  regs_[task][phaser] = local_phase;
  append_locked(std::move(record));
}

void Recorder::on_task_deregistered(TaskId task, PhaserUid phaser) {
  Record record;
  record.type = RecordType::kTaskDeregistered;
  record.task = task;
  record.phaser = phaser;
  std::lock_guard<std::mutex> lock(mutex_);
  if (phaser == kAllPhasers) {
    regs_.erase(task);
  } else if (auto it = regs_.find(task); it != regs_.end()) {
    it->second.erase(phaser);
    if (it->second.empty()) regs_.erase(it);
  }
  append_locked(std::move(record));
}

void Recorder::on_blocked(const BlockedStatus& status) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = live_.find(status.task);
  if (it != live_.end() && it->second == status) return;  // recheck re-publish
  if (it != live_.end()) {
    previous_[status.task] = it->second;
    it->second = status;
  } else {
    previous_[status.task] = std::nullopt;
    live_.emplace(status.task, status);
  }
  Record record;
  record.type = RecordType::kBlocked;
  record.status = status;
  append_locked(std::move(record));
}

void Recorder::on_block_rollback(TaskId task) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = previous_.find(task);
  if (it == previous_.end()) return;  // the failed publish was dedup-dropped
  std::optional<BlockedStatus> previous = std::move(it->second);
  previous_.erase(it);
  Record record;
  if (previous.has_value()) {
    // The store still holds (and checkers still see) the old status.
    live_[task] = *previous;
    record.type = RecordType::kBlocked;
    record.status = std::move(*previous);
  } else {
    live_.erase(task);
    record.type = RecordType::kUnblocked;
    record.task = task;
  }
  append_locked(std::move(record));
}

void Recorder::on_unblocked(TaskId task) {
  std::lock_guard<std::mutex> lock(mutex_);
  previous_.erase(task);
  if (live_.erase(task) == 0) return;  // was never blocked: store no-op
  Record record;
  record.type = RecordType::kUnblocked;
  record.task = task;
  append_locked(std::move(record));
}

void Recorder::on_scan(const ScanInfo& info) {
  Record record;
  record.type = RecordType::kScan;
  record.scan = info;
  std::lock_guard<std::mutex> lock(mutex_);
  append_locked(std::move(record));
}

void Recorder::on_report(const DeadlockReport& report) {
  Record record;
  record.type = RecordType::kReport;
  record.report = report;
  std::lock_guard<std::mutex> lock(mutex_);
  append_locked(std::move(record));
  // A found deadlock is the evidence the trace exists for; make sure it
  // reaches disk even if the process is killed before a clean shutdown.
  flush_locked();
}

std::shared_ptr<Recorder> recorder_from_env() {
  static std::mutex mutex;
  static std::shared_ptr<Recorder> instance;
  static bool resolved = false;
  std::lock_guard<std::mutex> lock(mutex);
  if (!resolved) {
    if (auto path = util::env_str("ARMUS_TRACE")) {
      Recorder::Options options;
      options.path = *path;
      std::size_t token = options.path.find("%p");
      if (token != std::string::npos) {
        options.path.replace(token, 2, std::to_string(::getpid()));
      }
      options.max_segment_bytes =
          static_cast<std::uint64_t>(util::env_int("ARMUS_TRACE_MAX_BYTES", 0));
      options.max_segment_seconds = static_cast<std::uint64_t>(
          util::env_int("ARMUS_TRACE_MAX_SECONDS", 0));
      for (const char* key : {"ARMUS_MODE", "ARMUS_GRAPH_MODEL",
                              "ARMUS_STORE", "ARMUS_SITE_ID"}) {
        if (auto value = util::env_str(key)) {
          options.meta.emplace_back(key, *value);
        }
      }
      options.meta.emplace_back("pid", std::to_string(::getpid()));
      instance = std::make_shared<Recorder>(std::move(options));
    }
    resolved = true;
  }
  return instance;
}

std::string segment_path(const std::string& base, std::uint64_t index) {
  return index == 0 ? base : base + "." + std::to_string(index);
}

std::vector<std::string> segment_paths(const std::string& base) {
  std::vector<std::string> paths{base};
  for (std::uint64_t index = 1;; ++index) {
    std::string path = segment_path(base, index);
    if (!std::ifstream(path).good()) break;
    paths.push_back(std::move(path));
  }
  return paths;
}

}  // namespace armus::trace
