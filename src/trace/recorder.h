#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/observer.h"
#include "trace/format.h"

/// Capture side of the trace subsystem: an EventObserver that persists
/// everything it hears to a trace file. Attach one through
/// `VerifierConfig::observer` (or `dist::Site::Config::observer`) and the
/// run becomes replayable offline — `net::verifier_config_from_env()`,
/// `dist::Site`, and the bench harness all do so automatically when
/// ARMUS_TRACE names a path.
namespace armus::trace {

class Recorder final : public EventObserver {
 public:
  struct Options {
    std::string path;

    /// Free-form header metadata ("mode", "model", …) surfaced by
    /// `armus-trace stats` and used by `verify` to pick its comparison
    /// policy. recorder_from_env() fills in the ARMUS_* environment.
    std::vector<std::pair<std::string, std::string>> meta;

    /// Segment rotation (docs/TRACE_FORMAT.md §5): when non-zero, the
    /// recorder closes the current file once it reaches this many bytes
    /// and continues in `<path>.1`, `<path>.2`, … — so a long-running
    /// producer can record forever with bounded per-file size. Rotation
    /// happens strictly *between* records (a record, in particular a
    /// REPORT, never straddles segments) and every new segment starts
    /// with a full header plus a checkpoint of the live state
    /// (registrations and blocked statuses), so each segment replays
    /// standalone and the full set merges losslessly.
    /// recorder_from_env() reads ARMUS_TRACE_MAX_BYTES.
    std::uint64_t max_segment_bytes = 0;

    /// Time-based rotation: when non-zero, a segment is also rotated once
    /// it is older than this many seconds (checked on the next append —
    /// an idle recorder does not rotate). ARMUS_TRACE_MAX_SECONDS.
    std::uint64_t max_segment_seconds = 0;
  };

  /// Creates (truncates) the trace file and writes the header. Throws
  /// TraceError when the path cannot be created — a requested trace that
  /// silently goes nowhere would be worse than a loud failure.
  explicit Recorder(Options options);

  /// Flushes and closes. Events arriving after destruction began are lost;
  /// stop verifiers/sites first.
  ~Recorder() override;

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  void flush();
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Records written across every segment (checkpoint re-emissions
  /// included).
  [[nodiscard]] std::uint64_t records_written() const;

  /// Segments created so far (1 while rotation never triggered).
  [[nodiscard]] std::uint64_t segments() const;

  /// True once a write failed (disk full, EIO). The failure is logged
  /// loudly exactly once and capture stops — the traced program keeps
  /// running, but the trace must not be trusted past its last record.
  [[nodiscard]] bool failed() const;

  // --- EventObserver (thread-safe; events serialise on one mutex) --------
  void on_task_registered(TaskId task, PhaserUid phaser,
                          Phase local_phase) override;
  void on_task_deregistered(TaskId task, PhaserUid phaser) override;
  void on_blocked(const BlockedStatus& status) override;
  void on_block_rollback(TaskId task) override;
  void on_unblocked(TaskId task) override;
  void on_scan(const ScanInfo& info) override;
  void on_report(const DeadlockReport& report) override;

 private:
  void append_locked(Record record);
  void flush_locked();

  /// True when the size or age budget is exhausted and at least one real
  /// record landed in the current segment (an over-budget checkpoint alone
  /// must not re-rotate forever).
  [[nodiscard]] bool rotation_due_locked(std::uint64_t now_ns) const;

  /// Flushes and closes the current segment, opens `<path>.<n>` with a
  /// fresh header, and re-emits the live state (registrations then blocked
  /// statuses) so the new segment replays standalone.
  void rotate_locked(std::uint64_t now_ns);

  std::string path_;
  Options options_;
  mutable std::mutex mutex_;
  std::unique_ptr<TraceWriter> writer_;
  bool failed_ = false;
  std::uint64_t segment_ = 0;
  std::uint64_t segment_opened_ns_ = 0;
  std::uint64_t records_total_ = 0;
  std::uint64_t segment_records_ = 0;  ///< non-checkpoint records this segment

  /// Last status recorded per live task: avoidance rechecks re-publish an
  /// unchanged status every poll period, which must not bloat the trace —
  /// an identical re-publish is dropped, as is an UNBLOCKED for a task
  /// that never blocked (clear_blocked is a no-op there too).
  std::unordered_map<TaskId, BlockedStatus> live_;

  /// The status each task held *before* its latest recorded BLOCKED
  /// (absent value = the task was not blocked). on_block_rollback undoes
  /// the publish from here: the store rolled back to exactly this state.
  std::unordered_map<TaskId, std::optional<BlockedStatus>> previous_;

  /// Current registrations (task -> phaser -> local phase), mirrored from
  /// the registry events so a rotated segment can start from a checkpoint.
  /// Ordered maps keep checkpoint emission deterministic.
  std::map<TaskId, std::map<PhaserUid, Phase>> regs_;
};

/// The process-wide recorder named by ARMUS_TRACE, created lazily on
/// first use and shared by every verifier that attaches through an env
/// path (nullptr when the variable is unset). One process writes one
/// trace, however many verifiers/sites it hosts — their events interleave
/// into a single timeline. "%p" in the path expands to the pid, so
/// multi-process runs that inherit one environment still get one file
/// per process. ARMUS_TRACE_MAX_BYTES / ARMUS_TRACE_MAX_SECONDS bound the
/// segments (0 / unset = never rotate). Throws on an uncreatable path.
std::shared_ptr<Recorder> recorder_from_env();

/// The on-disk name of segment `index` of a rotated trace: `base` itself
/// for 0, `base.<index>` afterwards.
std::string segment_path(const std::string& base, std::uint64_t index);

/// All existing segments of `base`, in rotation order (just `{base}` for
/// an unrotated trace). Stops at the first missing index.
std::vector<std::string> segment_paths(const std::string& base);

}  // namespace armus::trace
