#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/observer.h"
#include "trace/format.h"

/// Capture side of the trace subsystem: an EventObserver that persists
/// everything it hears to a trace file. Attach one through
/// `VerifierConfig::observer` (or `dist::Site::Config::observer`) and the
/// run becomes replayable offline — `net::verifier_config_from_env()`,
/// `dist::Site`, and the bench harness all do so automatically when
/// ARMUS_TRACE names a path.
namespace armus::trace {

class Recorder final : public EventObserver {
 public:
  struct Options {
    std::string path;

    /// Free-form header metadata ("mode", "model", …) surfaced by
    /// `armus-trace stats` and used by `verify` to pick its comparison
    /// policy. recorder_from_env() fills in the ARMUS_* environment.
    std::vector<std::pair<std::string, std::string>> meta;
  };

  /// Creates (truncates) the trace file and writes the header. Throws
  /// TraceError when the path cannot be created — a requested trace that
  /// silently goes nowhere would be worse than a loud failure.
  explicit Recorder(Options options);

  /// Flushes and closes. Events arriving after destruction began are lost;
  /// stop verifiers/sites first.
  ~Recorder() override;

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  void flush();
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint64_t records_written() const;

  /// True once a write failed (disk full, EIO). The failure is logged
  /// loudly exactly once and capture stops — the traced program keeps
  /// running, but the trace must not be trusted past its last record.
  [[nodiscard]] bool failed() const;

  // --- EventObserver (thread-safe; events serialise on one mutex) --------
  void on_task_registered(TaskId task, PhaserUid phaser,
                          Phase local_phase) override;
  void on_task_deregistered(TaskId task, PhaserUid phaser) override;
  void on_blocked(const BlockedStatus& status) override;
  void on_block_rollback(TaskId task) override;
  void on_unblocked(TaskId task) override;
  void on_scan(const ScanInfo& info) override;
  void on_report(const DeadlockReport& report) override;

 private:
  void append_locked(Record record);

  std::string path_;
  mutable std::mutex mutex_;
  TraceWriter writer_;
  bool failed_ = false;

  /// Last status recorded per live task: avoidance rechecks re-publish an
  /// unchanged status every poll period, which must not bloat the trace —
  /// an identical re-publish is dropped, as is an UNBLOCKED for a task
  /// that never blocked (clear_blocked is a no-op there too).
  std::unordered_map<TaskId, BlockedStatus> live_;

  /// The status each task held *before* its latest recorded BLOCKED
  /// (absent value = the task was not blocked). on_block_rollback undoes
  /// the publish from here: the store rolled back to exactly this state.
  std::unordered_map<TaskId, std::optional<BlockedStatus>> previous_;
};

/// The process-wide recorder named by ARMUS_TRACE, created lazily on
/// first use and shared by every verifier that attaches through an env
/// path (nullptr when the variable is unset). One process writes one
/// trace, however many verifiers/sites it hosts — their events interleave
/// into a single timeline. "%p" in the path expands to the pid, so
/// multi-process runs that inherit one environment still get one file
/// per process. Throws on an uncreatable path.
std::shared_ptr<Recorder> recorder_from_env();

}  // namespace armus::trace
