#include "trace/replayer.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_set>

#include "core/dependency_state.h"
#include "trace/recorder.h"

namespace armus::trace {

std::vector<std::string> expand_segments(const std::vector<std::string>& paths) {
  std::vector<std::string> out;
  for (const std::string& path : paths) {
    for (std::string& segment : segment_paths(path)) {
      out.push_back(std::move(segment));
    }
  }
  return out;
}

MergedTrace::MergedTrace(const std::vector<std::string>& paths) {
  headers_.reserve(paths.size());
  for (std::size_t source = 0; source < paths.size(); ++source) {
    add(TraceReader::open(paths[source]), source);
  }
  finish();
}

MergedTrace MergedTrace::from_bytes(const std::vector<std::string>& buffers) {
  MergedTrace trace;
  trace.headers_.reserve(buffers.size());
  for (std::size_t source = 0; source < buffers.size(); ++source) {
    trace.add(TraceReader(buffers[source]), source);
  }
  trace.finish();
  return trace;
}

void MergedTrace::add(TraceReader reader, std::size_t source) {
  headers_.push_back(reader.header());
  Record record;
  while (reader.next(&record)) {
    records_.push_back(TimedRecord{std::move(record), source});
    record = Record{};
  }
}

void MergedTrace::finish() {
  // stable_sort: records of one file are already in order, and equal
  // timestamps across files keep input order (deterministic merges).
  std::stable_sort(records_.begin(), records_.end(),
                   [](const TimedRecord& a, const TimedRecord& b) {
                     return a.record.at_ns < b.record.at_ns;
                   });
}

std::vector<BlockedStatus> merged_snapshot(const StateStore& store,
                                           const TaskRegistry& registry) {
  std::vector<BlockedStatus> snapshot = store.snapshot();
  for (BlockedStatus& status : snapshot) registry.merge_into(status);
  return snapshot;
}

void Replayer::apply(const Record& record) {
  switch (record.type) {
    case RecordType::kTaskRegistered:
      registry_->set_entry(record.task, record.phaser, record.phase);
      break;
    case RecordType::kTaskDeregistered:
      if (record.phaser == kAllPhasers) {
        registry_->remove_task(record.task);
      } else {
        registry_->remove_entry(record.task, record.phaser);
      }
      break;
    case RecordType::kBlocked:
      store_->set_blocked(record.status);
      break;
    case RecordType::kUnblocked:
      store_->clear_blocked(record.task);
      break;
    case RecordType::kScan:
    case RecordType::kReport:
      break;  // analysis policy belongs to the caller
  }
}

OfflineVerifier::OfflineVerifier(Options options)
    : options_(std::move(options)),
      store_(options_.store ? options_.store
                            : std::make_shared<DependencyState>()),
      incremental_(options_.model) {}

void OfflineVerifier::check_now(Result* result) {
  std::vector<BlockedStatus> snapshot = merged_snapshot(*store_, registry_);
  CheckResult check = incremental_.check(snapshot);
  ++result->scans;
  for (DeadlockReport& report : check.reports) {
    bool fresh = std::none_of(
        result->replayed.begin(), result->replayed.end(),
        [&](const DeadlockReport& seen) {
          return seen.fingerprint() == report.fingerprint();
        });
    if (fresh) result->replayed.push_back(std::move(report));
  }
}

OfflineVerifier::Result OfflineVerifier::run(const MergedTrace& trace) {
  Result result;
  Replayer replayer(store_.get(), &registry_);
  std::unordered_set<std::uint64_t> recorded_fingerprints;
  std::uint64_t previous_ns = 0;
  bool first = true;
  for (const TimedRecord& timed : trace.records()) {
    const Record& record = timed.record;
    if (options_.speed > 0 && !first && record.at_ns > previous_ns) {
      auto dt = std::chrono::nanoseconds(static_cast<std::int64_t>(
          static_cast<double>(record.at_ns - previous_ns) / options_.speed));
      std::this_thread::sleep_for(dt);
    }
    previous_ns = record.at_ns;
    first = false;

    ++result.records;
    switch (record.type) {
      case RecordType::kScan:
        if (options_.scan_at_records) check_now(&result);
        break;
      case RecordType::kReport:
        if (recorded_fingerprints.insert(record.report.fingerprint()).second) {
          result.recorded.push_back(record.report);
        }
        break;
      default:
        replayer.apply(record);
        break;
    }
  }
  if (options_.final_scan) check_now(&result);
  return result;
}

bool OfflineVerifier::Result::cycles_match() const {
  std::unordered_set<std::uint64_t> a;
  std::unordered_set<std::uint64_t> b;
  for (const DeadlockReport& report : replayed) a.insert(report.fingerprint());
  for (const DeadlockReport& report : recorded) b.insert(report.fingerprint());
  return a == b;
}

bool OfflineVerifier::Result::recorded_subset_of_replayed() const {
  std::unordered_set<std::uint64_t> seen;
  for (const DeadlockReport& report : replayed) seen.insert(report.fingerprint());
  for (const DeadlockReport& report : recorded) {
    if (!seen.contains(report.fingerprint())) return false;
  }
  return true;
}

}  // namespace armus::trace
