#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/incremental_checker.h"
#include "core/state_store.h"
#include "core/task_registry.h"
#include "trace/format.h"

/// Replay side of the trace subsystem: feed a recorded event stream back
/// into any StateStore — a fresh local DependencyState, a shared one, or a
/// dist::SharedStore slice over armus-kv — and re-run the deadlock
/// analysis offline, under the same or a *different* graph model than the
/// live run used. `tools/armus_trace.cc` is the CLI over this;
/// tests/trace_test.cc pins replay ≡ live.
namespace armus::trace {

/// A record tagged with the trace file it came from (index into the
/// MergedTrace input list).
struct TimedRecord {
  Record record;
  std::size_t source = 0;
};

/// One or more trace files merged into a single timeline ordered by
/// absolute steady-clock timestamp. Per-process monotonic clocks share one
/// base on a host, so traces of a multi-process run (one ARMUS_TRACE file
/// per site process) interleave in true order; ties keep input order.
class MergedTrace {
 public:
  /// Loads every path fully; throws TraceError on any unreadable or
  /// malformed input.
  explicit MergedTrace(const std::vector<std::string>& paths);

  /// Merges traces already held in memory (the fuzz harness replays
  /// mutants without touching disk). Same strictness as the path form.
  static MergedTrace from_bytes(const std::vector<std::string>& buffers);

  [[nodiscard]] const std::vector<TraceHeader>& headers() const {
    return headers_;
  }
  [[nodiscard]] const std::vector<TimedRecord>& records() const {
    return records_;
  }

 private:
  MergedTrace() = default;
  void add(TraceReader reader, std::size_t source);
  void finish();

  std::vector<TraceHeader> headers_;
  std::vector<TimedRecord> records_;
};

/// Expands every base path to its on-disk rotation segments (`p`, `p.1`,
/// `p.2`, … — see Recorder's segment rotation): the CLI spelling
/// `armus-trace verify run.trace` replays the whole rotated set without
/// naming each segment. Paths without extra segments pass through
/// unchanged; explicit segment names are not re-expanded.
std::vector<std::string> expand_segments(const std::vector<std::string>& paths);

/// The snapshot a checker sees: stored waits overlaid with the current
/// registrations — the replay-side mirror of Verifier::current_snapshot.
std::vector<BlockedStatus> merged_snapshot(const StateStore& store,
                                           const TaskRegistry& registry);

/// Applies state records (BLOCKED / UNBLOCKED / TASK_REGISTERED /
/// TASK_DEREGISTERED) to a store + registry pair; SCAN and REPORT records
/// are ignored — scheduling analyses is the caller's policy.
class Replayer {
 public:
  Replayer(StateStore* store, TaskRegistry* registry)
      : store_(store), registry_(registry) {}

  void apply(const Record& record);

 private:
  StateStore* store_;
  TaskRegistry* registry_;
};

/// Replays a merged trace and re-runs the deadlock analysis, reproducing
/// the live run's scan schedule: every recorded SCAN triggers one check
/// over the replayed state (the recorded run checked exactly then, so a
/// deadlock it saw is on the timeline — replay-to-end would miss cycles
/// that were later rescued). The result carries both verdicts for
/// comparison.
class OfflineVerifier {
 public:
  struct Options {
    /// Model for the offline analysis (kAuto = the §5.1 density rule, the
    /// library default — not necessarily what the live run used; the CLI
    /// seeds this from the trace header's ARMUS_GRAPH_MODEL meta).
    /// Override to re-verify a capture under a different model.
    GraphModel model = GraphModel::kAuto;

    /// Store replayed statuses land in. nullptr = fresh DependencyState;
    /// pass a dist::SharedStore to replay into armus-kv.
    std::shared_ptr<StateStore> store;

    /// Run one check per recorded SCAN (default). Off = only the final
    /// check (when final_scan is set).
    bool scan_at_records = true;

    /// Run one extra check after the last record.
    bool final_scan = false;

    /// Replay pacing: 0 (default) = as fast as possible; 1 = original
    /// timing; k = k× faster than recorded.
    double speed = 0.0;
  };

  struct Result {
    /// Deadlocks the offline analysis found, deduplicated by task set.
    std::vector<DeadlockReport> replayed;

    /// Deadlocks the live run recorded (REPORT records), deduplicated.
    std::vector<DeadlockReport> recorded;

    std::uint64_t records = 0;  ///< records applied
    std::uint64_t scans = 0;    ///< offline checks run

    /// Same deadlock-or-not verdict.
    [[nodiscard]] bool verdicts_match() const {
      return replayed.empty() == recorded.empty();
    }

    /// Same set of cycle task sets (fingerprint equality, order-free).
    [[nodiscard]] bool cycles_match() const;

    /// Every recorded deadlock reappeared in the replay (the guarantee the
    /// trace-ordering contract makes unconditional; the replay may surface
    /// *additional* cycles the live run's scan timing never reported).
    [[nodiscard]] bool recorded_subset_of_replayed() const;
  };

  explicit OfflineVerifier(Options options);

  /// Consumes the whole trace. Callable once per instance.
  Result run(const MergedTrace& trace);

 private:
  void check_now(Result* result);

  Options options_;
  std::shared_ptr<StateStore> store_;
  TaskRegistry registry_;
  IncrementalChecker incremental_;
};

}  // namespace armus::trace
