#include "util/env.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace armus::util {

std::optional<std::string> env_str(const std::string& name) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || raw[0] == '\0') return std::nullopt;
  return std::string(raw);
}

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  auto raw = env_str(name);
  if (!raw) return fallback;
  std::size_t pos = 0;
  std::int64_t value = 0;
  try {
    value = std::stoll(*raw, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument(name + ": expected an integer, got '" + *raw + "'");
  }
  if (pos != raw->size()) {
    throw std::invalid_argument(name + ": trailing junk in '" + *raw + "'");
  }
  return value;
}

double env_double(const std::string& name, double fallback) {
  auto raw = env_str(name);
  if (!raw) return fallback;
  std::size_t pos = 0;
  double value = 0;
  try {
    value = std::stod(*raw, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument(name + ": expected a number, got '" + *raw + "'");
  }
  if (pos != raw->size()) {
    throw std::invalid_argument(name + ": trailing junk in '" + *raw + "'");
  }
  return value;
}

bool env_bool(const std::string& name, bool fallback) {
  auto raw = env_str(name);
  if (!raw) return fallback;
  std::string v = *raw;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw std::invalid_argument(name + ": expected a boolean, got '" + *raw + "'");
}

}  // namespace armus::util
