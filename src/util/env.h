#pragma once

#include <cstdint>
#include <optional>
#include <string>

/// Environment-variable configuration helpers.
///
/// All tunables of the library and the benchmark harness are read through
/// these functions so that a single `ARMUS_*` naming convention applies and
/// malformed values fail loudly instead of being silently ignored.
namespace armus::util {

/// Returns the raw value of environment variable `name`, if set and non-empty.
std::optional<std::string> env_str(const std::string& name);

/// Returns `name` parsed as a signed 64-bit integer, or `fallback` when unset.
/// Throws std::invalid_argument when the variable is set but not numeric.
std::int64_t env_int(const std::string& name, std::int64_t fallback);

/// Returns `name` parsed as a double, or `fallback` when unset.
/// Throws std::invalid_argument when the variable is set but not numeric.
double env_double(const std::string& name, double fallback);

/// Returns `name` parsed as a boolean (1/0, true/false, yes/no, on/off;
/// case-insensitive), or `fallback` when unset.
/// Throws std::invalid_argument for any other value.
bool env_bool(const std::string& name, bool fallback);

}  // namespace armus::util
