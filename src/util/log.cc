#include "util/log.h"

#include <atomic>
#include <cstdio>

#include "util/env.h"

namespace armus::util {

namespace {

LogLevel initial_level() {
  auto raw = env_str("ARMUS_LOG_LEVEL");
  if (!raw) return LogLevel::kWarn;
  if (*raw == "debug") return LogLevel::kDebug;
  if (*raw == "info") return LogLevel::kInfo;
  if (*raw == "warn") return LogLevel::kWarn;
  if (*raw == "error") return LogLevel::kError;
  if (*raw == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::atomic<LogLevel> g_level{initial_level()};
std::mutex g_io_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& message) {
  if (level < log_level()) return;
  std::lock_guard<std::mutex> lock(g_io_mutex);
  std::fprintf(stderr, "[armus %s] %s\n", level_name(level), message.c_str());
}

}  // namespace armus::util
