#pragma once

#include <mutex>
#include <sstream>
#include <string>

/// Minimal thread-safe logging. The verification library reports deadlocks
/// through callbacks; logging is for diagnostics only and is off by default
/// below `Level::kWarn` (override with ARMUS_LOG_LEVEL=debug|info|warn|error).
namespace armus::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Current log threshold (initialised from ARMUS_LOG_LEVEL).
LogLevel log_level();

/// Overrides the log threshold for the process.
void set_log_level(LogLevel level);

/// Emits one line to stderr if `level` passes the threshold. Thread-safe.
void log_line(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    log_line(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    log_line(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    log_line(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::kError)
    log_line(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace armus::util
