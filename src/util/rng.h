#pragma once

#include <cstdint>
#include <limits>

/// Deterministic, seedable pseudo-random number generation.
///
/// Benchmarks and property tests must be reproducible, so everything random
/// in this repository flows through Xoshiro256** seeded via SplitMix64 —
/// both small, fast, and well studied. The generators satisfy the C++
/// UniformRandomBitGenerator concept and can be plugged into <random>
/// distributions when needed.
namespace armus::util {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t operator()() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: the workhorse generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm();
  }

  constexpr std::uint64_t operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  constexpr std::uint64_t below(std::uint64_t bound) {
    // Lemire-style rejection-free reduction is overkill here; modulo bias is
    // negligible for the bounds used in tests/benchmarks, but we still mask
    // away the easy cases to keep distributions honest for small bounds.
    std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability `p`.
  constexpr bool chance(double p) { return uniform() < p; }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace armus::util
