#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/timer.h"

namespace armus::util {

Summary summarize(const std::vector<double>& samples) {
  Summary s;
  if (samples.empty()) return s;
  s.count = samples.size();
  s.min = *std::min_element(samples.begin(), samples.end());
  s.max = *std::max_element(samples.begin(), samples.end());
  double sum = 0.0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(s.count);
  if (s.count > 1) {
    double sq = 0.0;
    for (double v : samples) sq += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(sq / static_cast<double>(s.count - 1));
    s.ci95 = 1.96 * s.stddev / std::sqrt(static_cast<double>(s.count));
  }
  return s;
}

Summary run_samples(std::size_t samples, const std::function<void()>& body) {
  body();  // warm-up sample, discarded per Georges et al.
  std::vector<double> times;
  times.reserve(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    Stopwatch sw;
    body();
    times.push_back(sw.seconds());
  }
  return summarize(times);
}

double relative_overhead(const Summary& measured, const Summary& baseline) {
  if (baseline.mean == 0.0) return 0.0;
  return (measured.mean - baseline.mean) / baseline.mean;
}

std::string format_overhead(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f%%", fraction * 100.0);
  return buf;
}

WelchResult welch_t_test(const Summary& a, const Summary& b) {
  WelchResult result;
  if (a.count < 2 || b.count < 2) return result;
  double va = (a.stddev * a.stddev) / static_cast<double>(a.count);
  double vb = (b.stddev * b.stddev) / static_cast<double>(b.count);
  double se = std::sqrt(va + vb);
  if (se == 0.0) {
    // Identical, noiseless samples: no evidence of a difference unless the
    // means themselves differ (then the difference is exact).
    result.significant_at_5pct = a.mean != b.mean;
    result.t = result.significant_at_5pct ? INFINITY : 0.0;
    return result;
  }
  result.t = (a.mean - b.mean) / se;
  double num = (va + vb) * (va + vb);
  double den = va * va / static_cast<double>(a.count - 1) +
               vb * vb / static_cast<double>(b.count - 1);
  result.degrees_of_freedom = den > 0 ? num / den : 1.0;

  // Two-sided 5% critical values of Student's t for small df; beyond 30 df
  // the normal approximation (1.96) is accurate to ~1%.
  static constexpr double kCritical[] = {
      0,     12.71, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
      2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
      2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
      2.042};
  int df = static_cast<int>(result.degrees_of_freedom);
  double critical = df >= 30 ? 1.96 : kCritical[std::max(df, 1)];
  result.significant_at_5pct = std::fabs(result.t) > critical;
  return result;
}

}  // namespace armus::util
