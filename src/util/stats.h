#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

/// Statistics for the benchmark harness.
///
/// The paper (Section 6) follows the start-up performance methodology of
/// Georges et al. [OOPSLA'07]: take k+1 samples of the execution time,
/// discard the first (warm-up), and report the mean of the remaining k with
/// a 95% confidence interval computed with the standard normal z-statistic.
/// `run_samples` implements exactly that protocol; the paper uses k = 30,
/// our benches default to a smaller k (configurable via ARMUS_BENCH_SAMPLES)
/// to keep the full suite fast.
namespace armus::util {

/// Summary statistics over a set of samples.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;   // sample standard deviation (n-1 denominator)
  double ci95 = 0.0;     // 95% CI half-width: 1.96 * stddev / sqrt(n)
  double min = 0.0;
  double max = 0.0;

  /// Relative half-width of the confidence interval (ci95 / mean).
  [[nodiscard]] double ci95_rel() const { return mean != 0.0 ? ci95 / mean : 0.0; }
};

/// Computes summary statistics for `samples`. Returns a zeroed Summary for
/// an empty input.
Summary summarize(const std::vector<double>& samples);

/// Runs `body` `samples + 1` times, discards the first run, and summarises
/// the wall-clock seconds of the remaining runs (Georges et al. protocol).
Summary run_samples(std::size_t samples, const std::function<void()>& body);

/// Relative overhead of `measured` versus `baseline` means: (m - b) / b.
double relative_overhead(const Summary& measured, const Summary& baseline);

/// Renders an overhead fraction as the paper prints it, e.g. "7%", "-4%".
std::string format_overhead(double fraction);

/// Welch's two-sample t statistic for the difference of means, with the
/// Welch-Satterthwaite degrees of freedom. Used to back the paper's §6.2
/// claim of "no statistical evidence of an execution overhead": at the 5%
/// level, |t| below the critical value means the checked and unchecked
/// means are statistically indistinguishable.
struct WelchResult {
  double t = 0.0;
  double degrees_of_freedom = 0.0;
  bool significant_at_5pct = false;
};

WelchResult welch_t_test(const Summary& a, const Summary& b);

}  // namespace armus::util
