#include "util/table.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace armus::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table row arity mismatch: expected " +
                                std::to_string(header_.size()) + ", got " +
                                std::to_string(row.size()));
  }
  rows_.push_back(std::move(row));
}

std::string Table::to_text() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) out << ' ';
    }
    out << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << ',';
      // Cells in this harness never contain commas or quotes; keep it simple.
      out << row[c];
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string fmt_double(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

}  // namespace armus::util
