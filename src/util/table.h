#pragma once

#include <string>
#include <vector>

/// Plain-text table rendering for the benchmark harness. Each bench binary
/// prints rows in the same layout as the corresponding paper table, plus a
/// machine-readable CSV block for downstream processing.
namespace armus::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; it must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Renders the table with aligned columns.
  [[nodiscard]] std::string to_text() const;

  /// Renders the table as CSV (header + rows).
  [[nodiscard]] std::string to_csv() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimal places.
std::string fmt_double(double value, int digits = 2);

}  // namespace armus::util
