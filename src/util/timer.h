#pragma once

#include <chrono>

/// Monotonic wall-clock stopwatch used by the verification scanner and the
/// benchmark harness.
namespace armus::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

  /// Elapsed time in microseconds.
  [[nodiscard]] double micros() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace armus::util
