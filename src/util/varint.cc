#include "util/varint.h"

namespace armus::util {

void append_varint(std::string& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

std::uint64_t read_varint(std::string_view bytes, std::size_t* offset) {
  std::uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (*offset >= bytes.size()) {
      throw CodecError("truncated varint at byte " + std::to_string(*offset));
    }
    std::uint8_t byte = static_cast<std::uint8_t>(bytes[(*offset)++]);
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      // The final group of a 64-bit varint (shift 63) has one payload bit.
      if (shift == 63 && (byte & 0x7e) != 0) {
        throw CodecError("varint overflows 64 bits");
      }
      return value;
    }
  }
  throw CodecError("varint longer than 10 bytes");
}

std::uint64_t read_count(std::string_view bytes, std::size_t* offset,
                         const char* what) {
  std::uint64_t count = read_varint(bytes, offset);
  if (count > bytes.size() - *offset) {
    throw CodecError(std::string("implausible ") + what + " count " +
                     std::to_string(count) + " with " +
                     std::to_string(bytes.size() - *offset) +
                     " bytes remaining");
  }
  return count;
}

void append_bytes(std::string& out, std::string_view bytes) {
  append_varint(out, bytes.size());
  out.append(bytes);
}

std::string read_bytes(std::string_view bytes, std::size_t* offset) {
  std::uint64_t length = read_varint(bytes, offset);
  if (length > bytes.size() - *offset) {
    throw CodecError("byte string of " + std::to_string(length) +
                     " declared with only " +
                     std::to_string(bytes.size() - *offset) +
                     " bytes remaining");
  }
  std::string out(bytes.substr(*offset, length));
  *offset += length;
  return out;
}

}  // namespace armus::util
