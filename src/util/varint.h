#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

/// The LEB128 varint primitive every armus binary format builds on: slice
/// batches (`dist/codec`), armus-kv message bodies (`src/net/`), and trace
/// files (`src/trace/`). Hoisted here so the formats above core/ and the
/// trace layer beside it share one strict implementation without depending
/// on each other.
namespace armus::util {

/// Raised by every strict binary decoder in armus: truncated input,
/// unterminated or oversized varints, implausible counts, and trailing
/// garbage. `dist::CodecError` and `trace::TraceError` are aliases — a
/// corrupt input must fail loudly instead of yielding a bogus graph.
class CodecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Appends `value` to `out` as an unsigned LEB128 varint (little-endian
/// base-128, low 7 bits per byte, high bit = "more bytes follow"; values
/// below 128 take one byte).
void append_varint(std::string& out, std::uint64_t value);

/// Strict LEB128 reader over [*offset, bytes.size()): advances *offset
/// past the varint. Throws CodecError on truncation, a varint longer than
/// 10 bytes, or 64-bit overflow.
std::uint64_t read_varint(std::string_view bytes, std::size_t* offset);

/// Guards element counts before anything is allocated: every encoded
/// element occupies at least one byte, so a count exceeding the remaining
/// input is bogus no matter what follows. `what` names the element in the
/// error message.
std::uint64_t read_count(std::string_view bytes, std::size_t* offset,
                         const char* what);

/// Appends `nbytes:varint raw[nbytes]` (a length-delimited byte string).
void append_bytes(std::string& out, std::string_view bytes);

/// Reads a length-delimited byte string; throws CodecError when the
/// declared length exceeds the remaining input (checked before any
/// allocation).
std::string read_bytes(std::string_view bytes, std::size_t* offset);

}  // namespace armus::util
