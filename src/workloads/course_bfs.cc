#include <atomic>
#include <mutex>
#include <vector>

#include "runtime/clock.h"
#include "util/rng.h"
#include "workloads/workload.h"

/// BFS — parallel breadth-first search (§6.3): "a task per node being
/// visited and a barrier per depth-level". Every level spawns one task per
/// frontier node, all registered on a fresh clock; the tasks expand their
/// node, meet at the clock, and terminate. Many short-lived tasks against
/// one barrier per level: the WFG explodes (Table 3 BFS: 579 edges) while
/// the SG stays tiny (7).
namespace armus::wl {

namespace {

struct Graph {
  std::size_t nodes = 0;
  std::vector<std::vector<std::uint32_t>> adj;
};

Graph random_graph(std::size_t n, std::size_t edges, std::uint64_t seed) {
  Graph g;
  g.nodes = n;
  g.adj.resize(n);
  util::Xoshiro256 rng(seed);
  // A Hamiltonian-ish backbone keeps the graph connected.
  for (std::size_t v = 1; v < n; ++v) {
    auto u = static_cast<std::uint32_t>(rng.below(v));
    g.adj[u].push_back(static_cast<std::uint32_t>(v));
    g.adj[v].push_back(u);
  }
  for (std::size_t e = 0; e + n - 1 < edges; ++e) {
    auto u = static_cast<std::uint32_t>(rng.below(n));
    auto v = static_cast<std::uint32_t>(rng.below(n));
    if (u == v) continue;
    g.adj[u].push_back(v);
    g.adj[v].push_back(u);
  }
  return g;
}

std::vector<int> serial_bfs(const Graph& g, std::uint32_t root) {
  std::vector<int> dist(g.nodes, -1);
  std::vector<std::uint32_t> frontier{root};
  dist[root] = 0;
  int level = 0;
  while (!frontier.empty()) {
    ++level;
    std::vector<std::uint32_t> next;
    for (std::uint32_t u : frontier) {
      for (std::uint32_t v : g.adj[u]) {
        if (dist[v] == -1) {
          dist[v] = level;
          next.push_back(v);
        }
      }
    }
    frontier = std::move(next);
  }
  return dist;
}

}  // namespace

RunResult run_bfs(const RunConfig& config) {
  const std::size_t n = 160 * static_cast<std::size_t>(config.scale);
  const Graph g = random_graph(n, 3 * n, 7);
  const std::uint32_t root = 0;

  std::vector<std::atomic<int>> dist(n);
  for (auto& d : dist) d.store(-1, std::memory_order_relaxed);
  dist[root].store(0);

  std::vector<std::uint32_t> frontier{root};
  std::mutex next_mutex;
  int level = 0;

  while (!frontier.empty()) {
    ++level;
    std::vector<std::uint32_t> next;

    // A fresh barrier per depth level, one task per frontier node.
    rt::Clock level_clock = rt::Clock::make(config.verifier);
    rt::Finish finish(config.verifier);
    for (std::uint32_t u : frontier) {
      rt::async_clocked(finish, {level_clock}, [&, u] {
        std::vector<std::uint32_t> found;
        for (std::uint32_t v : g.adj[u]) {
          int expected = -1;
          if (dist[v].compare_exchange_strong(expected, level)) {
            found.push_back(v);
          }
        }
        {
          std::lock_guard<std::mutex> lock(next_mutex);
          next.insert(next.end(), found.begin(), found.end());
        }
        level_clock.advance();  // the per-level barrier step
      });
    }
    level_clock.drop();
    finish.wait();
    frontier = std::move(next);
  }

  // Validation against serial BFS.
  std::vector<int> expected = serial_bfs(g, root);
  bool valid = true;
  long checksum = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (dist[v].load() != expected[v]) valid = false;
    checksum += expected[v];
  }

  RunResult result;
  result.checksum = static_cast<double>(checksum);
  result.valid = valid;
  result.detail = valid ? "distances match serial BFS" : "distance mismatch";
  return result;
}

}  // namespace armus::wl
