#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/clocked_var.h"
#include "runtime/finish.h"
#include "workloads/workload.h"

/// FI — iterative Fibonacci over clocked variables (§6.3): n tasks, one
/// clocked variable each. Following the X10 clocked-variable design
/// [Atkins et al.], *readers are full members* of a variable's barrier:
/// variable i synchronises its writer (task i) with its readers (tasks i+1
/// and i+2). Every task is therefore registered with up to three barriers,
/// which is what gives FI its distinctive Table 3 profile — the SG carries
/// more edges than the WFG ("more resources than tasks").
///
/// Protocol per task i:
///   1. arrive at the two input variables (split-phase signal: "at the
///      read point");
///   2. await phase 1 of each input — satisfied once its writer has
///      published *and* the sibling reader has arrived;
///   3. read the inputs, compute fib(i);
///   4. put into variable i (publish for phase 1 + arrive).
///
/// A start gate holds every task until all are spawned, so the whole chain
/// is concurrently blocked — the worst-case dependency-graph shape the
/// paper measures.
namespace armus::wl {

RunResult run_fi(const RunConfig& config) {
  // fib(92) overflows uint64; stay safely below.
  const std::size_t n =
      std::min<std::size_t>(90, 24 * static_cast<std::size_t>(config.scale));

  std::vector<std::unique_ptr<rt::ClockedVar<std::uint64_t>>> vars;
  vars.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    vars.push_back(
        std::make_unique<rt::ClockedVar<std::uint64_t>>(config.verifier));
  }

  std::atomic<bool> start{false};
  std::uint64_t result_value = 0;

  {
    rt::Finish finish(config.verifier);
    for (std::size_t i = 0; i < n; ++i) {
      finish.spawn_with(
          // Membership of variable i's barrier: writer i plus its actual
          // readers — the parent registers all roles before any task runs
          // (no reader can miss a phase, no clock can rewind). Tasks 0 and
          // 1 read nothing, so they join only their own variable.
          [&, i](TaskId child) {
            vars[i]->underlying()->register_task(child, 0,
                                                 ph::RegMode::kSigWait);
            if (i >= 2) {
              vars[i - 1]->underlying()->register_task(child, 0,
                                                       ph::RegMode::kSigWait);
              vars[i - 2]->underlying()->register_task(child, 0,
                                                       ph::RegMode::kSigWait);
            }
          },
          [&, i] {
            while (!start.load(std::memory_order_acquire)) {
              std::this_thread::yield();
            }
            TaskId self = rt::current_task();
            std::uint64_t value;
            if (i < 2) {
              value = 1;
            } else {
              auto& a = *vars[i - 1];
              auto& b = *vars[i - 2];
              // Split-phase: signal presence at both read points first, so
              // the sibling readers are not held back by us...
              a.underlying()->arrive(self);
              b.underlying()->arrive(self);
              // ...then wait for the writers (and sibling readers).
              a.underlying()->await(self, 1);
              b.underlying()->await(self, 1);
              value = a.peek(1) + b.peek(1);
            }
            vars[i]->put(value);  // publish for phase 1 + arrive
            if (i == n - 1) result_value = value;
            // Retire from the input barriers; variable i's own membership
            // is dropped when readers finish (or at phaser destruction).
            if (i >= 2) {
              vars[i - 1]->underlying()->deregister(self);
              vars[i - 2]->underlying()->deregister(self);
            }
          },
          "fi-" + std::to_string(i));
    }
    start.store(true, std::memory_order_release);
    finish.wait();
  }

  // Serial validation.
  std::uint64_t a = 1, b = 1;
  for (std::size_t i = 2; i < n; ++i) {
    std::uint64_t c = a + b;
    a = b;
    b = c;
  }
  std::uint64_t expected = n >= 2 ? b : 1;

  RunResult result;
  result.checksum = static_cast<double>(result_value % 1000000007ull);
  result.valid = result_value == expected;
  result.detail =
      "fib(" + std::to_string(n - 1) + ") = " + std::to_string(result_value);
  return result;
}

}  // namespace armus::wl
