#include <memory>

#include "runtime/clocked_var.h"
#include "runtime/finish.h"
#include "workloads/workload.h"

/// FR — recursive Fibonacci (§6.3): recursive calls run in parallel, and a
/// single-write clocked variable (a future) synchronises each caller with
/// its callee. Tasks and barriers are created dynamically in the recursion
/// — the fork/join shape where "it can happen that there are as many join
/// barriers as there are tasks" (§2.2).
namespace armus::wl {

namespace {

std::uint64_t fib_parallel(int n, Verifier* verifier) {
  if (n < 2) return 1;
  auto left = std::make_unique<rt::ClockedVar<std::uint64_t>>(verifier);
  auto right = std::make_unique<rt::ClockedVar<std::uint64_t>>(verifier);

  rt::Finish finish(verifier);
  finish.spawn_with(
      [&](TaskId child) { left->register_writer(child); },
      [&, n] {
        left->put(fib_parallel(n - 1, verifier));
        left->deregister();
      });
  finish.spawn_with(
      [&](TaskId child) { right->register_writer(child); },
      [&, n] {
        right->put(fib_parallel(n - 2, verifier));
        right->deregister();
      });

  // Futures synchronise caller and callees; the finish then reaps them.
  std::uint64_t result = left->get(1) + right->get(1);
  finish.wait();
  return result;
}

std::uint64_t fib_serial(int n) {
  return n < 2 ? 1 : fib_serial(n - 1) + fib_serial(n - 2);
}

}  // namespace

RunResult run_fr(const RunConfig& config) {
  // Task count grows as fib(n); keep the tree laptop-sized.
  const int n = std::min(14, 9 + config.scale);
  std::uint64_t got = fib_parallel(n, config.verifier);
  std::uint64_t expected = fib_serial(n);

  RunResult result;
  result.checksum = static_cast<double>(got);
  result.valid = got == expected;
  result.detail = "fib(" + std::to_string(n) + ") = " + std::to_string(got);
  return result;
}

}  // namespace armus::wl
