#include <vector>

#include "runtime/clock.h"
#include "workloads/workload.h"

/// PS — parallel prefix sum (§6.3): one task per array element, all
/// synchronised by a single global barrier (a clock), stepping through the
/// Hillis-Steele doubling algorithm. The extreme "many tasks, one barrier"
/// shape: its WFG is huge while its SG has a handful of edges (Table 3:
/// 781 vs 6).
namespace armus::wl {

RunResult run_ps(const RunConfig& config) {
  const std::size_t n = 48 * static_cast<std::size_t>(config.scale);
  std::vector<std::uint64_t> buf_a(n), buf_b(n);
  for (std::size_t i = 0; i < n; ++i) buf_a[i] = (i * 2654435761u) % 1000;
  const std::vector<std::uint64_t> input = buf_a;

  rt::Clock clock = rt::Clock::make(config.verifier);
  rt::Finish finish(config.verifier);
  for (std::size_t i = 0; i < n; ++i) {
    rt::async_clocked(finish, {clock}, [&, i] {
      std::vector<std::uint64_t>* src = &buf_a;
      std::vector<std::uint64_t>* dst = &buf_b;
      for (std::size_t stride = 1; stride < n; stride *= 2) {
        std::uint64_t value = (*src)[i];
        if (i >= stride) value += (*src)[i - stride];
        (*dst)[i] = value;
        clock.advance();  // everyone wrote dst; safe to swap roles
        std::swap(src, dst);
        clock.advance();  // everyone swapped; safe to overwrite dst
      }
      if (src != &buf_a) buf_a[i] = (*src)[i];  // normalise result location
    });
  }
  clock.drop();
  finish.wait();

  // Serial validation: inclusive prefix sum.
  std::uint64_t running = 0;
  bool valid = true;
  for (std::size_t i = 0; i < n; ++i) {
    running += input[i];
    if (buf_a[i] != running) valid = false;
  }

  RunResult result;
  result.checksum = static_cast<double>(buf_a[n - 1] % 1000000007ull);
  result.valid = valid;
  result.detail = valid ? "prefix sums match serial"
                        : "prefix sum mismatch";
  return result;
}

}  // namespace armus::wl
