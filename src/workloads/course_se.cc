#include <memory>
#include <mutex>
#include <vector>

#include "runtime/clocked_var.h"
#include "runtime/finish.h"
#include "workloads/workload.h"

/// SE — Sieve of Eratosthenes over clocked variables (§6.3): one task per
/// prime, one clocked variable per task. Stages form a dataflow pipeline:
/// the driver streams candidates into stage 1; each stage filters multiples
/// of its prime and streams survivors to the next stage it spawns on
/// demand. Similar task and barrier counts — the shape where all graph
/// models perform alike (Table 3 SE).
namespace armus::wl {

namespace {

constexpr std::uint32_t kEndOfStream = 0;

struct SieveShared {
  Verifier* verifier = nullptr;
  std::mutex primes_mutex;
  std::vector<std::uint32_t> primes;
};

using Stream = rt::ClockedVar<std::uint32_t>;

/// One pipeline stage: consumes `input` phase by phase; the first value is
/// this stage's prime; survivors flow to a lazily spawned next stage.
void sieve_stage(std::shared_ptr<Stream> input, SieveShared* shared,
                 rt::Finish* finish) {
  Phase phase = 1;
  std::uint32_t prime = input->get(phase);
  if (prime == kEndOfStream) return;
  {
    std::lock_guard<std::mutex> lock(shared->primes_mutex);
    shared->primes.push_back(prime);
  }

  std::shared_ptr<Stream> output;
  for (;;) {
    ++phase;
    std::uint32_t value = input->get(phase);
    input->prune(phase);  // sole consumer: drop delivered values
    if (value == kEndOfStream) {
      if (output) {
        output->put(kEndOfStream);
        output->deregister();
      }
      return;
    }
    if (value % prime == 0) continue;
    if (!output) {
      output = std::make_shared<Stream>(shared->verifier);
      // This stage is the writer; claim the stream *before* the consumer
      // exists so phase 1 cannot be observed unclaimed.
      output->register_writer();
      auto next_input = output;
      finish->spawn([next_input, shared, finish] {
        sieve_stage(next_input, shared, finish);
      });
    }
    output->put(value);
  }
}

}  // namespace

RunResult run_se(const RunConfig& config) {
  const std::uint32_t limit = 150 * static_cast<std::uint32_t>(config.scale);
  SieveShared shared;
  shared.verifier = config.verifier;

  {
    rt::Finish finish(config.verifier);
    auto first = std::make_shared<Stream>(config.verifier);
    first->register_writer();  // the driver feeds the first stage
    finish.spawn([first, &shared, &finish] {
      sieve_stage(first, &shared, &finish);
    });
    for (std::uint32_t candidate = 2; candidate <= limit; ++candidate) {
      first->put(candidate);
    }
    first->put(kEndOfStream);
    first->deregister();
    finish.wait();
  }

  // Serial sieve for validation.
  std::vector<bool> composite(limit + 1, false);
  std::vector<std::uint32_t> expected;
  for (std::uint32_t p = 2; p <= limit; ++p) {
    if (composite[p]) continue;
    expected.push_back(p);
    for (std::uint32_t q = p * 2; q <= limit; q += p) composite[q] = true;
  }

  std::sort(shared.primes.begin(), shared.primes.end());
  bool valid = shared.primes == expected;

  RunResult result;
  result.checksum = static_cast<double>(shared.primes.size());
  result.valid = valid;
  result.detail = "found " + std::to_string(shared.primes.size()) +
                  " primes up to " + std::to_string(limit);
  return result;
}

}  // namespace armus::wl
