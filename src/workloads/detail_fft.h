#pragma once

#include <cmath>
#include <complex>
#include <numbers>

/// Shared 1D FFT used by the local (NPB) and distributed (HPCC) FT kernels.
namespace armus::wl::detail {

/// In-place iterative radix-2 Cooley-Tukey of `row[0..n)`; inverse when
/// `invert` (without the 1/n normalisation — applied by the caller).
inline void fft1d(std::complex<double>* row, std::size_t n, bool invert) {
  using Cx = std::complex<double>;
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(row[i], row[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    double angle = 2.0 * std::numbers::pi / static_cast<double>(len) *
                   (invert ? 1.0 : -1.0);
    Cx wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Cx w(1.0);
      for (std::size_t j = 0; j < len / 2; ++j) {
        Cx u = row[i + j];
        Cx v = row[i + j + len / 2] * w;
        row[i + j] = u + v;
        row[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

}  // namespace armus::wl::detail
