#include "workloads/dist_kernels.h"

#include <atomic>
#include <cmath>
#include <complex>
#include <mutex>

#include "phaser/phaser.h"
#include "runtime/task.h"
#include "util/rng.h"
#include "workloads/detail_fft.h"
#include "workloads/spmd.h"

namespace armus::wl {

namespace {

/// Multi-site SPMD harness: `total_tasks` workers spread round-robin over
/// the cluster's sites, all pre-registered on one shared phaser. Each
/// worker's blocking events go to its own site's Armus instance via the
/// task-verifier binding; the phaser itself carries site 0's verifier so
/// checked/unchecked is decided by the cluster being present.
void run_dist_spmd(const DistRunConfig& config,
                   const std::function<void(int rank, ph::Phaser& barrier)>& body) {
  Verifier* barrier_verifier =
      config.cluster != nullptr ? &config.cluster->site(0).verifier() : nullptr;
  auto barrier = ph::Phaser::create(barrier_verifier);

  // The explicit PL gang launch: allocate every task name, bind each to its
  // site, register all of them on the shared barrier, and only then fork —
  // an early starter can therefore never advance the clock past a sibling
  // that is still unregistered.
  const int total = config.total_tasks();
  std::vector<TaskId> ids;
  ids.reserve(static_cast<std::size_t>(total));
  for (int rank = 0; rank < total; ++rank) {
    TaskId id = fresh_task_id();
    if (config.cluster != nullptr) {
      config.cluster->bind_task(id, config.site_for(rank));
    }
    barrier->register_task(id, 0, ph::RegMode::kSigWait);
    ids.push_back(id);
  }

  std::vector<rt::Task> workers;
  workers.reserve(static_cast<std::size_t>(total));
  for (int rank = 0; rank < total; ++rank) {
    workers.push_back(rt::spawn_as(
        ids[static_cast<std::size_t>(rank)],
        [&body, rank, barrier] { body(rank, *barrier); },
        config.verifier_for(rank), "dist-" + std::to_string(rank)));
  }
  std::exception_ptr first;
  for (rt::Task& worker : workers) {
    try {
      worker.join();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

/// Barrier step for the calling worker.
void step(ph::Phaser& barrier) { barrier.advance(rt::current_task()); }

}  // namespace

// --- JACOBI --------------------------------------------------------------------

RunResult run_dist_jacobi(const DistRunConfig& config) {
  const std::size_t g = 48 * static_cast<std::size_t>(config.scale);
  const int iters = config.iterations > 0 ? config.iterations : 20;
  const int total = config.total_tasks();

  std::vector<double> a(g * g, 0.0), b(g * g, 0.0);
  // Hot boundary at the top row (Dirichlet), zero elsewhere.
  for (std::size_t j = 0; j < g; ++j) a[j] = b[j] = 100.0;

  run_dist_spmd(config, [&](int rank, ph::Phaser& barrier) {
    Range rows = partition(g - 2, total, rank);
    std::vector<double>* src = &a;
    std::vector<double>* dst = &b;
    for (int it = 0; it < iters; ++it) {
      for (std::size_t ri = rows.begin; ri < rows.end; ++ri) {
        std::size_t i = ri + 1;
        for (std::size_t j = 1; j + 1 < g; ++j) {
          (*dst)[i * g + j] =
              0.25 * ((*src)[(i - 1) * g + j] + (*src)[(i + 1) * g + j] +
                      (*src)[i * g + j - 1] + (*src)[i * g + j + 1]);
        }
      }
      step(barrier);  // halo exchange point
      std::swap(src, dst);
      step(barrier);  // everyone swapped before the next write
    }
  });

  // Serial reference (identical arithmetic).
  std::vector<double> ra(g * g, 0.0), rb(g * g, 0.0);
  for (std::size_t j = 0; j < g; ++j) ra[j] = rb[j] = 100.0;
  std::vector<double>* src = &ra;
  std::vector<double>* dst = &rb;
  for (int it = 0; it < iters; ++it) {
    for (std::size_t i = 1; i + 1 < g; ++i) {
      for (std::size_t j = 1; j + 1 < g; ++j) {
        (*dst)[i * g + j] =
            0.25 * ((*src)[(i - 1) * g + j] + (*src)[(i + 1) * g + j] +
                    (*src)[i * g + j - 1] + (*src)[i * g + j + 1]);
      }
    }
    std::swap(src, dst);
  }
  const std::vector<double>& parallel_result = (iters % 2 == 0) ? a : b;
  double max_diff = 0.0;
  for (std::size_t i = 0; i < g * g; ++i) {
    max_diff = std::max(max_diff, std::abs(parallel_result[i] - (*src)[i]));
  }

  RunResult result;
  result.checksum = 0.0;
  for (double v : parallel_result) result.checksum += v;
  result.valid = max_diff < 1e-12;
  result.detail = "max deviation from serial " + std::to_string(max_diff);
  return result;
}

// --- KMEANS --------------------------------------------------------------------

RunResult run_dist_kmeans(const DistRunConfig& config) {
  constexpr int kDim = 4;
  const std::size_t n = 2000 * static_cast<std::size_t>(config.scale);
  const std::size_t k = 8;
  const int iters = config.iterations > 0 ? config.iterations : 5;
  const int total = config.total_tasks();

  std::vector<double> points(n * kDim);
  util::Xoshiro256 rng(31);
  for (double& v : points) v = rng.uniform() * 10.0;

  auto assign_and_accumulate = [&](const std::vector<double>& centroids,
                                   std::size_t lo, std::size_t hi,
                                   std::vector<double>& sums,
                                   std::vector<std::size_t>& counts,
                                   double& inertia) {
    for (std::size_t p = lo; p < hi; ++p) {
      double best = 1e300;
      std::size_t best_c = 0;
      for (std::size_t c = 0; c < k; ++c) {
        double d2 = 0.0;
        for (int d = 0; d < kDim; ++d) {
          double diff = points[p * kDim + static_cast<std::size_t>(d)] -
                        centroids[c * kDim + static_cast<std::size_t>(d)];
          d2 += diff * diff;
        }
        if (d2 < best) {
          best = d2;
          best_c = c;
        }
      }
      inertia += best;
      ++counts[best_c];
      for (int d = 0; d < kDim; ++d) {
        sums[best_c * kDim + static_cast<std::size_t>(d)] +=
            points[p * kDim + static_cast<std::size_t>(d)];
      }
    }
  };

  // Shared per-rank partials.
  std::vector<std::vector<double>> partial_sums(
      static_cast<std::size_t>(total), std::vector<double>(k * kDim, 0.0));
  std::vector<std::vector<std::size_t>> partial_counts(
      static_cast<std::size_t>(total), std::vector<std::size_t>(k, 0));
  std::vector<double> partial_inertia(static_cast<std::size_t>(total), 0.0);
  std::vector<double> centroids(k * kDim);
  for (std::size_t c = 0; c < k * kDim; ++c) centroids[c] = points[c];
  double final_inertia = 0.0;

  run_dist_spmd(config, [&](int rank, ph::Phaser& barrier) {
    Range range = partition(n, total, rank);
    std::vector<double> local_centroids = centroids;
    for (int it = 0; it < iters; ++it) {
      auto& sums = partial_sums[static_cast<std::size_t>(rank)];
      auto& counts = partial_counts[static_cast<std::size_t>(rank)];
      std::fill(sums.begin(), sums.end(), 0.0);
      std::fill(counts.begin(), counts.end(), 0u);
      partial_inertia[static_cast<std::size_t>(rank)] = 0.0;
      assign_and_accumulate(local_centroids, range.begin, range.end, sums,
                            counts, partial_inertia[static_cast<std::size_t>(rank)]);
      step(barrier);  // all partials published
      // Every rank recomputes the centroids deterministically.
      for (std::size_t c = 0; c < k; ++c) {
        std::size_t count = 0;
        for (int t = 0; t < total; ++t) {
          count += partial_counts[static_cast<std::size_t>(t)][c];
        }
        for (int d = 0; d < kDim; ++d) {
          double sum = 0.0;
          for (int t = 0; t < total; ++t) {
            sum += partial_sums[static_cast<std::size_t>(t)]
                               [c * kDim + static_cast<std::size_t>(d)];
          }
          if (count > 0) {
            local_centroids[c * kDim + static_cast<std::size_t>(d)] =
                sum / static_cast<double>(count);
          }
        }
      }
      step(barrier);  // partials consumed; next round may overwrite
      if (rank == 0 && it == iters - 1) {
        double inertia = 0.0;
        for (int t = 0; t < total; ++t) {
          inertia += partial_inertia[static_cast<std::size_t>(t)];
        }
        final_inertia = inertia;
        centroids = local_centroids;
      }
    }
  });

  // Serial reference with identical initialisation and iteration count.
  std::vector<double> ref_centroids(k * kDim);
  for (std::size_t c = 0; c < k * kDim; ++c) ref_centroids[c] = points[c];
  double ref_inertia = 0.0;
  for (int it = 0; it < iters; ++it) {
    std::vector<double> sums(k * kDim, 0.0);
    std::vector<std::size_t> counts(k, 0);
    ref_inertia = 0.0;
    assign_and_accumulate(ref_centroids, 0, n, sums, counts, ref_inertia);
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;
      for (int d = 0; d < kDim; ++d) {
        ref_centroids[c * kDim + static_cast<std::size_t>(d)] =
            sums[c * kDim + static_cast<std::size_t>(d)] /
            static_cast<double>(counts[c]);
      }
    }
  }

  double max_diff = 0.0;
  for (std::size_t c = 0; c < k * kDim; ++c) {
    max_diff = std::max(max_diff, std::abs(centroids[c] - ref_centroids[c]));
  }

  RunResult result;
  result.checksum = final_inertia;
  result.valid = max_diff < 1e-9;
  result.detail = "centroid deviation " + std::to_string(max_diff) +
                  ", inertia " + std::to_string(final_inertia);
  return result;
}

// --- SSCA2 ---------------------------------------------------------------------

RunResult run_dist_ssca2(const DistRunConfig& config) {
  // R-MAT-style scale-free graph; kernel: level-synchronised parallel BFS
  // from several roots, counting visited vertices and traversed edges
  // (the reachability core of SSCA2 kernel 4).
  const std::size_t n = (static_cast<std::size_t>(1) << 10) *
                        static_cast<std::size_t>(config.scale);
  const std::size_t edges = 8 * n;
  const int total = config.total_tasks();

  std::vector<std::vector<std::uint32_t>> adj(n);
  util::Xoshiro256 rng(77);
  for (std::size_t e = 0; e < edges; ++e) {
    // R-MAT quadrant recursion with (a,b,c,d) = (.45,.2,.2,.15).
    std::size_t u = 0, v = 0;
    for (std::size_t bit = n >> 1; bit > 0; bit >>= 1) {
      double r = rng.uniform();
      if (r < 0.45) {
      } else if (r < 0.65) {
        v |= bit;
      } else if (r < 0.85) {
        u |= bit;
      } else {
        u |= bit;
        v |= bit;
      }
    }
    if (u == v) continue;
    adj[u].push_back(static_cast<std::uint32_t>(v));
    adj[v].push_back(static_cast<std::uint32_t>(u));
  }

  const std::vector<std::uint32_t> roots{0, 1, 2, 3};
  std::vector<std::size_t> visited_counts(roots.size(), 0);

  // Shared BFS state: the frontier is partitioned per level, discovered
  // vertices are claimed with CAS, and a barrier step closes every level.
  std::vector<std::atomic<int>> dist(n);
  std::vector<std::uint32_t> frontier;
  std::mutex next_mutex;
  std::vector<std::uint32_t> next_frontier;

  run_dist_spmd(config, [&](int rank, ph::Phaser& barrier) {
    for (std::size_t r = 0; r < roots.size(); ++r) {
      if (rank == 0) {
        for (auto& d : dist) d.store(-1, std::memory_order_relaxed);
        dist[roots[r]].store(0);
        frontier.assign(1, roots[r]);
      }
      step(barrier);  // shared BFS state ready
      int level = 0;
      for (;;) {
        ++level;
        Range part = partition(frontier.size(), total, rank);
        std::vector<std::uint32_t> found;
        for (std::size_t fi = part.begin; fi < part.end; ++fi) {
          std::uint32_t u = frontier[fi];
          for (std::uint32_t v : adj[u]) {
            int expected = -1;
            if (dist[v].compare_exchange_strong(expected, level)) {
              found.push_back(v);
            }
          }
        }
        {
          std::lock_guard<std::mutex> lock(next_mutex);
          next_frontier.insert(next_frontier.end(), found.begin(), found.end());
        }
        step(barrier);  // level complete
        if (rank == 0) {
          frontier = std::move(next_frontier);
          next_frontier.clear();
        }
        step(barrier);  // frontier swapped
        if (frontier.empty()) break;
      }
      if (rank == 0) {
        std::size_t visited = 0;
        for (const auto& d : dist) visited += (d.load() >= 0) ? 1 : 0;
        visited_counts[r] = visited;
      }
      step(barrier);
    }
  });

  // Serial validation of the visited counts.
  bool valid = true;
  for (std::size_t r = 0; r < roots.size(); ++r) {
    std::vector<int> dist(n, -1);
    std::vector<std::uint32_t> frontier{roots[r]};
    dist[roots[r]] = 0;
    std::size_t visited = 1;
    int level = 0;
    while (!frontier.empty()) {
      ++level;
      std::vector<std::uint32_t> next;
      for (std::uint32_t u : frontier) {
        for (std::uint32_t v : adj[u]) {
          if (dist[v] == -1) {
            dist[v] = level;
            next.push_back(v);
            ++visited;
          }
        }
      }
      frontier = std::move(next);
    }
    if (visited != visited_counts[r]) valid = false;
  }

  RunResult result;
  result.checksum = static_cast<double>(visited_counts[0]);
  result.valid = valid;
  result.detail = "visited " + std::to_string(visited_counts[0]) + " of " +
                  std::to_string(n) + " vertices from root 0";
  return result;
}

// --- STREAM --------------------------------------------------------------------

RunResult run_dist_stream(const DistRunConfig& config) {
  const std::size_t n = 200000 * static_cast<std::size_t>(config.scale);
  const int reps = config.iterations > 0 ? config.iterations : 10;
  const int total = config.total_tasks();
  const double scalar = 3.0;

  std::vector<double> a(n), b(n), c(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = 1.0;
    b[i] = 2.0;
    c[i] = 0.0;
  }

  run_dist_spmd(config, [&](int rank, ph::Phaser& barrier) {
    Range range = partition(n, total, rank);
    for (int rep = 0; rep < reps; ++rep) {
      for (std::size_t i = range.begin; i < range.end; ++i) c[i] = a[i];
      step(barrier);  // COPY
      for (std::size_t i = range.begin; i < range.end; ++i) b[i] = scalar * c[i];
      step(barrier);  // SCALE
      for (std::size_t i = range.begin; i < range.end; ++i) c[i] = a[i] + b[i];
      step(barrier);  // ADD
      for (std::size_t i = range.begin; i < range.end; ++i) {
        a[i] = b[i] + scalar * c[i];
      }
      step(barrier);  // TRIAD
    }
  });

  // Closed-form expected values after `reps` repetitions.
  double ea = 1.0, eb = 2.0, ec = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    ec = ea;
    eb = scalar * ec;
    ec = ea + eb;
    ea = eb + scalar * ec;
  }
  double max_diff = 0.0;
  for (std::size_t i = 0; i < n; i += n / 97 + 1) {
    max_diff = std::max({max_diff, std::abs(a[i] - ea), std::abs(b[i] - eb),
                         std::abs(c[i] - ec)});
  }

  RunResult result;
  result.checksum = ea;
  result.valid = max_diff == 0.0;
  result.detail = "max deviation from closed form " + std::to_string(max_diff);
  return result;
}

// --- FT (distributed) -------------------------------------------------------------

RunResult run_dist_ft(const DistRunConfig& config) {
  using Cx = std::complex<double>;
  std::size_t n = 32;
  for (int s = 1; s < config.scale; ++s) n *= 2;
  const int steps = config.iterations > 0 ? config.iterations : 2;
  const int total = config.total_tasks();

  std::vector<Cx> original(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      original[i * n + j] = Cx(std::cos(0.3 * static_cast<double>(i)),
                               std::sin(0.5 * static_cast<double>(j)));
    }
  }
  std::vector<Cx> a = original;
  std::vector<Cx> t(n * n);

  run_dist_spmd(config, [&](int rank, ph::Phaser& barrier) {
    Range rows = partition(n, total, rank);
    auto fft_rows = [&](std::vector<Cx>& m, bool invert) {
      for (std::size_t i = rows.begin; i < rows.end; ++i) {
        detail::fft1d(&m[i * n], n, invert);
      }
      step(barrier);
    };
    auto transpose = [&](const std::vector<Cx>& src, std::vector<Cx>& dst) {
      for (std::size_t i = rows.begin; i < rows.end; ++i) {
        for (std::size_t j = 0; j < n; ++j) dst[j * n + i] = src[i * n + j];
      }
      step(barrier);
    };
    for (int s = 0; s < steps; ++s) {
      fft_rows(a, false);
      transpose(a, t);
      fft_rows(t, false);
      fft_rows(t, true);
      transpose(t, a);
      fft_rows(a, true);
      double norm = 1.0 / static_cast<double>(n * n);
      for (std::size_t i = rows.begin * n; i < rows.end * n; ++i) a[i] *= norm;
      step(barrier);
    }
  });

  double max_err = 0.0;
  for (std::size_t i = 0; i < n * n; ++i) {
    max_err = std::max(max_err, std::abs(a[i] - original[i]));
  }

  RunResult result;
  result.checksum = 0.0;
  for (std::size_t i = 0; i < n * n; i += n + 1) result.checksum += std::abs(a[i]);
  result.valid = max_err < 1e-9;
  result.detail = "round-trip max error " + std::to_string(max_err);
  return result;
}

const std::vector<DistKernel>& dist_kernels() {
  static const std::vector<DistKernel> kernels{
      {"FT", run_dist_ft},         {"KMEANS", run_dist_kmeans},
      {"JACOBI", run_dist_jacobi}, {"SSCA2", run_dist_ssca2},
      {"STREAM", run_dist_stream},
  };
  return kernels;
}

}  // namespace armus::wl
