#pragma once

#include "dist/site.h"
#include "workloads/workload.h"

/// Distributed workloads for §6.2: FT and STREAM from the HPC Challenge
/// suite, SSCA2 from the HPCS graph-analysis benchmark, and JACOBI/KMEANS
/// from the X10 distribution — re-implemented as multi-site kernels on the
/// simulated cluster (src/dist). Tasks are spread across sites; each task's
/// blocking events go to its own site's Armus instance, and the sites
/// coordinate through the shared store exactly as §5.2 describes.
namespace armus::wl {

struct DistRunConfig {
  int sites = 4;
  int tasks_per_site = 2;
  int scale = 1;
  int iterations = 0;  ///< 0 = kernel default

  /// nullptr runs unchecked; otherwise each task attaches to
  /// cluster->site(s).verifier() for its site s.
  dist::Cluster* cluster = nullptr;

  [[nodiscard]] int total_tasks() const { return sites * tasks_per_site; }

  /// The site hosting global task index `task` (round-robin).
  [[nodiscard]] dist::SiteId site_for(int task) const {
    return static_cast<dist::SiteId>(task % sites);
  }

  /// The verifier for global task index `task` (round-robin by site).
  [[nodiscard]] Verifier* verifier_for(int task) const {
    if (cluster == nullptr) return nullptr;
    return &cluster->site(site_for(task)).verifier();
  }
};

struct DistKernel {
  std::string name;
  std::function<RunResult(const DistRunConfig&)> run;
};

/// Paper order: FT, KMEANS, JACOBI, SSCA2, STREAM (Figure 7).
const std::vector<DistKernel>& dist_kernels();

RunResult run_dist_ft(const DistRunConfig& config);
RunResult run_dist_kmeans(const DistRunConfig& config);
RunResult run_dist_jacobi(const DistRunConfig& config);
RunResult run_dist_ssca2(const DistRunConfig& config);
RunResult run_dist_stream(const DistRunConfig& config);

}  // namespace armus::wl
