#include <stdexcept>

#include "workloads/workload.h"

namespace armus::wl {

const std::vector<Kernel>& npb_kernels() {
  static const std::vector<Kernel> kernels{
      {"BT", run_bt}, {"CG", run_cg}, {"FT", run_ft},
      {"MG", run_mg}, {"RT", run_rt}, {"SP", run_sp},
  };
  return kernels;
}

const std::vector<Kernel>& course_kernels() {
  static const std::vector<Kernel> kernels{
      {"SE", run_se}, {"FI", run_fi}, {"FR", run_fr},
      {"BFS", run_bfs}, {"PS", run_ps},
  };
  return kernels;
}

const Kernel& kernel_by_name(const std::string& name) {
  for (const Kernel& k : npb_kernels()) {
    if (k.name == name) return k;
  }
  for (const Kernel& k : course_kernels()) {
    if (k.name == name) return k;
  }
  throw std::out_of_range("unknown kernel: " + name);
}

}  // namespace armus::wl
