#include <array>
#include <cmath>
#include <vector>

#include "workloads/spmd.h"

/// BT — block-tridiagonal ADI solver, after NPB BT (§6.1).
///
/// Integrates a coupled 2-component diffusion system with alternating
/// implicit sweeps: each x-sweep solves an independent 2x2 block
/// tridiagonal system per grid row (block Thomas algorithm), each y-sweep
/// one per column; a cyclic-barrier step separates the sweeps because the
/// ownership axis flips (rows vs columns) — the BT/SP synchronisation
/// skeleton. Validated against a serial run of the identical algorithm.
namespace armus::wl {

namespace {

using Vec2 = std::array<double, 2>;
using Mat2 = std::array<double, 4>;  // row-major [a b; c d]

constexpr double kLambda = 0.08;
// Coupling matrix B: symmetric, positive definite.
constexpr Mat2 kB{2.0, 1.0, 1.0, 2.0};

Mat2 mul(const Mat2& x, const Mat2& y) {
  return {x[0] * y[0] + x[1] * y[2], x[0] * y[1] + x[1] * y[3],
          x[2] * y[0] + x[3] * y[2], x[2] * y[1] + x[3] * y[3]};
}
Vec2 mul(const Mat2& x, const Vec2& v) {
  return {x[0] * v[0] + x[1] * v[1], x[2] * v[0] + x[3] * v[1]};
}
Mat2 inv(const Mat2& x) {
  double det = x[0] * x[3] - x[1] * x[2];
  return {x[3] / det, -x[1] / det, -x[2] / det, x[0] / det};
}
Mat2 sub(const Mat2& x, const Mat2& y) {
  return {x[0] - y[0], x[1] - y[1], x[2] - y[2], x[3] - y[3]};
}
Vec2 sub(const Vec2& x, const Vec2& y) { return {x[0] - y[0], x[1] - y[1]}; }

/// Solves the block-tridiagonal system along one line of `n` cells:
///   -D u_{k-1} + (I + 2D) u_k - D u_{k+1} = rhs_k,  D = lambda*B
/// where `rhs`/`out` are accessed with stride `stride` starting at `base`
/// into the flat 2-vector field `data`. The algorithm is block Thomas:
/// forward elimination with 2x2 inverses, then back substitution.
void solve_block_line(std::vector<double>& data, std::size_t base,
                      std::size_t stride, std::size_t n) {
  const Mat2 d{kLambda * kB[0], kLambda * kB[1], kLambda * kB[2],
               kLambda * kB[3]};
  const Mat2 diag{1.0 + 2.0 * d[0], 2.0 * d[1], 2.0 * d[2], 1.0 + 2.0 * d[3]};
  const Mat2 off{-d[0], -d[1], -d[2], -d[3]};

  std::vector<Mat2> c_prime(n);
  std::vector<Vec2> d_prime(n);

  auto rhs_at = [&](std::size_t k) -> Vec2 {
    std::size_t idx = (base + k * stride) * 2;
    return {data[idx], data[idx + 1]};
  };

  Mat2 denom = diag;
  Mat2 denom_inv = inv(denom);
  c_prime[0] = mul(denom_inv, off);
  d_prime[0] = mul(denom_inv, rhs_at(0));
  for (std::size_t k = 1; k < n; ++k) {
    denom = sub(diag, mul(off, c_prime[k - 1]));
    denom_inv = inv(denom);
    if (k + 1 < n) c_prime[k] = mul(denom_inv, off);
    d_prime[k] = mul(denom_inv, sub(rhs_at(k), mul(off, d_prime[k - 1])));
  }
  // Back substitution into the field.
  Vec2 next = d_prime[n - 1];
  auto store = [&](std::size_t k, const Vec2& v) {
    std::size_t idx = (base + k * stride) * 2;
    data[idx] = v[0];
    data[idx + 1] = v[1];
  };
  store(n - 1, next);
  for (std::size_t k = n - 1; k-- > 0;) {
    next = sub(d_prime[k], mul(c_prime[k], next));
    store(k, next);
  }
}

std::vector<double> initial_field(std::size_t g) {
  std::vector<double> u(g * g * 2);
  for (std::size_t i = 0; i < g; ++i) {
    for (std::size_t j = 0; j < g; ++j) {
      u[(i * g + j) * 2] = std::sin(0.2 * static_cast<double>(i)) +
                           0.5 * std::cos(0.15 * static_cast<double>(j));
      u[(i * g + j) * 2 + 1] = std::cos(0.1 * static_cast<double>(i + j));
    }
  }
  return u;
}

/// One serial ADI step (reference implementation).
void serial_step(std::vector<double>& u, std::size_t g) {
  for (std::size_t i = 0; i < g; ++i) solve_block_line(u, i * g, 1, g);
  for (std::size_t j = 0; j < g; ++j) solve_block_line(u, j, g, g);
}

}  // namespace

RunResult run_bt(const RunConfig& config) {
  const std::size_t g = 40 * static_cast<std::size_t>(config.scale);
  const int steps = config.iterations > 0 ? config.iterations : 6;
  const int threads = config.threads;

  std::vector<double> u = initial_field(g);
  std::vector<double> reference = initial_field(g);

  run_spmd(config, [&](int rank, rt::CyclicBarrier& barrier) {
    Range rows = partition(g, threads, rank);
    for (int step = 0; step < steps; ++step) {
      // x-sweep: each rank owns whole rows; lines are independent.
      for (std::size_t i = rows.begin; i < rows.end; ++i) {
        solve_block_line(u, i * g, 1, g);
      }
      barrier.await();  // ownership flips to columns
      for (std::size_t j = rows.begin; j < rows.end; ++j) {
        solve_block_line(u, j, g, g);
      }
      barrier.await();  // back to rows for the next step
    }
  });

  for (int step = 0; step < steps; ++step) serial_step(reference, g);

  double max_diff = 0.0;
  for (std::size_t i = 0; i < u.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(u[i] - reference[i]));
  }

  RunResult result;
  result.checksum = 0.0;
  for (double v : u) result.checksum += v;
  result.valid = max_diff < 1e-12;
  result.detail = "max deviation from serial " + std::to_string(max_diff);
  return result;
}

}  // namespace armus::wl
