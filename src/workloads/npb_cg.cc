#include <cmath>
#include <vector>

#include "workloads/spmd.h"

/// CG — conjugate gradient, after NPB CG (§6.1).
///
/// Solves (I + alpha*L) x = b on a g x g grid, where L is the 5-point
/// Laplacian: a symmetric positive definite system. The parallel structure
/// mirrors NPB CG: rows are block-partitioned; every iteration performs a
/// matvec and two dot-product reductions, each bracketed by cyclic-barrier
/// steps (partial sums are exchanged through a shared array).
namespace armus::wl {

namespace {

constexpr double kAlpha = 0.2;

/// y = (I + alpha L) x on the g x g grid, rows [r0, r1).
void apply_a(const std::vector<double>& x, std::vector<double>& y, std::size_t g,
             std::size_t r0, std::size_t r1) {
  for (std::size_t i = r0; i < r1; ++i) {
    for (std::size_t j = 0; j < g; ++j) {
      std::size_t idx = i * g + j;
      double lap = 4.0 * x[idx];
      if (i > 0) lap -= x[idx - g];
      if (i + 1 < g) lap -= x[idx + g];
      if (j > 0) lap -= x[idx - 1];
      if (j + 1 < g) lap -= x[idx + 1];
      y[idx] = x[idx] + kAlpha * lap;
    }
  }
}

}  // namespace

RunResult run_cg(const RunConfig& config) {
  const std::size_t g = 40 * static_cast<std::size_t>(config.scale);
  const std::size_t n = g * g;
  // CG on this well-conditioned operator converges in ~20 iterations;
  // iterating past convergence divides by a vanishing rho. Longer runs
  // (benchmarks) therefore restart the solve every kSolveIters, preserving
  // the barrier rate at any requested length (NPB CG similarly runs a fixed
  // 25-iteration inner loop per outer iteration).
  constexpr int kSolveIters = 25;
  const int requested = config.iterations > 0 ? config.iterations : kSolveIters;
  // Round up to whole solves so the final x is always fully converged.
  const int total_iters =
      ((requested + kSolveIters - 1) / kSolveIters) * kSolveIters;
  const int threads = config.threads;

  std::vector<double> x(n, 0.0), r(n), p(n), q(n, 0.0), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = 1.0 + static_cast<double>(i % 7) * 0.125;  // deterministic rhs
  }
  r = b;  // r = b - A*0
  p = r;

  // Shared reduction scratch: one slot per rank per reduction.
  std::vector<double> partial_pq(static_cast<std::size_t>(threads), 0.0);
  std::vector<double> partial_rr(static_cast<std::size_t>(threads), 0.0);
  double rho = 0.0;
  for (double v : r) rho += v * v;

  run_spmd(config, [&](int rank, rt::CyclicBarrier& barrier) {
    Range rows = partition(g, threads, rank);
    const std::size_t lo = rows.begin * g;
    const std::size_t hi = rows.end * g;
    double local_rho = rho;

    for (int it = 0; it < total_iters; ++it) {
      if (it != 0 && it % kSolveIters == 0) {
        // Restart: x = 0, r = p = b (each rank resets its rows).
        for (std::size_t i = lo; i < hi; ++i) {
          x[i] = 0.0;
          r[i] = b[i];
          p[i] = b[i];
        }
        double rr = 0.0;
        for (std::size_t i = lo; i < hi; ++i) rr += r[i] * r[i];
        partial_rr[static_cast<std::size_t>(rank)] = rr;
        barrier.await();
        local_rho = 0.0;
        for (int t = 0; t < threads; ++t) {
          local_rho += partial_rr[static_cast<std::size_t>(t)];
        }
        barrier.await();
      }
      // q = A p (p is stable: everyone finished updating p last step).
      apply_a(p, q, g, rows.begin, rows.end);
      double pq = 0.0;
      for (std::size_t i = lo; i < hi; ++i) pq += p[i] * q[i];
      partial_pq[static_cast<std::size_t>(rank)] = pq;
      barrier.await();  // all partials written, all of q ready

      double dot_pq = 0.0;
      for (int t = 0; t < threads; ++t) {
        dot_pq += partial_pq[static_cast<std::size_t>(t)];
      }
      double alpha = local_rho / dot_pq;

      double rr = 0.0;
      for (std::size_t i = lo; i < hi; ++i) {
        x[i] += alpha * p[i];
        r[i] -= alpha * q[i];
        rr += r[i] * r[i];
      }
      partial_rr[static_cast<std::size_t>(rank)] = rr;
      barrier.await();  // all rr partials written

      double rho_new = 0.0;
      for (int t = 0; t < threads; ++t) {
        rho_new += partial_rr[static_cast<std::size_t>(t)];
      }
      double beta = rho_new / local_rho;
      local_rho = rho_new;

      for (std::size_t i = lo; i < hi; ++i) p[i] = r[i] + beta * p[i];
      barrier.await();  // p consistent before the next matvec
    }
  });

  // Serial validation: residual of the returned x.
  std::vector<double> ax(n);
  apply_a(x, ax, g, 0, g);
  double res = 0.0, bnorm = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    res += (b[i] - ax[i]) * (b[i] - ax[i]);
    bnorm += b[i] * b[i];
  }
  double rel = std::sqrt(res / bnorm);

  RunResult result;
  result.checksum = 0.0;
  for (double v : x) result.checksum += v;
  result.valid = rel < 1e-8;
  result.detail = "relative residual " + std::to_string(rel);
  return result;
}

}  // namespace armus::wl
