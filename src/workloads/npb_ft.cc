#include <cmath>
#include <complex>
#include <vector>

#include "workloads/detail_fft.h"
#include "workloads/spmd.h"

/// FT — 2D complex FFT with transposes, after NPB FT (§6.1).
///
/// Forward transform: per-rank 1D FFTs over row bands, barrier, explicit
/// transpose into a second array (barriered), 1D FFTs over the former
/// columns. The kernel time-evolves the spectrum (the NPB FT "evolve"
/// step) and inverse-transforms, validating the round trip against the
/// original field.
namespace armus::wl {

namespace {

using Cx = std::complex<double>;
using detail::fft1d;

}  // namespace

RunResult run_ft(const RunConfig& config) {
  std::size_t n = 32;
  for (int s = 1; s < config.scale; ++s) n *= 2;
  const int steps = config.iterations > 0 ? config.iterations : 2;
  const int threads = config.threads;

  std::vector<Cx> original(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      original[i * n + j] =
          Cx(std::sin(0.7 * static_cast<double>(i) + 0.3),
             std::cos(0.4 * static_cast<double>(j) - 0.2));
    }
  }
  std::vector<Cx> a = original;
  std::vector<Cx> t(n * n);

  run_spmd(config, [&](int rank, rt::CyclicBarrier& barrier) {
    Range rows = partition(n, threads, rank);

    auto fft_rows = [&](std::vector<Cx>& m, bool invert) {
      for (std::size_t i = rows.begin; i < rows.end; ++i) {
        fft1d(&m[i * n], n, invert);
      }
      barrier.await();
    };
    auto transpose = [&](const std::vector<Cx>& src, std::vector<Cx>& dst) {
      for (std::size_t i = rows.begin; i < rows.end; ++i) {
        for (std::size_t j = 0; j < n; ++j) dst[j * n + i] = src[i * n + j];
      }
      barrier.await();
    };

    for (int step = 0; step < steps; ++step) {
      // Forward 2D FFT: rows, transpose, rows (former columns).
      fft_rows(a, false);
      transpose(a, t);
      fft_rows(t, false);

      // Evolve: frequency-dependent phase twist (NPB FT's time evolution;
      // unitary, so the round trip must restore the field).
      for (std::size_t i = rows.begin; i < rows.end; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          double k2 = static_cast<double>((i * i + j * j) % 97);
          t[i * n + j] *= std::polar(1.0, 1e-3 * k2);
        }
      }
      barrier.await();
      for (std::size_t i = rows.begin; i < rows.end; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          double k2 = static_cast<double>((i * i + j * j) % 97);
          t[i * n + j] *= std::polar(1.0, -1e-3 * k2);  // undo
        }
      }
      barrier.await();

      // Inverse 2D FFT back into a.
      fft_rows(t, true);
      transpose(t, a);
      fft_rows(a, true);
      double norm = 1.0 / static_cast<double>(n * n);
      for (std::size_t i = rows.begin * n; i < rows.end * n; ++i) a[i] *= norm;
      barrier.await();
    }
  });

  double max_err = 0.0;
  for (std::size_t i = 0; i < n * n; ++i) {
    max_err = std::max(max_err, std::abs(a[i] - original[i]));
  }

  RunResult result;
  result.checksum = 0.0;
  for (std::size_t i = 0; i < n * n; i += n + 1) result.checksum += std::abs(a[i]);
  result.valid = max_err < 1e-9;
  result.detail = "round-trip max error " + std::to_string(max_err);
  return result;
}

}  // namespace armus::wl
