#include <cmath>
#include <vector>

#include "workloads/spmd.h"

/// MG — multigrid V-cycles, after NPB MG (§6.1).
///
/// Solves the 2D Poisson equation -Lu = f on a (2^k+1)^2 grid with
/// Dirichlet boundaries using V-cycles: weighted-Jacobi smoothing,
/// full-weighting restriction and bilinear prolongation. Rows are
/// partitioned per rank at every level; every smoothing sweep, residual,
/// restriction and prolongation is separated by a cyclic-barrier step —
/// the NPB MG synchronisation structure (fixed tasks, fixed barrier, high
/// barrier rate at coarse levels).
namespace armus::wl {

namespace {

/// One grid level: size g x g with g = 2^l + 1.
struct Level {
  std::size_t g = 0;
  std::vector<double> u, f, r, scratch;
};

double& at(std::vector<double>& v, std::size_t g, std::size_t i, std::size_t j) {
  return v[i * g + j];
}
double cat(const std::vector<double>& v, std::size_t g, std::size_t i,
           std::size_t j) {
  return v[i * g + j];
}

}  // namespace

RunResult run_mg(const RunConfig& config) {
  // Finest grid 2^k+1 where k grows with scale (k=6 -> 65x65).
  int k = 5 + config.scale;
  const int cycles = config.iterations > 0 ? config.iterations : 4;
  const int threads = config.threads;
  const double h = 1.0;  // unit spacing; absorbed into f

  std::vector<Level> levels;
  for (int l = k; l >= 2; --l) {
    Level level;
    level.g = (static_cast<std::size_t>(1) << l) + 1;
    level.u.assign(level.g * level.g, 0.0);
    level.f.assign(level.g * level.g, 0.0);
    level.r.assign(level.g * level.g, 0.0);
    level.scratch.assign(level.g * level.g, 0.0);
    levels.push_back(std::move(level));
  }
  // Deterministic source term on the finest level.
  {
    Level& fine = levels[0];
    for (std::size_t i = 1; i + 1 < fine.g; ++i) {
      for (std::size_t j = 1; j + 1 < fine.g; ++j) {
        at(fine.f, fine.g, i, j) =
            std::sin(static_cast<double>(i) * 0.4) *
            std::cos(static_cast<double>(j) * 0.3);
      }
    }
  }

  auto residual_norm = [&](const Level& level) {
    double sum = 0.0;
    for (std::size_t i = 1; i + 1 < level.g; ++i) {
      for (std::size_t j = 1; j + 1 < level.g; ++j) {
        double lap = 4.0 * cat(level.u, level.g, i, j) -
                     cat(level.u, level.g, i - 1, j) -
                     cat(level.u, level.g, i + 1, j) -
                     cat(level.u, level.g, i, j - 1) -
                     cat(level.u, level.g, i, j + 1);
        double res = cat(level.f, level.g, i, j) - lap / (h * h);
        sum += res * res;
      }
    }
    return std::sqrt(sum);
  };

  const double initial_norm = residual_norm(levels[0]);

  run_spmd(config, [&](int rank, rt::CyclicBarrier& barrier) {
    // Interior rows [1, g-1) of `level` owned by this rank.
    auto my_rows = [&](const Level& level) {
      return partition(level.g - 2, threads, rank);
    };

    // Weighted Jacobi sweep (omega = 2/3) into scratch, then copy back.
    auto smooth = [&](Level& level, int sweeps) {
      for (int s = 0; s < sweeps; ++s) {
        Range rows = my_rows(level);
        for (std::size_t ri = rows.begin; ri < rows.end; ++ri) {
          std::size_t i = ri + 1;
          for (std::size_t j = 1; j + 1 < level.g; ++j) {
            double sum = cat(level.u, level.g, i - 1, j) +
                         cat(level.u, level.g, i + 1, j) +
                         cat(level.u, level.g, i, j - 1) +
                         cat(level.u, level.g, i, j + 1);
            double jac = (h * h * cat(level.f, level.g, i, j) + sum) / 4.0;
            at(level.scratch, level.g, i, j) =
                cat(level.u, level.g, i, j) +
                (2.0 / 3.0) * (jac - cat(level.u, level.g, i, j));
          }
        }
        barrier.await();  // scratch complete everywhere
        for (std::size_t ri = rows.begin; ri < rows.end; ++ri) {
          std::size_t i = ri + 1;
          for (std::size_t j = 1; j + 1 < level.g; ++j) {
            at(level.u, level.g, i, j) = cat(level.scratch, level.g, i, j);
          }
        }
        barrier.await();  // u consistent for the next sweep
      }
    };

    auto compute_residual = [&](Level& level) {
      Range rows = my_rows(level);
      for (std::size_t ri = rows.begin; ri < rows.end; ++ri) {
        std::size_t i = ri + 1;
        for (std::size_t j = 1; j + 1 < level.g; ++j) {
          double lap = 4.0 * cat(level.u, level.g, i, j) -
                       cat(level.u, level.g, i - 1, j) -
                       cat(level.u, level.g, i + 1, j) -
                       cat(level.u, level.g, i, j - 1) -
                       cat(level.u, level.g, i, j + 1);
          at(level.r, level.g, i, j) =
              cat(level.f, level.g, i, j) - lap / (h * h);
        }
      }
      barrier.await();
    };

    // Full-weighting restriction of fine.r into coarse.f.
    auto restrict_to = [&](Level& fine, Level& coarse) {
      Range rows = my_rows(coarse);
      for (std::size_t ri = rows.begin; ri < rows.end; ++ri) {
        std::size_t ci = ri + 1;
        std::size_t fi = 2 * ci;
        for (std::size_t cj = 1; cj + 1 < coarse.g; ++cj) {
          std::size_t fj = 2 * cj;
          double v = 0.25 * cat(fine.r, fine.g, fi, fj) +
                     0.125 * (cat(fine.r, fine.g, fi - 1, fj) +
                              cat(fine.r, fine.g, fi + 1, fj) +
                              cat(fine.r, fine.g, fi, fj - 1) +
                              cat(fine.r, fine.g, fi, fj + 1)) +
                     0.0625 * (cat(fine.r, fine.g, fi - 1, fj - 1) +
                               cat(fine.r, fine.g, fi - 1, fj + 1) +
                               cat(fine.r, fine.g, fi + 1, fj - 1) +
                               cat(fine.r, fine.g, fi + 1, fj + 1));
          at(coarse.f, coarse.g, ci, cj) = 4.0 * v;  // h^2 scaling (2h)^2
          at(coarse.u, coarse.g, ci, cj) = 0.0;
        }
      }
      barrier.await();
    };

    // Bilinear prolongation of coarse.u added into fine.u.
    auto prolong_into = [&](Level& coarse, Level& fine) {
      Range rows = my_rows(fine);
      for (std::size_t ri = rows.begin; ri < rows.end; ++ri) {
        std::size_t i = ri + 1;
        for (std::size_t j = 1; j + 1 < fine.g; ++j) {
          double v;
          std::size_t ci = i / 2, cj = j / 2;
          bool iodd = (i % 2) != 0, jodd = (j % 2) != 0;
          if (!iodd && !jodd) {
            v = cat(coarse.u, coarse.g, ci, cj);
          } else if (iodd && !jodd) {
            v = 0.5 * (cat(coarse.u, coarse.g, ci, cj) +
                       cat(coarse.u, coarse.g, ci + 1, cj));
          } else if (!iodd && jodd) {
            v = 0.5 * (cat(coarse.u, coarse.g, ci, cj) +
                       cat(coarse.u, coarse.g, ci, cj + 1));
          } else {
            v = 0.25 * (cat(coarse.u, coarse.g, ci, cj) +
                        cat(coarse.u, coarse.g, ci + 1, cj) +
                        cat(coarse.u, coarse.g, ci, cj + 1) +
                        cat(coarse.u, coarse.g, ci + 1, cj + 1));
          }
          at(fine.u, fine.g, i, j) += v;
        }
      }
      barrier.await();
    };

    for (int cycle = 0; cycle < cycles; ++cycle) {
      // Down-leg.
      for (std::size_t l = 0; l + 1 < levels.size(); ++l) {
        smooth(levels[l], 2);
        compute_residual(levels[l]);
        restrict_to(levels[l], levels[l + 1]);
      }
      smooth(levels.back(), 20);  // coarse solve by smoothing
      // Up-leg.
      for (std::size_t l = levels.size() - 1; l > 0; --l) {
        prolong_into(levels[l], levels[l - 1]);
        smooth(levels[l - 1], 2);
      }
    }
  });

  double final_norm = residual_norm(levels[0]);
  double reduction = final_norm / initial_norm;

  RunResult result;
  result.checksum = 0.0;
  for (double v : levels[0].u) result.checksum += v;
  // Weighted-Jacobi V-cycles converge at roughly 0.2 per cycle on this
  // problem (measured 2e-3 after four cycles); anything under 5e-3 means
  // the parallel sweeps kept the hierarchy consistent.
  result.valid = reduction < 5e-3;
  result.detail = "residual reduction " + std::to_string(reduction);
  return result;
}

}  // namespace armus::wl
