#include <cmath>
#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "workloads/spmd.h"

/// RT — ray tracer, after the JGF Section 3 RayTracer (§6.1).
///
/// Renders a deterministic sphere scene (Phong shading, hard shadows, one
/// reflection bounce) over several frames with a slowly moving camera.
/// Ranks render interleaved scanlines (the JGF distribution) and meet at a
/// cyclic barrier after every frame; validation compares the parallel
/// image checksum against a serial render (floating-point identical — each
/// pixel's computation is independent and deterministic).
namespace armus::wl {

namespace {

struct Vec3 {
  double x = 0, y = 0, z = 0;
};
Vec3 operator+(Vec3 a, Vec3 b) { return {a.x + b.x, a.y + b.y, a.z + b.z}; }
Vec3 operator-(Vec3 a, Vec3 b) { return {a.x - b.x, a.y - b.y, a.z - b.z}; }
Vec3 operator*(Vec3 a, double s) { return {a.x * s, a.y * s, a.z * s}; }
double dot(Vec3 a, Vec3 b) { return a.x * b.x + a.y * b.y + a.z * b.z; }
Vec3 normalize(Vec3 a) {
  double len = std::sqrt(dot(a, a));
  return a * (1.0 / len);
}

struct Sphere {
  Vec3 center;
  double radius = 1.0;
  Vec3 color;
  double reflect = 0.0;
};

struct Scene {
  std::vector<Sphere> spheres;
  Vec3 light;
};

Scene make_scene(int count) {
  Scene scene;
  util::Xoshiro256 rng(4242);
  for (int i = 0; i < count; ++i) {
    Sphere s;
    s.center = {rng.uniform() * 8.0 - 4.0, rng.uniform() * 4.0 - 1.0,
                6.0 + rng.uniform() * 6.0};
    s.radius = 0.4 + rng.uniform() * 0.8;
    s.color = {0.3 + rng.uniform() * 0.7, 0.3 + rng.uniform() * 0.7,
               0.3 + rng.uniform() * 0.7};
    s.reflect = rng.uniform() * 0.5;
    scene.spheres.push_back(s);
  }
  // Ground sphere.
  scene.spheres.push_back({{0.0, -1002.0, 10.0}, 1000.0, {0.6, 0.6, 0.6}, 0.1});
  scene.light = {-6.0, 10.0, -2.0};
  return scene;
}

/// Nearest intersection of ray o + t*d with the scene; -1 if none.
int intersect(const Scene& scene, Vec3 o, Vec3 d, double& t_out) {
  int hit = -1;
  double best = 1e30;
  for (std::size_t s = 0; s < scene.spheres.size(); ++s) {
    const Sphere& sp = scene.spheres[s];
    Vec3 oc = o - sp.center;
    double b = dot(oc, d);
    double c = dot(oc, oc) - sp.radius * sp.radius;
    double disc = b * b - c;
    if (disc < 0) continue;
    double sq = std::sqrt(disc);
    double t = -b - sq;
    if (t < 1e-6) t = -b + sq;
    if (t > 1e-6 && t < best) {
      best = t;
      hit = static_cast<int>(s);
    }
  }
  t_out = best;
  return hit;
}

Vec3 shade(const Scene& scene, Vec3 o, Vec3 d, int depth) {
  double t;
  int hit = intersect(scene, o, d, t);
  if (hit < 0) return {0.1, 0.1, 0.2};  // sky
  const Sphere& sp = scene.spheres[static_cast<std::size_t>(hit)];
  Vec3 p = o + d * t;
  Vec3 n = normalize(p - sp.center);
  Vec3 l = normalize(scene.light - p);

  // Hard shadow.
  double st;
  int blocker = intersect(scene, p + n * 1e-4, l, st);
  double light_dist = std::sqrt(dot(scene.light - p, scene.light - p));
  bool shadowed = blocker >= 0 && st < light_dist;

  double diffuse = shadowed ? 0.0 : std::max(0.0, dot(n, l));
  Vec3 color = sp.color * (0.15 + 0.85 * diffuse);

  // Phong specular.
  if (!shadowed) {
    Vec3 r = n * (2.0 * dot(n, l)) - l;
    double spec = std::pow(std::max(0.0, dot(r, normalize(o - p))), 32.0);
    color = color + Vec3{1.0, 1.0, 1.0} * (0.4 * spec);
  }

  if (depth > 0 && sp.reflect > 0.0) {
    Vec3 rd = d - n * (2.0 * dot(n, d));
    Vec3 refl = shade(scene, p + n * 1e-4, rd, depth - 1);
    color = color + refl * sp.reflect;
  }
  return color;
}

std::uint64_t render_checksum_row(const Scene& scene, std::size_t width,
                                  std::size_t height, std::size_t row,
                                  double camera_shift) {
  std::uint64_t sum = 0;
  Vec3 origin{camera_shift, 0.5, -4.0};
  for (std::size_t col = 0; col < width; ++col) {
    double u = (static_cast<double>(col) / static_cast<double>(width)) * 2 - 1;
    double v = (static_cast<double>(row) / static_cast<double>(height)) * 2 - 1;
    Vec3 dir = normalize(Vec3{u * 1.2, -v, 3.0});
    Vec3 c = shade(scene, origin, dir, 1);
    auto q = [](double x) {
      return static_cast<std::uint64_t>(std::min(255.0, std::max(0.0, x * 255.0)));
    };
    sum += q(c.x) + 7 * q(c.y) + 31 * q(c.z);
  }
  return sum;
}

}  // namespace

RunResult run_rt(const RunConfig& config) {
  const std::size_t width = 40 * static_cast<std::size_t>(config.scale);
  const std::size_t height = width;
  const int frames = config.iterations > 0 ? config.iterations : 2;
  const int threads = config.threads;
  const Scene scene = make_scene(12);

  std::vector<std::uint64_t> row_sums(height, 0);
  std::vector<std::uint64_t> frame_sums(static_cast<std::size_t>(frames), 0);

  run_spmd(config, [&](int rank, rt::CyclicBarrier& barrier) {
    for (int frame = 0; frame < frames; ++frame) {
      double shift = 0.05 * static_cast<double>(frame);
      // Interleaved scanlines, as JGF RayTracer distributes them.
      for (std::size_t row = static_cast<std::size_t>(rank); row < height;
           row += static_cast<std::size_t>(threads)) {
        row_sums[row] = render_checksum_row(scene, width, height, row, shift);
      }
      barrier.await();  // frame complete
      if (rank == 0) {
        std::uint64_t total = 0;
        for (std::uint64_t s : row_sums) total += s;
        frame_sums[static_cast<std::size_t>(frame)] = total;
      }
      barrier.await();  // checksum recorded before rows are overwritten
    }
  });

  // Serial validation of every frame checksum.
  bool valid = true;
  for (int frame = 0; frame < frames; ++frame) {
    double shift = 0.05 * static_cast<double>(frame);
    std::uint64_t total = 0;
    for (std::size_t row = 0; row < height; ++row) {
      total += render_checksum_row(scene, width, height, row, shift);
    }
    if (total != frame_sums[static_cast<std::size_t>(frame)]) valid = false;
  }

  RunResult result;
  result.checksum = static_cast<double>(frame_sums.back() % 1000000007ull);
  result.valid = valid;
  result.detail = valid ? "frame checksums match serial render"
                        : "frame checksum mismatch";
  return result;
}

}  // namespace armus::wl
