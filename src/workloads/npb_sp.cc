#include <cmath>
#include <vector>

#include "workloads/spmd.h"

/// SP — scalar pentadiagonal ADI solver, after NPB SP (§6.1).
///
/// Implicit treatment of a fourth-order dissipation operator: each sweep
/// solves (I + lambda*D4) u = rhs along every line of one axis, where D4 is
/// the 1D biharmonic stencil [1 -4 6 -4 1] — a scalar pentadiagonal system
/// per line, solved by banded Gaussian elimination (the system is strictly
/// diagonally dominant for lambda < 0.25). Sweeps alternate axes with a
/// cyclic-barrier step in between, exactly like BT but with scalar lines.
namespace armus::wl {

namespace {

constexpr double kLambda = 0.05;

/// Solves (I + lambda*D4) x = rhs along a strided line of n cells, in
/// place. The stencil is truncated at the boundary (one-sided), keeping the
/// matrix pentadiagonal and diagonally dominant.
void solve_penta_line(std::vector<double>& data, std::size_t base,
                      std::size_t stride, std::size_t n) {
  // Assemble the 5 bands row by row. Band layout per row k:
  // a[k] u_{k-2} + b[k] u_{k-1} + c[k] u_k + d[k] u_{k+1} + e[k] u_{k+2}.
  std::vector<double> a(n, 0.0), b(n, 0.0), c(n, 0.0), d(n, 0.0), e(n, 0.0),
      r(n);
  for (std::size_t k = 0; k < n; ++k) {
    double diag = 6.0;
    if (k < 2 || k + 2 >= n) diag = (k < 1 || k + 1 >= n) ? 1.0 : 5.0;
    c[k] = 1.0 + kLambda * diag;
    if (k >= 1) b[k] = -4.0 * kLambda;
    if (k >= 2) a[k] = kLambda;
    if (k + 1 < n) d[k] = -4.0 * kLambda;
    if (k + 2 < n) e[k] = kLambda;
    r[k] = data[base + k * stride];
  }

  // Forward elimination (two sub-diagonals), no pivoting needed thanks to
  // diagonal dominance.
  for (std::size_t k = 0; k + 1 < n; ++k) {
    double m1 = b[k + 1] / c[k];
    b[k + 1] = 0.0;
    c[k + 1] -= m1 * d[k];
    d[k + 1] -= m1 * e[k];
    r[k + 1] -= m1 * r[k];
    if (k + 2 < n) {
      double m2 = a[k + 2] / c[k];
      a[k + 2] = 0.0;
      b[k + 2] -= m2 * d[k];
      c[k + 2] -= m2 * e[k];
      r[k + 2] -= m2 * r[k];
    }
  }
  // Back substitution (two super-diagonals).
  std::vector<double> x(n);
  for (std::size_t k = n; k-- > 0;) {
    double v = r[k];
    if (k + 1 < n) v -= d[k] * x[k + 1];
    if (k + 2 < n) v -= e[k] * x[k + 2];
    x[k] = v / c[k];
  }
  for (std::size_t k = 0; k < n; ++k) data[base + k * stride] = x[k];
}

std::vector<double> initial_field(std::size_t g) {
  std::vector<double> u(g * g);
  for (std::size_t i = 0; i < g; ++i) {
    for (std::size_t j = 0; j < g; ++j) {
      u[i * g + j] = std::sin(0.13 * static_cast<double>(i)) *
                         std::cos(0.21 * static_cast<double>(j)) +
                     0.05 * static_cast<double>((i + j) % 5);
    }
  }
  return u;
}

void serial_step(std::vector<double>& u, std::size_t g) {
  for (std::size_t i = 0; i < g; ++i) solve_penta_line(u, i * g, 1, g);
  for (std::size_t j = 0; j < g; ++j) solve_penta_line(u, j, g, g);
}

}  // namespace

RunResult run_sp(const RunConfig& config) {
  const std::size_t g = 40 * static_cast<std::size_t>(config.scale);
  const int steps = config.iterations > 0 ? config.iterations : 6;
  const int threads = config.threads;

  std::vector<double> u = initial_field(g);
  std::vector<double> reference = initial_field(g);

  run_spmd(config, [&](int rank, rt::CyclicBarrier& barrier) {
    Range rows = partition(g, threads, rank);
    for (int step = 0; step < steps; ++step) {
      for (std::size_t i = rows.begin; i < rows.end; ++i) {
        solve_penta_line(u, i * g, 1, g);
      }
      barrier.await();
      for (std::size_t j = rows.begin; j < rows.end; ++j) {
        solve_penta_line(u, j, g, g);
      }
      barrier.await();
    }
  });

  for (int step = 0; step < steps; ++step) serial_step(reference, g);

  double max_diff = 0.0;
  for (std::size_t i = 0; i < u.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(u[i] - reference[i]));
  }

  RunResult result;
  result.checksum = 0.0;
  for (double v : u) result.checksum += v;
  result.valid = max_diff < 1e-12;
  result.detail = "max deviation from serial " + std::to_string(max_diff);
  return result;
}

}  // namespace armus::wl
