#include "workloads/spmd.h"

#include "runtime/task.h"

namespace armus::wl {

void run_spmd(const RunConfig& config,
              const std::function<void(int rank, rt::CyclicBarrier& barrier)>& body) {
  rt::CyclicBarrier barrier(static_cast<std::size_t>(config.threads),
                            config.verifier);
  std::vector<rt::Task> workers;
  workers.reserve(static_cast<std::size_t>(config.threads));
  for (int rank = 0; rank < config.threads; ++rank) {
    workers.push_back(rt::spawn_with(
        [&](TaskId child) { barrier.register_task(child); },
        [&body, rank, &barrier] { body(rank, barrier); }, config.verifier,
        "spmd-" + std::to_string(rank)));
  }
  std::exception_ptr first;
  for (rt::Task& worker : workers) {
    try {
      worker.join();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

Range partition(std::size_t count, int parts, int index) {
  std::size_t base = count / static_cast<std::size_t>(parts);
  std::size_t extra = count % static_cast<std::size_t>(parts);
  std::size_t idx = static_cast<std::size_t>(index);
  std::size_t begin = idx * base + std::min(idx, extra);
  std::size_t size = base + (idx < extra ? 1 : 0);
  return {begin, begin + size};
}

}  // namespace armus::wl
