#pragma once

#include <functional>

#include "runtime/barriers.h"
#include "workloads/workload.h"

/// SPMD harness shared by the NPB-style kernels: `threads` workers, one
/// cyclic barrier, lockstep iteration — the exact §6.1 shape ("a fixed
/// number of tasks and a fixed number of cyclic barriers throughout the
/// whole computation").
namespace armus::wl {

/// Runs `body(rank, barrier)` on `config.threads` tasks, all pre-registered
/// on a shared CyclicBarrier before any thread starts (the reg-before-fork
/// pattern). Rethrows the first worker exception.
void run_spmd(const RunConfig& config,
              const std::function<void(int rank, rt::CyclicBarrier& barrier)>& body);

/// Splits `count` items into `parts` contiguous ranges; returns the
/// half-open range of `index`.
struct Range {
  std::size_t begin = 0;
  std::size_t end = 0;
  [[nodiscard]] std::size_t size() const { return end - begin; }
};
Range partition(std::size_t count, int parts, int index);

}  // namespace armus::wl
