#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/verifier.h"

/// Common interface for the benchmark workloads of §6.
///
/// Every kernel re-implements the synchronisation skeleton of its paper
/// counterpart — fixed task count, fixed set of cyclic barriers, stepwise
/// iteration (NPB/JGF), or dynamic task/barrier creation (the §6.3 course
/// programs) — and validates its own output (all paper benchmarks do).
/// Absolute problem sizes default to laptop scale and grow with `scale`.
namespace armus::wl {

struct RunConfig {
  /// SPMD worker count (ignored by kernels with intrinsic task structure).
  int threads = 4;

  /// Problem-size multiplier (>= 1).
  int scale = 1;

  /// Iteration override; 0 keeps the kernel's default.
  int iterations = 0;

  /// nullptr runs unchecked (the baseline of every table).
  Verifier* verifier = nullptr;
};

struct RunResult {
  bool valid = false;
  double checksum = 0.0;   ///< kernel-specific output digest
  std::string detail;      ///< human-readable validation note
};

struct Kernel {
  std::string name;
  std::function<RunResult(const RunConfig&)> run;
};

/// The NPB/JGF suite of §6.1: BT, CG, FT, MG, RT, SP (paper order).
const std::vector<Kernel>& npb_kernels();

/// The §6.3 course suite: SE, FI, FR, BFS, PS (paper order).
const std::vector<Kernel>& course_kernels();

/// Looks up a kernel by name in both suites; throws std::out_of_range.
const Kernel& kernel_by_name(const std::string& name);

// --- individual kernels (exposed for focused tests) -------------------------

RunResult run_cg(const RunConfig& config);
RunResult run_mg(const RunConfig& config);
RunResult run_ft(const RunConfig& config);
RunResult run_bt(const RunConfig& config);
RunResult run_sp(const RunConfig& config);
RunResult run_rt(const RunConfig& config);

RunResult run_se(const RunConfig& config);
RunResult run_fi(const RunConfig& config);
RunResult run_fr(const RunConfig& config);
RunResult run_bfs(const RunConfig& config);
RunResult run_ps(const RunConfig& config);

}  // namespace armus::wl
