// Tests for the bounded producer-consumer (the paper's §8 future-work
// pattern): FIFO delivery, capacity-bounded flow control, verification of
// both the empty-wait and the full-wait, and deadlock detection/avoidance
// when two buffers are composed into a cycle.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "runtime/bounded_buffer.h"

namespace armus::rt {
namespace {

using namespace std::chrono_literals;

TEST(BoundedBufferTest, FifoDelivery) {
  BoundedBuffer<int> buffer(4, nullptr);
  constexpr int kItems = 100;
  Task producer = spawn_with(
      [&](TaskId child) { buffer.register_producer(child); },
      [&] {
        for (int i = 1; i <= kItems; ++i) buffer.put(i * 3);
      },
      nullptr);
  std::vector<int> got;
  Task consumer = spawn_with(
      [&](TaskId child) { buffer.register_consumer(child); },
      [&] {
        for (int i = 0; i < kItems; ++i) got.push_back(buffer.take());
      },
      nullptr);
  producer.join();
  consumer.join();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], (i + 1) * 3);
}

TEST(BoundedBufferTest, ProducerBlocksAtCapacity) {
  BoundedBuffer<int> buffer(2, nullptr);
  std::atomic<int> produced{0};
  Task producer = spawn_with(
      [&](TaskId child) { buffer.register_producer(child); },
      [&] {
        for (int i = 1; i <= 5; ++i) {
          buffer.put(i);
          ++produced;
        }
      },
      nullptr);
  // Without a consumer, production must stall at exactly `capacity` items.
  for (int i = 0; i < 100 && produced.load() < 2; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(produced.load(), 2);

  Task consumer = spawn_with(
      [&](TaskId child) { buffer.register_consumer(child); },
      [&] {
        for (int i = 1; i <= 5; ++i) EXPECT_EQ(buffer.take(), i);
      },
      nullptr);
  producer.join();
  consumer.join();
  EXPECT_EQ(produced.load(), 5);
}

TEST(BoundedBufferTest, ConsumerBlocksOnEmpty) {
  BoundedBuffer<int> buffer(4, nullptr);
  std::atomic<bool> got{false};
  Task consumer = spawn_with(
      [&](TaskId child) { buffer.register_consumer(child); },
      [&] {
        EXPECT_EQ(buffer.take(), 7);
        got = true;
      },
      nullptr);
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(got.load());
  Task producer = spawn_with(
      [&](TaskId child) { buffer.register_producer(child); },
      [&] { buffer.put(7); },
      nullptr);
  producer.join();
  consumer.join();
  EXPECT_TRUE(got.load());
}

TEST(BoundedBufferTest, CapacityOneIsRendezvous) {
  BoundedBuffer<int> buffer(1, nullptr);
  constexpr int kItems = 50;
  long sum = 0;
  Task producer = spawn_with(
      [&](TaskId child) { buffer.register_producer(child); },
      [&] {
        for (int i = 1; i <= kItems; ++i) buffer.put(i);
      },
      nullptr);
  Task consumer = spawn_with(
      [&](TaskId child) { buffer.register_consumer(child); },
      [&] {
        for (int i = 0; i < kItems; ++i) sum += buffer.take();
      },
      nullptr);
  producer.join();
  consumer.join();
  EXPECT_EQ(sum, kItems * (kItems + 1) / 2);
}

TEST(BoundedBufferTest, RejectsZeroCapacity) {
  EXPECT_THROW(BoundedBuffer<int>(0, nullptr), ph::PhaserError);
}

TEST(BoundedBufferTest, CrossBufferDeadlockAvoided) {
  // Two capacity-1 buffers in a loop, used in opposite order: each side
  // wants to put its *second* item before the other consumed the first —
  // both block on backpressure, a genuine cycle. Avoidance interrupts one.
  VerifierConfig config;
  config.mode = VerifyMode::kAvoidance;
  Verifier verifier(config);
  BoundedBuffer<int> ab(1, &verifier), ba(1, &verifier);

  std::atomic<int> interrupts{0};
  // Each side: publish two items before consuming anything. The second put
  // needs the peer to have consumed item 1 — a mutual-backpressure cycle.
  // Recovery: the interrupted side consumes its pending input, releasing
  // the peer's put; then both drain one item and finish.
  auto body = [&](BoundedBuffer<int>& out, BoundedBuffer<int>& in) {
    try {
      out.put(1);
      out.put(2);  // backpressure: the peer has not consumed item 1
    } catch (const DeadlockAvoidedError&) {
      ++interrupts;
    }
    EXPECT_EQ(in.take(), 1);
  };
  Task a = spawn_with(
      [&](TaskId child) {
        ab.register_producer(child);
        ba.register_consumer(child);
      },
      [&] { body(ab, ba); }, &verifier);
  Task b = spawn_with(
      [&](TaskId child) {
        ba.register_producer(child);
        ab.register_consumer(child);
      },
      [&] { body(ba, ab); }, &verifier);
  a.join();
  b.join();
  EXPECT_GE(interrupts.load(), 1);
  EXPECT_EQ(verifier.state().blocked_count(), 0u);
}

TEST(BoundedBufferTest, CleanPipelineRaisesNothingUnderDetection) {
  VerifierConfig config;
  config.mode = VerifyMode::kDetection;
  config.period = 5ms;
  config.on_deadlock = [](const DeadlockReport& r) {
    ADD_FAILURE() << "false positive: " << r.to_string();
  };
  Verifier verifier(config);

  // Three-stage pipeline: source -> square -> sink through two buffers.
  BoundedBuffer<int> first(3, &verifier), second(3, &verifier);
  constexpr int kItems = 200;
  long sum = 0;
  Task source = spawn_with(
      [&](TaskId child) { first.register_producer(child); },
      [&] {
        for (int i = 1; i <= kItems; ++i) first.put(i);
      },
      &verifier);
  Task square = spawn_with(
      [&](TaskId child) {
        first.register_consumer(child);
        second.register_producer(child);
      },
      [&] {
        for (int i = 0; i < kItems; ++i) {
          int v = first.take();
          second.put(v * v);
        }
      },
      &verifier);
  Task sink = spawn_with(
      [&](TaskId child) { second.register_consumer(child); },
      [&] {
        for (int i = 0; i < kItems; ++i) sum += second.take();
      },
      &verifier);
  source.join();
  square.join();
  sink.join();

  long expected = 0;
  for (long i = 1; i <= kItems; ++i) expected += i * i;
  EXPECT_EQ(sum, expected);
  EXPECT_TRUE(verifier.reported().empty());
}

}  // namespace
}  // namespace armus::rt
