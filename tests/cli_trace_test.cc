// Contract tests for the CLI binaries themselves (armus-trace, armus-fuzz):
// golden stdout for `stats` and `dot` (pinned byte-for-byte — the CLIs are
// scripted against in CI), exit codes on corrupt/truncated inputs (always a
// clean 2, never a crash), verify/predict verdict lines, and the fuzz
// smoke entry point. Binary paths arrive via compile definitions from
// tests/CMakeLists.txt.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/verifier.h"
#include "trace/format.h"
#include "trace/recorder.h"

namespace armus {
namespace {

struct CliResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr interleaved
};

CliResult run_cli(const std::string& command) {
  CliResult result;
  FILE* pipe = ::popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[4096];
  std::size_t n;
  while ((n = std::fread(buffer, 1, sizeof buffer, pipe)) > 0) {
    result.output.append(buffer, n);
  }
  int status = ::pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "armus_cli_test_" + name + "_" +
         std::to_string(::getpid()) + ".trace";
}

BlockedStatus status(TaskId task, std::vector<Resource> waits,
                     std::vector<RegEntry> registered) {
  BlockedStatus s;
  s.task = task;
  s.waits = std::move(waits);
  s.registered = std::move(registered);
  return s;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// A live detection run with a planted {1,2} cycle and a rescue, recorded
/// through the real observer path.
void record_cycle_run(const std::string& path) {
  VerifierConfig config;
  config.mode = VerifyMode::kDetection;
  config.scanner_enabled = false;
  config.on_deadlock = [](const DeadlockReport&) {};
  config.observer = std::make_shared<trace::Recorder>(
      trace::Recorder::Options{path, {}});
  Verifier verifier(config);
  verifier.before_block(status(1, {{1, 1}}, {{1, 1}, {2, 0}}));
  verifier.before_block(status(2, {{2, 1}}, {{1, 0}, {2, 1}}));
  verifier.scan_now();
  for (TaskId task : {1, 2}) verifier.after_unblock(task);
  verifier.scan_now();
}

/// The late-phased-join run: observed schedule clean, one latent cycle
/// (see tests/predict_test.cc for the schedule's anatomy).
void record_latent_run(const std::string& path) {
  VerifierConfig config;
  config.mode = VerifyMode::kDetection;
  config.scanner_enabled = false;
  config.on_deadlock = [](const DeadlockReport&) {};
  config.observer = std::make_shared<trace::Recorder>(
      trace::Recorder::Options{path, {}});
  Verifier verifier(config);
  verifier.before_block(status(1, {{1, 1}}, {{1, 1}, {2, 0}}));
  verifier.scan_now();
  verifier.after_unblock(1);
  verifier.before_block(status(2, {{2, 1}}, {{1, 0}, {2, 1}}));
  verifier.scan_now();
  verifier.after_unblock(2);
  verifier.scan_now();
}

// --- stats: golden output ------------------------------------------------

TEST(CliStatsTest, GoldenOutput) {
  // Hand-written trace with pinned timestamps, so the span is exact.
  std::string path = temp_path("stats_golden");
  {
    trace::TraceHeader header;
    header.start_ns = 100;
    header.meta = {{"mode", "golden"}};
    trace::TraceWriter writer(path, header);
    trace::Record record;
    record.type = trace::RecordType::kTaskRegistered;
    record.task = 7;
    record.phaser = 2;
    record.phase = 0;
    record.at_ns = 1100;
    writer.append(record);
    record = {};
    record.type = trace::RecordType::kBlocked;
    record.status = status(7, {{2, 1}}, {{2, 0}});
    record.at_ns = 2100;
    writer.append(record);
    record = {};
    record.type = trace::RecordType::kScan;
    record.scan = ScanInfo{1, 1, 0, GraphModel::kWfg, 0};
    record.at_ns = 3100;
    writer.append(record);
    record = {};
    record.type = trace::RecordType::kUnblocked;
    record.task = 7;
    record.at_ns = 4100;
    writer.append(record);
    writer.flush();
  }

  CliResult result = run_cli(std::string(ARMUS_TRACE_BIN) + " stats " + path);
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_EQ(result.output,
            path + ":\n"
            "  meta mode = golden\n"
            "  records: 4\n"
            "    BLOCKED           1\n"
            "    SCAN              1\n"
            "    TASK_REGISTERED   1\n"
            "    UNBLOCKED         1\n"
            "  span: 0.003 ms\n"
            "  distinct blocked tasks: 1 (peak concurrent 1)\n");
  std::remove(path.c_str());
}

// --- dot: golden output --------------------------------------------------

TEST(CliDotTest, GoldenWfgOutput) {
  // Two mutually waiting statuses and nothing else: the replayed end state
  // is the cycle, and the WFG has exactly its two edges.
  std::string path = temp_path("dot_golden");
  {
    trace::TraceHeader header;
    header.start_ns = 100;
    trace::TraceWriter writer(path, header);
    trace::Record record;
    record.type = trace::RecordType::kBlocked;
    record.status = status(1, {{1, 1}}, {{1, 1}, {2, 0}});
    record.at_ns = 1100;
    writer.append(record);
    record = {};
    record.type = trace::RecordType::kBlocked;
    record.status = status(2, {{2, 1}}, {{1, 0}, {2, 1}});
    record.at_ns = 2100;
    writer.append(record);
    writer.flush();
  }

  CliResult result = run_cli(std::string(ARMUS_TRACE_BIN) +
                             " dot --model wfg --at-end " + path);
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_EQ(result.output,
            "digraph \"armus_trace\" {\n"
            "  n0 [label=\"t1\"];\n"
            "  n1 [label=\"t2\"];\n"
            "  n0 -> n1;\n"
            "  n1 -> n0;\n"
            "}\n");
  std::remove(path.c_str());
}

// --- exit codes on bad input ---------------------------------------------

TEST(CliExitCodeTest, CorruptAndTruncatedInputsExitTwo) {
  std::string garbage = temp_path("garbage");
  write_file(garbage, "this is not a trace at all");
  for (const char* subcommand : {"verify", "stats", "dot", "predict"}) {
    CliResult result = run_cli(std::string(ARMUS_TRACE_BIN) + " " +
                               subcommand + " " + garbage);
    EXPECT_EQ(result.exit_code, 2) << subcommand;
    EXPECT_NE(result.output.find("armus-trace"), std::string::npos)
        << subcommand;
  }

  // A real trace cut mid-record must be refused just as loudly.
  std::string whole = temp_path("whole");
  record_cycle_run(whole);
  std::string bytes = read_file(whole);
  std::string truncated = temp_path("truncated");
  write_file(truncated, bytes.substr(0, bytes.size() - 2));
  CliResult result =
      run_cli(std::string(ARMUS_TRACE_BIN) + " verify " + truncated);
  EXPECT_EQ(result.exit_code, 2);

  CliResult missing =
      run_cli(std::string(ARMUS_TRACE_BIN) + " stats /nonexistent.trace");
  EXPECT_EQ(missing.exit_code, 2);

  CliResult no_args = run_cli(std::string(ARMUS_TRACE_BIN));
  EXPECT_EQ(no_args.exit_code, 2);
  EXPECT_NE(no_args.output.find("usage:"), std::string::npos);

  std::remove(garbage.c_str());
  std::remove(whole.c_str());
  std::remove(truncated.c_str());
}

// --- verify / predict verdict lines --------------------------------------

TEST(CliVerifyTest, MatchingReplayExitsZero) {
  std::string path = temp_path("verify_ok");
  record_cycle_run(path);
  CliResult result = run_cli(std::string(ARMUS_TRACE_BIN) + " verify " + path);
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("VERDICT MATCH"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliPredictTest, FindsTheLatentCycleAndWritesAReplayableWitness) {
  std::string path = temp_path("predict");
  record_latent_run(path);

  // The observed schedule is clean...
  CliResult verify = run_cli(std::string(ARMUS_TRACE_BIN) + " verify " + path);
  EXPECT_EQ(verify.exit_code, 0);
  EXPECT_NE(verify.output.find("live run reported 0 deadlock(s)"),
            std::string::npos);

  // ...but predict reorders its way to the cycle.
  std::string witness_dir = testing::TempDir() + "armus_cli_witness_" +
                            std::to_string(::getpid());
  std::filesystem::remove_all(witness_dir);
  CliResult predict =
      run_cli(std::string(ARMUS_TRACE_BIN) + " predict --witness-dir " +
              witness_dir + " " + path);
  EXPECT_EQ(predict.exit_code, 0);
  EXPECT_NE(predict.output.find("observed schedule: 0 recorded, 0 replayed"),
            std::string::npos);
  EXPECT_NE(predict.output.find("PREDICTED: deadlock"), std::string::npos);
  EXPECT_NE(
      predict.output.find("predict: 1 cycle(s) via cut search, 1 novel"),
      std::string::npos);

  // The witness replays to the predicted cycle through plain verify.
  std::string witness = witness_dir + "/witness-0.trace";
  ASSERT_TRUE(std::filesystem::exists(witness)) << predict.output;
  CliResult replay = run_cli(std::string(ARMUS_TRACE_BIN) +
                             " verify --compare off " + witness);
  EXPECT_EQ(replay.exit_code, 0);
  EXPECT_NE(replay.output.find("offline replay found 1 deadlock(s)"),
            std::string::npos);

  std::filesystem::remove_all(witness_dir);
  std::remove(path.c_str());
}

TEST(CliPredictTest, ConfirmsTheObservedCycleDistinctly) {
  std::string path = temp_path("predict_observed");
  record_cycle_run(path);
  CliResult predict =
      run_cli(std::string(ARMUS_TRACE_BIN) + " predict " + path);
  EXPECT_EQ(predict.exit_code, 0);
  EXPECT_NE(predict.output.find("observed schedule: 1 recorded, 1 replayed"),
            std::string::npos);
  EXPECT_NE(predict.output.find("confirmed: deadlock"), std::string::npos);
  EXPECT_NE(
      predict.output.find("predict: 1 cycle(s) via cut search, 0 novel"),
      std::string::npos);
  std::remove(path.c_str());
}

// --- rotated segments through the CLI ------------------------------------

TEST(CliStatsTest, ExpandsRotationSegments) {
  std::string base = temp_path("rotated");
  {
    trace::Recorder::Options options;
    options.path = base;
    options.max_segment_bytes = 64;  // rotate every couple of records
    trace::Recorder recorder(options);
    for (TaskId task = 1; task <= 6; ++task) {
      recorder.on_blocked(status(task, {{task, 1}}, {{task, 1}}));
      recorder.on_unblocked(task);
    }
    recorder.flush();
    ASSERT_GT(recorder.segments(), 1u);
  }
  CliResult result = run_cli(std::string(ARMUS_TRACE_BIN) + " stats " + base);
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find(base + ":"), std::string::npos);
  EXPECT_NE(result.output.find(base + ".1:"), std::string::npos);
  EXPECT_NE(result.output.find("meta segment = 1"), std::string::npos);
  for (const std::string& segment : trace::segment_paths(base)) {
    std::remove(segment.c_str());
  }
}

// --- armus-fuzz ----------------------------------------------------------

TEST(CliFuzzTest, SmokeRunExitsZeroWithContractHeld) {
  std::string path = temp_path("fuzz_seed");
  record_cycle_run(path);
  CliResult result = run_cli(std::string(ARMUS_FUZZ_BIN) +
                             " --seed 1 --runs 40 " + path);
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("contract holds (zero violations)"),
            std::string::npos);
  EXPECT_NE(result.output.find("fuzz: seed 1, 40 mutant(s)"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(CliFuzzTest, MissingSeedTraceExitsTwo) {
  CliResult result =
      run_cli(std::string(ARMUS_FUZZ_BIN) + " /nonexistent.trace");
  EXPECT_EQ(result.exit_code, 2);
  CliResult no_args = run_cli(std::string(ARMUS_FUZZ_BIN));
  EXPECT_EQ(no_args.exit_code, 2);
  EXPECT_NE(no_args.output.find("usage:"), std::string::npos);
}

}  // namespace
}  // namespace armus
