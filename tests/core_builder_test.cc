// Graph-construction tests for the core library, anchored on the paper's
// worked Example 4.1 (Figures 5a/5b/5c) and the §5.1 adaptive selection.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/checker.h"
#include "core/graph_builder.h"
#include "graph/cycle.h"

namespace armus {
namespace {

using Edge = std::pair<std::string, std::string>;

/// Renders all edges of a built graph as label pairs for readable asserts.
std::set<Edge> edge_labels(const BuiltGraph& built) {
  std::set<Edge> out;
  for (std::size_t u = 0; u < built.graph.num_nodes(); ++u) {
    for (graph::Node v : built.graph.out(static_cast<graph::Node>(u))) {
      out.insert({built.label(static_cast<graph::Node>(u)), built.label(v)});
    }
  }
  return out;
}

BlockedStatus status(TaskId task, std::vector<Resource> waits,
                     std::vector<RegEntry> registered) {
  BlockedStatus s;
  s.task = task;
  s.waits = std::move(waits);
  s.registered = std::move(registered);
  return s;
}

/// Example 4.1: tasks t1..t3 blocked at cyclic barrier pc (phaser 1) phase 1;
/// driver t4 blocked at join barrier pb (phaser 2) phase 1. Registered
/// phases mirror M1 from the paper.
std::vector<BlockedStatus> example_4_1() {
  const PhaserUid pc = 1, pb = 2;
  std::vector<BlockedStatus> snapshot;
  for (TaskId t : {1u, 2u, 3u}) {
    snapshot.push_back(status(t, {{pc, 1}}, {{pc, 1}, {pb, 0}}));
  }
  snapshot.push_back(status(4, {{pb, 1}}, {{pc, 0}, {pb, 1}}));
  return snapshot;
}

TEST(BuilderExample41Test, WfgMatchesFigure5a) {
  auto snapshot = example_4_1();
  BuiltGraph wfg = build_wfg(snapshot);
  EXPECT_EQ(wfg.model, GraphModel::kWfg);
  EXPECT_EQ(wfg.nodes(), 4u);
  std::set<Edge> expected{{"t1", "t4"}, {"t2", "t4"}, {"t3", "t4"},
                          {"t4", "t1"}, {"t4", "t2"}, {"t4", "t3"}};
  EXPECT_EQ(edge_labels(wfg), expected);
  EXPECT_TRUE(graph::has_cycle(wfg.graph));
}

TEST(BuilderExample41Test, SgMatchesFigure5c) {
  auto snapshot = example_4_1();
  BuiltGraph sg = build_sg(snapshot);
  EXPECT_EQ(sg.model, GraphModel::kSg);
  EXPECT_EQ(sg.nodes(), 2u);
  std::set<Edge> expected{{"p1@1", "p2@1"}, {"p2@1", "p1@1"}};
  EXPECT_EQ(edge_labels(sg), expected);
  EXPECT_TRUE(graph::has_cycle(sg.graph));
}

TEST(BuilderExample41Test, GrgMatchesFigure5b) {
  auto snapshot = example_4_1();
  BuiltGraph grg = build_grg(snapshot);
  EXPECT_EQ(grg.model, GraphModel::kGrg);
  EXPECT_EQ(grg.nodes(), 6u);
  std::set<Edge> expected{{"t1", "p1@1"}, {"t2", "p1@1"}, {"t3", "p1@1"},
                          {"t4", "p2@1"}, {"p1@1", "t4"}, {"p2@1", "t1"},
                          {"p2@1", "t2"}, {"p2@1", "t3"}};
  EXPECT_EQ(edge_labels(grg), expected);
  EXPECT_TRUE(graph::has_cycle(grg.graph));
}

TEST(BuilderExample41Test, CheckerReportsTheDeadlock) {
  auto snapshot = example_4_1();
  for (GraphModel model :
       {GraphModel::kWfg, GraphModel::kSg, GraphModel::kAuto}) {
    CheckResult result = check_deadlocks(snapshot, model);
    ASSERT_EQ(result.reports.size(), 1u) << to_string(model);
    const DeadlockReport& report = result.reports[0];
    EXPECT_EQ(report.tasks, (std::vector<TaskId>{1, 2, 3, 4}));
    EXPECT_EQ(report.resources,
              (std::vector<Resource>{{1, 1}, {2, 1}}));
  }
}

// --- edge-generation semantics ----------------------------------------------

TEST(BuilderTest, EmptySnapshotYieldsEmptyGraphs) {
  std::vector<BlockedStatus> empty;
  EXPECT_EQ(build_wfg(empty).nodes(), 0u);
  EXPECT_EQ(build_sg(empty).nodes(), 0u);
  EXPECT_EQ(build_grg(empty).nodes(), 0u);
  EXPECT_FALSE(check_deadlocks(empty, GraphModel::kAuto).deadlocked());
}

TEST(BuilderTest, ImpedesAllFuturePhasesNotJustTheNext) {
  // t1 awaits phase 5 of p1; t2 is registered at phase 3 (not 4). The
  // event-based rule (local phase < awaited phase) must still produce the
  // edge — this is what supports awaiting arbitrary future phases (§2.2).
  std::vector<BlockedStatus> snapshot{
      status(1, {{1, 5}}, {{1, 5}}),
      status(2, {{2, 1}}, {{1, 3}, {2, 1}}),
  };
  BuiltGraph wfg = build_wfg(snapshot);
  std::set<Edge> expected{{"t1", "t2"}};
  EXPECT_EQ(edge_labels(wfg), expected);
  EXPECT_FALSE(graph::has_cycle(wfg.graph));
}

TEST(BuilderTest, EqualPhaseDoesNotImpede) {
  // t2's local phase equals the awaited phase: no edge (Definition 4.1
  // requires strictly smaller).
  std::vector<BlockedStatus> snapshot{
      status(1, {{1, 2}}, {{1, 2}}),
      status(2, {{2, 1}}, {{1, 2}}),
  };
  EXPECT_TRUE(edge_labels(build_wfg(snapshot)).empty());
}

TEST(BuilderTest, SelfImpedingTaskYieldsSelfLoop) {
  // A task awaiting a phase ahead of its own signal: waits (p,2) while
  // registered at (p,0). Genuine single-task deadlock (Theorem 4.8 case 1).
  std::vector<BlockedStatus> snapshot{status(1, {{1, 2}}, {{1, 0}})};
  BuiltGraph wfg = build_wfg(snapshot);
  std::set<Edge> expected{{"t1", "t1"}};
  EXPECT_EQ(edge_labels(wfg), expected);
  EXPECT_TRUE(graph::has_cycle(wfg.graph));

  BuiltGraph sg = build_sg(snapshot);
  std::set<Edge> expected_sg{{"p1@2", "p1@2"}};
  EXPECT_EQ(edge_labels(sg), expected_sg);
  EXPECT_TRUE(graph::has_cycle(sg.graph));
}

TEST(BuilderTest, WaitOnlyTasksNeverImpede) {
  // t2 waits on p1 but has no registration there (wait-only members are not
  // published): no edge toward t2.
  std::vector<BlockedStatus> snapshot{
      status(1, {{1, 1}}, {{1, 1}}),
      status(2, {{1, 1}}, {}),
  };
  EXPECT_TRUE(edge_labels(build_wfg(snapshot)).empty());
}

TEST(BuilderTest, MultipleWaitsFanOut) {
  // t1 waits on two resources (compound blocking); both produce edges.
  std::vector<BlockedStatus> snapshot{
      status(1, {{1, 1}, {2, 1}}, {}),
      status(2, {{3, 1}}, {{1, 0}}),
      status(3, {{3, 1}}, {{2, 0}}),
  };
  std::set<Edge> expected{{"t1", "t2"}, {"t1", "t3"}};
  EXPECT_EQ(edge_labels(build_wfg(snapshot)), expected);
}

TEST(BuilderTest, DuplicateEdgesAreCoalesced) {
  // t2 impedes two waited events of the same waiter; the WFG edge count
  // must still be 1 (edge multiplicity carries no information).
  std::vector<BlockedStatus> snapshot{
      status(1, {{1, 1}, {2, 1}}, {}),
      status(2, {{3, 9}}, {{1, 0}, {2, 0}, {3, 9}}),
  };
  BuiltGraph wfg = build_wfg(snapshot);
  EXPECT_EQ(wfg.edges(), 1u);
}

// --- adaptive selection (§5.1) ------------------------------------------------

TEST(AdaptiveTest, PicksSgWhenManyTasksShareOneBarrier) {
  // SPMD shape: many tasks blocked on one event, one straggler blocked
  // elsewhere. SG stays tiny; auto must keep it.
  std::vector<BlockedStatus> snapshot;
  for (TaskId t = 1; t <= 32; ++t) {
    snapshot.push_back(status(t, {{1, 1}}, {{1, 1}}));
  }
  snapshot.push_back(status(33, {{2, 1}}, {{1, 0}, {2, 1}}));
  BuiltGraph built = build_auto(snapshot);
  EXPECT_EQ(built.model, GraphModel::kSg);
  EXPECT_LE(built.edges(), 2u);
}

TEST(AdaptiveTest, FallsBackToWfgWhenSgExplodes) {
  // Few tasks, many barriers, dense impeding: each task waits on its own
  // event and is registered behind every other event. SG edges grow
  // quadratically and cross the 2x-tasks threshold.
  std::vector<BlockedStatus> snapshot;
  const int n = 12;
  for (TaskId t = 1; t <= n; ++t) {
    std::vector<RegEntry> regs;
    for (PhaserUid p = 1; p <= n; ++p) regs.push_back({p, 0});
    snapshot.push_back(status(t, {{t /*phaser*/, 1}}, std::move(regs)));
  }
  BuiltGraph built = build_auto(snapshot);
  EXPECT_EQ(built.model, GraphModel::kWfg);
}

TEST(AdaptiveTest, VerdictMatchesFixedModels) {
  auto snapshot = example_4_1();
  bool auto_cyclic = graph::has_cycle(build_auto(snapshot).graph);
  bool wfg_cyclic = graph::has_cycle(build_wfg(snapshot).graph);
  bool sg_cyclic = graph::has_cycle(build_sg(snapshot).graph);
  EXPECT_EQ(auto_cyclic, wfg_cyclic);
  EXPECT_EQ(auto_cyclic, sg_cyclic);
}

// --- model parsing ------------------------------------------------------------

TEST(GraphModelTest, RoundTripsNames) {
  for (GraphModel m : {GraphModel::kWfg, GraphModel::kSg, GraphModel::kGrg,
                       GraphModel::kAuto}) {
    EXPECT_EQ(graph_model_from_string(to_string(m)), m);
  }
  EXPECT_THROW(graph_model_from_string("bogus"), std::invalid_argument);
}

// --- task_is_doomed (avoidance primitive) --------------------------------------

TEST(DoomedTest, TaskInCycleIsDoomed) {
  auto snapshot = example_4_1();
  BuiltGraph wfg = build_wfg(snapshot);
  for (TaskId t : {1u, 2u, 3u, 4u}) {
    EXPECT_TRUE(task_is_doomed(wfg, snapshot, t)) << t;
  }
}

TEST(DoomedTest, TaskReachingCycleIsDoomed) {
  // t5 waits on an event impeded by t4, which is inside the cycle: t5 can
  // never unblock (Theorem 4.15's reachability phrasing).
  auto snapshot = example_4_1();
  snapshot.push_back(status(5, {{3, 1}}, {{3, 1}}));
  snapshot[3].registered.push_back({3, 0});  // t4 impedes (p3, 1)
  BuiltGraph wfg = build_wfg(snapshot);
  EXPECT_TRUE(task_is_doomed(wfg, snapshot, 5));
  BuiltGraph sg = build_sg(snapshot);
  EXPECT_TRUE(task_is_doomed(sg, snapshot, 5));
}

TEST(DoomedTest, UnrelatedBlockedTaskIsNotDoomed) {
  auto snapshot = example_4_1();
  // t6 waits on (p9, 1), impeded by nobody in the snapshot: it is blocked
  // but not deadlocked (someone outside may still arrive).
  snapshot.push_back(status(6, {{9, 1}}, {{9, 1}}));
  BuiltGraph wfg = build_wfg(snapshot);
  EXPECT_FALSE(task_is_doomed(wfg, snapshot, 6));
  BuiltGraph sg = build_sg(snapshot);
  EXPECT_FALSE(task_is_doomed(sg, snapshot, 6));
}

TEST(DoomedTest, UnknownTaskIsNotDoomed) {
  auto snapshot = example_4_1();
  BuiltGraph wfg = build_wfg(snapshot);
  EXPECT_FALSE(task_is_doomed(wfg, snapshot, 99));
}

}  // namespace
}  // namespace armus
