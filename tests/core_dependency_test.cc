// Tests for the dependency store and the event-based handling of *dynamic
// membership* — the capability the paper says breaks every prior tool (§1,
// §2.1): tasks register with and revoke from barriers mid-run, and the
// checker must stay correct without ever tracking a membership list.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/checker.h"
#include "core/dependency_state.h"
#include "core/task_registry.h"
#include "graph/cycle.h"
#include "util/rng.h"

namespace armus {
namespace {

BlockedStatus status(TaskId task, std::vector<Resource> waits,
                     std::vector<RegEntry> registered) {
  BlockedStatus s;
  s.task = task;
  s.waits = std::move(waits);
  s.registered = std::move(registered);
  return s;
}

// --- DependencyState ----------------------------------------------------------

TEST(DependencyStateTest, SetClearSnapshot) {
  DependencyState state;
  EXPECT_EQ(state.blocked_count(), 0u);
  state.set_blocked(status(3, {{1, 1}}, {}));
  state.set_blocked(status(1, {{2, 1}}, {}));
  EXPECT_EQ(state.blocked_count(), 2u);

  auto snapshot = state.snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].task, 1u);  // sorted by task id
  EXPECT_EQ(snapshot[1].task, 3u);

  state.clear_blocked(3);
  EXPECT_EQ(state.blocked_count(), 1u);
  state.clear_blocked(3);  // idempotent
  EXPECT_EQ(state.blocked_count(), 1u);
  state.clear();
  EXPECT_EQ(state.blocked_count(), 0u);
}

TEST(DependencyStateTest, ReplacesStatusForSameTask) {
  DependencyState state;
  state.set_blocked(status(1, {{1, 1}}, {}));
  state.set_blocked(status(1, {{2, 5}}, {}));
  auto snapshot = state.snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].waits[0], (Resource{2, 5}));
}

TEST(DependencyStateTest, ConcurrentUpdatesAreSafe) {
  // "Maintaining the blocked status is more frequent than checking" (§5.1):
  // hammer block/unblock from many threads while snapshotting.
  DependencyState state;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      auto snapshot = state.snapshot();
      // Every status in any snapshot must be internally consistent.
      for (const auto& s : snapshot) {
        ASSERT_FALSE(s.waits.empty());
        ASSERT_EQ(s.waits[0].phaser, s.task);  // invariant by construction
      }
    }
  });
  std::vector<std::thread> writers;
  for (int t = 1; t <= kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int op = 0; op < kOpsPerThread; ++op) {
        TaskId self = static_cast<TaskId>(t);
        state.set_blocked(status(self, {{self, static_cast<Phase>(op)}}, {}));
        state.clear_blocked(self);
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(state.blocked_count(), 0u);
}

// --- TaskRegistry ---------------------------------------------------------------

TEST(TaskRegistryTest, EntriesFollowSetAndRemove) {
  TaskRegistry registry;
  registry.set_entry(1, 10, 0);
  registry.set_entry(1, 11, 3);
  auto entries = registry.entries(1);
  EXPECT_EQ(entries.size(), 2u);
  registry.set_entry(1, 10, 5);  // phase update
  for (const RegEntry& e : registry.entries(1)) {
    if (e.phaser == 10) EXPECT_EQ(e.local_phase, 5u);
  }
  registry.remove_entry(1, 10);
  EXPECT_EQ(registry.entries(1).size(), 1u);
  registry.remove_task(1);
  EXPECT_TRUE(registry.entries(1).empty());
}

TEST(TaskRegistryTest, MergePreservesForeignEntries) {
  TaskRegistry registry;
  registry.set_entry(7, 1, 4);
  BlockedStatus s = status(7, {{9, 1}}, {{2, 0}});  // entry unknown to registry
  registry.merge_into(s);
  ASSERT_EQ(s.registered.size(), 2u);
  // Registry value appended; stored (lock-generation style) entry kept.
  bool saw_lock = false, saw_phaser = false;
  for (const RegEntry& e : s.registered) {
    if (e.phaser == 2 && e.local_phase == 0) saw_lock = true;
    if (e.phaser == 1 && e.local_phase == 4) saw_phaser = true;
  }
  EXPECT_TRUE(saw_lock);
  EXPECT_TRUE(saw_phaser);
}

// --- dynamic membership through the event-based representation -------------------

TEST(DynamicMembershipTest, DeregistrationDissolvesTheCycle) {
  // The Figure 1 cycle, then the parent "drops": its registration entry
  // disappears and the next analysis must be clean — no membership list
  // ever existed to repair.
  std::vector<BlockedStatus> snapshot{
      status(1, {{1, 1}}, {{1, 1}, {2, 0}}),
      status(2, {{2, 1}}, {{1, 0}, {2, 1}}),
  };
  EXPECT_TRUE(check_deadlocks(snapshot, GraphModel::kAuto).deadlocked());

  // t2 deregisters from phaser 1 (the §2.1 fix applied at run time).
  snapshot[1].registered = {{2, 1}};
  EXPECT_FALSE(check_deadlocks(snapshot, GraphModel::kAuto).deadlocked());
}

TEST(DynamicMembershipTest, LateRegistrationCreatesTheCycle) {
  // Conversely: a task joining a barrier *while others are blocked* can
  // close a cycle; the snapshot-time registry merge makes this visible
  // (the naive design that captures registrations only at block time
  // misses it — see Verifier::current_snapshot).
  std::vector<BlockedStatus> snapshot{
      status(1, {{1, 1}}, {{1, 1}}),
      status(2, {{2, 1}}, {{1, 0}, {2, 1}}),
  };
  EXPECT_FALSE(check_deadlocks(snapshot, GraphModel::kAuto).deadlocked());
  // t1 is now also registered (by its parent) on phaser 2, lagging:
  snapshot[0].registered.push_back({2, 0});
  EXPECT_TRUE(check_deadlocks(snapshot, GraphModel::kAuto).deadlocked());
}

TEST(DynamicMembershipTest, PhaseLagDefinesImpedance) {
  // The whole §4.1 representation in one test: impedance is nothing but
  // "my local phase is behind the waited event" — there is no membership
  // bookkeeping that could go stale when parties come and go.
  for (Phase lag = 0; lag <= 3; ++lag) {
    std::vector<BlockedStatus> snapshot{
        status(1, {{1, 3}}, {{1, 3}, {2, 0}}),
        status(2, {{2, 1}}, {{1, lag}, {2, 1}}),
    };
    bool cyclic = check_deadlocks(snapshot, GraphModel::kAuto).deadlocked();
    EXPECT_EQ(cyclic, lag < 3) << "lag=" << lag;
  }
}

TEST(DynamicMembershipTest, ChurnNeverCorruptsTheAnalysis) {
  // Random churn: tasks blocking, unblocking, registering, deregistering
  // concurrently with periodic checks. The assertion is stability (no
  // crash, internally consistent results); the precision properties are
  // covered by the PL suites.
  DependencyState state;
  util::Xoshiro256 seed_source(2025);
  std::atomic<bool> stop{false};
  std::thread checker([&] {
    while (!stop.load()) {
      auto snapshot = state.snapshot();
      CheckResult result = check_deadlocks(snapshot, GraphModel::kAuto);
      ASSERT_LE(result.reports.size(), snapshot.size());
    }
  });
  std::vector<std::thread> churners;
  for (int t = 1; t <= 6; ++t) {
    churners.emplace_back([&, t] {
      util::Xoshiro256 rng(static_cast<std::uint64_t>(t) * 977);
      for (int op = 0; op < 3000; ++op) {
        TaskId self = static_cast<TaskId>(t);
        BlockedStatus s;
        s.task = self;
        s.waits.push_back(Resource{1 + rng.below(4), 1 + rng.below(3)});
        int regs = static_cast<int>(rng.below(3));
        for (int r = 0; r < regs; ++r) {
          s.registered.push_back({1 + rng.below(4), rng.below(3)});
        }
        state.set_blocked(s);
        if (rng.chance(0.7)) state.clear_blocked(self);
      }
      state.clear_blocked(static_cast<TaskId>(t));
    });
  }
  for (auto& c : churners) c.join();
  stop.store(true);
  checker.join();
}

}  // namespace
}  // namespace armus
