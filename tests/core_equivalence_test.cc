// Property tests for Theorem 4.8 (WFG/SG equivalence) on randomly generated
// resource-dependency states: the WFG has a cycle iff the SG has a cycle iff
// the GRG has a cycle, and the adaptive builder always agrees.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/checker.h"
#include "core/graph_builder.h"
#include "graph/cycle.h"
#include "util/rng.h"

namespace armus {
namespace {

/// Renders all edges of a built graph as label pairs for set comparison.
std::set<std::pair<std::string, std::string>> edge_labels(const BuiltGraph& built) {
  std::set<std::pair<std::string, std::string>> out;
  for (std::size_t u = 0; u < built.graph.num_nodes(); ++u) {
    for (graph::Node v : built.graph.out(static_cast<graph::Node>(u))) {
      out.insert({built.label(static_cast<graph::Node>(u)), built.label(v)});
    }
  }
  return out;
}

/// Random resource-dependency states with tunable shape. Tasks wait on
/// random events of random phasers and are registered behind random subsets
/// — the unconstrained version of what real barrier programs publish.
std::vector<BlockedStatus> random_state(util::Xoshiro256& rng, int max_tasks,
                                        int max_phasers, int max_phase) {
  int tasks = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(max_tasks)));
  int phasers =
      1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(max_phasers)));
  std::vector<BlockedStatus> snapshot;
  for (int t = 1; t <= tasks; ++t) {
    BlockedStatus status;
    status.task = static_cast<TaskId>(t);
    int waits = 1 + static_cast<int>(rng.below(2));
    for (int w = 0; w < waits; ++w) {
      status.waits.push_back(
          Resource{1 + rng.below(static_cast<std::uint64_t>(phasers)),
                   1 + rng.below(static_cast<std::uint64_t>(max_phase))});
    }
    for (int p = 1; p <= phasers; ++p) {
      if (rng.chance(0.6)) {
        status.registered.push_back(
            {static_cast<PhaserUid>(p),
             rng.below(static_cast<std::uint64_t>(max_phase) + 1)});
      }
    }
    snapshot.push_back(std::move(status));
  }
  return snapshot;
}

class EquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EquivalenceTest, WfgSgGrgAgreeOnCyclicity) {
  util::Xoshiro256 rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    auto snapshot = random_state(rng, /*max_tasks=*/8, /*max_phasers=*/4,
                                 /*max_phase=*/3);
    bool wfg = graph::has_cycle(build_wfg(snapshot).graph);
    bool sg = graph::has_cycle(build_sg(snapshot).graph);
    bool grg = graph::has_cycle(build_grg(snapshot).graph);
    bool adaptive = graph::has_cycle(build_auto(snapshot).graph);
    EXPECT_EQ(wfg, sg) << "seed=" << GetParam() << " trial=" << trial;
    EXPECT_EQ(wfg, grg) << "seed=" << GetParam() << " trial=" << trial;
    EXPECT_EQ(wfg, adaptive) << "seed=" << GetParam() << " trial=" << trial;
  }
}

TEST_P(EquivalenceTest, CheckersAgreeAcrossModels) {
  util::Xoshiro256 rng(GetParam() + 1000);
  for (int trial = 0; trial < 30; ++trial) {
    auto snapshot = random_state(rng, 6, 3, 3);
    CheckResult wfg = check_deadlocks(snapshot, GraphModel::kWfg);
    CheckResult sg = check_deadlocks(snapshot, GraphModel::kSg);
    CheckResult adaptive = check_deadlocks(snapshot, GraphModel::kAuto);
    EXPECT_EQ(wfg.deadlocked(), sg.deadlocked());
    EXPECT_EQ(wfg.deadlocked(), adaptive.deadlocked());
  }
}

TEST_P(EquivalenceTest, SgShrinksSpmdStatesWfgShrinksForkJoinStates) {
  util::Xoshiro256 rng(GetParam() + 2000);
  // SPMD shape: many tasks, one barrier -> SG no larger than WFG.
  {
    std::vector<BlockedStatus> snapshot;
    int tasks = 8 + static_cast<int>(rng.below(24));
    for (int t = 1; t <= tasks; ++t) {
      BlockedStatus s;
      s.task = static_cast<TaskId>(t);
      s.waits.push_back(Resource{1, 1});
      s.registered.push_back({1, t == 1 ? 0u : 1u});  // one straggler
      snapshot.push_back(std::move(s));
    }
    EXPECT_LE(build_sg(snapshot).edges(), build_wfg(snapshot).edges());
  }
  // Fork/join shape: one task waits per private barrier chain -> WFG no
  // larger than SG node-wise.
  {
    std::vector<BlockedStatus> snapshot;
    int tasks = 3 + static_cast<int>(rng.below(4));
    for (int t = 1; t <= tasks; ++t) {
      BlockedStatus s;
      s.task = static_cast<TaskId>(t);
      s.waits.push_back(Resource{static_cast<PhaserUid>(t), 1});
      // Registered behind several other chains' events.
      for (int p = 1; p <= tasks; ++p) {
        s.registered.push_back({static_cast<PhaserUid>(p), 0});
      }
      snapshot.push_back(std::move(s));
    }
    EXPECT_LE(build_wfg(snapshot).nodes(), build_sg(snapshot).nodes() + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceTest,
                         ::testing::Range<std::uint64_t>(1, 26));

/// Lemmas 4.5/4.6 as executable properties: the WFG and SG are the edge
/// contractions of the GRG. Every WFG edge (t1, t2) factors through a GRG
/// path t1 -> r -> t2, and every SG edge (r1, r2) through r1 -> t -> r2 —
/// and conversely, every 2-step GRG path contracts to an edge.
class ContractionTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ContractionTest, WfgAndSgAreGrgContractions) {
  util::Xoshiro256 rng(GetParam() + 5000);
  for (int trial = 0; trial < 20; ++trial) {
    auto snapshot = random_state(rng, 6, 4, 3);
    BuiltGraph wfg = build_wfg(snapshot);
    BuiltGraph sg = build_sg(snapshot);
    BuiltGraph grg = build_grg(snapshot);

    const auto task_count = grg.tasks.size();
    auto is_task = [&](graph::Node v) {
      return static_cast<std::size_t>(v) < task_count;
    };

    // Contract the GRG: task->resource->task gives WFG edges,
    // resource->task->resource gives SG edges.
    std::set<std::pair<std::string, std::string>> contracted_wfg, contracted_sg;
    for (std::size_t u = 0; u < grg.graph.num_nodes(); ++u) {
      auto un = static_cast<graph::Node>(u);
      for (graph::Node mid : grg.graph.out(un)) {
        for (graph::Node w : grg.graph.out(mid)) {
          if (is_task(un) && !is_task(mid) && is_task(w)) {
            contracted_wfg.insert({grg.label(un), grg.label(w)});
          }
          if (!is_task(un) && is_task(mid) && !is_task(w)) {
            contracted_sg.insert({grg.label(un), grg.label(w)});
          }
        }
      }
    }

    EXPECT_EQ(edge_labels(wfg), contracted_wfg)
        << "Lemma 4.5 failed, seed=" << GetParam() << " trial=" << trial;
    EXPECT_EQ(edge_labels(sg), contracted_sg)
        << "Lemma 4.6 failed, seed=" << GetParam() << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContractionTest,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace armus
