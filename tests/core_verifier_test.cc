// Tests for the Verifier facade: detection scanning, avoidance interrupts,
// report deduplication, statistics and env-based configuration.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>

#include "core/verifier.h"

namespace armus {
namespace {

using namespace std::chrono_literals;

BlockedStatus status(TaskId task, std::vector<Resource> waits,
                     std::vector<RegEntry> registered) {
  BlockedStatus s;
  s.task = task;
  s.waits = std::move(waits);
  s.registered = std::move(registered);
  return s;
}

/// A 2-task cycle: t1 waits (p1,1) impeded by t2; t2 waits (p2,1) impeded
/// by t1.
void plant_cycle(Verifier& v) {
  v.state().set_blocked(status(1, {{1, 1}}, {{1, 1}, {2, 0}}));
  v.state().set_blocked(status(2, {{2, 1}}, {{1, 0}, {2, 1}}));
}

TEST(VerifierDetectionTest, ScannerReportsPlantedCycle) {
  std::mutex m;
  std::condition_variable cv;
  std::vector<DeadlockReport> got;

  VerifierConfig config;
  config.mode = VerifyMode::kDetection;
  config.period = 5ms;
  config.on_deadlock = [&](const DeadlockReport& r) {
    std::lock_guard<std::mutex> lock(m);
    got.push_back(r);
    cv.notify_all();
  };
  Verifier verifier(config);
  plant_cycle(verifier);

  std::unique_lock<std::mutex> lock(m);
  ASSERT_TRUE(cv.wait_for(lock, 2s, [&] { return !got.empty(); }));
  EXPECT_EQ(got[0].tasks, (std::vector<TaskId>{1, 2}));
  EXPECT_EQ(verifier.reported().size(), got.size());
}

TEST(VerifierDetectionTest, SameDeadlockReportedOnce) {
  std::atomic<int> reports{0};
  VerifierConfig config;
  config.mode = VerifyMode::kDetection;
  config.period = 2ms;
  config.on_deadlock = [&](const DeadlockReport&) { ++reports; };
  Verifier verifier(config);
  plant_cycle(verifier);
  std::this_thread::sleep_for(100ms);  // dozens of scan periods
  EXPECT_EQ(reports.load(), 1);
  EXPECT_EQ(verifier.stats().deadlocks_found, 1u);
}

TEST(VerifierDetectionTest, NoFalsePositiveOnAcyclicState) {
  std::atomic<int> reports{0};
  VerifierConfig config;
  config.mode = VerifyMode::kDetection;
  config.period = 2ms;
  config.on_deadlock = [&](const DeadlockReport&) { ++reports; };
  Verifier verifier(config);
  verifier.state().set_blocked(status(1, {{1, 1}}, {{1, 1}}));
  verifier.state().set_blocked(status(2, {{1, 1}}, {{1, 1}}));
  std::this_thread::sleep_for(50ms);
  EXPECT_EQ(reports.load(), 0);
}

TEST(VerifierDetectionTest, UnblockClearsState) {
  VerifierConfig config;
  config.mode = VerifyMode::kDetection;
  config.period = 1000ms;  // scanner effectively idle
  Verifier verifier(config);
  verifier.before_block(status(7, {{1, 1}}, {}));
  EXPECT_EQ(verifier.state().blocked_count(), 1u);
  verifier.after_unblock(7);
  EXPECT_EQ(verifier.state().blocked_count(), 0u);
}

TEST(VerifierAvoidanceTest, ThrowsWhenBlockWouldCloseCycle) {
  VerifierConfig config;
  config.mode = VerifyMode::kAvoidance;
  Verifier verifier(config);

  // First blocker: no cycle yet, passes.
  EXPECT_NO_THROW(verifier.before_block(status(1, {{1, 1}}, {{1, 1}, {2, 0}})));
  // Second blocker closes the cycle: interrupted.
  try {
    verifier.before_block(status(2, {{2, 1}}, {{1, 0}, {2, 1}}));
    FAIL() << "expected DeadlockAvoidedError";
  } catch (const DeadlockAvoidedError& e) {
    EXPECT_EQ(e.report().tasks, (std::vector<TaskId>{1, 2}));
  }
  // The interrupted task's status must have been withdrawn.
  EXPECT_EQ(verifier.state().blocked_count(), 1u);
  EXPECT_EQ(verifier.stats().avoidance_interrupts, 1u);
}

TEST(VerifierAvoidanceTest, SelfDeadlockInterruptedImmediately) {
  VerifierConfig config;
  config.mode = VerifyMode::kAvoidance;
  Verifier verifier(config);
  // Waiting two phases ahead of its own signal: a length-1 cycle.
  EXPECT_THROW(verifier.before_block(status(3, {{1, 2}}, {{1, 0}})),
               DeadlockAvoidedError);
  EXPECT_EQ(verifier.state().blocked_count(), 0u);
}

TEST(VerifierAvoidanceTest, IndependentBlockersPass) {
  VerifierConfig config;
  config.mode = VerifyMode::kAvoidance;
  Verifier verifier(config);
  EXPECT_NO_THROW(verifier.before_block(status(1, {{1, 1}}, {{1, 1}})));
  EXPECT_NO_THROW(verifier.before_block(status(2, {{1, 1}}, {{1, 1}})));
  EXPECT_EQ(verifier.state().blocked_count(), 2u);
}

TEST(VerifierOffTest, HooksAreNoOps) {
  VerifierConfig config;
  config.mode = VerifyMode::kOff;
  Verifier verifier(config);
  verifier.before_block(status(1, {{1, 1}}, {{1, 0}}));
  EXPECT_EQ(verifier.state().blocked_count(), 0u);
}

TEST(VerifierStatsTest, CountsChecksAndModels) {
  VerifierConfig config;
  config.mode = VerifyMode::kAvoidance;
  config.model = GraphModel::kSg;
  Verifier verifier(config);
  verifier.before_block(status(1, {{1, 1}}, {{1, 1}}));
  verifier.before_block(status(2, {{1, 1}}, {{1, 1}}));
  auto stats = verifier.stats();
  EXPECT_EQ(stats.checks, 2u);
  EXPECT_EQ(stats.sg_builds, 2u);
  EXPECT_EQ(stats.wfg_builds, 0u);
  verifier.reset_stats();
  EXPECT_EQ(verifier.stats().checks, 0u);
}

TEST(VerifierStatsTest, MeanEdgesTracksGraphSizes) {
  Verifier::Stats stats;
  stats.checks = 4;
  stats.total_edges = 10;
  EXPECT_DOUBLE_EQ(stats.mean_edges(), 2.5);
  EXPECT_DOUBLE_EQ(Verifier::Stats{}.mean_edges(), 0.0);
}

TEST(VerifierNamesTest, DescribeUsesRegisteredNames) {
  VerifierConfig config;
  config.mode = VerifyMode::kOff;
  Verifier verifier(config);
  verifier.set_task_name(1, "worker-1");
  DeadlockReport report;
  report.tasks = {1, 2};
  report.resources = {{3, 1}};
  std::string text = verifier.describe(report);
  EXPECT_NE(text.find("worker-1"), std::string::npos);
  EXPECT_NE(text.find("t2"), std::string::npos);
  EXPECT_NE(text.find("p3@1"), std::string::npos);
}

TEST(VerifierRegistryTest, SnapshotMergesLiveRegistrations) {
  VerifierConfig config;
  config.mode = VerifyMode::kDetection;
  config.period = 1000ms;
  Verifier verifier(config);
  verifier.before_block(status(1, {{1, 1}}, {}));
  // Registration arrives *after* the task blocked (e.g. a parent's reg).
  verifier.registry().set_entry(1, 2, 0);
  auto snapshot = verifier.current_snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  ASSERT_EQ(snapshot[0].registered.size(), 1u);
  EXPECT_EQ(snapshot[0].registered[0].phaser, 2u);
}

TEST(VerifierRegistryTest, RegistryValueWinsOverStoredStatus) {
  VerifierConfig config;
  config.mode = VerifyMode::kDetection;
  config.period = 1000ms;
  Verifier verifier(config);
  verifier.before_block(status(1, {{1, 5}}, {{2, 0}}));
  verifier.registry().set_entry(1, 2, 3);  // fresher phase
  auto snapshot = verifier.current_snapshot();
  ASSERT_EQ(snapshot[0].registered.size(), 1u);
  EXPECT_EQ(snapshot[0].registered[0].local_phase, 3u);
}

TEST(VerifierConfigTest, FromEnvParsesSettings) {
  ::setenv("ARMUS_MODE", "avoidance", 1);
  ::setenv("ARMUS_GRAPH_MODEL", "wfg", 1);
  ::setenv("ARMUS_CHECK_PERIOD_MS", "250", 1);
  VerifierConfig config = VerifierConfig::from_env();
  EXPECT_EQ(config.mode, VerifyMode::kAvoidance);
  EXPECT_EQ(config.model, GraphModel::kWfg);
  EXPECT_EQ(config.period.count(), 250);
  ::unsetenv("ARMUS_MODE");
  ::unsetenv("ARMUS_GRAPH_MODEL");
  ::unsetenv("ARMUS_CHECK_PERIOD_MS");
}

TEST(VerifierConfigTest, FromEnvRejectsNonPositivePeriods) {
  ::setenv("ARMUS_CHECK_PERIOD_MS", "0", 1);
  EXPECT_THROW(VerifierConfig::from_env(), std::invalid_argument);
  ::setenv("ARMUS_CHECK_PERIOD_MS", "-5", 1);
  EXPECT_THROW(VerifierConfig::from_env(), std::invalid_argument);
  ::unsetenv("ARMUS_CHECK_PERIOD_MS");

  ::setenv("ARMUS_AVOIDANCE_RECHECK_MS", "0", 1);
  EXPECT_THROW(VerifierConfig::from_env(), std::invalid_argument);
  ::unsetenv("ARMUS_AVOIDANCE_RECHECK_MS");
}

TEST(VerifierConfigTest, FromEnvHonoursScannerToggle) {
  ::unsetenv("ARMUS_SCANNER");  // shield against the ambient shell
  EXPECT_TRUE(VerifierConfig::from_env().scanner_enabled);  // default on
  ::setenv("ARMUS_SCANNER", "off", 1);
  EXPECT_FALSE(VerifierConfig::from_env().scanner_enabled);
  ::setenv("ARMUS_SCANNER", "1", 1);
  EXPECT_TRUE(VerifierConfig::from_env().scanner_enabled);
  ::setenv("ARMUS_SCANNER", "maybe", 1);
  EXPECT_THROW(VerifierConfig::from_env(), std::invalid_argument);
  ::unsetenv("ARMUS_SCANNER");
}

TEST(VerifierRegistryApiTest, AliasesAndRegistryAgree) {
  VerifierConfig config;
  config.mode = VerifyMode::kOff;
  Verifier site_a(config), site_b(config);
  auto& registry = VerifierRegistry::instance();

  set_default_verifier(&site_a);
  EXPECT_EQ(registry.fallback(), &site_a);
  EXPECT_EQ(default_verifier(), &site_a);

  bind_task_verifier(41, &site_b);
  EXPECT_EQ(registry.bound(41), &site_b);
  EXPECT_EQ(task_verifier(41), &site_b);
  registry.unbind(41);
  EXPECT_EQ(task_verifier(41), nullptr);
  set_default_verifier(nullptr);
}

TEST(VerifierConfigTest, ModeNamesRoundTrip) {
  for (VerifyMode m :
       {VerifyMode::kOff, VerifyMode::kDetection, VerifyMode::kAvoidance}) {
    EXPECT_EQ(verify_mode_from_string(to_string(m)), m);
  }
  EXPECT_THROW(verify_mode_from_string("nope"), std::invalid_argument);
}

TEST(DefaultVerifierTest, SetAndGet) {
  EXPECT_EQ(default_verifier(), nullptr);
  VerifierConfig config;
  config.mode = VerifyMode::kOff;
  Verifier v(config);
  set_default_verifier(&v);
  EXPECT_EQ(default_verifier(), &v);
  set_default_verifier(nullptr);
}

TEST(ReportTest, FingerprintStableAndDistinct) {
  DeadlockReport a, b, c;
  a.tasks = {1, 2, 3};
  b.tasks = {1, 2, 3};
  c.tasks = {1, 2, 4};
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_NE(a.fingerprint(), c.fingerprint());
  EXPECT_NE(a.to_string().find("t1"), std::string::npos);
}

}  // namespace
}  // namespace armus
