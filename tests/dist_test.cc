// Tests for the distributed substrate: codec round-trips, the store's
// semantics and fault injection, and end-to-end cross-site deadlock
// detection with fault tolerance (§5.2).
#include <gtest/gtest.h>

#include <atomic>

#include "dist/codec.h"
#include "dist/site.h"
#include "phaser/phaser.h"
#include "runtime/task.h"

namespace armus::dist {
namespace {

using namespace std::chrono_literals;

BlockedStatus status(TaskId task, std::vector<Resource> waits,
                     std::vector<RegEntry> registered) {
  BlockedStatus s;
  s.task = task;
  s.waits = std::move(waits);
  s.registered = std::move(registered);
  return s;
}

// --- codec -------------------------------------------------------------------

TEST(CodecTest, RoundTripsEmpty) {
  EXPECT_TRUE(decode_statuses(encode_statuses({})).empty());
}

TEST(CodecTest, RoundTripsStatuses) {
  std::vector<BlockedStatus> in{
      status(1, {{10, 1}}, {{10, 1}, {11, 0}}),
      status(2, {{11, 3}, {12, 9}}, {}),
      status(300, {}, {{1, 7}}),
  };
  auto out = decode_statuses(encode_statuses(in));
  EXPECT_EQ(in, out);
}

TEST(CodecTest, RejectsTruncatedInput) {
  std::string bytes = encode_statuses({status(1, {{10, 1}}, {})});
  bytes.resize(bytes.size() - 3);
  EXPECT_THROW(decode_statuses(bytes), std::runtime_error);
}

TEST(CodecTest, RejectsTrailingGarbage) {
  std::string bytes = encode_statuses({status(1, {{10, 1}}, {})});
  bytes += "xx";
  EXPECT_THROW(decode_statuses(bytes), std::runtime_error);
}

TEST(CodecTest, RejectsBogusCounts) {
  std::string bytes(8, '\xff');  // count = 2^64-1
  EXPECT_THROW(decode_statuses(bytes), std::runtime_error);
}

// --- store -------------------------------------------------------------------

TEST(StoreTest, SlicesAreDisjointPerSite) {
  Store store;
  store.put_slice(1, "aaa");
  store.put_slice(2, "bbb");
  store.put_slice(1, "ccc");  // overwrites site 1 only
  auto snapshot = store.snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].payload, "ccc");
  EXPECT_EQ(snapshot[0].version, 2u);
  EXPECT_EQ(snapshot[1].payload, "bbb");
  EXPECT_EQ(snapshot[1].version, 1u);
}

TEST(StoreTest, RemoveSliceDropsSite) {
  Store store;
  store.put_slice(1, "a");
  store.put_slice(2, "b");
  store.remove_slice(1);
  auto snapshot = store.snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].site, 2u);
}

TEST(StoreTest, FailureInjection) {
  Store store;
  store.put_slice(1, "a");
  store.set_available(false);
  EXPECT_THROW(store.put_slice(1, "b"), StoreUnavailableError);
  EXPECT_THROW(store.snapshot(), StoreUnavailableError);
  store.set_available(true);
  // Recovery: previous data survived the outage.
  auto snapshot = store.snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].payload, "a");
}

TEST(StoreTest, CountsOperations) {
  Store store;
  store.put_slice(1, "a");
  store.put_slice(2, "b");
  (void)store.snapshot();
  EXPECT_EQ(store.writes(), 2u);
  EXPECT_EQ(store.reads(), 1u);
}

// --- slice cache -------------------------------------------------------------

TEST(SliceCacheTest, OnlyRedecodesChangedSlices) {
  Store store;
  store.put_slice(1, encode_statuses({status(1, {{1, 1}}, {})}));
  store.put_slice(2, encode_statuses({status(2, {{2, 1}}, {})}));

  SliceCache cache;
  EXPECT_EQ(cache.merge(store.snapshot()).size(), 2u);
  EXPECT_EQ(cache.decodes(), 2u);

  // Unchanged snapshot: merged view served entirely from the cache.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(cache.status_count(store.snapshot()), 2u);
  }
  EXPECT_EQ(cache.decodes(), 2u);

  // One slice republished → exactly one further decode.
  store.put_slice(2, encode_statuses({status(2, {{2, 2}}, {}),
                                      status(3, {{2, 2}}, {})}));
  auto merged = cache.merge(store.snapshot());
  EXPECT_EQ(merged.size(), 3u);
  EXPECT_EQ(cache.decodes(), 3u);
}

TEST(SliceCacheTest, EvictsRemovedSites) {
  Store store;
  store.put_slice(1, encode_statuses({status(1, {{1, 1}}, {})}));
  store.put_slice(2, encode_statuses({status(2, {{2, 1}}, {})}));
  SliceCache cache;
  EXPECT_EQ(cache.status_count(store.snapshot()), 2u);
  store.remove_slice(1);
  EXPECT_EQ(cache.status_count(store.snapshot()), 1u);
  EXPECT_EQ(cache.merge(store.snapshot())[0].task, 2u);
}

TEST(SliceCacheTest, RemembersCorruptVerdictUntilRepublish) {
  Store store;
  store.put_slice(1, "not a valid payload");
  store.put_slice(2, encode_statuses({status(2, {{2, 1}}, {})}));
  SliceCache cache;
  int corrupt_reports = 0;
  auto on_corrupt = [&](SiteId, const CodecError&) { ++corrupt_reports; };

  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(cache.merge(store.snapshot(), on_corrupt).size(), 1u);
  }
  // The corrupt slice was decoded (and reported) once, not per call.
  EXPECT_EQ(corrupt_reports, 1);
  EXPECT_EQ(cache.decodes(), 2u);

  // A healthy republish of the bad site clears the verdict.
  store.put_slice(1, encode_statuses({status(1, {{1, 1}}, {})}));
  EXPECT_EQ(cache.merge(store.snapshot(), on_corrupt).size(), 2u);
  EXPECT_EQ(corrupt_reports, 1);
}

TEST(SliceCacheTest, PropagatesCodecErrorWithoutCallback) {
  Store store;
  store.put_slice(1, "garbage");
  SliceCache cache;
  EXPECT_THROW(cache.merge(store.snapshot()), CodecError);
  // Not cached as success: the next call still fails.
  EXPECT_THROW(cache.status_count(store.snapshot()), CodecError);
}

TEST(SharedStoreTest, BlockedCountIsCachedByVersion) {
  auto backing = std::make_shared<Store>();
  SharedStore a(backing, 0);
  SharedStore b(backing, 1);
  a.set_blocked(status(1, {{1, 1}}, {{1, 1}}));
  b.set_blocked(status(2, {{2, 1}}, {{2, 1}}));

  (void)a.blocked_count();
  std::uint64_t baseline = a.decode_count();
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(a.blocked_count(), 2u);
    EXPECT_EQ(a.snapshot().size(), 2u);
  }
  EXPECT_EQ(a.decode_count(), baseline);  // nothing changed, nothing decoded

  b.set_blocked(status(3, {{2, 1}}, {{2, 1}}));  // one slice changes
  EXPECT_EQ(a.blocked_count(), 3u);
  EXPECT_EQ(a.decode_count(), baseline + 1);
}

// --- sites -------------------------------------------------------------------

/// Plants one half of a 2-task cross-site cycle on each site's verifier.
void plant_cross_site_cycle(Site& a, Site& b) {
  a.verifier().state().set_blocked(status(1, {{1, 1}}, {{1, 1}, {2, 0}}));
  b.verifier().state().set_blocked(status(2, {{2, 1}}, {{1, 0}, {2, 1}}));
}

TEST(SiteTest, DetectsCrossSiteDeadlock) {
  auto store = std::make_shared<Store>();
  Site::Config ca, cb;
  ca.id = 0;
  cb.id = 1;
  Site a(ca, store), b(cb, store);
  plant_cross_site_cycle(a, b);

  // Drive the protocol by hand: publish both slices, then check at both.
  a.publish_now();
  b.publish_now();
  a.check_now();
  b.check_now();

  ASSERT_EQ(a.reported().size(), 1u);
  ASSERT_EQ(b.reported().size(), 1u);
  EXPECT_EQ(a.reported()[0].tasks, (std::vector<TaskId>{1, 2}));
  EXPECT_EQ(b.reported()[0].tasks, (std::vector<TaskId>{1, 2}));
}

TEST(SiteTest, NoSiteSeesTheCycleFromItsLocalHalfAlone) {
  auto store = std::make_shared<Store>();
  Site::Config ca, cb;
  ca.id = 0;
  cb.id = 1;
  Site a(ca, store), b(cb, store);
  plant_cross_site_cycle(a, b);

  a.publish_now();  // only site a's slice is in the store
  a.check_now();
  EXPECT_TRUE(a.reported().empty());  // half a cycle is not a deadlock
}

TEST(SiteTest, PeriodicLoopsFindTheDeadlock) {
  auto store = std::make_shared<Store>();
  std::atomic<int> callbacks{0};
  Site::Config ca, cb;
  ca.id = 0;
  ca.publish_period = 5ms;
  ca.check_period = 5ms;
  ca.on_deadlock = [&](const DeadlockReport&) { ++callbacks; };
  cb = ca;
  cb.id = 1;
  cb.on_deadlock = nullptr;
  Site a(ca, store), b(cb, store);
  plant_cross_site_cycle(a, b);
  a.start();
  b.start();
  for (int i = 0; i < 400 && callbacks.load() == 0; ++i) {
    std::this_thread::sleep_for(5ms);
  }
  a.stop();
  b.stop();
  EXPECT_GE(callbacks.load(), 1);
  EXPECT_EQ(a.stats().deadlocks_found, 1u);  // deduplicated
}

TEST(SiteTest, SurvivesStoreOutage) {
  auto store = std::make_shared<Store>();
  Site::Config config;
  config.id = 0;
  Site site(config, store);
  site.verifier().state().set_blocked(status(1, {{1, 1}}, {{1, 1}}));

  store->set_available(false);
  site.publish_now();  // absorbed
  site.check_now();    // absorbed
  EXPECT_GE(site.stats().store_failures, 2u);

  store->set_available(true);
  site.publish_now();
  site.check_now();
  EXPECT_EQ(site.stats().publishes, 1u);
  EXPECT_EQ(site.stats().checks, 1u);
}

TEST(SiteTest, SiteFailureLeavesOthersOperational) {
  auto store = std::make_shared<Store>();
  Site::Config ca, cb;
  ca.id = 0;
  cb.id = 1;
  auto a = std::make_unique<Site>(ca, store);
  Site b(cb, store);
  plant_cross_site_cycle(*a, b);
  a->publish_now();
  a.reset();  // site a dies; its slice persists in the store
  b.publish_now();
  b.check_now();
  ASSERT_EQ(b.reported().size(), 1u);  // b still detects the global cycle
}

TEST(ClusterTest, BuildsAndRunsNSites) {
  Cluster::Config config;
  config.site_count = 4;
  config.publish_period = 5ms;
  config.check_period = 5ms;
  std::atomic<int> reports{0};
  config.on_deadlock = [&](SiteId, const DeadlockReport&) { ++reports; };
  Cluster cluster(config);
  EXPECT_EQ(cluster.size(), 4u);
  plant_cross_site_cycle(cluster.site(0), cluster.site(1));
  cluster.start();
  for (int i = 0; i < 400 && reports.load() < 4; ++i) {
    std::this_thread::sleep_for(5ms);
  }
  cluster.stop();
  // Every site checks independently — all four must find the deadlock.
  EXPECT_EQ(reports.load(), 4);
  EXPECT_EQ(cluster.total_reports(), 4u);
}

// --- end-to-end: real phaser deadlock across sites ------------------------------

TEST(DistEndToEndTest, CrossSitePhaserDeadlockDetected) {
  Cluster::Config config;
  config.site_count = 2;
  config.publish_period = 5ms;
  config.check_period = 5ms;
  Cluster cluster(config);
  cluster.start();

  // A phaser spanning both sites. Task A (site 0) and task B (site 1) each
  // wait at a barrier the other never arrives at.
  auto p = ph::Phaser::create(&cluster.site(0).verifier());
  auto q = ph::Phaser::create(&cluster.site(0).verifier());

  // Start gate: neither body runs until both tasks are registered on both
  // phasers, or an early arrival could make the second registration look
  // like a clock rewind.
  std::atomic<bool> start{false};

  std::atomic<bool> resolved{false};
  rt::Task ta = rt::spawn_with(
      [&](TaskId child) {
        p->register_task(child, 0);
        q->register_task(child, 0);
      },
      [&] {
        while (!start.load()) std::this_thread::yield();
        TaskId self = rt::current_task();
        p->arrive(self);
        p->await(self, 1);  // site-0 task blocked on p
        // The rescue may have deregistered us from q already.
        if (q->is_registered(self)) q->arrive_and_deregister(self);
        if (p->is_registered(self)) p->deregister(self);
      },
      &cluster.site(0).verifier(), "site0-task");
  rt::Task tb = rt::spawn_with(
      [&](TaskId child) {
        p->register_task(child, 0);
        q->register_task(child, 0);
      },
      [&] {
        while (!start.load()) std::this_thread::yield();
        TaskId self = rt::current_task();
        q->arrive(self);
        q->await(self, 1);  // site-1 task blocked on q -> cycle
        if (p->is_registered(self)) p->arrive_and_deregister(self);
        if (q->is_registered(self)) q->deregister(self);
      },
      &cluster.site(1).verifier(), "site1-task");

  start.store(true);

  // Wait for any site to report, then resolve by advancing from outside
  // (deregistering the stragglers), so the test terminates.
  for (int i = 0; i < 600 && cluster.total_reports() == 0; ++i) {
    std::this_thread::sleep_for(5ms);
  }
  std::size_t reports = cluster.total_reports();
  // Resolve: drop task A from q (it has not arrived there) so task B wakes;
  // then A wakes in turn.
  if (ta.id() != kInvalidTask && q->is_registered(ta.id())) {
    q->deregister(ta.id());
  }
  if (tb.id() != kInvalidTask && p->is_registered(tb.id())) {
    p->deregister(tb.id());
  }
  resolved = true;
  ta.join();
  tb.join();
  cluster.stop();
  EXPECT_GE(reports, 1u);
  EXPECT_TRUE(resolved.load());
}

}  // namespace
}  // namespace armus::dist
